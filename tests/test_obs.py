"""The metrics subsystem: counters, gauges, log-linear histograms, registry."""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)

TOL = 1e-9


# -- counters and gauges ------------------------------------------------------


def test_counter_monotone():
    c = Counter("c_total", "help")
    assert c.value == 0
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("g", "help")
    g.set(3)
    g.add(2)
    g.sub(4)
    assert abs(g.value - 1.0) <= TOL


def test_metric_name_validation():
    with pytest.raises(ValueError):
        Counter("bad name!", "help")


def test_counter_threaded_increments():
    c = Counter("c_total", "help")

    def work():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# -- histograms ---------------------------------------------------------------


def test_histogram_summary_and_count():
    h = Histogram("h_seconds", "help")
    for v in (0.001, 0.002, 0.003, 0.004, 0.1):
        h.observe(v)
    assert h.count == 5
    assert abs(h.sum - 0.11) <= TOL
    text = h.summary()
    assert "count=5" in text and "p50=" in text and "p99=" in text


def test_histogram_quantiles_bracket_the_data():
    h = Histogram("h", "help")
    values = [0.001 * (i + 1) for i in range(100)]
    for v in values:
        h.observe(v)
    p50 = h.quantile(0.5)
    p99 = h.quantile(0.99)
    # Bucketed quantiles overestimate by at most one sub-bucket width
    # (12.5% relative for 8 sub-buckets per power of two).
    assert 0.045 <= p50 <= 0.06
    assert 0.09 <= p99 <= 0.1 + TOL
    assert p99 <= h.quantile(1.0) + TOL


@given(
    st.lists(
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.sampled_from([0.5, 0.9, 0.95, 0.99]),
)
def test_histogram_quantile_relative_error(values, q):
    """Any quantile is within one sub-bucket (12.5%) above a true value."""
    h = Histogram("h", "help")
    for v in values:
        h.observe(v)
    estimate = h.quantile(q)
    values.sort()
    rank = min(len(values) - 1, math.ceil(q * len(values)) - 1)
    true = values[max(rank, 0)]
    assert estimate >= true - TOL  # never understates the quantile
    assert estimate <= max(v for v in values) + TOL  # clamped to the max seen


def test_histogram_rejects_negative():
    h = Histogram("h", "help")
    with pytest.raises(ValueError):
        h.observe(-1.0)


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    c1 = reg.counter("x_total", "help")
    c2 = reg.counter("x_total", "help")
    assert c1 is c2
    with pytest.raises(ValueError):
        reg.gauge("x_total", "help")


def test_registry_render_text_prometheus_shape():
    reg = MetricsRegistry()
    reg.counter("a_total", "a help").inc(3)
    reg.gauge("b", "b help").set(1.5)
    h = reg.histogram("c_seconds", "c help")
    h.observe(0.25)
    text = reg.render_text()
    assert "# HELP a_total a help" in text
    assert "# TYPE a_total counter" in text
    assert "a_total 3" in text
    assert "# TYPE b gauge" in text
    assert "# TYPE c_seconds summary" in text
    assert 'c_seconds{quantile="0.5"}' in text
    assert "c_seconds_count 1" in text


def test_registry_snapshot():
    reg = MetricsRegistry()
    reg.counter("a_total", "h").inc(2)
    reg.gauge("g", "h").set(7)
    snap = reg.snapshot()
    assert snap["a_total"] == 2
    assert snap["g"] == 7


def test_default_registry_swap():
    original = get_registry()
    fresh = MetricsRegistry()
    set_registry(fresh)
    try:
        assert get_registry() is fresh
        get_registry().counter("swapped_total", "h").inc()
        assert fresh.snapshot()["swapped_total"] == 1
    finally:
        set_registry(original)


def test_engine_session_publishes_metrics():
    """SessionStats.record feeds the process-wide registry."""
    from repro.engine.session import EngineSession
    from repro.workloads.generators import figure1_database

    original = get_registry()
    fresh = MetricsRegistry()
    set_registry(fresh)
    try:
        session = EngineSession(figure1_database(), seed=3)
        session.query("R(x), S(x,y)")
        session.query("R(x), S(x,y)")
        snap = fresh.snapshot()
        assert snap["engine_queries_total"] == 2
        assert snap["engine_cache_hits_total"] == 1
        assert snap["engine_cache_misses_total"] == 1
        assert fresh.histogram("engine_query_seconds", "").count == 2
    finally:
        set_registry(original)
