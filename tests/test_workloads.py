"""Unit tests for repro.workloads.generators."""

from repro.workloads.generators import (
    chain_join_tid,
    figure1_database,
    full_tid,
    random_tid,
    symmetric_database,
)


def test_figure1_shape():
    db = figure1_database()
    assert len(db.relations["R"]) == 3
    assert len(db.relations["S"]) == 6
    assert db.fact_count() == 9


def test_figure1_custom_probabilities():
    db = figure1_database(p=(0.1, 0.2, 0.3), q=(0.4,) * 6)
    assert db.probability_of_fact("R", ("a1",)) == 0.1  # prodb-lint: exact
    assert db.probability_of_fact("S", ("a4", "b6")) == 0.4  # prodb-lint: exact


def test_figure1_rejects_wrong_lengths():
    import pytest

    with pytest.raises(ValueError):
        figure1_database(p=(0.5,))


def test_random_tid_deterministic():
    a = random_tid(42, 3)
    b = random_tid(42, 3)
    assert list(a.facts()) == list(b.facts())


def test_random_tid_respects_density_extremes():
    empty = random_tid(1, 3, density=0.0)
    assert empty.fact_count() == 0
    full = random_tid(1, 3, density=1.1)
    assert full.fact_count() == 3 + 9 + 3


def test_random_tid_probability_range():
    db = random_tid(2, 3, probability_range=(0.4, 0.6))
    assert all(0.4 <= p <= 0.6 for _, _, p in db.facts())


def test_random_tid_explicit_domain():
    db = random_tid(3, 2, domain=("u", "v"))
    assert db.domain() == ("u", "v")


def test_full_tid_has_every_tuple():
    db = full_tid(5, 2)
    assert db.fact_count() == 2 + 4 + 2


def test_symmetric_database_defaults():
    db = symmetric_database(4)
    assert db.relations["S"] == (2, 0.6)
    assert db.domain_size == 4


def test_chain_join_tid():
    db = chain_join_tid(7, 2, length=3)
    assert set(db.relations) == {"R0", "E1", "E2", "E3"}
    assert len(db.relations["E2"]) == 4
