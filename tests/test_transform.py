"""Unit tests for repro.logic.transform."""

import itertools

import pytest

from repro.logic.parser import parse
from repro.logic.semantics import satisfies
from repro.logic.transform import (
    COMPLEMENT_SUFFIX,
    dual,
    is_monotone,
    is_unate,
    polarity_map,
    prenex,
    standardize_apart,
    to_nnf,
    unate_to_monotone,
)


def worlds_over(domain, predicates):
    """All worlds over unary/binary predicates for semantic equivalence checks."""
    tuples = []
    for name, arity in predicates:
        for values in itertools.product(domain, repeat=arity):
            tuples.append((name, values))
    for bits in itertools.product((False, True), repeat=len(tuples)):
        yield frozenset(t for t, b in zip(tuples, bits) if b)


def equivalent(f, g, domain=("a", "b"), predicates=(("R", 1), ("S", 2), ("T", 1))):
    return all(
        satisfies(w, domain, f) == satisfies(w, domain, g)
        for w in worlds_over(domain, predicates)
    )


def test_nnf_pushes_negation_to_atoms():
    f = to_nnf(parse("~(R(x) & S(x,y))").substitute({}))
    assert str(f) == "~R(x) | ~S(x, y)"


def test_nnf_double_negation():
    f = to_nnf(parse("~(~(exists x. R(x)))"))
    assert str(f) == "exists x. R(x)"


def test_nnf_flips_quantifiers():
    f = to_nnf(parse("~(forall x. R(x))"))
    assert str(f) == "exists x. ~R(x)"


def test_nnf_preserves_semantics():
    f = parse("~(forall x. (R(x) -> exists y. S(x,y)))")
    assert equivalent(f, to_nnf(f))


def test_dual_of_h0():
    h0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
    d = dual(h0)
    assert str(d) == "exists x. (exists y. (R(x) & S(x, y) & T(y)))"


def test_dual_is_involution():
    f = parse("exists x. (R(x) & (forall y. S(x,y)))")
    assert dual(dual(f)) == f


def test_standardize_apart_unique_binders():
    f = parse("(exists x. R(x)) & (exists x. T(x))")
    g = standardize_apart(f)
    binders = [n.var for n in g.walk() if hasattr(n, "var")]
    assert len(binders) == len(set(binders))
    assert equivalent(f, g)


def test_prenex_prefix_and_equivalence():
    f = parse("forall x. (R(x) -> exists y. S(x,y))")
    form = prenex(f)
    assert form.prefix_kinds() == ("forall", "exists")
    assert equivalent(f, form.to_formula())


def test_prenex_existential_block():
    f = parse("(exists x. R(x)) & (exists y. T(y))")
    form = prenex(f)
    assert set(form.prefix_kinds()) == {"exists"}
    assert equivalent(f, form.to_formula())


def test_polarity_map_mixed():
    f = parse("forall x. ((R(x) -> S(x)) & (S(x) -> T(x)))")
    polarity = polarity_map(f)
    assert polarity["R"] == {-1}
    assert polarity["S"] == {-1, +1}
    assert polarity["T"] == {+1}


def test_is_unate_paper_examples():
    # The paper's unate example: R occurs only negated.
    unate = parse("forall x. ((R(x) -> S(x)) & (R(x) -> T(x)))")
    assert is_unate(unate)
    # The paper's non-unate example: S occurs in both polarities.
    not_unate = parse("forall x. ((R(x) -> S(x)) & (S(x) -> T(x)))")
    assert not is_unate(not_unate)


def test_monotone_implies_unate():
    f = parse("exists x. exists y. (R(x) & S(x,y))")
    assert is_monotone(f)
    assert is_unate(f)


def test_unate_to_monotone_renames_negated_symbols():
    f = parse("forall x. forall y. (~S(x,y) | R(x))")
    g = unate_to_monotone(f)
    assert is_monotone(g)
    assert "S" + COMPLEMENT_SUFFIX in g.relation_symbols()
    assert "R" in g.relation_symbols()


def test_unate_to_monotone_rejects_non_unate():
    with pytest.raises(ValueError):
        unate_to_monotone(parse("forall x. ((R(x) -> S(x)) & (S(x) -> T(x)))"))


def test_nnf_constants():
    assert str(to_nnf(parse("~(true)"))) == "false"
    assert str(to_nnf(parse("~(false)"))) == "true"
