"""Unit tests for repro.core.tid (the TID model and possible worlds)."""

import math
import random

import pytest

from repro.core.tid import TupleIndependentDatabase
from repro.logic.parser import parse
from repro.logic.transform import COMPLEMENT_SUFFIX

from conftest import close


def test_add_fact_infers_schema():
    db = TupleIndependentDatabase()
    db.add_fact("S", ("a", "b"), 0.5)
    assert db.relations["S"].arity == 2


def test_add_relation_schema_conflict():
    db = TupleIndependentDatabase()
    db.add_relation("R", ("x",))
    with pytest.raises(ValueError):
        db.add_relation("R", ("x", "y"))


def test_probability_of_absent_fact_is_zero(small_db):
    assert small_db.probability_of_fact("R", ("zzz",)) == 0.0  # prodb-lint: exact
    assert small_db.probability_of_fact("Nope", ("a",)) == 0.0  # prodb-lint: exact


def test_domain_active_vs_explicit():
    db = TupleIndependentDatabase()
    db.add_fact("R", ("a",), 0.5)
    assert db.domain() == ("a",)
    db.explicit_domain = frozenset(("a", "b", "c"))
    assert db.domain() == ("a", "b", "c")


def test_possible_worlds_probabilities_sum_to_one(small_db):
    total = sum(p for _, p in small_db.possible_worlds())
    assert close(total, 1.0)


def test_possible_worlds_count(small_db):
    worlds = list(small_db.possible_worlds())
    assert len(worlds) == 2 ** small_db.fact_count()


def test_certain_tuples_in_every_world():
    db = TupleIndependentDatabase()
    db.add_fact("R", ("a",), 1.0)
    db.add_fact("R", ("b",), 0.5)
    for world, _ in db.possible_worlds():
        assert ("R", ("a",)) in world


def test_world_probability_matches_enumeration(small_db):
    for world, probability in small_db.possible_worlds():
        assert close(small_db.world_probability(world), probability)


def test_world_probability_impossible_tuple(small_db):
    assert small_db.world_probability({("R", ("zzz",))}) == 0.0  # prodb-lint: exact


def test_brute_force_probability_single_tuple(small_db):
    assert close(small_db.brute_force_probability(parse("R('a')")), 0.5)


def test_brute_force_probability_disjunction(small_db):
    got = small_db.brute_force_probability(parse("R('a') | R('b')"))
    assert close(got, 1 - 0.5 * 0.75)


def test_brute_force_tautology_and_contradiction(small_db):
    assert close(small_db.brute_force_probability(parse("R('a') | ~R('a')")), 1.0)
    assert close(small_db.brute_force_probability(parse("R('a') & ~R('a')")), 0.0)


def test_sample_world_distribution(small_db):
    rng = random.Random(3)
    hits = sum(
        1 for _ in range(4000) if ("R", ("a",)) in small_db.sample_world(rng)
    )
    assert abs(hits / 4000 - 0.5) < 0.05


def test_with_complements():
    db = TupleIndependentDatabase()
    db.add_fact("S", ("a", "b"), 0.3)
    db.add_fact("R", ("a",), 0.5)
    db.explicit_domain = frozenset(("a", "b"))
    sentence = parse("forall x. forall y. (~S(x,y) | R(x))")
    extended = db.with_complements(sentence)
    comp = extended.relations["S" + COMPLEMENT_SUFFIX]
    assert close(comp.probability(("a", "b")), 0.7)
    # absent tuples have complement probability 1
    assert close(comp.probability(("b", "a")), 1.0)
    assert len(comp) == 4


def test_map_probabilities(small_db):
    halved = small_db.map_probabilities(lambda p: p / 2)
    assert close(halved.probability_of_fact("R", ("a",)), 0.25)
    assert close(small_db.probability_of_fact("R", ("a",)), 0.5)


def test_is_symmetric_detection():
    db = TupleIndependentDatabase()
    for u in ("a", "b"):
        db.add_fact("R", (u,), 0.5)
        for v in ("a", "b"):
            db.add_fact("S", (u, v), 0.3)
    assert db.is_symmetric()
    db.add_fact("R", ("a",), 0.9)  # unequal probabilities now
    assert not db.is_symmetric()


def test_is_symmetric_requires_full_cross_product(small_db):
    assert not small_db.is_symmetric()


def test_world_count(small_db):
    assert small_db.world_count() == 2 ** small_db.fact_count()
    assert small_db.log_world_count() == pytest.approx(small_db.fact_count())


def test_from_facts_mapping():
    db = TupleIndependentDatabase.from_facts(
        {"R": {("a",): 0.5}, "S": {("a", "b"): 0.7}}, domain=("a", "b")
    )
    assert db.fact_count() == 2
    assert db.domain() == ("a", "b")


def test_from_facts_triples():
    db = TupleIndependentDatabase.from_facts([("R", ("a",), 0.5)])
    assert db.probability_of_fact("R", ("a",)) == 0.5  # prodb-lint: exact


def test_copy_is_deep(small_db):
    clone = small_db.copy()
    clone.add_fact("R", ("zzz",), 0.5)
    assert small_db.probability_of_fact("R", ("zzz",)) == 0.0  # prodb-lint: exact
