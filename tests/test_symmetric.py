"""Unit tests for repro.symmetric: H0 closed form, Scott NF, FO² WFOMC."""

import pytest

from repro.logic.parser import parse
from repro.symmetric.evaluate import symmetric_probability
from repro.symmetric.h0 import h0_symmetric_probability
from repro.symmetric.scott import (
    NotFO2Error,
    check_fo2,
    direct_normal_form,
    scott_normal_form,
)
from repro.symmetric.symmetric_db import SymmetricDatabase
from repro.symmetric.wfomc import WFOMCProblem, wfomc

from conftest import close

H0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")


def h0_db(n, p_r=0.3, p_s=0.6, p_t=0.4):
    db = SymmetricDatabase(n)
    db.add_relation("R", 1, p_r)
    db.add_relation("S", 2, p_s)
    db.add_relation("T", 1, p_t)
    return db


# -- SymmetricDatabase -----------------------------------------------------------


def test_symmetric_db_materializes_full_cross_product():
    db = h0_db(2)
    tid = db.to_tid()
    assert len(tid.relations["S"]) == 4
    assert tid.is_symmetric()


def test_symmetric_db_validation():
    db = SymmetricDatabase(2)
    with pytest.raises(ValueError):
        db.add_relation("R", 1, 1.5)
    with pytest.raises(ValueError):
        db.add_relation("R", -1, 0.5)


def test_tuple_count():
    assert h0_db(3).tuple_count() == 3 + 9 + 3


# -- H0 closed form -----------------------------------------------------------------


@pytest.mark.parametrize("n", [0, 1, 2])
def test_h0_closed_form_matches_brute_force(n):
    db = h0_db(n)
    want = db.to_tid().brute_force_probability(H0) if n else 1.0
    got = h0_symmetric_probability(n, 0.3, 0.6, 0.4)
    assert close(got, want)


def test_h0_closed_form_extremes():
    assert close(h0_symmetric_probability(3, 1.0, 0.0, 0.0), 1.0)
    assert close(h0_symmetric_probability(2, 0.0, 1.0, 0.0), 1.0)
    # p_S = 0, p_R = p_T = 0.5: need R(i) or T(j) for every pair
    got = h0_symmetric_probability(1, 0.5, 0.0, 0.5)
    assert close(got, 0.75)


def test_h0_closed_form_polynomial_scale():
    # must run fast and produce a finite value at n = 200
    value = h0_symmetric_probability(200, 0.3, 0.6, 0.4)
    assert 0.0 <= value <= 1.0


# -- Scott normal form -----------------------------------------------------------------


def test_check_fo2_accepts_two_variables():
    check_fo2(H0)


def test_check_fo2_rejects_three_variables():
    with pytest.raises(NotFO2Error):
        check_fo2(parse("exists x. exists y. exists z. (S(x,y) & S(y,z))"))


def test_check_fo2_rejects_ternary_predicate():
    with pytest.raises(NotFO2Error):
        check_fo2(parse("exists x. exists y. W(x,y,x)"))


def test_direct_normal_form_forall_forall():
    result = direct_normal_form(H0)
    assert result is not None
    assert not result.auxiliary_weights


def test_direct_normal_form_forall_exists():
    result = direct_normal_form(parse("forall x. exists y. S(x,y)"))
    assert result is not None
    assert list(result.auxiliary_weights.values()) == [(1.0, -1.0)]


def test_direct_normal_form_rejects_nested():
    result = direct_normal_form(
        parse("forall x. (R(x) -> exists y. S(x,y))")
    )
    assert result is None


def test_scott_normal_form_produces_auxiliaries():
    result = scott_normal_form(parse("forall x. (R(x) -> exists y. S(x,y))"))
    assert result.auxiliary_weights
    kinds = {w for w in result.auxiliary_weights.values()}
    assert (1.0, -1.0) in kinds  # at least one Skolem predicate


# -- WFOMC ---------------------------------------------------------------------------


def test_wfomc_trivial_matrix():
    problem = WFOMCProblem(parse("R(x) | ~R(x)"), {"R": (0.5, 0.5)})
    assert close(wfomc(problem, 3), 1.0)


def test_wfomc_single_unary():
    # ∀x R(x): probability p^n
    problem = WFOMCProblem(parse("R(x)"), {"R": (0.3, 0.7)})
    assert close(wfomc(problem, 4), 0.3 ** 4)


def test_wfomc_matches_brute_force_h0():
    for n in (1, 2):
        db = h0_db(n)
        got = symmetric_probability(H0, db)
        want = db.to_tid().brute_force_probability(H0)
        assert close(got, want)


def test_wfomc_matches_closed_form_larger_n():
    for n in (3, 5, 8):
        db = h0_db(n)
        got = symmetric_probability(H0, db)
        want = h0_symmetric_probability(n, 0.3, 0.6, 0.4)
        assert close(got, want, 1e-9)


@pytest.mark.parametrize(
    "text",
    [
        "forall x. exists y. S(x,y)",
        "exists x. forall y. S(x,y)",
        "exists x. exists y. (S(x,y) & R(x))",
        "forall x. (R(x) -> exists y. (S(x,y) & R(y)))",
        "exists x. exists y. (S(x,y) & ~R(x))",
        "forall x. forall y. (S(x,y) -> S(y,x))",
        "exists x. R(x)",
        "forall x. (R(x) | ~S(x,x))",
    ],
)
@pytest.mark.parametrize("n", [1, 2])
def test_symmetric_probability_matches_brute_force(text, n):
    db = SymmetricDatabase(n)
    db.add_relation("R", 1, 0.7)
    db.add_relation("S", 2, 0.45)
    sentence = parse(text)
    got = symmetric_probability(sentence, db)
    want = db.to_tid().brute_force_probability(sentence)
    assert close(got, want)


def test_symmetric_probability_polynomial_in_n():
    # Theorem 8.1: FO² symmetric PQE in PTIME — n = 40 must be quick.
    db = SymmetricDatabase(40)
    db.add_relation("R", 1, 0.3)
    db.add_relation("S", 2, 0.6)
    db.add_relation("T", 1, 0.4)
    value = symmetric_probability(H0, db)
    assert 0.0 <= value <= 1.0


def test_symmetric_transitivity_style_sentence():
    # symmetric relation constraint on a 2-element domain
    db = SymmetricDatabase(2)
    db.add_relation("S", 2, 0.5)
    sentence = parse("forall x. forall y. (S(x,y) -> S(y,x))")
    got = symmetric_probability(sentence, db)
    # S(a,b) ⇔ S(b,a) must agree: diagonal free (2 tuples), off-diagonal
    # pair must match: (0.25 + 0.25) for the pair
    want = db.to_tid().brute_force_probability(sentence)
    assert close(got, want)


def test_wfomc_problem_rejects_bad_variables():
    with pytest.raises(ValueError):
        WFOMCProblem(parse("S(x,z)"), {"S": (0.5, 0.5)})


def test_wfomc_problem_requires_weights():
    with pytest.raises(ValueError):
        WFOMCProblem(parse("R(x)"), {})
