"""Integration: every exact engine must agree on every query and database.

This is the library's master invariant — the possible-world oracle, lineage
+ brute-force WMC, DPLL, OBDD compilation, the decision-DNNF trace, safe
plans (when applicable) and lifted inference (when applicable) all compute
the same number.
"""

import pytest

from repro.kc.obdd import compile_obdd
from repro.lifted.engine import lifted_probability
from repro.lifted.errors import NonLiftableError
from repro.lineage.build import lineage_of_cq, lineage_of_sentence, lineage_of_ucq
from repro.logic.cq import parse_cq, parse_ucq
from repro.logic.parser import parse
from repro.plans.plan import execute_boolean, project_boolean
from repro.plans.safe_plan import try_safe_plan
from repro.wmc.brute import brute_force_wmc
from repro.wmc.dpll import DPLLCounter, compile_decision_dnnf
from repro.workloads.generators import random_tid

from conftest import close

CQ_TEXTS = [
    "R(x)",
    "S(x,y)",
    "R(x), S(x,y)",
    "R(x), T(y)",
    "R(x), S(x,y), T(y)",
    "S(x,y), T(y)",
]

UCQ_TEXTS = [
    "R(x) | T(y)",
    "R(x), S(x,y) | T(u), S(u,v)",
    "R(x), S(x,y) | S(u,v), T(v)",
]

SENTENCES = [
    "forall x. forall y. (R(x) | S(x,y) | T(y))",
    "forall x. forall y. (~S(x,y) | R(x))",
    "exists x. exists y. (R(x) & S(x,y) & T(y))",
]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("text", CQ_TEXTS)
def test_cq_engines_agree(seed, text):
    db = random_tid(seed, 3)
    query = parse_cq(text)
    reference = db.brute_force_probability(query.to_formula())

    lineage = lineage_of_cq(query, db)
    probabilities = lineage.probabilities()

    assert close(brute_force_wmc(lineage.expr, probabilities), reference)
    assert close(DPLLCounter().run(lineage.expr, probabilities).probability, reference)

    manager, root = compile_obdd(lineage.expr)
    assert close(manager.wmc(root, probabilities), reference)

    trace = compile_decision_dnnf(lineage.expr, probabilities)
    assert close(trace.probability, reference)
    assert trace.circuit.check_decision_dnnf()
    assert close(trace.circuit.wmc(probabilities), reference)

    plan = try_safe_plan(query)
    if plan is not None:
        assert close(execute_boolean(project_boolean(plan), db), reference)

    try:
        assert close(lifted_probability(query, db), reference)
    except NonLiftableError:
        # allowed only for genuinely unsafe queries
        assert not query.is_hierarchical() or query.has_self_joins()


@pytest.mark.parametrize("seed", [3, 4])
@pytest.mark.parametrize("text", UCQ_TEXTS)
def test_ucq_engines_agree(seed, text):
    db = random_tid(seed, 3)
    query = parse_ucq(text)
    reference = db.brute_force_probability(query.to_formula())

    lineage = lineage_of_ucq(query, db)
    probabilities = lineage.probabilities()
    assert close(brute_force_wmc(lineage.expr, probabilities), reference)
    assert close(DPLLCounter().run(lineage.expr, probabilities).probability, reference)

    try:
        assert close(lifted_probability(query, db), reference)
    except NonLiftableError:
        pass


@pytest.mark.parametrize("seed", [5, 6])
@pytest.mark.parametrize("text", SENTENCES)
def test_sentence_engines_agree(seed, text):
    db = random_tid(seed, 2)
    sentence = parse(text)
    reference = db.brute_force_probability(sentence)

    lineage = lineage_of_sentence(sentence, db)
    probabilities = lineage.probabilities()
    assert close(brute_force_wmc(lineage.expr, probabilities), reference)
    assert close(DPLLCounter().run(lineage.expr, probabilities).probability, reference)

    try:
        assert close(lifted_probability(sentence, db), reference)
    except NonLiftableError:
        pass


def test_duality_identity():
    """Sec. 2: PQE(Q) and PQE(dual(Q)) are interreducible.

    Concretely: p_D(Q) = 1 − p_D̄(dual over complements); we check the
    instance H0 vs its dual CQ with complemented relations.
    """
    db = random_tid(8, 2)
    h0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
    p_h0 = db.brute_force_probability(h0)
    negated = parse("exists x. exists y. (~R(x) & ~S(x,y) & ~T(y))")
    assert close(p_h0, 1.0 - db.brute_force_probability(negated))


def test_conditioning_identity():
    """p(Q | Γ)·p(Γ) = p(Q ∧ Γ) across engines."""
    db = random_tid(9, 2)
    q = parse("exists x. R(x)")
    gamma = parse("forall x. forall y. (~S(x,y) | R(x))")
    joint = db.brute_force_probability(parse(
        "(exists x. R(x)) & (forall x. forall y. (~S(x,y) | R(x)))"
    ))
    lineage_joint = lineage_of_sentence(
        ProbQ := parse(
            "(exists x. R(x)) & (forall x. forall y. (~S(x,y) | R(x)))"
        ),
        db,
    )
    assert close(
        DPLLCounter().run(lineage_joint.expr, lineage_joint.probabilities()).probability,
        joint,
    )
