"""Property-based tests (hypothesis) for the hash-consing Boolean kernel.

Three invariants:

* interning is canonical — structurally equal formulas are the same object
  with the same node id;
* the interned DPLL path agrees **bit-for-bit** with a faithful replica of
  the pre-kernel path (structural-tuple cache keys, rebuild-everything
  conditioning, walk-based variable sets) — the kernel changes how results
  are found, never which results are found;
* ``condition``/``cofactors`` memoization never changes results: repeated
  calls return the identical object, and that object matches semantic
  restriction on every assignment.
"""

import itertools

from hypothesis import given, settings

from repro.booleans.expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BFalse,
    BNot,
    BOr,
    BTrue,
    BVar,
    bnot,
    evaluate,
)
from repro.booleans.ops import (
    cofactors,
    condition,
    independent_factors,
    most_frequent_variable,
)
from repro.wmc.dpll import dpll_probability

from test_property_based import VARS, assignments, boolean_exprs, probability_maps


# -- a faithful replica of the pre-kernel primitives --------------------------
#
# These reproduce the seed implementations verbatim in behaviour: conditioning
# rebuilds every subtree through the smart constructors with a memo keyed by
# nested structural tuples, variable sets are recomputed by walking, and the
# DPLL cache hashes full structural keys. Because the smart constructors are
# shared, both paths canonicalize identically, so probabilities must agree to
# full float precision.


def legacy_variables(expr: BExpr) -> frozenset:
    out = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            out.add(node.index)
        else:
            stack.extend(node.children())
    return frozenset(out)


def legacy_condition(expr: BExpr, assignment: dict) -> BExpr:
    memo: dict[tuple, BExpr] = {}

    def walk(node: BExpr) -> BExpr:
        key = node.key()
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(node, (BTrue, BFalse)):
            result: BExpr = node
        elif isinstance(node, BVar):
            if node.index in assignment:
                result = B_TRUE if assignment[node.index] else B_FALSE
            else:
                result = node
        elif isinstance(node, BNot):
            result = bnot(walk(node.sub))
        elif isinstance(node, BAnd):
            result = BAnd.of(walk(p) for p in node.parts)
        else:
            result = BOr.of(walk(p) for p in node.parts)
        memo[key] = result
        return result

    return walk(expr)


def legacy_independent_factors(expr: BExpr) -> list:
    if not isinstance(expr, (BAnd, BOr)):
        return [expr]
    parts = expr.parts
    part_vars = [legacy_variables(p) for p in parts]
    n = len(parts)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    index_of_var: dict[int, int] = {}
    for i, pv in enumerate(part_vars):
        for v in pv:
            j = index_of_var.get(v)
            if j is None:
                index_of_var[v] = i
            else:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj

    groups: dict[int, list] = {}
    for i, part in enumerate(parts):
        groups.setdefault(find(i), []).append(part)
    if len(groups) == 1:
        return [expr]
    builder = BAnd.of if isinstance(expr, BAnd) else BOr.of
    return [builder(group) for group in groups.values()]


def legacy_most_frequent_variable(expr: BExpr) -> int:
    counts: dict[int, int] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            counts[node.index] = counts.get(node.index, 0) + 1
        else:
            stack.extend(node.children())
    return max(counts, key=lambda v: (counts[v], -v))


def legacy_dpll(expr: BExpr, probabilities: dict) -> float:
    """The seed DPLL counter: tuple-key cache, rebuild-everything cofactors."""
    cache: dict[tuple, float] = {}

    def count(formula: BExpr) -> float:
        if isinstance(formula, BTrue):
            return 1.0
        if isinstance(formula, BFalse):
            return 0.0
        key = formula.key()
        cached = cache.get(key)
        if cached is not None:
            return cached
        factors = (
            legacy_independent_factors(formula)
            if isinstance(formula, BAnd)
            else [formula]
        )
        if len(factors) > 1:
            probability = 1.0
            for factor in factors:
                probability *= count(factor)
        else:
            var = legacy_most_frequent_variable(formula)
            low = legacy_condition(formula, {var: False})
            high = legacy_condition(formula, {var: True})
            p = probabilities[var]
            probability = (1.0 - p) * count(low) + p * count(high)
        cache[key] = probability
        return probability

    return count(expr)


def structural_clone(expr: BExpr) -> BExpr:
    """Rebuild the expression bottom-up through the public constructors."""
    if isinstance(expr, (BTrue, BFalse)):
        return expr
    if isinstance(expr, BVar):
        # Deliberately re-invokes the raw constructor to exercise interning.
        return BVar(expr.index)  # prodb-lint: allow-construct
    if isinstance(expr, BNot):
        return bnot(structural_clone(expr.sub))
    parts = [structural_clone(p) for p in reversed(expr.parts)]
    return BAnd.of(parts) if isinstance(expr, BAnd) else BOr.of(parts)


# -- properties ---------------------------------------------------------------


@given(boolean_exprs())
@settings(max_examples=150, deadline=None)
def test_interning_is_canonical(expr):
    clone = structural_clone(expr)
    assert clone is expr
    assert clone.nid == expr.nid
    assert hash(clone) == hash(expr)


@given(boolean_exprs())
@settings(max_examples=150, deadline=None)
def test_cached_variable_sets_match_walk(expr):
    assert expr.variables() == legacy_variables(expr)


@given(boolean_exprs(), probability_maps())
@settings(max_examples=80, deadline=None)
def test_dpll_agrees_bitwise_with_legacy_path(expr, probabilities):
    # identical branching, identical canonicalization ⇒ identical arithmetic
    assert dpll_probability(expr, probabilities) == legacy_dpll(expr, probabilities)


@given(boolean_exprs(), assignments())
@settings(max_examples=100, deadline=None)
def test_condition_matches_legacy_and_memoization_is_stable(expr, assignment):
    partial = {v: b for v, b in assignment.items() if v % 2 == 0}
    first = condition(expr, partial)
    assert first is condition(expr, partial)  # memoized, same object
    assert first is legacy_condition(expr, partial)  # same canonical node
    # semantic restriction agrees on every completion
    free = sorted(expr.variables() - set(partial))
    for bits in itertools.product((False, True), repeat=len(free)):
        total = dict(partial)
        total.update(zip(free, bits))
        assert evaluate(first, total) == evaluate(expr, total)


@given(boolean_exprs())
@settings(max_examples=100, deadline=None)
def test_cofactors_memoized_and_identical(expr):
    variables = sorted(expr.variables())
    if not variables:
        return
    var = variables[0]
    lo1, hi1 = cofactors(expr, var)
    lo2, hi2 = cofactors(expr, var)
    assert lo1 is lo2 and hi1 is hi2
    assert lo1 is legacy_condition(expr, {var: False})
    assert hi1 is legacy_condition(expr, {var: True})


@given(boolean_exprs())
@settings(max_examples=100, deadline=None)
def test_independent_factors_match_legacy(expr):
    got = independent_factors(expr)
    expected = legacy_independent_factors(expr)
    assert len(got) == len(expected)
    assert all(a is b for a, b in zip(got, expected))
    if expr.variables():
        assert most_frequent_variable(expr) == legacy_most_frequent_variable(expr)
