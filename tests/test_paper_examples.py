"""End-to-end reproductions of the paper's worked examples.

Each test pins one concrete formula, number, or identity from the paper
text; EXPERIMENTS.md cross-references these as the per-experiment evidence.
"""

import random

import pytest

from repro.core.pdb import Method, ProbabilisticDatabase
from repro.lifted.engine import LiftedEngine
from repro.lifted.errors import NonLiftableError
from repro.lifted.safety import Complexity, decide_safety
from repro.logic.cq import parse_cq, parse_ucq
from repro.logic.parser import parse
from repro.logic.terms import Var
from repro.plans.plan import JoinNode, ProjectNode, ScanNode, execute_boolean, project_boolean
from repro.workloads.generators import figure1_database

from conftest import close


@pytest.fixture
def fig1():
    rng = random.Random(2020)
    p = [round(rng.uniform(0.1, 0.9), 3) for _ in range(3)]
    q = [round(rng.uniform(0.1, 0.9), 3) for _ in range(6)]
    return figure1_database(p, q), p, q


def test_example_21_closed_form(fig1):
    """Example 2.1: p(Q) for the inclusion constraint on Figure 1's TID."""
    db, p, q = fig1
    sentence = parse("forall x. forall y. (~S(x,y) | R(x))")
    expected = (
        (p[0] + (1 - p[0]) * (1 - q[0]) * (1 - q[1]))
        * (p[1] + (1 - p[1]) * (1 - q[2]) * (1 - q[3]) * (1 - q[4]))
        * (1 - q[5])
    )
    assert close(db.brute_force_probability(sentence), expected)


def test_example_21_lifted_matches_closed_form(fig1):
    db, p, q = fig1
    sentence = parse("forall x. forall y. (~S(x,y) | R(x))")
    expected = db.brute_force_probability(sentence)
    from repro.lifted.engine import lifted_probability

    assert close(lifted_probability(sentence, db), expected)


def test_figure1_world_count(fig1):
    """Fig. 1: 9 tuples ⇒ 2⁹ possible worlds."""
    db, _, _ = fig1
    assert db.fact_count() == 9
    assert db.world_count() == 2 ** 9


def test_theorem_22_h0_not_liftable(fig1):
    """Theorem 2.2: H0 is #P-hard — the complete rule set must fail."""
    db, _, _ = fig1
    h0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
    from repro.lifted.engine import lifted_probability

    with pytest.raises(NonLiftableError):
        lifted_probability(h0, db)


def test_dual_query_equivalence(fig1):
    """Sec. 2: a query and its dual have interreducible PQE.

    p_D(∀∀(R ∨ S ∨ T)) = 1 − p_D̄(∃∃(R̄ ∧ S̄ ∧ T̄)) where D̄ complements
    the probabilities over all possible tuples.
    """
    db, _, _ = fig1
    db.add_fact("T", ("b1",), 0.35)
    h0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
    direct = db.brute_force_probability(h0)
    negation = parse("exists x. exists y. (~R(x) & ~S(x,y) & ~T(y))")
    assert close(direct, 1.0 - db.brute_force_probability(negation))


def test_theorem_43_dichotomy_classifications():
    """Theorem 4.3 plus the self-join caveat of Sec. 4."""
    assert decide_safety(parse_cq("R(x), S(x,y)")).complexity is Complexity.PTIME
    assert (
        decide_safety(parse_cq("R(x), S(x,y), T(y)")).complexity
        is Complexity.SHARP_P_HARD
    )
    # hierarchical but with self-joins — still hard
    assert parse_cq("R(x,y), R(y,z)").is_hierarchical()
    assert (
        decide_safety(parse_cq("R(x,y), R(y,z)")).complexity
        is Complexity.SHARP_P_HARD
    )


def test_section5_qj_inclusion_exclusion(fig1):
    """Sec. 5: Q_J is computed with the inclusion/exclusion rule."""
    db, _, _ = fig1
    db.add_fact("T", ("a2",), 0.45)
    qj = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    engine = LiftedEngine(db, record_trace=True)
    got = engine.probability(qj)
    want = db.brute_force_probability(
        parse(
            "(exists x. exists y. (R(x) & S(x,y))) | "
            "(exists u. exists v. (T(u) & S(u,v)))"
        )
    )
    assert close(got, want)
    assert any(step.rule == "inclusion-exclusion" for step in engine.trace)


def test_footnote9_plan_formulas(fig1):
    """Sec. 6 footnote 9: the exact Plan₁ / Plan₂ output formulas."""
    db, p, q = fig1
    cq = parse_cq("R(x), S(x,y)")
    r_atom, s_atom = cq.atoms
    plan1 = project_boolean(JoinNode(ScanNode(r_atom), ScanNode(s_atom)))
    plan2 = project_boolean(
        JoinNode(ScanNode(r_atom), ProjectNode(ScanNode(s_atom), (Var("x"),)))
    )
    expected1 = 1.0
    for (i, j) in [(0, 0), (0, 1), (1, 2), (1, 3), (1, 4)]:
        expected1 *= 1 - p[i] * q[j]
    expected1 = 1 - expected1
    expected2 = 1 - (
        1 - p[0] * (1 - (1 - q[0]) * (1 - q[1]))
    ) * (1 - p[1] * (1 - (1 - q[2]) * (1 - q[3]) * (1 - q[4])))
    assert close(execute_boolean(plan1, db), expected1)
    assert close(execute_boolean(plan2, db), expected2)
    # only Plan₂ is safe
    exact = db.brute_force_probability(cq.to_formula())
    assert close(expected2, exact)
    assert expected1 >= exact - 1e-12


def test_theorem_82c_gamma_acyclic_symmetric_ptime():
    """Theorem 8.2(c): γ-acyclic self-join-free CQs are PTIME on symmetric DBs.

    H0's CQ is the showcase: #P-hard in general (Thm 2.2), γ-acyclic, and
    indeed evaluated in polynomial time on symmetric databases (E10).
    """
    from repro.logic.hypergraph import query_is_gamma_acyclic
    from repro.symmetric.evaluate import symmetric_probability
    from repro.symmetric.symmetric_db import SymmetricDatabase

    h0_cq = parse_cq("R(x), S(x,y), T(y)")
    assert query_is_gamma_acyclic(h0_cq)
    assert decide_safety(h0_cq).complexity is Complexity.SHARP_P_HARD
    db = SymmetricDatabase(2)
    db.add_relation("R", 1, 0.3)
    db.add_relation("S", 2, 0.6)
    db.add_relation("T", 1, 0.4)
    sentence = parse("exists x. exists y. (R(x) & S(x,y) & T(y))")
    fast = symmetric_probability(sentence, db)
    slow = db.to_tid().brute_force_probability(sentence)
    assert close(fast, slow)


def test_trakhtenbrot_gadget_structure():
    """Theorem 4.4's reduction shape: Γ ∧ H0 over disjoint vocabularies.

    We cannot test undecidability, but the reduction's engine-visible
    behaviour is: conjoining H0 with a satisfiable sentence over fresh
    symbols keeps PQE hard, while an unsatisfiable Γ makes Q ≡ false.
    """
    db = ProbabilisticDatabase()
    db.add_fact("R", ("a",), 0.5)
    db.add_fact("S", ("a", "a"), 0.5)
    db.add_fact("T", ("a",), 0.5)
    db.add_fact("U", ("a",), 0.5)
    unsat_gamma_and_h0 = parse(
        "(exists z. (U(z) & ~U(z))) & "
        "(forall x. forall y. (R(x) | S(x,y) | T(y)))"
    )
    assert close(db.probability(unsat_gamma_and_h0, Method.BRUTE_FORCE).probability, 0.0)
    sat_gamma_and_h0 = parse(
        "(exists z. U(z)) & (forall x. forall y. (R(x) | S(x,y) | T(y)))"
    )
    got = db.probability(sat_gamma_and_h0, Method.BRUTE_FORCE).probability
    h0_alone = db.probability(
        parse("forall x. forall y. (R(x) | S(x,y) | T(y))"), Method.BRUTE_FORCE
    ).probability
    assert close(got, 0.5 * h0_alone)
