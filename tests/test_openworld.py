"""Unit tests for repro.openworld (open-world probabilistic databases)."""

import pytest

from repro.core.tid import TupleIndependentDatabase
from repro.logic.cq import parse_cq
from repro.logic.parser import parse
from repro.openworld.owdb import OpenWorldDatabase, ProbabilityInterval

from conftest import close


@pytest.fixture
def owdb():
    tid = TupleIndependentDatabase()
    tid.add_fact("R", ("a",), 0.5)
    tid.add_fact("S", ("a", "b"), 0.7)
    tid.explicit_domain = frozenset(("a", "b"))
    return OpenWorldDatabase(tid, threshold=0.2)


def test_interval_validation():
    with pytest.raises(ValueError):
        ProbabilityInterval(0.8, 0.2)
    interval = ProbabilityInterval(0.2, 0.8)
    assert 0.5 in interval
    assert 0.9 not in interval
    assert close(interval.width, 0.6)


def test_threshold_validation():
    with pytest.raises(ValueError):
        OpenWorldDatabase(TupleIndependentDatabase(), threshold=1.5)


def test_schema_inferred(owdb):
    assert owdb.schema == {"R": 1, "S": 2}


def test_unknown_tuple_count(owdb):
    # domain size 2: R misses 1 tuple, S misses 3
    assert owdb.unknown_tuple_count() == 1 + 3


def test_completion_fills_unlisted(owdb):
    completed = owdb.completion()
    assert close(completed.probability_of_fact("R", ("b",)), 0.2)
    assert close(completed.probability_of_fact("S", ("b", "a")), 0.2)
    # listed tuples keep their probability
    assert close(completed.probability_of_fact("R", ("a",)), 0.5)


def test_completion_partial(owdb):
    completed = owdb.completion(["R"])
    assert close(completed.probability_of_fact("R", ("b",)), 0.2)
    assert completed.probability_of_fact("S", ("b", "a")) == 0.0  # prodb-lint: exact


def test_monotone_interval_brackets_truth(owdb):
    query = parse_cq("R(x), S(x,y)")
    interval = owdb.probability(query)
    closed_world = owdb.tid.brute_force_probability(query.to_formula())
    completed_world = owdb.completion().brute_force_probability(
        query.to_formula()
    )
    assert close(interval.lower, closed_world)
    assert close(interval.upper, completed_world)
    assert interval.lower <= interval.upper


def test_interval_tightens_with_threshold():
    tid = TupleIndependentDatabase()
    tid.add_fact("R", ("a",), 0.5)
    tid.add_fact("S", ("a", "b"), 0.7)
    tid.explicit_domain = frozenset(("a", "b"))
    wide = OpenWorldDatabase(tid, threshold=0.5).probability(parse_cq("R(x), S(x,y)"))
    narrow = OpenWorldDatabase(tid, threshold=0.05).probability(
        parse_cq("R(x), S(x,y)")
    )
    assert narrow.width < wide.width


def test_zero_threshold_collapses_to_closed_world(owdb):
    owdb_zero = OpenWorldDatabase(owdb.tid, threshold=0.0)
    interval = owdb_zero.probability(parse_cq("R(x), S(x,y)"))
    assert close(interval.width, 0.0)


def test_unate_sentence_interval(owdb):
    sentence = parse("forall x. forall y. (S(x,y) -> R(x))")
    interval = owdb.probability(sentence)
    truth_closed = owdb.tid.brute_force_probability(sentence)
    assert truth_closed in interval


def test_non_unate_rejected(owdb):
    owdb.tid.add_fact("T", ("a",), 0.5)
    sentence = parse("forall x. ((R(x) -> T(x)) & (T(x) -> R(x)))")
    with pytest.raises(ValueError):
        owdb.probability(sentence)


def test_negative_polarity_bounds():
    tid = TupleIndependentDatabase()
    tid.add_fact("R", ("a",), 0.5)
    tid.add_fact("S", ("a", "a"), 0.7)
    tid.explicit_domain = frozenset(("a", "b"))
    owdb = OpenWorldDatabase(tid, threshold=0.3)
    # S occurs negated: the lower bound must complete S (more S ⇒ lower p)
    sentence = parse("forall x. forall y. (S(x,y) -> R(x))")
    interval = owdb.probability(sentence)
    closed = tid.brute_force_probability(sentence)
    completed_s = owdb.completion(["S"]).brute_force_probability(sentence)
    completed_r = owdb.completion(["R"]).brute_force_probability(sentence)
    assert close(interval.lower, min(completed_s, completed_r, closed, interval.lower))
    assert interval.lower <= closed <= interval.upper
