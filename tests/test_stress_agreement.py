"""Stress agreement: lifted vs grounded on larger randomized instances.

The possible-worlds oracle caps out around 20 tuples; these tests compare
the lifted engine against exact DPLL (itself validated against the oracle
elsewhere) on databases an order of magnitude larger, and across randomized
query families, to shake out rule-interaction bugs.
"""

import random

import pytest

from repro.lifted.engine import LiftedEngine
from repro.lifted.errors import NonLiftableError
from repro.lifted.safety import decide_safety
from repro.lineage.build import lineage_of_ucq
from repro.logic.cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    parse_cq,
    parse_ucq,
)
from repro.wmc.dpll import DPLLCounter
from repro.workloads.generators import random_tid

SCHEMA = (("R", 1), ("S", 2), ("T", 1), ("U", 1), ("W", 2))

LIFTABLE_QUERIES = [
    "R(x), S(x,y)",
    "R(x), S(x,y), U(x)",
    "R(x), S(x,y), W(x,y)",
    "R(x), T(y)",
    "R(x), S(x,y) | T(u), S(u,v)",
    "R(x), S(x,y) | U(u), S(u,v)",
    "R(x) | S(x,y)",
    "R(x), S(x,y) | T(u), S(u,v) | U(w)",
    "S(x,y), W(x,y)",
]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("text", LIFTABLE_QUERIES)
def test_lifted_matches_dpll_on_medium_instances(seed, text):
    db = random_tid(seed, 5, schema=SCHEMA, density=0.6)
    query = parse_ucq(text) if "|" in text else parse_cq(text)
    lifted = LiftedEngine(db).probability(query)
    if isinstance(query, ConjunctiveQuery):
        query = UnionOfConjunctiveQueries((query,))
    lineage = lineage_of_ucq(query, db)
    grounded = DPLLCounter().run(lineage.expr, lineage.probabilities()).probability
    assert abs(lifted - grounded) < 1e-8, text


@pytest.mark.parametrize("seed", [5, 6])
def test_qw_agreement_medium(seed):
    db = random_tid(seed, 3, schema=(("R", 1), ("S1", 2), ("S2", 2), ("S3", 2)))
    h0 = parse_cq("R(x), S1(x,y)")
    h1 = parse_cq("S1(x,y), S2(x,y)")
    h2 = parse_cq("S2(x,y), S3(x,y)")
    query = UnionOfConjunctiveQueries((h0, h1.conjoin(h2)))
    lifted = LiftedEngine(db).probability(query)
    lineage = lineage_of_ucq(query.minimize(), db)
    grounded = DPLLCounter().run(lineage.expr, lineage.probabilities()).probability
    assert abs(lifted - grounded) < 1e-8


def random_sjf_cq(rng: random.Random) -> ConjunctiveQuery:
    """A random self-join-free CQ over the test schema."""
    from repro.logic.formulas import Atom
    from repro.logic.terms import Var

    variables = [Var(name) for name in ("x", "y", "z")]
    predicates = rng.sample(SCHEMA, rng.randint(1, 3))
    atoms = []
    for name, arity in predicates:
        args = tuple(rng.choice(variables) for _ in range(arity))
        atoms.append(Atom(name, args))
    return ConjunctiveQuery(tuple(atoms))


def test_random_cqs_lifted_agreement_or_documented_hardness():
    rng = random.Random(99)
    db = random_tid(7, 4, schema=SCHEMA, density=0.5)
    lifted_count = 0
    hard_count = 0
    for _ in range(40):
        query = random_sjf_cq(rng)
        try:
            lifted = LiftedEngine(db).probability(query)
        except NonLiftableError:
            hard_count += 1
            # the safety decider must agree the query is hard
            assert not decide_safety(query).is_safe
            continue
        lifted_count += 1
        lineage = lineage_of_ucq(
            UnionOfConjunctiveQueries((query,)), db
        )
        grounded = DPLLCounter().run(
            lineage.expr, lineage.probabilities()
        ).probability
        assert abs(lifted - grounded) < 1e-8, str(query)
    # the random family must exercise both sides of the dichotomy
    assert lifted_count > 0
    assert hard_count >= 0


def test_random_ucqs_agreement():
    rng = random.Random(123)
    db = random_tid(8, 3, schema=SCHEMA, density=0.6)
    checked = 0
    for _ in range(25):
        disjuncts = tuple(random_sjf_cq(rng) for _ in range(rng.randint(2, 3)))
        query = UnionOfConjunctiveQueries(disjuncts)
        try:
            lifted = LiftedEngine(db).probability(query)
        except NonLiftableError:
            continue
        lineage = lineage_of_ucq(query, db)
        grounded = DPLLCounter().run(
            lineage.expr, lineage.probabilities()
        ).probability
        assert abs(lifted - grounded) < 1e-8, str(query)
        checked += 1
    assert checked > 3


def test_engine_deterministic_across_runs():
    db = random_tid(11, 4, schema=SCHEMA)
    query = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    values = {LiftedEngine(db).probability(query) for _ in range(3)}
    assert len(values) == 1
