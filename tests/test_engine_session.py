"""Cache correctness for the engine session layer.

Covers the contract of `repro.engine`: warm answers bit-identical to cold,
invalidation through content fingerprints when the TID mutates, LRU
eviction bounds, memoized lineages/circuits, and uniform instrumentation
across routes.
"""

import pytest

from repro import EngineSession, Method, ProbabilisticDatabase
from repro.core.tid import TupleIndependentDatabase
from repro.engine.cache import (
    LRUCache,
    expr_fingerprint,
    lineage_fingerprint,
    query_fingerprint,
)
from repro.workloads.generators import full_tid, random_tid

from conftest import close

QUERY_FAMILY = (
    "R(x)",
    "R(x), S(x,y)",
    "S(x,y), T(y)",
    "R(x), S(x,y), T(y)",
    "R(x), S(x,y) | T(u), S(u,v)",
    "forall x. forall y. (S(x,y) -> R(x))",
)


@pytest.fixture
def session(small_db) -> EngineSession:
    return EngineSession(small_db, seed=11)


# -- LRU cache unit behaviour -------------------------------------------------


def test_lru_eviction_bound():
    cache = LRUCache(maxsize=3)
    for i in range(10):
        cache.put(("k", i), i)
        assert len(cache) <= 3
    assert cache.stats.evictions == 7
    assert cache.keys() == [("k", 7), ("k", 8), ("k", 9)]


def test_lru_recency_refresh_on_get():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a" → "b" becomes LRU
    cache.put("c", 3)
    assert "a" in cache and "c" in cache and "b" not in cache


def test_lru_hit_miss_counters():
    cache = LRUCache(maxsize=4)
    assert cache.get("missing") is None
    cache.put("x", 42)
    assert cache.get("x") == 42
    assert (cache.stats.hits, cache.stats.misses, cache.stats.puts) == (1, 1, 1)


def test_lru_rejects_degenerate_size():
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)


# -- fingerprints -------------------------------------------------------------


def test_tid_fingerprint_changes_on_mutation(small_db):
    before = small_db.fingerprint()
    assert small_db.fingerprint() == before  # stable while unchanged
    small_db.add_fact("R", ("zzz",), 0.5)
    assert small_db.fingerprint() != before


def test_tid_fingerprint_is_content_addressed(small_db):
    copied = small_db.copy()
    assert copied.fingerprint() == small_db.fingerprint()
    assert copied.version == 0  # fresh counter, same content hash


def test_tid_fingerprint_sees_domain_changes(small_db):
    before = small_db.fingerprint()
    small_db.explicit_domain = frozenset(("a", "b", "c"))
    assert small_db.fingerprint() != before


def test_tid_touch_bumps_version(small_db):
    before = small_db.version
    fp = small_db.fingerprint()
    small_db.relations["R"].add(("c",), 0.5)  # out-of-band mutation
    small_db.touch()
    assert small_db.version > before
    assert small_db.fingerprint() != fp


def test_query_fingerprint_normalises_whitespace():
    assert query_fingerprint("R(x), S(x,y)") == query_fingerprint("R(x),  S(x,y)")
    assert query_fingerprint("R(x)") != query_fingerprint("S(x)")
    assert query_fingerprint("R(x)", head=("x",)) != query_fingerprint("R(x)")


# -- warm vs cold correctness -------------------------------------------------


@pytest.mark.parametrize(
    "method",
    [
        Method.AUTO,
        Method.LIFTED,
        Method.SAFE_PLAN,
        Method.DPLL,
        Method.KARP_LUBY,
        Method.MONTE_CARLO,
        Method.BRUTE_FORCE,
    ],
)
def test_warm_answer_bit_identical_to_cold(session, method):
    query = "R(x), S(x,y)"
    cold = session.query(query, method)
    warm = session.query(query, method)
    assert warm.probability == cold.probability  # bit-identical, not close()
    assert warm.method == cold.method
    assert warm.exact == cold.exact
    assert warm.detail == cold.detail
    assert not cold.stats.cache_hit
    assert warm.stats.cache_hit


def test_cached_answers_agree_with_uncached_engine(small_db):
    session = EngineSession(small_db.copy(), seed=5)
    fresh = ProbabilisticDatabase(tid=small_db.copy(), seed=5)
    for query in QUERY_FAMILY:
        cold = session.query(query)
        warm = session.query(query)
        reference = fresh.probability(query)
        assert warm.probability == cold.probability
        assert cold.probability == reference.probability
        assert cold.method == reference.method


def test_cache_hit_does_not_mutate_cached_entry(session):
    query = "R(x), S(x,y)"
    session.query(query)
    warm1 = session.query(query)
    warm2 = session.query(query)
    assert warm1.stats is not warm2.stats  # fresh stats per serve
    cached = session.cache.get(("answer", session.tid.fingerprint(),
                                query_fingerprint(query), Method.AUTO.value,
                                session.pdb.backend))
    assert not cached.stats.cache_hit  # stored entry keeps its cold record


# -- invalidation -------------------------------------------------------------


def test_mutation_invalidates_answers():
    db = TupleIndependentDatabase.from_facts(
        [("R", ("a",), 0.5), ("S", ("a", "b"), 0.7)]
    )
    session = EngineSession(db)
    query = "R(x), S(x,y)"
    before = session.query(query)
    assert session.query(query).stats.cache_hit
    session.add_fact("R", ("c",), 0.9)
    session.add_fact("S", ("c", "c"), 0.9)
    after = session.query(query)
    assert not after.stats.cache_hit
    assert after.probability != before.probability
    reference = ProbabilisticDatabase(tid=session.tid.copy())
    assert close(after.probability, reference.probability(query).probability)


def test_mutation_invalidates_lineage_and_circuit(session):
    query = "R(x), S(x,y), T(y)"
    session.query(query, Method.DPLL)
    posteriors_before = session.tuple_posteriors(query)
    session.add_fact("T", ("c",), 0.4)
    posteriors_after = session.tuple_posteriors(query)
    assert posteriors_before.keys() == posteriors_before.keys()
    # the old keys are unreachable; a fresh compile picked up the new tuple
    assert len(posteriors_after) >= len(posteriors_before)


def test_session_eviction_bound():
    session = EngineSession(full_tid(3, 3), cache_size=4)
    for query in QUERY_FAMILY:
        session.query(query)
    assert len(session.cache) <= 4
    assert session.cache_info().evictions > 0


def test_invalidate_clears_cache(session):
    session.query("R(x), S(x,y)")
    assert len(session.cache) > 0
    session.invalidate()
    assert len(session.cache) == 0
    assert not session.query("R(x), S(x,y)").stats.cache_hit


def test_invalidate_releases_kernel_memory():
    # dropping the cached lineage plus the kernel's memo tables must let
    # the garbage collector reclaim the grounded expressions: the unique
    # table holds them only weakly
    import gc

    from repro.booleans.kernel import DEFAULT_MANAGER

    session = EngineSession(None)
    for i in range(50):
        session.add_fact("T", (f"a{i}", f"b{i}"), 0.5)
        session.add_fact("U", (f"b{i}",), 0.5)
    session.query("T(x,y), U(y)", Method.DPLL)
    gc.collect()
    before = len(DEFAULT_MANAGER.unique)
    session.invalidate()
    gc.collect()
    assert len(DEFAULT_MANAGER.unique) <= before - 50


# -- memoized intermediates ---------------------------------------------------


def test_lineage_shared_between_methods(session):
    query = "R(x), S(x,y), T(y)"  # hard: both routes ground it
    session.query(query, Method.DPLL)
    tid_fp = session.tid.fingerprint()
    key = ("lineage", tid_fp, query_fingerprint(query))
    assert key in session.cache
    hits_before = session.cache.stats.hits
    session.query(query, Method.MONTE_CARLO)  # distinct answer key, same lineage
    assert session.cache.stats.hits > hits_before


def test_circuit_memoized_across_analyses(session):
    query = "R(x), S(x,y)"
    session.tuple_posteriors(query)
    tid_fp = session.tid.fingerprint()
    # circuit entries are keyed by the lineage: expression + fact binding
    lineage = session.cache.get(("lineage", tid_fp, query_fingerprint(query)))
    key = ("circuit", tid_fp, lineage_fingerprint(lineage))
    assert key in session.cache
    hits_before = session.cache.stats.hits
    session.most_probable_world(query)
    assert session.cache.stats.hits > hits_before


def test_circuit_cache_distinguishes_isomorphic_lineages():
    # Regression: R(x) and S(x) both ground to the single literal x0, so
    # their lineage expressions intern to the same kernel node. Keying the
    # circuit cache by the expression alone made the second query return
    # the first query's cached (lineage, circuit) pair — wrong facts and
    # wrong probabilities. The key must pin the variable→fact binding.
    tid = TupleIndependentDatabase()
    tid.add_fact("R", ("a",), 0.3)
    tid.add_fact("S", ("b",), 0.9)
    session = EngineSession(tid)

    r_posteriors = session.tuple_posteriors("R(x)")
    s_posteriors = session.tuple_posteriors("S(x)")
    assert set(r_posteriors) == {("R", ("a",))}
    assert close(r_posteriors[("R", ("a",))].prior, 0.3)
    assert set(s_posteriors) == {("S", ("b",))}
    assert close(s_posteriors[("S", ("b",))].prior, 0.9)

    r_world, r_p = session.most_probable_world("R(x)")
    s_world, s_p = session.most_probable_world("S(x)")
    assert set(r_world) == {("R", ("a",))}
    assert close(r_p, 0.3)
    assert set(s_world) == {("S", ("b",))}
    assert close(s_p, 0.9)


def test_answers_memoized_and_parallel_agrees(small_db):
    session = EngineSession(small_db)
    cold = session.answers("R(x), S(x,y)", ["x"])
    warm = session.answers("R(x), S(x,y)", ["x"])
    assert {k: v.probability for k, v in cold.items()} == {
        k: v.probability for k, v in warm.items()
    }
    parallel = EngineSession(small_db.copy()).answers(
        "R(x), S(x,y)", ["x"], parallel=True
    )
    assert {k: v.probability for k, v in parallel.items()} == {
        k: v.probability for k, v in cold.items()
    }


# -- instrumentation ----------------------------------------------------------


def test_stats_uniform_across_routes(small_db):
    pdb = ProbabilisticDatabase(tid=small_db, seed=1)
    expected_stages = {
        Method.LIFTED: {"parse", "count"},
        Method.SAFE_PLAN: {"parse", "compile", "count"},
        Method.DPLL: {"parse", "lineage", "count"},
        Method.KARP_LUBY: {"parse", "lineage", "compile", "count"},
        Method.MONTE_CARLO: {"parse", "lineage", "count"},
        Method.BRUTE_FORCE: {"parse", "count"},
    }
    for method, stages in expected_stages.items():
        answer = pdb.probability("R(x), S(x,y)", method)
        assert answer.stats is not None
        assert set(answer.stats.stages) == stages, method
        assert answer.stats.route == method.value
        assert answer.stats.total >= 0.0


def test_explain_mentions_cache_and_stages(session):
    text = session.explain("R(x), S(x,y)")
    assert "cache hit    : False" in text
    assert "stage times" in text
    text = session.explain("R(x), S(x,y)")
    assert "cache hit    : True" in text


def test_session_report_counts(session):
    session.query("R(x), S(x,y)")
    session.query("R(x), S(x,y)")
    report = session.report()
    assert "1 hits / 1 misses" in report
    assert "lifted" in report
    assert session.stats.hit_rate == 0.5  # prodb-lint: exact


# -- reproducible approximation (seed threading) ------------------------------


def test_karp_luby_reproducible_with_seed(dense_db):
    a = ProbabilisticDatabase(tid=dense_db.copy(), seed=42)
    b = ProbabilisticDatabase(tid=dense_db.copy(), seed=42)
    query = "R(x), S(x,y), T(y)"
    assert (
        a.probability(query, Method.KARP_LUBY).probability
        == b.probability(query, Method.KARP_LUBY).probability
    )
    assert (
        a.probability(query, Method.MONTE_CARLO).probability
        == b.probability(query, Method.MONTE_CARLO).probability
    )
    # repeated calls on one database are reproducible too
    assert (
        a.probability(query, Method.KARP_LUBY).probability
        == a.probability(query, Method.KARP_LUBY).probability
    )


def test_session_seed_override(dense_db):
    session = EngineSession(dense_db, seed=7)
    assert session.pdb.seed == 7


def test_session_rejects_unknown_db_type():
    with pytest.raises(TypeError):
        EngineSession(db="not a database")
