"""Unit tests for the repo-specific linter in tools/prodb_lint.

Each rule gets a violating fixture and a clean fixture, built as throwaway
mini-projects under tmp_path (a pyproject.toml marks the root so relative
paths like ``src/repro/...`` scope the rules exactly as in the real tree).
"""

from __future__ import annotations

from pathlib import Path

from prodb_lint import lint_paths
from prodb_lint.cli import main
from prodb_lint.pragmas import parse_pragmas

PYPROJECT = '[project]\nname = "fixture"\n'


def make_project(tmp_path: Path, files: dict[str, str], api_md: str = "") -> Path:
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    if api_md:
        (tmp_path / "docs").mkdir(exist_ok=True)
        (tmp_path / "docs" / "api.md").write_text(api_md)
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return tmp_path


def lint(root: Path, *paths: str, select: set[str] | None = None):
    return lint_paths(
        [str(root / p) for p in paths], root=str(root), select=select
    )


def codes(findings) -> list[str]:
    return [f.code for f in findings]


# -- PL001: direct BExpr construction ---------------------------------------


def test_pl001_flags_direct_construction(tmp_path):
    root = make_project(
        tmp_path,
        {"src/repro/mln/x.py": "from repro.booleans.expr import BVar\nnode = BVar(3)\n"},
    )
    findings = lint(root, "src", select={"PL001"})
    assert codes(findings) == ["PL001"]
    assert findings[0].line == 2
    assert "bvar(...)" in findings[0].message


def test_pl001_flags_attribute_form(tmp_path):
    root = make_project(
        tmp_path,
        {"src/repro/mln/x.py": "from repro.booleans import expr\nn = expr.BAnd((a, b))\n"},
    )
    assert codes(lint(root, "src", select={"PL001"})) == ["PL001"]


def test_pl001_allows_factories_and_booleans_package(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/mln/x.py": "from repro.booleans.expr import bvar\nnode = bvar(3)\n",
            # Inside the booleans package the classes construct themselves.
            "src/repro/booleans/expr.py": "class BVar:\n    pass\nnode = BVar(3)\n",
        },
    )
    assert lint(root, "src", select={"PL001"}) == []


def test_pl001_pragma_alias(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/mln/x.py": (
                "from repro.booleans.expr import BVar\n"
                "node = BVar(3)  # prodb-lint: allow-construct\n"
            )
        },
    )
    assert lint(root, "src", select={"PL001"}) == []


# -- PL002: unguarded shared mutation ----------------------------------------


def test_pl002_flags_unlocked_module_container(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/engine/x.py": (
                "CACHE = {}\n"
                "def put(k, v):\n"
                "    CACHE[k] = v\n"
            )
        },
    )
    findings = lint(root, "src", select={"PL002"})
    assert codes(findings) == ["PL002"]
    assert "'CACHE'" in findings[0].message


def test_pl002_accepts_with_lock_guard(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/engine/x.py": (
                "import threading\n"
                "CACHE = {}\n"
                "_lock = threading.Lock()\n"
                "def put(k, v):\n"
                "    with _lock:\n"
                "        CACHE[k] = v\n"
            )
        },
    )
    assert lint(root, "src", select={"PL002"}) == []


def test_pl002_flags_instance_container_mutation(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/engine/x.py": (
                "class Store:\n"
                "    def __init__(self):\n"
                "        self.data = {}\n"
                "    def put(self, k, v):\n"
                "        self.data[k] = v\n"
            )
        },
    )
    findings = lint(root, "src", select={"PL002"})
    assert codes(findings) == ["PL002"]
    assert findings[0].line == 5


def test_pl002_allows_init_and_threading_local_and_pragma(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/engine/x.py": (
                "import threading\n"
                "class Counters(threading.local):\n"
                "    def __init__(self):\n"
                "        self.data = {}\n"
                "    def bump(self, k):\n"
                "        self.data[k] = 1\n"
                "class Store:\n"
                "    def __init__(self):\n"
                "        self.data = {}\n"
                "        self.data['seed'] = 0\n"
                "    def put(self, k, v):\n"
                "        self.data[k] = v  # prodb-lint: lockfree -- GIL-atomic\n"
            )
        },
    )
    assert lint(root, "src", select={"PL002"}) == []


def test_pl002_tracks_dataclass_field_containers(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/engine/x.py": (
                "from dataclasses import dataclass, field\n"
                "@dataclass\n"
                "class Stats:\n"
                "    stages: dict = field(default_factory=dict)\n"
                "    def add(self, k, v):\n"
                "        self.stages[k] = v\n"
            )
        },
    )
    assert codes(lint(root, "src", select={"PL002"})) == ["PL002"]


def test_pl002_scoped_to_engine_and_booleans(tmp_path):
    root = make_project(
        tmp_path,
        {"src/repro/mln/x.py": "CACHE = {}\ndef put(k, v):\n    CACHE[k] = v\n"},
    )
    assert lint(root, "src", select={"PL002"}) == []


# -- PL003: float literal equality -------------------------------------------


def test_pl003_flags_eq_and_ne(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/core/x.py": (
                "def f(x, y):\n"
                "    if x == 0.5:\n"
                "        return 1\n"
                "    return y != 1.0\n"
            )
        },
    )
    assert codes(lint(root, "src", select={"PL003"})) == ["PL003", "PL003"]


def test_pl003_ignores_int_and_ordering_comparisons(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/core/x.py": (
                "import math\n"
                "def f(x):\n"
                "    return x == 0 or x <= 0.5 or math.isclose(x, 0.25)\n"
            )
        },
    )
    assert lint(root, "src", select={"PL003"}) == []


def test_pl003_exact_pragma_with_justification(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/core/x.py": (
                "def f(x):\n"
                "    if x == 0.0:  # prodb-lint: exact -- division guard\n"
                "        raise ZeroDivisionError\n"
                "    return 1.0 / x\n"
            )
        },
    )
    assert lint(root, "src", select={"PL003"}) == []


# -- PL004: unseeded randomness ----------------------------------------------


def test_pl004_flags_unseeded_random_in_benchmarks(tmp_path):
    root = make_project(
        tmp_path,
        {
            "benchmarks/bench_x.py": (
                "import random\n"
                "rng = random.Random()\n"
                "value = random.random()\n"
            )
        },
    )
    assert codes(lint(root, "benchmarks", select={"PL004"})) == ["PL004", "PL004"]


def test_pl004_accepts_seeded_generators(tmp_path):
    root = make_project(
        tmp_path,
        {
            "benchmarks/bench_x.py": (
                "import random\n"
                "import numpy as np\n"
                "rng = random.Random(0)\n"
                "npr = np.random.default_rng(7)\n"
            )
        },
    )
    assert lint(root, "benchmarks", select={"PL004"}) == []


def test_pl004_flags_global_numpy_random(tmp_path):
    root = make_project(
        tmp_path,
        {
            "benchmarks/bench_x.py": (
                "import numpy as np\n"
                "xs = np.random.rand(10)\n"
                "gen = np.random.default_rng()\n"
            )
        },
    )
    assert codes(lint(root, "benchmarks", select={"PL004"})) == ["PL004", "PL004"]


def test_pl004_scoped_to_benchmarks_and_samplers(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/mln/x.py": "import random\nrng = random.Random()\n",
            "src/repro/wmc/sampling.py": "import random\nrng = random.Random()\n",
        },
    )
    findings = lint(root, "src", select={"PL004"})
    assert [f.path for f in findings] == ["src/repro/wmc/sampling.py"]


# -- PL005: __all__ consistency with docs/api.md -----------------------------

API_MD = """# API

```python
from repro.widgets import spin, unspin
```
"""


def test_pl005_flags_missing_all(tmp_path):
    root = make_project(
        tmp_path,
        {"src/repro/widgets.py": "def spin():\n    pass\n"},
        api_md=API_MD,
    )
    findings = lint(root, "src", select={"PL005"})
    assert codes(findings) == ["PL005"]
    assert "no __all__" in findings[0].message


def test_pl005_flags_incomplete_all(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/widgets.py": (
                "__all__ = ['spin']\n"
                "def spin():\n    pass\n"
                "def unspin():\n    pass\n"
            )
        },
        api_md=API_MD,
    )
    findings = lint(root, "src", select={"PL005"})
    assert codes(findings) == ["PL005"]
    assert "unspin" in findings[0].message


def test_pl005_accepts_complete_all(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/widgets.py": (
                "__all__ = ['spin', 'unspin']\n"
                "def spin():\n    pass\n"
                "def unspin():\n    pass\n"
            )
        },
        api_md=API_MD,
    )
    assert lint(root, "src", select={"PL005"}) == []


def test_pl005_ignores_undocumented_modules(tmp_path):
    root = make_project(
        tmp_path,
        {"src/repro/internal.py": "def helper():\n    pass\n"},
        api_md=API_MD,
    )
    assert lint(root, "src", select={"PL005"}) == []


# -- pragmas and the driver ---------------------------------------------------


def test_malformed_pragma_is_reported(tmp_path):
    root = make_project(
        tmp_path,
        {"src/repro/core/x.py": "x = 1  # prodb-lint: exacty\n"},
    )
    findings = lint(root, "src")
    assert codes(findings) == ["PL000"]
    assert "malformed" in findings[0].message


def test_file_level_disable(tmp_path):
    root = make_project(
        tmp_path,
        {
            "src/repro/core/x.py": (
                "# prodb-lint: disable-file=PL003\n"
                "a = 1.0 == 2.0\n"
                "b = 3.0 != 4.0\n"
            )
        },
    )
    assert lint(root, "src", select={"PL003"}) == []


def test_pragma_spans_multiline_statements():
    pragmas = parse_pragmas(
        "value = (\n"
        "    probe\n"
        "    == 0.5  # prodb-lint: exact\n"
        ")\n"
    )
    assert pragmas.is_disabled("PL003", 1, 4)
    assert not pragmas.is_disabled("PL003", 1, 2)
    assert not pragmas.is_disabled("PL001", 1, 4)


def test_syntax_error_becomes_pl000(tmp_path):
    root = make_project(tmp_path, {"src/repro/core/x.py": "def broken(:\n"})
    findings = lint(root, "src")
    assert codes(findings) == ["PL000"]
    assert "syntax error" in findings[0].message


def test_cli_exit_codes(tmp_path, capsys):
    root = make_project(
        tmp_path,
        {
            "src/repro/core/bad.py": "a = 1.0 == 2.0\n",
            "src/repro/core/good.py": "a = 1 == 2\n",
        },
    )
    bad = str(root / "src" / "repro" / "core" / "bad.py")
    good = str(root / "src" / "repro" / "core" / "good.py")
    assert main([good, "--root", str(root)]) == 0
    assert main([bad, "--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "PL003" in out and "1 finding" in out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("PL001", "PL002", "PL003", "PL004", "PL005"):
        assert code in out


def test_real_tree_is_lint_clean():
    """The acceptance criterion: the linter exits 0 on the repo itself."""
    repo = Path(__file__).resolve().parent.parent
    findings = lint_paths(
        [str(repo / "src"), str(repo / "benchmarks"), str(repo / "tests")],
        root=str(repo),
    )
    assert findings == []


# -- the extended pragma grammar (shared with prodb-flow) ----------------------


def test_rank_annotation_parsed():
    pragmas = parse_pragmas(
        "lock = threading.Lock()  # prodb-lint: rank=7 -- leaf, hand-audited\n"
    )
    assert pragmas.annotation("rank", 1, 1) == "7"
    assert pragmas.justification(1) == "leaf, hand-audited"
    assert pragmas.malformed == []


def test_rank_annotation_requires_integer():
    pragmas = parse_pragmas("x = 1  # prodb-lint: rank=high\n")
    assert len(pragmas.malformed) == 1
    line, _, detail = pragmas.malformed[0]
    assert line == 1
    assert "rank must be an integer" in detail
    assert "'high'" in detail


def test_loop_owned_annotation_parsed():
    pragmas = parse_pragmas(
        "self._writers = set()  # prodb-lint: loop-owned -- touched on loop\n"
    )
    assert pragmas.annotation("loop-owned", 1, 1) == "true"


def test_unknown_annotation_key_names_offending_token():
    pragmas = parse_pragmas("x = 1  # prodb-lint: lokfree\n")
    assert len(pragmas.malformed) == 1
    _, _, detail = pragmas.malformed[0]
    assert "unknown annotation key 'lokfree'" in detail
    assert "lockfree" in detail  # the known-keys list guides the fix


def test_disable_accepts_pf_codes():
    pragmas = parse_pragmas(
        "x = 1  # prodb-lint: disable=PF102,PL003 -- fixture lock\n"
    )
    assert pragmas.is_disabled("PF102", 1, 1)
    assert pragmas.is_disabled("PL003", 1, 1)
    assert not pragmas.is_disabled("PF101", 1, 1)


def test_disable_rejects_bad_code_with_token(tmp_path):
    pragmas = parse_pragmas("x = 1  # prodb-lint: disable=PX999\n")
    assert len(pragmas.malformed) == 1
    _, _, detail = pragmas.malformed[0]
    assert "PX999" in detail
