"""Unit tests for repro.logic.semantics (FO model checking)."""

import pytest

from repro.logic.parser import parse
from repro.logic.semantics import ground_atom, satisfies
from repro.logic.formulas import Atom
from repro.logic.terms import Const, Var

DOMAIN = ("a", "b")


def test_atom_satisfaction():
    world = {("R", ("a",))}
    assert satisfies(world, DOMAIN, parse("R('a')"))
    assert not satisfies(world, DOMAIN, parse("R('b')"))


def test_negation():
    world = {("R", ("a",))}
    assert satisfies(world, DOMAIN, parse("~R('b')"))


def test_exists():
    world = {("R", ("b",))}
    assert satisfies(world, DOMAIN, parse("exists x. R(x)"))
    assert not satisfies(frozenset(), DOMAIN, parse("exists x. R(x)"))


def test_forall():
    world = {("R", ("a",)), ("R", ("b",))}
    assert satisfies(world, DOMAIN, parse("forall x. R(x)"))
    assert not satisfies({("R", ("a",))}, DOMAIN, parse("forall x. R(x)"))


def test_h0_semantics():
    h0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
    full_s = {("S", (u, v)) for u in DOMAIN for v in DOMAIN}
    assert satisfies(full_s, DOMAIN, h0)
    missing = set(full_s) - {("S", ("a", "b"))}
    assert not satisfies(missing, DOMAIN, h0)
    # covered by R(a) instead
    assert satisfies(missing | {("R", ("a",))}, DOMAIN, h0)


def test_shadowed_quantifier():
    # ∃x (R(x) ∧ ∃x T(x)): inner x shadows outer.
    f = parse("exists x. (R(x) & (exists x. T(x)))")
    world = {("R", ("a",)), ("T", ("b",))}
    assert satisfies(world, DOMAIN, f)


def test_nested_requantification_restores_binding():
    # ∃x (T(x) ∧ ∃x R(x) ∧ T(x)) — after the inner ∃x, the outer binding
    # must be restored for the final T(x).
    f = parse("exists x. (R(x) & (exists x. T(x)) & R(x))")
    world = {("R", ("a",)), ("T", ("b",))}
    assert satisfies(world, DOMAIN, f)


def test_free_variable_raises():
    with pytest.raises(ValueError, match="unbound"):
        satisfies(frozenset(), DOMAIN, parse("R(x)"))


def test_env_binds_free_variables():
    assert satisfies({("R", ("a",))}, DOMAIN, parse("R(x)"), env={Var("x"): "a"})


def test_ground_atom_with_constants_and_env():
    atom = Atom("S", (Const("a"), Var("y")))
    assert ground_atom(atom, {Var("y"): "b"}) == ("S", ("a", "b"))


def test_ground_atom_unbound_raises():
    with pytest.raises(ValueError):
        ground_atom(Atom("R", (Var("x"),)), {})


def test_true_false_constants():
    assert satisfies(frozenset(), DOMAIN, parse("true"))
    assert not satisfies(frozenset(), DOMAIN, parse("false"))
