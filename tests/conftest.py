"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

from repro.core.tid import TupleIndependentDatabase
from repro.workloads.generators import full_tid, random_tid

# The repo-specific linter lives outside the installable package, in
# tools/prodb_lint; make it importable for its unit tests.
_TOOLS = str(Path(__file__).resolve().parent.parent / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

TOLERANCE = 1e-9


def close(a: float, b: float, tolerance: float = TOLERANCE) -> bool:
    """Absolute closeness check used throughout the suite."""
    return abs(a - b) <= tolerance


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20200614)  # PODS'20 started June 14, 2020


@pytest.fixture
def small_db() -> TupleIndependentDatabase:
    """A tiny fixed TID over R/1, S/2, T/1 with a 2-element domain."""
    db = TupleIndependentDatabase()
    db.add_fact("R", ("a",), 0.5)
    db.add_fact("R", ("b",), 0.25)
    db.add_fact("S", ("a", "a"), 0.8)
    db.add_fact("S", ("a", "b"), 0.3)
    db.add_fact("S", ("b", "b"), 0.9)
    db.add_fact("T", ("a",), 0.6)
    db.add_fact("T", ("b",), 0.1)
    db.explicit_domain = frozenset(("a", "b"))
    return db


@pytest.fixture
def random_db() -> TupleIndependentDatabase:
    return random_tid(7, 3)


@pytest.fixture
def dense_db() -> TupleIndependentDatabase:
    return full_tid(13, 2)
