"""Routing edge cases for the façade's AUTO strategy."""

import pytest

from repro.core.pdb import Method, ProbabilisticDatabase
from repro.workloads.generators import full_tid, random_tid

from conftest import close


@pytest.fixture
def pdb():
    return ProbabilisticDatabase(tid=random_tid(23, 3), seed=5)


def test_auto_prefers_lifted(pdb):
    assert pdb.probability("R(x), S(x,y)").method is Method.LIFTED


def test_auto_uses_dpll_within_limit(pdb):
    answer = pdb.probability("R(x), S(x,y), T(y)")
    assert answer.method is Method.DPLL
    assert answer.exact


def test_auto_falls_back_to_karp_luby_beyond_limit():
    facade = ProbabilisticDatabase(tid=full_tid(23, 3), seed=5)
    facade.exact_lineage_limit = 0
    facade.mc_epsilon = 0.05
    answer = facade.probability("R(x), S(x,y), T(y)")
    assert answer.method is Method.KARP_LUBY
    assert not answer.exact
    exact = ProbabilisticDatabase(tid=facade.tid).probability(
        "R(x), S(x,y), T(y)", Method.DPLL
    )
    assert exact.probability > 0.05
    assert abs(answer.probability - exact.probability) / exact.probability < 0.2


def test_auto_falls_back_to_monte_carlo_when_dnf_explodes(pdb):
    # a ∀-sentence whose lineage is a large CNF: DNF conversion explodes,
    # so with a tiny exact limit the router must use naive Monte Carlo.
    db = full_tid(31, 4)
    facade = ProbabilisticDatabase(tid=db, seed=7, exact_lineage_limit=0)
    facade.mc_epsilon = 0.05
    sentence = "forall x. forall y. (R(x) | S(x,y) | T(y))"
    answer = facade.probability(sentence)
    assert answer.method is Method.MONTE_CARLO
    exact = ProbabilisticDatabase(tid=db).probability(sentence, Method.DPLL)
    assert abs(answer.probability - exact.probability) < 0.08


def test_detail_mentions_blocking_subquery(pdb):
    answer = pdb.probability("R(x), S(x,y), T(y)")
    assert "lifted failed" in answer.detail


def test_forced_method_overrides_auto(pdb):
    answer = pdb.probability("R(x), S(x,y)", Method.MONTE_CARLO)
    assert answer.method is Method.MONTE_CARLO


def test_explain_hard_query(pdb):
    text = pdb.explain("R(x), S(x,y), T(y)")
    assert "dpll" in text


def test_seed_makes_sampling_deterministic(pdb):
    a = pdb.probability("R(x), S(x,y)", Method.MONTE_CARLO).probability
    b = pdb.probability("R(x), S(x,y)", Method.MONTE_CARLO).probability
    assert a == b


def test_exact_routes_consistent_on_sentences(pdb):
    sentence = "forall x. forall y. (S(x,y) -> R(x))"
    lifted = pdb.probability(sentence, Method.LIFTED).probability
    dpll = pdb.probability(sentence, Method.DPLL).probability
    brute = pdb.probability(sentence, Method.BRUTE_FORCE).probability
    assert close(lifted, dpll)
    assert close(dpll, brute)
