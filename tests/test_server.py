"""The serving layer: protocol, ladder degradation, coalescing, shutdown."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pdb import Method, ProbabilisticDatabase
from repro.engine.session import EngineSession
from repro.obs import MetricsRegistry
from repro.server import (
    ErrorCode,
    MethodLadder,
    ProtocolError,
    QueryServer,
    ServerClient,
    ServerConfig,
    ServerThread,
    decode_request,
    http_get,
)
from repro.workloads.generators import figure1_database, full_tid

QUERIES = (
    "R(x), S(x,y)",                       # safe: lifted
    "R(x), S(x,y), T(y)",                 # #P-hard: grounded
    "R(x), S(x,y) | T(u), S(u,v)",        # UCQ
)

METHODS = ("ladder", "auto", "dpll", "brute-force")


def small_tid():
    db = figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    db.add_fact("T", ("b1",), 0.6)
    db.add_fact("T", ("b3",), 0.1)
    return db


@pytest.fixture
def server():
    session = EngineSession(small_tid(), seed=11)
    config = ServerConfig(workers=2, default_epsilon=0.3, default_delta=0.1)
    with ServerThread(session, config, registry=MetricsRegistry()) as thread:
        yield thread


# -- protocol validation ------------------------------------------------------


def test_decode_request_minimal():
    request = decode_request('{"query": "R(x)"}')
    assert request.query == "R(x)"
    assert request.method == "ladder"


def test_decode_request_rejects_garbage():
    for line in (
        "not json",
        "[1,2]",
        "{}",
        '{"query": ""}',
        '{"query": "R(x)", "method": "sorcery"}',
        '{"query": "R(x)", "backend": "gpu"}',
        '{"query": "R(x)", "deadline_ms": -5}',
        '{"query": "R(x)", "epsilon": "wide"}',
        '{"query": "R(x)", "delta": 1.5}',
    ):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code is ErrorCode.BAD_REQUEST


def test_coalesce_key_normalizes_whitespace():
    a = decode_request('{"query": "R(x),  S(x,y)"}').coalesce_key("db")
    b = decode_request('{"query": "R(x), S(x,y)"}').coalesce_key("db")
    assert a == b
    c = decode_request('{"query": "R(x), S(x,y)", "epsilon": 0.1}').coalesce_key("db")
    assert a != c  # a tighter error budget is a different computation


# -- ladder rung selection ----------------------------------------------------


def test_ladder_exact_rung_no_deadline():
    ladder = MethodLadder(EngineSession(small_tid(), seed=11))
    answer = ladder.evaluate("R(x), S(x,y)")
    assert answer.rung == "exact"
    assert answer.exact
    assert "exact" in answer.guarantee
    reference = ProbabilisticDatabase(tid=small_tid()).probability("R(x), S(x,y)")
    assert answer.probability == reference.probability


def test_ladder_bounds_rung_when_exact_unaffordable():
    session = EngineSession(small_tid(), seed=11)
    session.pdb.exact_lineage_limit = 0
    ladder = MethodLadder(session)
    answer = ladder.evaluate("R(x), S(x,y), T(y)", deadline_s=30.0)
    assert answer.rung == "bounds"
    assert not answer.exact
    assert answer.lower is not None and answer.upper is not None
    assert answer.lower - 1e-12 <= answer.probability <= answer.upper + 1e-12
    exact = ProbabilisticDatabase(tid=small_tid()).probability(
        "R(x), S(x,y), T(y)", Method.DPLL
    )
    assert answer.lower - 1e-12 <= exact.probability <= answer.upper + 1e-12
    assert "Theorem 6.1" in answer.guarantee


def test_ladder_sampled_rung_under_tiny_deadline():
    ladder = MethodLadder(
        EngineSession(small_tid(), seed=11),
        default_epsilon=0.3,
        default_delta=0.1,
    )
    answer = ladder.evaluate("R(x), S(x,y), T(y)", deadline_s=1e-7)
    assert answer.rung == "sampled"
    assert not answer.exact
    assert answer.samples is not None and answer.samples > 0
    assert "seeded" in answer.guarantee
    exact = ProbabilisticDatabase(tid=small_tid()).probability(
        "R(x), S(x,y), T(y)", Method.DPLL
    )
    assert abs(answer.probability - exact.probability) <= 0.3 * exact.probability


def test_ladder_direct_method_bypasses_degradation():
    ladder = MethodLadder(EngineSession(small_tid(), seed=11))
    answer = ladder.evaluate("R(x), S(x,y)", method="dpll", deadline_s=1e-7)
    assert answer.method == "dpll"
    assert answer.rung == "exact"
    assert answer.deadline_exceeded  # ran anyway; flagged, cost recorded


def test_ladder_predictor_learns_from_overruns():
    session = EngineSession(small_tid(), seed=11)
    ladder = MethodLadder(session, default_epsilon=0.3, default_delta=0.1)
    # First call: nothing is known, exact runs and overruns the deadline.
    first = ladder.evaluate("R(x), S(x,y), T(y)", deadline_s=1e-7)
    # Second identical call: the observed cost now predicts an overrun,
    # so the ladder degrades up front (bounds or sampled, never exact).
    second = ladder.evaluate("R(x), S(x,y), T(y)", deadline_s=1e-7)
    assert second.rung in ("bounds", "sampled")
    assert first.probability is not None and second.probability is not None


# -- seeded reproducibility (satellite) ---------------------------------------


def test_same_seed_same_sampled_answers_across_two_serves():
    """Two serves with the same seed give identical Karp–Luby answers."""
    answers = []
    for _ in range(2):
        session = EngineSession(small_tid(), seed=42)
        config = ServerConfig(workers=2, default_epsilon=0.3, default_delta=0.1)
        with ServerThread(session, config, registry=MetricsRegistry()) as thread:
            with ServerClient("127.0.0.1", thread.port) as client:
                response = client.query("R(x), S(x,y), T(y)", deadline_ms=0.0001)
        assert response["ok"] and response["rung"] == "sampled"
        answers.append((response["probability"], response["samples"]))
    assert answers[0] == answers[1]


def test_different_seed_different_sampled_answer():
    probabilities = set()
    for seed in (1, 2):
        session = EngineSession(small_tid(), seed=seed)
        ladder = MethodLadder(session, default_epsilon=0.3, default_delta=0.1)
        probabilities.add(
            ladder.evaluate("R(x), S(x,y), T(y)", deadline_s=1e-7).probability
        )
    assert len(probabilities) == 2


# -- coalescing ---------------------------------------------------------------


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    query=st.sampled_from(QUERIES),
    method=st.sampled_from(METHODS),
    backend=st.sampled_from([None, "rows", "columnar"]),
    fanout=st.integers(min_value=2, max_value=5),
)
def test_coalesced_fanout_identical_to_sequential(
    server, query, method, backend, fanout
):
    """Coalesced fan-out answers are byte-identical to sequential answers."""
    results = []
    lock = threading.Lock()

    def fire():
        with ServerClient("127.0.0.1", server.port) as client:
            response = client.query(query, method=method, backend=backend)
            with lock:
                results.append(response)

    threads = [threading.Thread(target=fire) for _ in range(fanout)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == fanout

    with ServerClient("127.0.0.1", server.port) as client:
        sequential = client.query(query, method=method, backend=backend)

    def answer_bytes(response):
        assert response.get("ok"), response
        core = {
            k: v
            for k, v in response.items()
            if k not in ("elapsed_ms", "coalesced", "id")
        }
        return json.dumps(core, sort_keys=True).encode()

    reference = answer_bytes(sequential)
    for response in results:
        assert answer_bytes(response) == reference


def test_concurrent_identical_requests_coalesce(server):
    barrier = threading.Barrier(6)
    responses = []
    lock = threading.Lock()

    def fire():
        with ServerClient("127.0.0.1", server.port) as client:
            barrier.wait()
            response = client.query("R(x), S(x,y), T(y)", method="dpll")
            with lock:
                responses.append(response)

    threads = [threading.Thread(target=fire) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r["ok"] for r in responses)
    assert len({r["probability"] for r in responses}) == 1
    snapshot = server.server.registry.snapshot()
    assert snapshot["server_requests_total"] == 6
    # At least the non-leader requests of the first wave coalesced or were
    # served from the cache; the server never computed 6 times.
    engine_misses = server.server.session.stats.cache_misses
    assert engine_misses <= 2


# -- admission control and shutdown -------------------------------------------


def test_overload_sheds_with_explicit_error():
    session = EngineSession(full_tid(41, 4), seed=11)
    config = ServerConfig(
        workers=1, max_pending=1, coalesce=False, request_timeout_s=60.0
    )
    with ServerThread(session, config, registry=MetricsRegistry()) as thread:
        responses = []
        lock = threading.Lock()

        def fire(i):
            with ServerClient("127.0.0.1", thread.port) as client:
                response = client.query("R(x), S(x,y), T(y)", id=str(i))
                with lock:
                    responses.append(response)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        shed = [r for r in responses if not r["ok"]]
        served = [r for r in responses if r["ok"]]
        assert served, "someone must get through"
        assert shed, "8 concurrent requests into max_pending=1 must shed"
        for r in shed:
            assert r["error"] == "overloaded"
            assert "retry" in r["message"]
        snapshot = thread.server.registry.snapshot()
        assert snapshot["server_overloaded_total"] == len(shed)


def test_graceful_shutdown_completes_inflight_and_refuses_queued():
    session = EngineSession(full_tid(41, 5), seed=11)
    config = ServerConfig(workers=1, request_timeout_s=60.0)
    thread = ServerThread(session, config, registry=MetricsRegistry()).start()
    port = thread.port

    inflight_response = {}
    late_response = {}

    def slow_request():
        with ServerClient("127.0.0.1", port) as client:
            inflight_response.update(client.query("R(x), S(x,y), T(y)"))

    late_client = ServerClient("127.0.0.1", port)
    worker = threading.Thread(target=slow_request)
    worker.start()
    time.sleep(0.05)  # let the slow request be admitted

    stopper = threading.Thread(target=thread.stop)
    stopper.start()
    time.sleep(0.01)  # drain begins
    try:
        late_response.update(late_client.request({"query": "R(x), S(x,y)"}))
    except (ConnectionError, OSError):
        late_response.update({"error": "connection_closed"})
    finally:
        late_client.close()
    worker.join(timeout=30)
    stopper.join(timeout=30)

    # The in-flight request completed with a real answer.
    assert inflight_response.get("ok"), inflight_response
    assert inflight_response.get("rung") == "exact"
    # The late request got a clean shutting_down (or found the socket
    # already closed if the drain won the race).
    assert late_response.get("error") in ("shutting_down", "connection_closed")
    # The listening socket is closed.
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5).close()


class _SlowLadder(MethodLadder):
    """Holds every evaluation long enough that a 1 ms timeout always
    fires first — the raw query occasionally finishes inside the timeout
    once the process-wide kernel tables are warm, which made this test
    flaky."""

    def evaluate(self, *args, **kwargs):
        time.sleep(0.25)
        return super().evaluate(*args, **kwargs)


def test_request_timeout_returns_timeout_error():
    session = EngineSession(full_tid(41, 5), seed=11)
    config = ServerConfig(workers=1, request_timeout_s=60.0)
    with ServerThread(
        session,
        config,
        registry=MetricsRegistry(),
        ladder=_SlowLadder(session),
    ) as thread:
        with ServerClient("127.0.0.1", thread.port) as client:
            response = client.request(
                {"query": "R(x), S(x,y), T(y)", "timeout_ms": 1}
            )
        assert not response["ok"]
        assert response["error"] == "timeout"


# -- HTTP shim ----------------------------------------------------------------


def test_http_query_health_metrics(server):
    port = server.port
    health = json.loads(http_get("127.0.0.1", port, "/healthz"))
    assert health["status"] == "ok"

    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        body = json.dumps({"query": "R(x), S(x,y)"}).encode()
        sock.sendall(
            b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\nConnection: close\r\n\r\n"
            + body
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, payload = raw.decode().partition("\r\n\r\n")
    assert head.startswith("HTTP/1.1 200")
    answer = json.loads(payload)
    assert answer["ok"] and answer["rung"] == "exact"

    metrics = http_get("127.0.0.1", port, "/metrics")
    assert "server_requests_total" in metrics
    assert "server_request_seconds" in metrics


def test_http_unknown_path_404(server):
    with pytest.raises(ConnectionError, match="404"):
        http_get("127.0.0.1", server.port, "/nope")


# -- responses always name their rung -----------------------------------------


def test_every_answer_names_rung_and_guarantee(server):
    with ServerClient("127.0.0.1", server.port) as client:
        for query in QUERIES:
            for extra in ({}, {"deadline_ms": 0.0001}):
                response = client.request({"query": query, **extra})
                assert response["ok"], response
                assert response["rung"] in ("exact", "bounds", "sampled")
                assert response["guarantee"]
                assert isinstance(response["exact"], bool)
