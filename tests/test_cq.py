"""Unit tests for repro.logic.cq."""

import pytest

from repro.logic.cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    cq_from_formula,
    homomorphism,
    parse_cq,
    parse_ucq,
    ucq_from_formula,
)
from repro.logic.parser import parse
from repro.logic.terms import Const, Var


def test_hierarchical_paper_examples():
    assert parse_cq("R(x), S(x,y)").is_hierarchical()
    assert not parse_cq("R(x), S(x,y), T(y)").is_hierarchical()


def test_hierarchical_self_join_counterexample():
    # R(x,y), R(y,z) is hierarchical yet #P-hard (Sec. 4) — the class is
    # checked elsewhere; here just the syntactic property.
    assert parse_cq("R(x,y), R(y,z)").is_hierarchical()


def test_at_returns_atom_indices():
    q = parse_cq("R(x), S(x,y), T(y)")
    assert q.at(Var("x")) == {0, 1}
    assert q.at(Var("y")) == {1, 2}


def test_root_variables():
    q = parse_cq("R(x), S(x,y)")
    assert q.root_variables() == {Var("x")}
    assert parse_cq("S(x,y)").root_variables() == {Var("x"), Var("y")}


def test_separator_variable_simple():
    assert parse_cq("R(x), S(x,y)").separator_variable() == Var("x")
    assert parse_cq("R(x), S(x,y), T(y)").separator_variable() is None


def test_separator_requires_consistent_positions():
    # x occurs in both S atoms but at different positions.
    q = parse_cq("S(x,y), S(y,x)")
    assert q.separator_variable() is None


def test_separator_with_repeated_variable_atom():
    q = parse_cq("S(x,x)")
    assert q.separator_variable() == Var("x")


def test_has_self_joins():
    assert parse_cq("R(x,y), R(y,z)").has_self_joins()
    assert not parse_cq("R(x), S(x,y)").has_self_joins()


def test_connected_components_by_variables_and_symbols():
    q = parse_cq("R(x), S(y,z)")
    assert len(q.connected_components()) == 2
    # sharing a symbol keeps atoms connected even without shared variables
    q2 = parse_cq("S(x,y), S(u,v)")
    assert len(q2.connected_components()) == 1
    assert len(q2.connected_components(by_symbols=False)) == 2


def test_conjoin_renames_apart():
    q1 = parse_cq("R(x), S(x,y)")
    q2 = parse_cq("T(x), S(x,y)")
    joined = q1.conjoin(q2)
    assert len(joined.atoms) == 4
    # the second query's variables must have been renamed
    assert len(joined.variables) == 4


def test_homomorphism_found_and_mapping_valid():
    source = parse_cq("S(x,y)")
    target = parse_cq("S(u,u)")
    mapping = homomorphism(source, target)
    assert mapping is not None
    assert mapping[Var("x")] == Var("u")
    assert mapping[Var("y")] == Var("u")


def test_homomorphism_respects_constants():
    source = ConjunctiveQuery((parse_cq("R(x)").atoms[0].substitute({Var("x"): Const("a")}),))
    target = parse_cq("R(y)")
    assert homomorphism(source, target) is None


def test_homomorphism_none_when_predicate_missing():
    assert homomorphism(parse_cq("W(x)"), parse_cq("R(x)")) is None


def test_implies_boolean_containment():
    # R(x),S(x,y) is a stronger event than S(u,v)
    strong = parse_cq("R(x), S(x,y)")
    weak = parse_cq("S(u,v)")
    assert strong.implies(weak)
    assert not weak.implies(strong)


def test_equivalent_renamed_queries():
    q1 = parse_cq("R(x), S(x,y)")
    q2 = parse_cq("S(u,v), R(u)")
    assert q1.equivalent(q2)


def test_core_collapses_redundant_atoms():
    q = parse_cq("S(x,y), S(u,v)")
    core = q.core()
    assert len(core.atoms) == 1


def test_core_keeps_non_redundant():
    q = parse_cq("R(x), S(x,y), T(y)")
    assert len(q.core().atoms) == 3


def test_core_drops_exact_duplicates():
    q = parse_cq("R(x), R(x)")
    assert len(q.core().atoms) == 1


def test_canonical_key_equivalence_invariance():
    q1 = parse_cq("R(x), S(x,y)")
    q2 = parse_cq("S(a,b), R(a)")
    assert q1.canonical_key() == q2.canonical_key()


def test_canonical_key_distinguishes_different_queries():
    assert parse_cq("R(x), S(x,y)").canonical_key() != parse_cq(
        "R(x), S(y,x)"
    ).canonical_key()


def test_ucq_minimize_drops_subsumed():
    u = parse_ucq("S(x,y) | R(u), S(u,v)")
    m = u.minimize()
    assert len(m) == 1
    assert m.disjuncts[0].predicates == {"S"}


def test_ucq_minimize_keeps_one_of_equivalent_pair():
    u = parse_ucq("R(x), S(x,y) | S(a,b), R(a)")
    assert len(u.minimize()) == 1


def test_ucq_equivalence():
    u1 = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    u2 = parse_ucq("T(a), S(a,b) | R(c), S(c,d)")
    assert u1.equivalent(u2)


def test_cq_from_formula():
    q = cq_from_formula(parse("exists x. exists y. (R(x) & S(x,y))"))
    assert len(q.atoms) == 2


def test_cq_from_formula_rejects_disjunction():
    with pytest.raises(ValueError):
        cq_from_formula(parse("exists x. (R(x) | T(x))"))


def test_ucq_from_formula_distributes_exists():
    u = ucq_from_formula(parse("exists x. (R(x) | T(x))"))
    assert len(u) == 2


def test_parse_cq_rejects_trailing():
    with pytest.raises(ValueError):
        parse_cq("R(x), S(x,y) garbage(")


def test_empty_cq_rejected():
    with pytest.raises(ValueError):
        ConjunctiveQuery(())


def test_predicates_property():
    assert parse_ucq("R(x),S(x,y) | T(u)").predicates == {"R", "S", "T"}
