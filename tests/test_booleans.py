"""Unit tests for repro.booleans: expressions, ops and normal forms."""

import gc
import itertools
import threading

import pytest

from repro.booleans.expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BNot,
    BOr,
    BVar,
    band,
    bnot,
    bor,
    bvar,
    evaluate,
)
from repro.booleans.forms import (
    FormSizeExceeded,
    dnf_occurrence_counts,
    from_cnf,
    from_dnf,
    literal,
    literal_sign,
    literal_var,
    to_cnf,
    to_dnf,
)
from repro.booleans.ops import (
    cofactors,
    condition,
    independent_factors,
    is_positive,
    most_frequent_variable,
    substitute_exprs,
    variable_frequencies,
)

x, y, z, u = bvar(0), bvar(1), bvar(2), bvar(3)


def all_assignments(variables):
    variables = sorted(variables)
    for bits in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, bits))


def semantically_equal(f, g):
    variables = f.variables() | g.variables()
    return all(
        evaluate(f, a) == evaluate(g, a) for a in all_assignments(variables)
    )


# -- constructors and simplification ------------------------------------------


def test_and_unit_laws():
    assert band(x, B_TRUE) == x
    assert band(x, B_FALSE) == B_FALSE
    assert band() == B_TRUE


def test_or_unit_laws():
    assert bor(x, B_FALSE) == x
    assert bor(x, B_TRUE) == B_TRUE
    assert bor() == B_FALSE


def test_idempotence_and_commutativity():
    assert band(x, x) == x
    assert band(x, y) == band(y, x)
    assert bor(y, x) == bor(x, y)


def test_complement_law():
    assert band(x, bnot(x)) == B_FALSE
    assert bor(x, bnot(x)) == B_TRUE


def test_double_negation():
    assert bnot(bnot(x)) == x
    assert bnot(B_TRUE) == B_FALSE


def test_flattening():
    f = band(x, band(y, z))
    assert isinstance(f, BAnd)
    assert len(f.parts) == 3


def test_structural_hashing():
    assert hash(band(x, y)) == hash(band(y, x))
    assert band(x, y).key() == band(y, x).key()


def test_variables():
    assert (band(x, bor(y, bnot(z)))).variables() == {0, 1, 2}


def test_node_count():
    assert x.node_count() == 1
    assert band(x, y).node_count() == 3


def test_evaluate():
    f = bor(band(x, y), bnot(z))
    assert evaluate(f, {0: True, 1: True, 2: True})
    assert not evaluate(f, {0: False, 1: True, 2: True})


# -- conditioning and components ------------------------------------------------


def test_condition_basic():
    f = bor(band(x, y), band(bnot(x), z))
    assert condition(f, {0: True}) == y
    assert condition(f, {0: False}) == z


def test_condition_partial():
    f = band(x, y, z)
    assert condition(f, {1: True}) == band(x, z)


def test_cofactors():
    f = bor(x, y)
    lo, hi = cofactors(f, 0)
    assert lo == y and hi == B_TRUE


def test_interning_is_canonical():
    # structurally equal constructions yield the very same object
    f = band(bor(x, y), bor(y, z))
    g = band(bor(y, z), bor(x, y))
    assert f is g
    assert f.nid == g.nid
    assert bvar(0) is x


def test_condition_untouched_subtree_is_identical():
    # var ∉ vars(node) ⇒ condition returns the node itself, not a rebuild
    sub = bor(y, z)
    assert condition(sub, {0: True}) is sub
    assert condition(sub, {0: True, 3: False}) is sub
    # conditioning a parent must hand back untouched children unchanged
    f = band(x, sub)
    assert condition(f, {0: True}) is sub
    g = band(bor(x, y), sub, bor(u, bvar(5)))
    conditioned = condition(g, {0: True})
    assert isinstance(conditioned, BAnd)
    assert any(part is sub for part in conditioned.parts)


def test_cofactor_memoization_stable():
    f = band(bor(x, y), bor(y, z))
    first = cofactors(f, 1)
    second = cofactors(f, 1)
    assert first[0] is second[0] and first[1] is second[1]
    assert first[1] is B_TRUE  # y=1 satisfies both disjuncts


def test_unique_table_releases_dead_expressions():
    # the unique table holds its nodes weakly: once a formula becomes
    # unreachable, gc reclaims it and its entries — kernel memory is
    # bounded by live expressions, not by everything ever built
    from repro.booleans.kernel import DEFAULT_MANAGER

    gc.collect()
    base = len(DEFAULT_MANAGER.unique)
    forest = [bor(bvar(70_000 + i), bvar(71_000 + i)) for i in range(64)]
    grown = len(DEFAULT_MANAGER.unique)
    assert grown >= base + 3 * 64  # 64 disjunctions plus 128 fresh literals
    del forest
    gc.collect()
    assert len(DEFAULT_MANAGER.unique) <= grown - 3 * 64


def test_memo_tables_are_size_capped():
    # memo tables keep strong references, so they are cleared wholesale at
    # memo_limit instead of growing without bound (clearing is sound: the
    # memos are pure caches)
    from repro.booleans.kernel import DEFAULT_MANAGER

    old_limit = DEFAULT_MANAGER.memo_limit
    DEFAULT_MANAGER.memo_limit = 8
    try:
        for i in range(40):
            f = bor(bvar(80_000 + i), bvar(81_000 + i))
            low, high = cofactors(f, 80_000 + i)
            assert low is bvar(81_000 + i) and high is B_TRUE
            assert len(DEFAULT_MANAGER.cofactor_memo) <= 8
    finally:
        DEFAULT_MANAGER.memo_limit = old_limit


def test_kernel_counters_are_thread_local():
    # another thread's interning and memo traffic must not leak into this
    # thread's counters (per-query stats deltas rely on this)
    from repro.booleans.kernel import kernel_statistics

    def churn():
        for i in range(16):
            cofactors(bor(bvar(90_000 + i), bvar(91_000 + i)), 90_000 + i)

    before = kernel_statistics()
    worker = threading.Thread(target=churn)
    worker.start()
    worker.join()
    after = kernel_statistics()
    assert after.intern_misses == before.intern_misses
    assert after.cofactor_misses == before.cofactor_misses
    # while the shared tables did absorb the worker's nodes
    assert after.unique_nodes > before.unique_nodes


def test_independent_factors_and():
    # flattening makes each variable its own component here
    f = band(band(x, y), band(z, u))
    assert len(independent_factors(f)) == 4
    # with shared variables inside each side, two components remain
    g = band(bor(x, y), bor(x, y), bor(z, u))
    assert len(independent_factors(g)) == 2


def test_independent_factors_connected():
    f = band(bor(x, y), bor(y, z))
    assert len(independent_factors(f)) == 1


def test_independent_factors_or():
    f = bor(band(x, y), band(z, u))
    assert len(independent_factors(f)) == 2


def test_variable_frequencies():
    f = bor(band(x, y), band(x, z))
    counts = variable_frequencies(f)
    assert counts[0] == 2 and counts[1] == 1


def test_most_frequent_variable():
    f = bor(band(x, y), band(x, z))
    assert most_frequent_variable(f) == 0
    with pytest.raises(ValueError):
        most_frequent_variable(B_TRUE)


def test_is_positive():
    assert is_positive(bor(band(x, y), z))
    assert not is_positive(band(x, bnot(y)))


def test_substitute_exprs():
    f = band(x, y)
    g = substitute_exprs(f, {0: bor(z, u)})
    assert semantically_equal(g, band(bor(z, u), y))


# -- normal forms -----------------------------------------------------------------


def test_literal_encoding_round_trip():
    lit = literal(5, False)
    assert literal_var(lit) == 5
    assert not literal_sign(lit)
    assert literal_sign(literal(5, True))


def test_to_dnf_simple():
    f = band(bor(x, y), z)
    clauses = to_dnf(f)
    assert frozenset({literal(0), literal(2)}) in clauses
    assert frozenset({literal(1), literal(2)}) in clauses


def test_dnf_round_trip_semantics():
    f = bor(band(x, bnot(y)), band(y, z), bnot(z))
    assert semantically_equal(f, from_dnf(to_dnf(f)))


def test_cnf_round_trip_semantics():
    f = bor(band(x, bnot(y)), band(y, z))
    assert semantically_equal(f, from_cnf(to_cnf(f)))


def test_dnf_drops_contradictions():
    f = band(x, bnot(x))
    assert to_dnf(f) == []


def test_dnf_prunes_subsumed():
    f = bor(x, band(x, y))
    assert to_dnf(f) == [frozenset({literal(0)})]


def test_dnf_size_guard():
    # (x0 ∨ y0) ∧ (x1 ∨ y1) ∧ ... blows up exponentially in DNF
    parts = [bor(bvar(2 * i), bvar(2 * i + 1)) for i in range(20)]
    with pytest.raises(FormSizeExceeded):
        to_dnf(BAnd.of(parts), max_clauses=1000)


def test_dnf_occurrence_counts():
    clauses = to_dnf(bor(band(x, y), band(x, z)))
    counts = dnf_occurrence_counts(clauses)
    assert counts == {0: 2, 1: 1, 2: 1}


def test_true_false_normal_forms():
    assert to_dnf(B_TRUE) == [frozenset()]
    assert to_dnf(B_FALSE) == []
    assert to_cnf(B_FALSE) == [frozenset()]
    assert to_cnf(B_TRUE) == []
