"""prodb-flow: the whole-program concurrency analyzer.

Each rule gets a violating fixture and a clean one, built as mini-projects
under tmp_path (a pyproject.toml marks the root). The self-analysis test
runs the analyzer over the repository's own ``src`` tree and asserts it is
clean — the same gate CI enforces. The dynamic half (the Eraser-style
lockset race detector from ``repro.sanitize``) is property-tested with
hypothesis: an unsynchronized two-thread dict workload must be flagged no
matter the operation mix, and the same workload under one consistent
RankedLock must stay quiet.
"""

import sys
import threading
from contextlib import contextmanager
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

TOOLS = str(Path(__file__).resolve().parent.parent / "tools")
if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)

from prodb_flow import RULES, analyze, build_program  # noqa: E402
from prodb_flow.locks import LocksetPass  # noqa: E402
from prodb_flow.report import write_lockgraph, write_sarif  # noqa: E402

from repro.sanitize import (  # noqa: E402
    DataRaceError,
    RankedLock,
    audited_dict,
    prodb_sanitize,
)

PYPROJECT = '[project]\nname = "fixture"\n'

#: A miniature rank system every fixture can import; mirrors the shape of
#: ``repro.sanitize`` (the PF102 scope check exempts the defining module).
SANITIZE = """\
import threading

RANK_LOW = 1
RANK_MID = 5
RANK_HIGH = 9


class RankedLock:
    def __init__(self, rank, name, reentrant=False):
        self.rank = rank
        self.name = name
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def __enter__(self):
        self._lock.acquire()
        return self

    def __exit__(self, *exc):
        self._lock.release()
"""


def make_project(tmp_path: Path, files: dict) -> Path:
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    files = {"pkg/__init__.py": "", "pkg/sanitize.py": SANITIZE, **files}
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


def run_flow(tmp_path: Path, files: dict):
    root = make_project(tmp_path, files)
    program = build_program([str(root / "pkg")], root=str(root))
    return analyze(program)


def codes(findings):
    return [f.code for f in findings]


# -- PF101: rank inversion ----------------------------------------------------


INVERTED = """\
from .sanitize import RANK_HIGH, RANK_LOW, RankedLock


class Engine:
    def __init__(self):
        self.high = RankedLock(RANK_HIGH, "engine.high")
        self.low = RankedLock(RANK_LOW, "engine.low")

    def _helper(self):
        with self.low:
            return 1

    def entry(self):
        with self.high:
            return self._helper()
"""


def test_pf101_rank_inversion_through_helper(tmp_path):
    findings = run_flow(tmp_path, {"pkg/engine.py": INVERTED})
    assert codes(findings) == ["PF101"]
    finding = findings[0]
    # The message names the chain and both acquisition sites.
    assert "engine.low" in finding.message and "engine.high" in finding.message
    assert "chain:" in finding.message
    assert "pkg/engine.py:10" in finding.message  # acquiring site in chain
    assert "pkg/engine.py:14" in finding.message  # held-lock site
    assert finding.related, "inversion must carry the held lock's location"
    assert finding.related[0].line == 14


def test_pf101_clean_when_monotonic(tmp_path):
    ordered = INVERTED.replace(
        "with self.high:\n            return self._helper()",
        "return self._helper()",
    )
    assert run_flow(tmp_path, {"pkg/engine.py": ordered}) == []


def test_pf101_equal_rank_allowed_only_through_may_alias(tmp_path):
    shared = """\
from .sanitize import RANK_MID, RankedLock


class Metric:
    def __init__(self, lock=None):
        self._lock = lock if lock is not None else RankedLock(RANK_MID, "m")

    def inc(self):
        with self._lock:
            pass


class Registry:
    def __init__(self):
        self._lock = RankedLock(RANK_MID, "registry")
        self.metric = Metric(self._lock)

    def bump(self):
        with self._lock:
            self.metric.inc()
"""
    assert run_flow(tmp_path, {"pkg/metrics.py": shared}) == []


# -- PF102 / PF104: raw and unresolvable locks --------------------------------


def test_pf102_raw_lock_flagged_and_rank_pragma_silences(tmp_path):
    raw = """\
import threading


class Holder:
    def __init__(self):
        self._lock = threading.Lock()
"""
    findings = run_flow(tmp_path, {"pkg/holder.py": raw})
    assert codes(findings) == ["PF102"]
    assert "escapes the rank system" in findings[0].message

    annotated = raw.replace(
        "self._lock = threading.Lock()",
        "self._lock = threading.Lock()  "
        "# prodb-lint: rank=7 -- leaf lock, audited by hand",
    )
    assert run_flow(tmp_path, {"pkg/holder.py": annotated}) == []


def test_pf104_unresolvable_rank(tmp_path):
    dynamic = """\
from .sanitize import RankedLock


def build(rank):
    lock = RankedLock(rank, "dynamic")
    return lock
"""
    findings = run_flow(tmp_path, {"pkg/dyn.py": dynamic})
    assert codes(findings) == ["PF104"]


# -- PF103: await under lock --------------------------------------------------


def test_pf103_await_under_lock(tmp_path):
    parked = """\
import asyncio

from .sanitize import RANK_LOW, RankedLock


class Engine:
    def __init__(self):
        self.lock = RankedLock(RANK_LOW, "engine.lock")

    async def bad(self):
        with self.lock:
            await asyncio.sleep(0)

    async def good(self):
        with self.lock:
            value = 1
        await asyncio.sleep(0)
        return value
"""
    findings = run_flow(tmp_path, {"pkg/engine.py": parked})
    assert codes(findings) == ["PF103"]
    assert findings[0].line == 12


# -- PF201 / PF202: event-loop confinement ------------------------------------


CROSS_THREAD = """\
import asyncio
import threading


class Service:
    def __init__(self):
        self._writers: set[asyncio.StreamWriter] = set()
        self._loop = None

    def _bg(self):
        for writer in list(self._writers):
            writer.write(b"x")

    def start(self):
        threading.Thread(target=self._bg).start()
"""


def test_pf201_cross_thread_writer_touch(tmp_path):
    findings = run_flow(tmp_path, {"pkg/service.py": CROSS_THREAD})
    assert "PF201" in codes(findings)
    finding = next(f for f in findings if f.code == "PF201")
    assert "Service._writers" in finding.message
    assert finding.related, "confinement breach must name the thread entry"


def test_pf201_quiet_when_routed_threadsafe(tmp_path):
    routed = CROSS_THREAD.replace(
        "        for writer in list(self._writers):\n"
        "            writer.write(b\"x\")",
        "        self._loop.call_soon_threadsafe(self._touch)\n\n"
        "    def _touch(self):\n"
        "        for writer in list(self._writers):\n"
        "            writer.write(b\"x\")",
    )
    assert run_flow(tmp_path, {"pkg/service.py": routed}) == []


def test_pf201_pragma_declared_loop_owned(tmp_path):
    declared = """\
import threading


class Service:
    def __init__(self):
        self._jobs = {}  # prodb-lint: loop-owned -- settled by loop callbacks

    def _bg(self):
        self._jobs.clear()

    def start(self):
        threading.Thread(target=self._bg).start()
"""
    findings = run_flow(tmp_path, {"pkg/service.py": declared})
    assert "PF201" in codes(findings)
    assert "Service._jobs" in findings[0].message


def test_pf202_loop_owned_handoff_to_thread(tmp_path):
    handoff = """\
import asyncio
import threading


def _consume(writer):
    writer.write(b"x")


class Service:
    def __init__(self):
        self.writer: asyncio.StreamWriter = None

    def start(self):
        threading.Thread(target=_consume, args=(self.writer,)).start()
"""
    findings = run_flow(tmp_path, {"pkg/service.py": handoff})
    assert "PF202" in codes(findings)


# -- PF301 / PF302: the shm and pickle boundaries -----------------------------


SHM = """\
class AttachedShards:
    def __init__(self, columnar):
        self.columnar = columnar

    def to_tid(self):
        return dict(self.columnar)


def attach(handle) -> "AttachedShards":
    return AttachedShards(handle)
"""


def test_pf301_mutation_of_attached_shards(tmp_path):
    mutator = """\
from .shm import attach


def corrupt(handle):
    shards = attach(handle)
    view = shards.columnar
    view[0] = 1
    view.fill(0)
"""
    findings = run_flow(
        tmp_path, {"pkg/shm.py": SHM, "pkg/mutate.py": mutator}
    )
    assert codes(findings) == ["PF301", "PF301"]


def test_pf301_interprocedural_taint(tmp_path):
    mutator = """\
from .shm import attach


def helper(columnar):
    columnar.sort()


def entry(handle):
    helper(attach(handle).columnar)
"""
    files = {"pkg/shm.py": SHM, "pkg/mutate.py": mutator}
    # The taint reaches helper() through the argument... unless the value
    # passes through a call first.
    program = build_program(
        [str(make_project(tmp_path, files) / "pkg")], root=str(tmp_path)
    )
    found = analyze(program)
    assert "PF301" in codes(found)


def test_pf301_clean_through_call_results(tmp_path):
    decoder = """\
from .shm import attach


def decode(handle):
    shards = attach(handle)
    rebuilt = shards.to_tid()
    rebuilt["x"] = 1
    return rebuilt
"""
    findings = run_flow(
        tmp_path, {"pkg/shm.py": SHM, "pkg/decode.py": decoder}
    )
    assert findings == []


def test_pf302_lambda_and_bound_method(tmp_path):
    boundary = """\
import multiprocessing


def _worker_main(index):
    return index


class Pool:
    def spawn(self, index, request_queue):
        bad = multiprocessing.Process(target=self._handle, args=(index,))
        good = multiprocessing.Process(target=_worker_main, args=(index,))
        request_queue.put({"op": "run", "fn": lambda: 1})
        request_queue.put({"op": "run", "seq": index})
        return bad, good

    def _handle(self, index):
        return index
"""
    findings = run_flow(tmp_path, {"pkg/pool.py": boundary})
    assert codes(findings) == ["PF302", "PF302"]
    assert any("bound method" in f.message for f in findings)
    assert any("lambda" in f.message for f in findings)


# -- pragmas ------------------------------------------------------------------


def test_pf000_suppression_without_justification(tmp_path):
    raw = """\
import threading


class Holder:
    def __init__(self):
        self._lock = threading.Lock()  # prodb-lint: disable=PF102
"""
    findings = run_flow(tmp_path, {"pkg/holder.py": raw})
    assert codes(findings) == ["PF000"]

    justified = raw.replace(
        "# prodb-lint: disable=PF102",
        "# prodb-lint: disable=PF102 -- guards nothing rank-ordered",
    )
    assert run_flow(tmp_path, {"pkg/holder.py": justified}) == []


# -- output formats -----------------------------------------------------------


def test_sarif_and_lockgraph(tmp_path):
    root = make_project(tmp_path, {"pkg/engine.py": INVERTED})
    program = build_program([str(root / "pkg")], root=str(root))
    lockset = LocksetPass(program)
    findings = lockset.run()
    sarif = write_sarif(findings, RULES)
    assert '"ruleId": "PF101"' in sarif
    assert '"name": "prodb-flow"' in sarif
    assert "relatedLocations" in sarif
    dot = write_lockgraph(lockset.lock_nodes, lockset.edges)
    assert dot.startswith("digraph lockorder")
    assert "color=red" in dot  # the inversion edge
    assert "rank 9" in dot and "rank 1" in dot


def test_cli_exit_codes(tmp_path):
    from prodb_flow.cli import main

    root = make_project(tmp_path, {"pkg/engine.py": INVERTED})
    assert main([str(root / "pkg"), "--root", str(root)]) == 1
    assert main(["--list-rules"]) == 0


# -- self-analysis ------------------------------------------------------------


def test_repo_src_tree_is_clean():
    repo = Path(__file__).resolve().parent.parent
    program = build_program([str(repo / "src")], root=str(repo))
    findings = analyze(program)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_lockgraph_is_rank_monotonic():
    repo = Path(__file__).resolve().parent.parent
    program = build_program([str(repo / "src")], root=str(repo))
    lockset = LocksetPass(program)
    lockset.run()
    ranks = {key: rank for key, (_, rank) in lockset.lock_nodes.items()}
    for edge in lockset.edges:
        assert not edge.violation, edge
        src_rank, dst_rank = ranks.get(edge.src), ranks.get(edge.dst)
        if src_rank is not None and dst_rank is not None:
            assert src_rank < dst_rank, edge


# -- the dynamic race detector ------------------------------------------------


@contextmanager
def sanitizing():
    """Enable the sanitizer for one block (hypothesis re-runs test bodies
    without resetting function-scoped fixtures, so a context manager it
    is)."""
    previous = prodb_sanitize(True)
    try:
        yield
    finally:
        prodb_sanitize(previous)


def _run_two_threads(work):
    """Run *work* on two distinct threads, one strictly after the other.

    Eraser-style lockset checking flags discipline violations without
    needing a real interleaving — but the first thread must stay alive
    while the second runs, or the OS may reuse its thread ident and the
    detector would (correctly) see a single thread.
    """
    errors = []
    first_done = threading.Event()
    release_first = threading.Event()

    def first():
        try:
            work()
        except DataRaceError as error:
            errors.append(error)
        first_done.set()
        release_first.wait(10)

    def second():
        first_done.wait(10)
        try:
            work()
        except DataRaceError as error:
            errors.append(error)

    thread_a = threading.Thread(target=first)
    thread_b = threading.Thread(target=second)
    thread_a.start()
    thread_b.start()
    thread_b.join()
    release_first.set()
    thread_a.join()
    return errors


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["set", "get", "pop", "len"]),
                  st.integers(0, 7)),
        min_size=4,
        max_size=30,
    )
)
def test_unsynchronized_shared_dict_is_flagged(ops):
    if not any(op in ("set", "pop") for op, _ in ops):
        ops = ops + [("set", 0)]
    with sanitizing():
        shared = audited_dict("fixture.unsync")

        def work():
            for op, key in ops:
                if op == "set":
                    shared[key] = key
                elif op == "get":
                    shared.get(key)
                elif op == "pop":
                    shared.pop(key, None)
                else:
                    len(shared)

        errors = _run_two_threads(work)
    assert errors, "unsynchronized cross-thread writes must be flagged"
    message = str(errors[0])
    assert message.count("thread") >= 2  # both access traces present
    assert "fixture.unsync" in message


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["set", "get", "pop", "len"]),
                  st.integers(0, 7)),
        min_size=4,
        max_size=30,
    )
)
def test_rankedlock_guarded_dict_is_quiet(ops):
    with sanitizing():
        shared = audited_dict("fixture.guarded")
        guard = RankedLock(25, "fixture.guard")

        def work():
            for op, key in ops:
                with guard:
                    if op == "set":
                        shared[key] = key
                    elif op == "get":
                        shared.get(key)
                    elif op == "pop":
                        shared.pop(key, None)
                    else:
                        len(shared)

        assert _run_two_threads(work) == []


def test_race_report_carries_both_stack_traces():
    with sanitizing():
        shared = audited_dict("fixture.traces")

        def work():
            shared["k"] = 1

        errors = _run_two_threads(work)
    assert errors
    message = str(errors[0])
    assert "current access (write)" in message
    assert "previous access" in message
    assert message.count("test_prodb_flow.py") >= 2


def test_audited_dict_plain_when_disabled():
    previous = prodb_sanitize(False)
    try:
        assert type(audited_dict("plain")) is dict
    finally:
        prodb_sanitize(previous)
