"""Unit tests for repro.wmc: brute force, DPLL, sampling, Karp–Luby."""

import random
from fractions import Fraction

import pytest

from repro.booleans.expr import B_FALSE, B_TRUE, band, bnot, bor, bvar
from repro.booleans.forms import to_dnf
from repro.wmc.brute import (
    brute_force_wmc,
    brute_force_wmc_exact,
    model_count,
    probability_from_weight,
    weight_from_probability,
    weighted_model_count,
)
from repro.wmc.dpll import DPLLCounter, compile_decision_dnnf, dpll_probability
from repro.wmc.karp_luby import clause_probability, karp_luby, karp_luby_samples
from repro.wmc.sampling import hoeffding_samples, monte_carlo_wmc

from conftest import close

x, y, z = bvar(0), bvar(1), bvar(2)
P = {0: 0.5, 1: 0.3, 2: 0.8}


def test_brute_force_single_variable():
    assert close(brute_force_wmc(x, P), 0.5)
    assert close(brute_force_wmc(bnot(x), P), 0.5)


def test_brute_force_and_or():
    assert close(brute_force_wmc(band(x, y), P), 0.15)
    assert close(brute_force_wmc(bor(x, y), P), 1 - 0.5 * 0.7)


def test_brute_force_constants():
    assert brute_force_wmc(B_TRUE, P) == 1.0  # prodb-lint: exact
    assert brute_force_wmc(B_FALSE, P) == 0.0  # prodb-lint: exact


def test_brute_force_exact_fractions():
    probabilities = {0: Fraction(1, 2), 1: Fraction(1, 3)}
    got = brute_force_wmc_exact(bor(x, y), probabilities)
    assert got == Fraction(2, 3)


def test_model_count_majority():
    # (x∨y)(x∨z)(y∨z): 4 models out of 8 (the Fig. 3 formula)
    f = band(bor(x, y), bor(x, z), bor(y, z))
    assert model_count(f) == 4


def test_model_count_with_universe():
    assert model_count(x, variables=[0, 1]) == 2


def test_weighted_model_count_appendix():
    # Figure 3: weight(F) = w2w3 + w1w3 + w1w2 + w1w2w3, Z = Π(1+wᵢ)
    w = {0: 2.0, 1: 3.0, 2: 5.0}
    f = band(bor(x, y), bor(x, z), bor(y, z))
    weight, partition = weighted_model_count(f, w)
    assert close(weight, 3 * 5 + 2 * 5 + 2 * 3 + 2 * 3 * 5)
    assert close(partition, 3 * 4 * 6)


def test_weight_probability_duality():
    for p in (0.0, 0.25, 0.5, 0.9):
        assert close(probability_from_weight(weight_from_probability(p)), p)
    assert probability_from_weight(float("inf")) == 1.0  # prodb-lint: exact
    assert weight_from_probability(1.0) == float("inf")


# -- DPLL ---------------------------------------------------------------------


def test_dpll_matches_brute_force_simple():
    f = bor(band(x, y), band(bnot(x), z))
    assert close(dpll_probability(f, P), brute_force_wmc(f, P))


def test_dpll_constants():
    assert dpll_probability(B_TRUE, P) == 1.0  # prodb-lint: exact
    assert dpll_probability(B_FALSE, P) == 0.0  # prodb-lint: exact


def test_dpll_random_formulas_match_brute_force():
    rng = random.Random(4)
    variables = [bvar(i) for i in range(6)]
    probabilities = {i: rng.uniform(0.1, 0.9) for i in range(6)}
    for _ in range(25):
        terms = []
        for _ in range(rng.randint(1, 4)):
            literals = [
                v if rng.random() < 0.5 else bnot(v)
                for v in rng.sample(variables, rng.randint(1, 3))
            ]
            terms.append(band(*literals))
        f = bor(*terms)
        assert close(
            dpll_probability(f, probabilities),
            brute_force_wmc(f, probabilities),
        )


def test_dpll_without_cache_or_components():
    f = bor(band(x, y), band(y, z))
    for cache in (True, False):
        for components in (True, False):
            got = dpll_probability(f, P, use_cache=cache, use_components=components)
            assert close(got, brute_force_wmc(f, P))


def test_dpll_statistics_cache_hits():
    # x∧a ∨ x∧b …: conditioning on x creates shared subformulas
    f = band(bor(x, y), bor(x, y), bor(y, z))
    counter = DPLLCounter()
    result = counter.run(f, P)
    assert result.statistics.calls > 0
    assert result.statistics.shannon_expansions > 0


def test_dpll_fixed_variable_order():
    f = bor(band(x, y), band(y, z))
    got = dpll_probability(f, P, variable_order=[2, 1, 0])
    assert close(got, brute_force_wmc(f, P))


def test_trace_is_decision_dnnf():
    f = bor(band(x, y), band(y, z))
    result = compile_decision_dnnf(f, P)
    assert result.circuit is not None
    assert result.circuit.check_decision_dnnf()
    assert close(result.circuit.wmc(P), result.probability)


def test_trace_components_produce_and_nodes():
    # conditioning on y disconnects x and z
    f = band(bor(x, y), bor(y, z))
    result = compile_decision_dnnf(f, P)
    assert result.trace_size >= 3
    assert close(result.probability, brute_force_wmc(f, P))


def test_or_components_option_rejected_with_trace():
    counter = DPLLCounter(record_trace=True, use_or_components=True)
    with pytest.raises(ValueError):
        counter.run(bor(x, y), P)


def test_or_components_probability_correct():
    f = bor(band(x, y), z)
    counter = DPLLCounter(use_or_components=True)
    assert close(counter.run(f, P).probability, brute_force_wmc(f, P))


# -- Monte Carlo ------------------------------------------------------------------


def test_hoeffding_sample_size():
    assert hoeffding_samples(0.1, 0.05) == 185


def test_hoeffding_rejects_bad_parameters():
    with pytest.raises(ValueError):
        hoeffding_samples(0.0, 0.5)


def test_monte_carlo_close_to_truth():
    f = bor(band(x, y), band(bnot(x), z))
    truth = brute_force_wmc(f, P)
    estimate = monte_carlo_wmc(f, P, rng=random.Random(1), samples=30000)
    assert abs(estimate.estimate - truth) < 0.02


# -- Karp–Luby ----------------------------------------------------------------------


def test_clause_probability():
    clause = frozenset({1, -2})  # x0 ∧ ¬x1
    assert close(clause_probability(clause, P), 0.5 * 0.7)


def test_karp_luby_sample_bound():
    assert karp_luby_samples(10, 0.1, 0.05) > 10000


def test_karp_luby_close_to_truth():
    f = bor(band(x, y), band(y, z), band(x, z))
    truth = brute_force_wmc(f, P)
    clauses = to_dnf(f)
    estimate = karp_luby(clauses, P, rng=random.Random(2), samples=40000)
    assert abs(estimate.estimate - truth) / truth < 0.05


def test_karp_luby_small_probability_relative_error():
    tiny = {0: 0.001, 1: 0.001, 2: 0.001}
    f = bor(band(x, y), band(y, z))
    truth = brute_force_wmc(f, tiny)
    clauses = to_dnf(f)
    estimate = karp_luby(clauses, tiny, rng=random.Random(3), samples=50000)
    assert abs(estimate.estimate - truth) / truth < 0.2


def test_karp_luby_empty():
    assert karp_luby([], P).estimate == 0.0  # prodb-lint: exact
