"""Unit tests for repro.lineage: grounding queries to Boolean formulas."""

import pytest

from repro.booleans.expr import B_FALSE, B_TRUE, evaluate
from repro.lineage.build import (
    VariablePool,
    answer_lineages,
    lineage_of_cq,
    lineage_of_sentence,
    lineage_of_ucq,
)
from repro.logic.cq import parse_cq, parse_ucq
from repro.logic.parser import parse
from repro.logic.terms import Var
from repro.wmc.brute import brute_force_wmc

from conftest import close


def test_lineage_single_fact(small_db):
    lin = lineage_of_sentence(parse("R('a')"), small_db)
    assert lin.variable_count == 1
    assert lin.fact(0) == ("R", ("a",))


def test_lineage_absent_fact_is_false(small_db):
    lin = lineage_of_sentence(parse("R('zzz')"), small_db)
    assert lin.expr == B_FALSE


def test_lineage_negated_absent_fact_is_true(small_db):
    lin = lineage_of_sentence(parse("~R('zzz')"), small_db)
    assert lin.expr == B_TRUE


def test_lineage_requires_sentence(small_db):
    with pytest.raises(ValueError):
        lineage_of_sentence(parse("R(x)"), small_db)


def test_lineage_matches_possible_worlds(small_db):
    sentence = parse("exists x. exists y. (R(x) & S(x,y))")
    lin = lineage_of_sentence(sentence, small_db)
    got = brute_force_wmc(lin.expr, lin.probabilities())
    want = small_db.brute_force_probability(sentence)
    assert close(got, want)


def test_lineage_forall_sentence(small_db):
    sentence = parse("forall x. forall y. (~S(x,y) | R(x))")
    lin = lineage_of_sentence(sentence, small_db)
    got = brute_force_wmc(lin.expr, lin.probabilities())
    want = small_db.brute_force_probability(sentence)
    assert close(got, want)


def test_cq_lineage_equals_sentence_lineage(small_db):
    cq = parse_cq("R(x), S(x,y)")
    lin_cq = lineage_of_cq(cq, small_db)
    lin_fo = lineage_of_sentence(cq.to_formula(), small_db)
    p_cq = brute_force_wmc(lin_cq.expr, lin_cq.probabilities())
    p_fo = brute_force_wmc(lin_fo.expr, lin_fo.probabilities())
    assert close(p_cq, p_fo)


def test_cq_lineage_with_constants(small_db):
    cq = parse_cq("S('a', y)")
    lin = lineage_of_cq(cq, small_db)
    facts = {lin.fact(i) for i in range(lin.variable_count)}
    assert facts == {("S", ("a", "a")), ("S", ("a", "b"))}


def test_cq_lineage_repeated_variable(small_db):
    cq = parse_cq("S(x, x)")
    lin = lineage_of_cq(cq, small_db)
    facts = {lin.fact(i) for i in range(lin.variable_count)}
    assert facts == {("S", ("a", "a")), ("S", ("b", "b"))}


def test_ucq_lineage(small_db):
    u = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    lin = lineage_of_ucq(u, small_db)
    got = brute_force_wmc(lin.expr, lin.probabilities())
    want = small_db.brute_force_probability(
        parse(
            "(exists x. exists y. (R(x) & S(x,y))) | "
            "(exists u. exists v. (T(u) & S(u,v)))"
        )
    )
    assert close(got, want)


def test_shared_pool_across_builders(small_db):
    pool = VariablePool()
    lin1 = lineage_of_cq(parse_cq("R(x), S(x,y)"), small_db, pool)
    lin2 = lineage_of_cq(parse_cq("T(u), S(u,v)"), small_db, pool)
    shared = lin1.expr.variables() & lin2.expr.variables()
    assert shared  # the S tuples are shared variables


def test_answer_lineages(small_db):
    cq = parse_cq("R(x), S(x,y)")
    answers, pool = answer_lineages(cq, (Var("x"),), small_db)
    assert set(answers) == {("a",), ("b",)}
    probabilities = pool.probability_map()
    p_a = brute_force_wmc(answers[("a",)], probabilities)
    # answer 'a': R(a) ∧ (S(a,a) ∨ S(a,b))
    want = 0.5 * (1 - (1 - 0.8) * (1 - 0.3))
    assert close(p_a, want)


def test_answer_lineages_empty_when_no_match(small_db):
    cq = parse_cq("R(x), S(x, x), T(x)")
    answers, _ = answer_lineages(cq, (Var("x"),), small_db)
    # only x=a and x=b have S(x,x); both have R and T, so both answer
    assert set(answers) == {("a",), ("b",)}


def test_probabilities_map_alignment(small_db):
    lin = lineage_of_cq(parse_cq("R(x)"), small_db)
    probabilities = lin.probabilities()
    for index, fact in enumerate(lin.pool.fact_of_var):
        assert probabilities[index] == small_db.probability_of_fact(*fact)
