"""Unit tests for CSV I/O and the command-line interface."""

import pytest

from repro.cli import main
from repro.relational.io import load_relation, load_tid, save_relation, save_tid
from repro.relational.relation import Relation

from conftest import close


@pytest.fixture
def csv_dir(tmp_path):
    (tmp_path / "R.csv").write_text("x,P\na,0.5\nb,0.25\n")
    (tmp_path / "S.csv").write_text("x,y,P\na,a,0.8\na,b,0.3\nb,b,0.9\n")
    return tmp_path


def test_load_relation(csv_dir):
    relation = load_relation(csv_dir / "S.csv")
    assert relation.name == "S"
    assert relation.attributes == ("x", "y")
    assert close(relation.probability(("a", "b")), 0.3)


def test_load_relation_without_probability_column(tmp_path):
    path = tmp_path / "D.csv"
    path.write_text("x\na\nb\n")
    relation = load_relation(path)
    assert relation.is_deterministic()
    assert len(relation) == 2


def test_load_relation_errors(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_relation(empty)
    bad = tmp_path / "bad.csv"
    bad.write_text("x,P\na,notanumber\n")
    with pytest.raises(ValueError, match="bad probability"):
        load_relation(bad)
    short = tmp_path / "short.csv"
    short.write_text("x,y,P\na,0.5\n")
    with pytest.raises(ValueError, match="expected 2 values"):
        load_relation(short)


def test_round_trip(tmp_path):
    relation = Relation("R", ("x",), {("a",): 0.5, ("b",): 0.25})
    path = tmp_path / "R.csv"
    save_relation(relation, path)
    loaded = load_relation(path)
    assert loaded.rows == relation.rows


def test_load_tid(csv_dir):
    db = load_tid([csv_dir / "R.csv", csv_dir / "S.csv"])
    assert set(db.relations) == {"R", "S"}
    assert close(db.probability_of_fact("R", ("a",)), 0.5)


def test_load_tid_duplicate_rejected(csv_dir):
    with pytest.raises(ValueError):
        load_tid([csv_dir / "R.csv", csv_dir / "R.csv"])


def test_save_tid_round_trip(csv_dir, tmp_path):
    db = load_tid([csv_dir / "R.csv", csv_dir / "S.csv"])
    out = tmp_path / "out"
    written = save_tid(db, out)
    assert len(written) == 2
    reloaded = load_tid(written)
    assert list(reloaded.facts()) == list(db.facts())


# -- CLI -------------------------------------------------------------------------


def test_cli_query(csv_dir, capsys):
    code = main(
        ["query", str(csv_dir / "R.csv"), str(csv_dir / "S.csv"), "-q", "R(x), S(x,y)"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "probability" in out
    assert "lifted" in out


def test_cli_query_sentence(csv_dir, capsys):
    code = main(
        [
            "query",
            str(csv_dir / "R.csv"),
            str(csv_dir / "S.csv"),
            "-q",
            "forall x. forall y. (S(x,y) -> R(x))",
            "-m",
            "brute-force",
        ]
    )
    assert code == 0
    assert "brute-force" in capsys.readouterr().out


def test_cli_explain(csv_dir, capsys):
    code = main(
        [
            "query",
            str(csv_dir / "R.csv"),
            str(csv_dir / "S.csv"),
            "-q",
            "R(x), S(x,y)",
            "--explain",
        ]
    )
    assert code == 0
    assert "query method" in capsys.readouterr().out


def test_cli_safety(capsys):
    assert main(["safety", "-q", "R(x), S(x,y), T(y)"]) == 0
    assert "#P-hard" in capsys.readouterr().out
    assert main(["safety", "-q", "R(x), S(x,y)"]) == 0
    assert "PTIME" in capsys.readouterr().out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_cli_query_stats(csv_dir, capsys):
    code = main(
        [
            "query",
            str(csv_dir / "R.csv"),
            str(csv_dir / "S.csv"),
            "-q",
            "R(x), S(x,y)",
            "--stats",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "stage times" in out
    assert "total=" in out


def test_cli_query_stats_kernel_counters(csv_dir, capsys):
    # the grounded route surfaces the hash-consing kernel's counters
    code = main(
        [
            "query",
            str(csv_dir / "R.csv"),
            str(csv_dir / "S.csv"),
            "-q",
            "R(x), S(x,y)",
            "-m",
            "dpll",
            "--stats",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "kernel_unique_nodes=" in out
    assert "cofactor_memo_hits=" in out
    assert "cofactor-memo hits" in out  # detail line mentions the memo too


def test_cli_query_seed_reproducible(csv_dir, capsys):
    argv = [
        "query",
        str(csv_dir / "R.csv"),
        str(csv_dir / "S.csv"),
        "-q",
        "R(x), S(x,y)",
        "-m",
        "karp-luby",
        "--seed",
        "42",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_cli_batch(csv_dir, capsys):
    code = main(
        [
            "batch",
            str(csv_dir / "R.csv"),
            str(csv_dir / "S.csv"),
            "-q",
            "R(x), S(x,y)",
            "-q",
            "S(x,y)",
            "--repeat",
            "3",
            "--stats",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("P(R(x), S(x,y))") == 3
    assert "[cached]" in out
    assert "answer cache" in out
    assert "hit rate" in out


def test_cli_batch_serial_executor(csv_dir, capsys):
    code = main(
        [
            "batch",
            str(csv_dir / "R.csv"),
            "-q",
            "R(x)",
            "--executor",
            "serial",
        ]
    )
    assert code == 0
    assert "P(R(x))" in capsys.readouterr().out


def test_cli_batch_rejects_bad_repeat(csv_dir, capsys):
    code = main(
        ["batch", str(csv_dir / "R.csv"), "-q", "R(x)", "--repeat", "0"]
    )
    assert code == 2


def test_cli_query_malformed_query_one_line_error(csv_dir, capsys):
    """A parse error exits 2 with one stderr line, never a traceback."""
    code = main(["query", str(csv_dir / "R.csv"), "-q", "R(x,"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error: ")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err


def test_cli_batch_malformed_query_one_line_error(csv_dir, capsys):
    code = main(["batch", str(csv_dir / "R.csv"), "-q", "R(x), ???"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error: ")
    assert "Traceback" not in captured.err


def test_cli_safety_malformed_query_one_line_error(capsys):
    code = main(["safety", "-q", "R(x"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error: ")


def test_cli_keyboard_interrupt_exits_130(csv_dir, capsys, monkeypatch):
    """Ctrl-C mid-command exits 130 with a one-line message, no traceback."""
    import repro.cli as cli

    def interrupted(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_cmd_query", interrupted)
    code = main(["query", str(csv_dir / "R.csv"), "-q", "R(x)"])
    captured = capsys.readouterr()
    assert code == 130
    assert captured.err.strip() == "interrupted"


def test_cli_serve_requires_files_or_demo(capsys):
    code = main(["serve"])
    captured = capsys.readouterr()
    assert code == 2
    assert "CSV files" in captured.err
