"""Conditioning: differential tests against possible-world enumeration.

Every conditioned artifact — ``P(Q | Γ)``, per-fact posteriors, top-k
worlds, what-if derivations, and the server round-trip in both modes —
is checked against brute-force enumeration of the possible worlds, to
1e-9 (the implementations are exact; the slack is float summation order).
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.condition import (
    ConditionedScenario,
    ConstraintSet,
    InconsistentConstraints,
    ScenarioManager,
    StaleScenarioError,
    UnknownScenarioError,
    scenario_id_of,
)
from repro.condition.core import _parse_fact
from repro.core.pdb import ProbabilisticDatabase
from repro.engine.session import EngineSession
from repro.logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.logic.semantics import satisfies
from repro.obs import MetricsRegistry
from repro.server import ServerClient, ServerConfig, ServerThread

TOL = 1e-9

# Fact slots for the little universe the strategies draw over: R unary,
# S binary, T unary — enough shape for safe, #P-hard and UCQ queries
# while keeping world enumeration (2^#facts) cheap.
R_VALUES = (1, 2)
S_VALUES = ((1, 3), (2, 3), (2, 4))
T_VALUES = (3, 4)

QUERIES = (
    "R(1)",
    "T(3)",
    "R(x), S(x,y)",
    "R(x), S(x,y), T(y)",
    "S(x,y), T(y)",
    "R(x), S(x,y) | T(u), S(u,v)",
)

CONSTRAINT_POOL = (
    "+R(1)",
    "-R(2)",
    "+S(2,3)",
    "-T(4)",
    "S(x,y), T(y)",
    "R(x), S(x,y)",
    "!R(2), S(2,y), T(y)",
    "T(y)",
)

probs = st.floats(0.05, 0.95).map(lambda p: round(p, 3))


@st.composite
def small_pdb(draw) -> ProbabilisticDatabase:
    pdb = ProbabilisticDatabase(seed=13)
    for value in R_VALUES:
        pdb.add_fact("R", (value,), draw(probs))
    for pair in S_VALUES:
        pdb.add_fact("S", pair, draw(probs))
    for value in T_VALUES:
        pdb.add_fact("T", (value,), draw(probs))
    return pdb


@st.composite
def constraint_sets(draw) -> list:
    specs = draw(
        st.lists(st.sampled_from(CONSTRAINT_POOL), min_size=1, max_size=3, unique=True)
    )
    return specs


# -- the brute-force reference ------------------------------------------------


def _as_sentence(pdb: ProbabilisticDatabase, text: str):
    parsed = pdb.parse_query(text)
    if isinstance(parsed, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        return parsed.to_formula()
    return parsed


def _holds(pdb, domain, world, constraint) -> bool:
    if constraint.kind == "assert":
        return _parse_fact(pdb, constraint.text) in world
    if constraint.kind == "deny":
        return _parse_fact(pdb, constraint.text) not in world
    truth = satisfies(world, domain, _as_sentence(pdb, constraint.text))
    return truth if constraint.kind == "require" else not truth


def brute_conditioned(pdb, specs, query_text=None, force=None):
    """``(P(Q∧Γ), P(Γ))`` by full world enumeration, honoring what-if force.

    Forced facts restrict the enumeration but keep their prior factor in
    the weights; divide it out for the derived-scenario convention
    (evidence contributes no prior mass).
    """
    gamma = ConstraintSet.parse(specs)
    forced = {
        _parse_fact(pdb, key) if isinstance(key, str) else key: value
        for key, value in (force or {}).items()
    }
    tid = pdb.tid
    domain = tid.domain()
    sentence = _as_sentence(pdb, query_text) if query_text is not None else None
    joint = gamma_mass = 0.0
    for world, probability in tid.possible_worlds():
        if probability == 0.0:  # prodb-lint: exact -- impossible worlds
            continue
        if any((fact in world) != value for fact, value in forced.items()):
            continue
        if not all(_holds(pdb, domain, world, c) for c in gamma):
            continue
        gamma_mass += probability
        if sentence is not None and satisfies(world, domain, sentence):
            joint += probability
    return joint, gamma_mass


def _forced_prior_factor(pdb, force) -> float:
    factor = 1.0
    for key, value in force.items():
        fact = _parse_fact(pdb, key) if isinstance(key, str) else key
        prior = pdb.tid.probability_of_fact(fact[0], fact[1])
        factor *= prior if value else 1.0 - prior
    return factor


# -- exact posterior ----------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(pdb=small_pdb(), specs=constraint_sets(), query=st.sampled_from(QUERIES))
def test_posterior_matches_brute_force(pdb, specs, query):
    joint, gamma_mass = brute_conditioned(pdb, specs, query)
    if gamma_mass <= 0.0:  # prodb-lint: exact -- unsatisfiable Γ
        with pytest.raises(InconsistentConstraints):
            ConditionedScenario.compile(pdb, specs)
        return
    scenario = ConditionedScenario.compile(pdb, specs)
    assert abs(scenario.gamma_probability - gamma_mass) <= TOL
    answer = scenario.posterior(query)
    assert answer.exact
    assert abs(answer.probability - joint / gamma_mass) <= TOL
    assert abs(answer.joint - joint) <= TOL


@settings(max_examples=15, deadline=None)
@given(
    pdb=small_pdb(),
    specs=constraint_sets(),
    fact_spec=st.sampled_from(("R(1)", "R(2)", "S(2,3)", "T(3)")),
    value=st.booleans(),
    query=st.sampled_from(QUERIES),
)
def test_whatif_matches_brute_force_and_fresh_conditioning(
    pdb, specs, fact_spec, value, query
):
    _, gamma_mass = brute_conditioned(pdb, specs)
    if gamma_mass <= 0.0:  # prodb-lint: exact
        return
    scenario = ConditionedScenario.compile(pdb, specs)
    force = {fact_spec: value}
    joint, forced_mass = brute_conditioned(pdb, specs, query, force=force)
    if forced_mass <= 0.0:  # prodb-lint: exact -- contradictory evidence
        with pytest.raises(InconsistentConstraints):
            scenario.whatif(force)
        return
    derived = scenario.whatif(force)
    # Evidence contributes no prior factor to the derived Γ mass.
    expected_gamma = forced_mass / _forced_prior_factor(pdb, force)
    assert abs(derived.gamma_probability - expected_gamma) <= TOL
    answer = derived.posterior(query)
    assert abs(answer.probability - joint / forced_mass) <= TOL
    # The cofactor path agrees with recompiling Γ ∪ {±fact} from scratch.
    fresh_specs = list(specs) + [("+" if value else "-") + fact_spec]
    fresh = ConditionedScenario.compile(pdb, fresh_specs)
    assert abs(fresh.posterior(query).probability - answer.probability) <= TOL
    # Once the base circuit is compiled (any differentiation-backed call),
    # what-ifs derive by re-weighting it instead of DPLL — same answers.
    scenario.fact_posteriors()
    warm = scenario.whatif(force)
    assert abs(warm.gamma_probability - expected_gamma) <= TOL
    assert abs(warm.posterior(query).probability - joint / forced_mass) <= TOL
    atom_joint, _ = brute_conditioned(pdb, specs, fact_spec, force=force)
    assert (
        abs(warm.posterior(fact_spec).probability - atom_joint / forced_mass)
        <= TOL
    )


# -- per-fact posteriors ------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(pdb=small_pdb(), specs=constraint_sets())
def test_fact_posteriors_match_brute_force(pdb, specs):
    _, gamma_mass = brute_conditioned(pdb, specs)
    if gamma_mass <= 0.0:  # prodb-lint: exact
        return
    scenario = ConditionedScenario.compile(pdb, specs)
    reports = scenario.fact_posteriors()
    assert reports, "Γ mentions at least one fact"
    for fact, report in reports.items():
        spec = f"{fact[0]}({', '.join(str(v) for v in fact[1])})"
        in_gamma, _ = brute_conditioned(pdb, specs, spec)
        assert abs(report.posterior - in_gamma / gamma_mass) <= TOL, fact


@settings(max_examples=10, deadline=None)
@given(
    pdb=small_pdb(),
    specs=constraint_sets(),
    fact_spec=st.sampled_from(("R(1)", "S(2,3)")),
    value=st.booleans(),
)
def test_derived_fact_posteriors_match_brute_force(pdb, specs, fact_spec, value):
    """The cofactor-count path (what-if derivations) agrees too."""
    _, gamma_mass = brute_conditioned(pdb, specs)
    if gamma_mass <= 0.0:  # prodb-lint: exact
        return
    force = {fact_spec: value}
    _, forced_mass = brute_conditioned(pdb, specs, force=force)
    if forced_mass <= 0.0:  # prodb-lint: exact
        return
    derived = ConditionedScenario.compile(pdb, specs).whatif(force)
    for fact, report in derived.fact_posteriors().items():
        spec = f"{fact[0]}({', '.join(str(v) for v in fact[1])})"
        in_gamma, _ = brute_conditioned(pdb, specs, spec, force=force)
        assert abs(report.posterior - in_gamma / forced_mass) <= TOL, fact


# -- top-k worlds -------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(pdb=small_pdb(), specs=constraint_sets(), k=st.integers(1, 6))
def test_top_k_worlds_match_enumeration(pdb, specs, k):
    _, gamma_mass = brute_conditioned(pdb, specs)
    if gamma_mass <= 0.0:  # prodb-lint: exact
        return
    scenario = ConditionedScenario.compile(pdb, specs)
    facts = scenario.world_facts()
    # Reference: posterior of every assignment of the Γ-relevant facts.
    reference = []
    for bits in itertools.product((False, True), repeat=len(facts)):
        assignment = dict(zip(facts, bits))
        _, mass = brute_conditioned(pdb, specs, force=assignment)
        if mass > 0.0:  # prodb-lint: exact -- Γ-consistent assignments only
            reference.append((mass / gamma_mass, assignment))
    reference.sort(key=lambda pair: -pair[0])
    candidates = scenario.top_k_worlds(k)
    assert len(candidates) == min(k, len(reference))
    for rank, candidate in enumerate(candidates):
        # Exact k-best: posteriors match the sorted reference pointwise
        # (ties may permute worlds, so compare the posterior sequence).
        assert abs(candidate.posterior - reference[rank][0]) <= TOL
        # And each returned world's own posterior is what enumeration says.
        _, mass = brute_conditioned(pdb, specs, force=candidate.world)
        assert abs(candidate.posterior - mass / gamma_mass) <= TOL
    # Best first.
    posteriors = [c.posterior for c in candidates]
    assert posteriors == sorted(posteriors, reverse=True)


# -- scenario manager ---------------------------------------------------------


def _pdb() -> ProbabilisticDatabase:
    pdb = ProbabilisticDatabase(seed=3)
    pdb.add_fact("R", (1,), 0.4)
    pdb.add_fact("R", (2,), 0.7)
    pdb.add_fact("S", (1, 3), 0.5)
    pdb.add_fact("S", (2, 3), 0.6)
    pdb.add_fact("T", (3,), 0.8)
    return pdb


def test_manager_installs_are_idempotent_and_content_addressed():
    pdb = _pdb()
    manager = ScenarioManager(pdb, registry=MetricsRegistry())
    sid1, s1 = manager.install(["+R(1)", "S(x,y), T(y)"])
    # Same Γ, different spelling (order, whitespace) → same id, cached circuit.
    sid2, s2 = manager.install("S(x,y), T(y) ; +R(1)")
    assert sid1 == sid2
    assert s1 is s2
    assert manager.scenario_count() == 1
    assert sid1 == scenario_id_of(
        pdb.tid.fingerprint(), ConstraintSet.parse(["+R(1)", "S(x,y), T(y)"])
    )
    assert manager.resolve(sid1) is s1


def test_manager_unknown_stale_and_drop():
    pdb = _pdb()
    manager = ScenarioManager(pdb, registry=MetricsRegistry())
    with pytest.raises(UnknownScenarioError):
        manager.resolve("s0000000000000000")
    sid, _ = manager.install(["+R(1)"])
    # Mutating the database invalidates the scenario.
    pdb.add_fact("T", (9,), 0.5)
    with pytest.raises(StaleScenarioError):
        manager.resolve(sid)
    assert manager.drop(sid) is True
    assert manager.drop(sid) is False  # idempotent
    assert manager.scenario_count() == 0


def test_manager_recompiles_after_eviction():
    pdb = _pdb()
    registry = MetricsRegistry()
    manager = ScenarioManager(pdb, maxsize=1, registry=registry)
    sid1, _ = manager.install(["+R(1)"])
    manager.install(["-R(2)"])  # evicts sid1's circuit, id survives
    scenario = manager.resolve(sid1)
    assert scenario.constraints.specs() == ["+R(1)"]
    assert registry.snapshot().get("scenario_recompiles_total", 0) >= 1


def test_manager_install_on_miss_verifies_the_id():
    pdb = _pdb()
    manager = ScenarioManager(pdb, registry=MetricsRegistry())
    gamma = ConstraintSet.parse(["+R(1)"])
    sid = scenario_id_of(pdb.tid.fingerprint(), gamma)
    # A worker that never saw the install conditions from the specs alone.
    scenario = manager.resolve(sid, specs=gamma.specs())
    assert scenario.constraints.specs() == ["+R(1)"]
    # …but an id minted against other contents is rejected, not adopted.
    with pytest.raises(StaleScenarioError):
        manager.resolve("s" + "0" * 16, specs=gamma.specs())


def test_unsatisfiable_constraints_raise():
    with pytest.raises(InconsistentConstraints):
        ConditionedScenario.compile(_pdb(), ["+R(1)", "-R(1)"])


# -- server round-trip --------------------------------------------------------


SERVER_GAMMA = ["+R(1)", "S(x,y), T(y)"]
SERVER_CASES = tuple(
    (query, backend)
    for query in ("R(2)", "R(x), S(x,y)", "R(x), S(x,y), T(y)")
    for backend in (None, "rows", "columnar")
)


@pytest.mark.parametrize("mode", ("threads", "processes"))
def test_server_conditioned_answers_match_brute_force(mode):
    pdb = _pdb()
    expected = {}
    for query, backend in SERVER_CASES:
        joint, gamma_mass = brute_conditioned(pdb, SERVER_GAMMA, query)
        expected[query] = joint / gamma_mass
    whatif_joint, whatif_mass = brute_conditioned(
        pdb, SERVER_GAMMA, "S(1,3)", force={"R(2)": True}
    )
    session = EngineSession(_pdb(), seed=11)
    config = ServerConfig(mode=mode, workers=2)
    with ServerThread(session, config, registry=MetricsRegistry()) as thread:
        with ServerClient("127.0.0.1", thread.port) as client:
            installed = client.condition(SERVER_GAMMA)
            assert installed["ok"], installed
            sid = installed["scenario"]
            # Idempotent: reinstalling returns the same id.
            assert client.condition(SERVER_GAMMA)["scenario"] == sid
            for query, backend in SERVER_CASES:
                response = client.query(query, scenario=sid, backend=backend)
                assert response["ok"], response
                assert abs(response["probability"] - expected[query]) <= TOL, (
                    query,
                    backend,
                    response,
                )
            whatif = client.query("S(1,3)", scenario=sid, force={"R(2)": True})
            assert whatif["ok"], whatif
            assert abs(whatif["probability"] - whatif_joint / whatif_mass) <= TOL
            # Conditioned and unconditioned answers never coalesce.
            plain = client.query("R(2)")
            assert abs(plain["probability"] - 0.7) <= TOL
            # Error surfaces: unknown id, then clean drop.
            missing = client.query("R(2)", scenario="s" + "f" * 16)
            assert not missing["ok"] and missing["error"] == "unknown_scenario"
            unsat = client.condition(["+R(1)", "-R(1)"])
            assert not unsat["ok"] and unsat["error"] == "unsatisfiable"
            assert client.drop_condition(sid)["dropped"] is True
            assert client.drop_condition(sid)["dropped"] is False
            gone = client.query("R(2)", scenario=sid)
            assert not gone["ok"] and gone["error"] == "unknown_scenario"


def test_http_condition_endpoints():
    from repro.server import http_request

    session = EngineSession(_pdb(), seed=11)
    with ServerThread(session, ServerConfig(), registry=MetricsRegistry()) as thread:
        host, port = "127.0.0.1", thread.port
        status, body = http_request(
            host, port, "POST", "/condition", {"constraints": SERVER_GAMMA}
        )
        assert status == 200, (status, body)
        sid = json.loads(body)["scenario"]
        status, body = http_request(
            host, port, "POST", "/query", {"query": "R(2)", "scenario": sid}
        )
        assert status == 200 and json.loads(body)["ok"]
        status, body = http_request(
            host, port, "POST", "/query", {"query": "R(2)", "scenario": "snope"}
        )
        assert status == 404 and json.loads(body)["error"] == "unknown_scenario"
        status, body = http_request(
            host, port, "POST", "/condition", {"constraints": ["+R(1)", "-R(1)"]}
        )
        assert status == 400 and json.loads(body)["error"] == "unsatisfiable"
        status, body = http_request(host, port, "GET", "/metrics")
        assert status == 200
        assert "scenarios_installed 1" in body
        assert "engine_cache_entries" in body
        status, body = http_request(host, port, "DELETE", f"/condition/{sid}")
        assert status == 200 and json.loads(body)["dropped"] is True
        status, body = http_request(host, port, "GET", "/healthz")
        assert status == 200 and json.loads(body)["scenarios"] == 0
