"""Unit tests for repro.bid (block-independent-disjoint databases)."""

import pytest

from repro.bid.model import Block, BlockIndependentDatabase
from repro.logic.parser import parse

from conftest import close


@pytest.fixture
def bid():
    """Person(name, city): each person lives in exactly 0 or 1 city."""
    db = BlockIndependentDatabase()
    db.add_alternative("Lives", ("ann",), ("paris",), 0.6)
    db.add_alternative("Lives", ("ann",), ("rome",), 0.3)
    db.add_alternative("Lives", ("bob",), ("paris",), 0.8)
    db.add_alternative("Cap", (), ("paris",), 0.9)
    return db


def test_block_disjointness_enforced():
    block = Block("R", ("k",))
    block.add(("k", "a"), 0.7)
    with pytest.raises(ValueError):
        block.add(("k", "b"), 0.5)


def test_block_choices_include_absence(bid):
    block = bid.blocks[("Lives", ("ann",))]
    choices = block.choices()
    assert len(choices) == 3  # paris, rome, absent
    assert close(sum(p for _, p in choices), 1.0)


def test_key_arity_consistency():
    db = BlockIndependentDatabase()
    db.add_alternative("R", ("a",), ("x",), 0.5)
    with pytest.raises(ValueError):
        db.add_alternative("R", ("a", "b"), ("x",), 0.5)


def test_worlds_probabilities_sum_to_one(bid):
    total = sum(p for _, p in bid.possible_worlds())
    assert close(total, 1.0)


def test_worlds_respect_disjointness(bid):
    for world, _ in bid.possible_worlds():
        ann_rows = [f for f in world if f[0] == "Lives" and f[1][0] == "ann"]
        assert len(ann_rows) <= 1


def test_marginal_of_alternative(bid):
    got = bid.brute_force_probability(parse("Lives('ann','paris')"))
    assert close(got, 0.6)


def test_mutual_exclusion_probability(bid):
    both = bid.brute_force_probability(
        parse("Lives('ann','paris') & Lives('ann','rome')")
    )
    assert close(both, 0.0)


def test_block_level_shannon_matches_oracle(bid):
    queries = [
        "exists x. Lives(x, 'paris')",
        "exists x. exists y. (Lives(x,y) & Cap(y))",
        "forall x. forall y. (Lives(x,y) -> Cap(y))",
        "Lives('ann','rome') | Lives('bob','paris')",
    ]
    for text in queries:
        sentence = parse(text)
        fast = bid.probability(sentence)
        slow = bid.brute_force_probability(sentence)
        assert close(fast, slow), text


def test_query_ignores_unrelated_blocks(bid):
    # Cap blocks must not blow up queries that never mention Cap
    got = bid.probability(parse("exists x. Lives(x, 'rome')"))
    assert close(got, 0.3)


def test_to_tid_requires_singleton_blocks(bid):
    with pytest.raises(ValueError):
        bid.to_tid()
    singleton = BlockIndependentDatabase()
    singleton.add_alternative("R", ("a",), (), 0.4)
    tid = singleton.to_tid()
    assert close(tid.probability_of_fact("R", ("a",)), 0.4)


def test_tid_special_case_agrees():
    """A BID with singleton blocks is exactly a TID."""
    bid = BlockIndependentDatabase()
    bid.add_alternative("R", ("a",), (), 0.5)
    bid.add_alternative("S", ("a", "b"), (), 0.7)
    sentence = parse("exists x. exists y. (R(x) & S(x,y))")
    tid = bid.to_tid()
    assert close(
        bid.brute_force_probability(sentence),
        tid.brute_force_probability(sentence),
    )


def test_certain_block():
    bid = BlockIndependentDatabase()
    bid.add_alternative("R", ("k",), ("a",), 0.5)
    bid.add_alternative("R", ("k",), ("b",), 0.5)
    # probabilities sum to 1: some alternative always present
    got = bid.probability(parse("exists x. exists y. R(x, y)"))
    assert close(got, 1.0)


def test_tuple_count(bid):
    assert bid.tuple_count() == 4
