"""White-box tests for the lifted engine's rule machinery."""

import pytest

from repro.lifted.engine import (
    LiftedEngine,
    _merged_separator,
    _separator_candidates,
    _symbol_components,
)
from repro.lifted.errors import NonLiftableError
from repro.logic.cq import parse_cq, parse_ucq
from repro.logic.terms import Var
from repro.workloads.generators import random_tid

from conftest import close


def test_separator_candidates_positions():
    candidates = _separator_candidates(parse_cq("R(x), S(x,y)"))
    assert len(candidates) == 1
    var, positions = candidates[0]
    assert var == Var("x")
    assert positions == {"R": frozenset({0}), "S": frozenset({0})}


def test_separator_candidates_empty_for_nonhierarchical():
    assert _separator_candidates(parse_cq("R(x), S(x,y), T(y)")) == []


def test_separator_candidates_multiple_positions():
    candidates = _separator_candidates(parse_cq("S(x,x)"))
    (_, positions), = candidates
    assert positions["S"] == frozenset({0, 1})


def test_merged_separator_success():
    q = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    merged = _merged_separator(q.disjuncts)
    assert merged == (Var("x"), Var("u"))


def test_merged_separator_position_conflict():
    q = parse_ucq("R(x), S(x,y) | S(u,v), T(v)")
    assert _merged_separator(q.disjuncts) is None


def test_merged_separator_repeated_position_resolution():
    # S(x,x) offers both positions; the other disjunct forces position 0
    q = parse_ucq("S(x,x) | R(u), S(u,v)")
    merged = _merged_separator(q.disjuncts)
    assert merged is not None


def test_symbol_components_partition():
    q = parse_ucq("R(x) | S(x,y) | R(u), T(u)")
    groups = _symbol_components(q.disjuncts)
    # R-disjunct and R,T-disjunct share R; S stands alone
    assert len(groups) == 2


def test_engine_trace_records_rules():
    db = random_tid(2, 3)
    engine = LiftedEngine(db, record_trace=True)
    engine.probability(parse_cq("R(x), S(x,y)"))
    rules = [step.rule for step in engine.trace]
    assert rules[0] == "separator"
    assert "ground" in rules


def test_engine_trace_disabled_by_default():
    db = random_tid(2, 3)
    engine = LiftedEngine(db)
    engine.probability(parse_cq("R(x)"))
    assert engine.trace == []


def test_memoization_cache_grows(random_db):
    engine = LiftedEngine(random_db)
    engine.probability(parse_cq("R(x), S(x,y)"))
    assert len(engine._memo) > 0


def test_nonliftable_reports_subquery(random_db):
    engine = LiftedEngine(random_db)
    with pytest.raises(NonLiftableError) as excinfo:
        engine.probability(parse_cq("R(x), S(x,y), T(y)"))
    assert "S" in str(excinfo.value.subquery)


def test_empty_relation_handled(random_db):
    # query over a predicate with no tuples: probability 0
    engine = LiftedEngine(random_db)
    assert engine.probability(parse_cq("Missing(x)")) == 0.0  # prodb-lint: exact


def test_probability_one_tuples(random_db):
    db = random_db.copy()
    for values in list(db.relations["R"].rows):
        db.relations["R"].add(values, 1.0)
    engine = LiftedEngine(db)
    assert close(engine.probability(parse_cq("R(x)")), 1.0)


def test_rule_application_str():
    from repro.lifted.engine import RuleApplication

    step = RuleApplication("separator", "R(x)", "variable x")
    assert "separator" in str(step)
    assert "variable x" in str(step)


def test_basic_rules_flag_allows_simple_queries(random_db):
    engine = LiftedEngine(random_db, use_inclusion_exclusion=False)
    got = engine.probability(parse_cq("R(x), S(x,y)"))
    full = LiftedEngine(random_db).probability(parse_cq("R(x), S(x,y)"))
    assert close(got, full)
