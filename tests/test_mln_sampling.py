"""Unit tests for repro.mln.sampling."""

import random

import pytest

from repro.logic.parser import parse
from repro.mln.mln import MarkovLogicNetwork, SoftConstraint
from repro.mln.sampling import (
    importance_sample_mln,
    rejection_sample_conditional,
    required_samples_for_conditional,
)
from repro.mln.translate import Encoding, conditional_probability, mln_to_tid


@pytest.fixture
def manager_mln():
    return MarkovLogicNetwork(
        [SoftConstraint(3.9, parse("Manager(m,e) -> HighComp(m)"))],
        domain=("a", "b"),
    )


def test_rejection_sampling_converges(manager_mln):
    encoded = mln_to_tid(manager_mln, Encoding.IFF)
    query = parse("exists m. HighComp(m)")
    exact = conditional_probability(encoded.database, query, encoded.constraint)
    estimate = rejection_sample_conditional(
        encoded.database,
        query,
        encoded.constraint,
        samples=8000,
        rng=random.Random(3),
    )
    assert abs(estimate.estimate - exact) < 0.05
    assert 0 < estimate.acceptance_rate <= 1.0


def test_rejection_sampling_zero_acceptance():
    from repro.core.tid import TupleIndependentDatabase

    db = TupleIndependentDatabase()
    db.add_fact("R", ("a",), 1.0)
    estimate = rejection_sample_conditional(
        db,
        parse("R('a')"),
        parse("~R('a')"),  # impossible constraint
        samples=50,
        rng=random.Random(1),
    )
    assert estimate.accepted == 0
    assert estimate.estimate != estimate.estimate  # NaN


def test_importance_sampling_converges(manager_mln):
    query = parse("exists m. HighComp(m)")
    exact = manager_mln.probability(query)
    estimate = importance_sample_mln(
        manager_mln, query, samples=6000, rng=random.Random(5)
    )
    assert abs(estimate.estimate - exact) < 0.05
    assert estimate.effective_samples > 100


def test_required_samples_scaling():
    base = required_samples_for_conditional(1.0, 0.05, 0.05)
    rare = required_samples_for_conditional(0.1, 0.05, 0.05)
    assert rare == pytest.approx(base * 10, rel=0.01)
    with pytest.raises(ValueError):
        required_samples_for_conditional(0.0, 0.05, 0.05)


def test_two_estimators_agree(manager_mln):
    query = parse("Manager('a','b') & HighComp('a')")
    direct = manager_mln.probability(query)
    encoded = mln_to_tid(manager_mln, Encoding.IFF)
    rejection = rejection_sample_conditional(
        encoded.database,
        query,
        encoded.constraint,
        samples=12000,
        rng=random.Random(9),
    )
    importance = importance_sample_mln(
        manager_mln, query, samples=8000, rng=random.Random(9)
    )
    assert abs(rejection.estimate - direct) < 0.05
    assert abs(importance.estimate - direct) < 0.05
