"""Tests for the columnar (vectorized) execution backend.

Three layers of coverage:

* operator parity — hypothesis differential tests pin each columnar
  operator to its row-backend counterpart within 1e-9 absolute error;
* plan parity — whole safe plans evaluated by both backends on random
  TIDs agree within 1e-9, including through the engine façade and the
  per-backend session cache;
* edge cases — empty relations, probability-0/1 rows through the
  log-space ⊕ path, joins with no shared attributes, projections to zero
  columns, scan arity mismatches, and backend auto-selection.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.pdb import Method, ProbabilisticDatabase
from repro.core.tid import TupleIndependentDatabase
from repro.engine.session import EngineSession
from repro.logic.cq import parse_cq
from repro.plans import (
    COLUMNAR_AUTO_THRESHOLD,
    execute_boolean_columnar,
    execute_columnar,
    project_boolean,
    safe_plan,
)
from repro.plans.plan import ScanNode
from repro.plans.vectorized import available
from repro.relational import NUMPY_AVAILABLE, ColumnarRelation, algebra, columnar
from repro.relational.columnar import columnar_from_rows, from_relation
from repro.relational.relation import Relation

from conftest import TOLERANCE, close

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="columnar backend requires numpy"
)

np = pytest.importorskip("numpy")

VALUES = ("a", "b", "c", "d")


def rows_match(columnar_rel: ColumnarRelation, row_rel: Relation) -> bool:
    """Decoded columnar rows equal the row-backend rows within TOLERANCE."""
    decoded = columnar_rel.to_relation()
    if set(decoded.rows) != set(row_rel.rows):
        return False
    return all(close(decoded.rows[k], row_rel.rows[k]) for k in row_rel.rows)


@st.composite
def relations(draw, name="R", attributes=("x", "y")):
    rows = draw(
        st.dictionaries(
            st.tuples(*(st.sampled_from(VALUES) for _ in attributes)),
            st.floats(0.0, 1.0, allow_nan=False),
            max_size=8,
        )
    )
    return Relation(name, tuple(attributes), dict(rows))


# -- encoding round trip ------------------------------------------------------


@given(relations())
@settings(max_examples=100, deadline=None)
def test_encode_decode_round_trip(r):
    assert rows_match(from_relation(r), r)


def test_interner_codes_agree_across_relations():
    r = Relation("R", ("x",), {("a",): 0.5, ("b",): 0.25})
    s = Relation("S", ("y",), {("b",): 0.9, ("a",): 0.3})
    cr, cs = from_relation(r), from_relation(s)
    # code equality ⇔ value equality, independent of encoding order
    assert cr.columns[0][0] == cs.columns[0][1]  # both "a"
    assert cr.columns[0][1] == cs.columns[0][0]  # both "b"


def test_interner_code_of_unknown_value_is_none():
    interner = columnar.ValueInterner()
    interner.encode_column(["a", "b"])
    assert interner.code_of("a") is not None
    assert interner.code_of("never-interned") is None
    assert len(interner) == 2


# -- operator parity (differential, row vs columnar) --------------------------


@given(relations(), relations(name="S", attributes=("y", "z")))
@settings(max_examples=100, deadline=None)
def test_join_matches_row_backend(r, s):
    expected = algebra.join(r, s)
    out = columnar.join(from_relation(r), from_relation(s))
    assert out.attributes == expected.attributes
    assert rows_match(out, expected)


@given(relations())
@settings(max_examples=100, deadline=None)
def test_independent_project_matches_row_backend(r):
    for keep in (("x", "y"), ("x",), ("y",), ()):
        expected = algebra.independent_project(r, keep)
        out = columnar.independent_project(from_relation(r), keep)
        assert out.attributes == tuple(keep)
        assert rows_match(out, expected)


@given(relations(), relations())
@settings(max_examples=100, deadline=None)
def test_union_matches_row_backend(r, s):
    expected = algebra.union(r, s)
    out = columnar.union(from_relation(r), from_relation(s))
    assert rows_match(out, expected)


@given(relations())
@settings(max_examples=60, deadline=None)
def test_select_eq_matches_row_backend(r):
    for value in VALUES:
        expected = algebra.select_eq(r, "x", value)
        out = columnar.select_eq(from_relation(r), "x", value)
        assert rows_match(out, expected)


@given(relations())
@settings(max_examples=60, deadline=None)
def test_boolean_oplus_matches_row_backend(r):
    assert close(columnar.boolean_oplus(from_relation(r)), algebra.boolean_oplus(r))


# -- edge cases: empty relations through every operator -----------------------


def test_empty_relation_through_every_operator():
    e = columnar.empty("E", ("x", "y"))
    other = columnar_from_rows("R", ("y", "z"), [("a", "b")], [0.5])
    assert len(columnar.join(e, other)) == 0
    assert len(columnar.join(other, e)) == 0
    assert len(columnar.independent_project(e, ("x",))) == 0
    assert len(columnar.independent_project(e, ())) == 0
    assert len(columnar.union(e, columnar.empty("E2", ("x", "y")))) == 0
    assert len(columnar.select_eq(e, "x", "a")) == 0
    assert columnar.boolean_oplus(e) == 0.0  # prodb-lint: exact -- empty ⊕ is exactly 0
    assert len(e.to_relation()) == 0


def test_join_without_shared_attributes_is_cartesian_product():
    r = columnar_from_rows("R", ("x",), [("a",), ("b",)], [0.5, 0.25])
    s = columnar_from_rows("S", ("y",), [("c",), ("d",)], [0.8, 0.3])
    joined = columnar.join(r, s).to_relation()
    product = columnar.cartesian_product(r, s).to_relation()
    assert joined.rows == product.rows
    assert len(joined) == 4
    assert close(joined.rows[("a", "c")], 0.4)


def test_cartesian_product_rejects_shared_attributes():
    r = columnar_from_rows("R", ("x",), [("a",)], [0.5])
    with pytest.raises(ValueError, match="disjoint"):
        columnar.cartesian_product(r, r)


def test_union_rejects_schema_mismatch():
    r = columnar_from_rows("R", ("x",), [("a",)], [0.5])
    s = columnar_from_rows("S", ("y",), [("a",)], [0.5])
    with pytest.raises(ValueError, match="identical schemas"):
        columnar.union(r, s)


def test_independent_project_to_zero_columns():
    r = columnar_from_rows("R", ("x",), [("a",), ("b",)], [0.5, 0.5])
    out = columnar.independent_project(r, ())
    assert out.attributes == ()
    assert len(out) == 1
    assert close(float(out.probabilities[0]), 0.75)


# -- edge cases: probability 0 and 1 through the log-space path ---------------


def test_probability_one_saturates_group():
    r = columnar_from_rows("R", ("x",), [("a",), ("a",)], [1.0, 0.5])
    out = columnar.independent_project(r, ("x",))
    assert close(float(out.probabilities[0]), 1.0)
    assert close(columnar.boolean_oplus(r), 1.0)


def test_probability_zero_is_identity():
    r = columnar_from_rows("R", ("x",), [("a",)], [0.0])
    r2 = columnar_from_rows("R", ("x",), [("a",)], [0.3])
    out = columnar.union(r, r2)
    assert close(float(out.probabilities[0]), 0.3)
    assert columnar.boolean_oplus(r) == 0.0  # prodb-lint: exact -- log1p(-0) sums to exact 0


def test_all_zero_probabilities_stay_zero():
    r = columnar_from_rows("R", ("x",), [("a",), ("b",)], [0.0, 0.0])
    out = columnar.independent_project(r, ())
    assert float(out.probabilities[0]) == 0.0  # prodb-lint: exact -- expm1(0) is exact


def test_near_one_probabilities_stay_stable():
    n = 1000
    rows = [(f"v{i}",) for i in range(n)]
    r = columnar_from_rows("R", ("x",), rows, [1e-12] * n)
    # 1 - (1-1e-12)^1000 ≈ 1e-9; naive products would round to 0.
    out = float(columnar.independent_project(r, ()).probabilities[0])
    assert close(out, -np.expm1(n * np.log1p(-1e-12)), tolerance=1e-15)
    assert out > 0.0


# -- plan parity (row vs columnar on whole safe plans) ------------------------

SAFE_QUERIES = (
    "R(x), S(x,y)",
    "S(x,y), T(y)",
    "R(x), T(x)",
    "R(x), S(x,y), T(x)",
)


@st.composite
def random_tids(draw):
    db = TupleIndependentDatabase()
    db.add_relation("R", ("a0",))
    db.add_relation("S", ("a0", "a1"))
    db.add_relation("T", ("a0",))
    prob = st.floats(0.01, 0.99, allow_nan=False)
    for x in VALUES:
        if draw(st.booleans()):
            db.add_fact("R", (x,), draw(prob))
        if draw(st.booleans()):
            db.add_fact("T", (x,), draw(prob))
        for y in VALUES:
            if draw(st.booleans()):
                db.add_fact("S", (x, y), draw(prob))
    return db


@given(random_tids(), st.sampled_from(SAFE_QUERIES))
@settings(max_examples=60, deadline=None)
def test_safe_plan_backends_agree(db, query):
    plan = project_boolean(safe_plan(parse_cq(query), db))
    from repro.plans.plan import execute_boolean

    row = execute_boolean(plan, db)
    col = execute_boolean_columnar(plan, db)
    assert abs(row - col) <= TOLERANCE


@given(random_tids(), st.sampled_from(SAFE_QUERIES))
@settings(max_examples=40, deadline=None)
def test_facade_backends_agree(db, query):
    row = ProbabilisticDatabase(tid=db, backend="rows")
    col = ProbabilisticDatabase(tid=db, backend="columnar")
    a = row.probability(query, Method.SAFE_PLAN)
    b = col.probability(query, Method.SAFE_PLAN)
    assert abs(a.probability - b.probability) <= TOLERANCE
    assert a.exact and b.exact


def test_columnar_agrees_with_ground_truth(small_db):
    pdb = ProbabilisticDatabase(tid=small_db, backend="columnar")
    for query in SAFE_QUERIES:
        answer = pdb.probability(query, Method.SAFE_PLAN)
        truth = small_db.brute_force_probability(parse_cq(query).to_formula())
        assert close(answer.probability, truth)


# -- plan executor details ----------------------------------------------------


def test_columnar_scan_arity_mismatch_raises(small_db):
    atom = parse_cq("S(x,y,z)").atoms[0]
    with pytest.raises(ValueError, match="relation arity 2 does not match"):
        execute_columnar(ScanNode(atom), small_db)


def test_columnar_scan_missing_relation_is_empty(small_db):
    atom = parse_cq("Missing(x)").atoms[0]
    out = execute_columnar(ScanNode(atom), small_db)
    assert len(out) == 0
    assert out.attributes == ("x",)


def test_columnar_scan_constant_and_repeated_variable(small_db):
    # σ_{a0 = "a"} via a constant argument
    out = execute_columnar(ScanNode(parse_cq('S("a", y)').atoms[0]), small_db)
    assert rows_match(out, Relation("S", ("y",), {("a",): 0.8, ("b",): 0.3}))
    # diagonal S(x, x)
    out = execute_columnar(ScanNode(parse_cq("S(x, x)").atoms[0]), small_db)
    assert rows_match(out, Relation("S", ("x",), {("a",): 0.8, ("b",): 0.9}))
    # a constant that appears nowhere selects nothing (and is not interned)
    out = execute_columnar(ScanNode(parse_cq('S("zzz-unseen", y)').atoms[0]), small_db)
    assert len(out) == 0


def test_columnar_scan_cache_invalidated_on_mutation(small_db):
    plan = project_boolean(safe_plan(parse_cq("R(x), S(x,y)"), small_db))
    before = execute_boolean_columnar(plan, small_db)
    small_db.add_fact("R", ("zz",), 0.99)
    small_db.add_fact("S", ("zz", "zz"), 0.99)
    after = execute_boolean_columnar(plan, small_db)
    assert after > before  # fresh facts visible ⇒ cache was dropped


def test_operator_profile_records_row_counts(small_db):
    from repro.engine.stats import OperatorProfile

    profile: list[OperatorProfile] = []
    plan = project_boolean(safe_plan(parse_cq("R(x), S(x,y)"), small_db))
    execute_boolean_columnar(plan, small_db, profile=profile)
    assert any(p.operator.startswith("scan") for p in profile)
    assert any(p.operator.startswith("join") for p in profile)
    assert all(p.seconds >= 0.0 for p in profile)
    final = profile[-1]
    assert final.rows_out == 1


# -- backend selection --------------------------------------------------------


def test_backend_auto_threshold(small_db):
    pdb = ProbabilisticDatabase(tid=small_db, backend="auto")
    assert pdb.plan_backend() == "rows"  # tiny database stays on rows
    big = TupleIndependentDatabase()
    for i in range(COLUMNAR_AUTO_THRESHOLD):
        big.add_fact("R", (f"v{i}",), 0.5)
    assert ProbabilisticDatabase(tid=big, backend="auto").plan_backend() == (
        "columnar" if available() else "rows"
    )


def test_backend_forced_values(small_db):
    assert ProbabilisticDatabase(tid=small_db, backend="rows").plan_backend() == "rows"
    if available():
        pdb = ProbabilisticDatabase(tid=small_db, backend="columnar")
        assert pdb.plan_backend() == "columnar"


def test_backend_rejects_unknown_value(small_db):
    pdb = ProbabilisticDatabase(tid=small_db, backend="typo")
    with pytest.raises(ValueError, match="unknown backend"):
        pdb.plan_backend()


def test_answer_detail_names_backend(small_db):
    pdb = ProbabilisticDatabase(tid=small_db, backend="columnar")
    answer = pdb.probability("R(x), S(x,y)", Method.SAFE_PLAN)
    assert "columnar backend" in answer.detail
    assert answer.stats.backend == "columnar"


# -- session integration ------------------------------------------------------


def test_session_caches_per_backend(small_db):
    query = "R(x), S(x,y)"
    rows = EngineSession(small_db, backend="rows")
    cold_rows = rows.query(query, Method.SAFE_PLAN)
    col = EngineSession(small_db, backend="columnar")
    cold_col = col.query(query, Method.SAFE_PLAN)
    assert abs(cold_rows.probability - cold_col.probability) <= TOLERANCE
    # the two backends never share cache entries
    keys = {key for key in rows.cache.keys() if key[0] == "answer"}
    assert all(key[-1] == "rows" for key in keys)
    warm = rows.query(query, Method.SAFE_PLAN)
    assert warm.stats.cache_hit


def test_explain_answer_shows_operators(small_db):
    from repro.core.pdb import explain_answer

    pdb = ProbabilisticDatabase(tid=small_db, backend="columnar")
    answer = pdb.probability("R(x), S(x,y)", Method.SAFE_PLAN)
    text = explain_answer("R(x), S(x,y)", answer)
    assert "backend      : columnar" in text
    assert "scan" in text


# -- CLI ----------------------------------------------------------------------


def test_cli_backend_columnar(tmp_path, capsys):
    from repro.cli import main

    (tmp_path / "R.csv").write_text("x,P\na,0.5\nb,0.25\n")
    (tmp_path / "S.csv").write_text("x,y,P\na,a,0.8\na,b,0.3\nb,b,0.9\n")
    code = main(
        [
            "query",
            str(tmp_path / "R.csv"),
            str(tmp_path / "S.csv"),
            "-q",
            "R(x), S(x,y)",
            "-m",
            "safe-plan",
            "--backend",
            "columnar",
            "--stats",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "columnar" in out
    assert "scan" in out
