"""White-box tests for Scott normal form and the Skolemization step."""

import pytest

from repro.logic.formulas import Atom, Exists, Forall
from repro.logic.parser import parse
from repro.logic.terms import Var
from repro.symmetric.scott import (
    NotFO2Error,
    direct_normal_form,
    scott_normal_form,
)
from repro.symmetric.symmetric_db import SymmetricDatabase
from repro.symmetric.wfomc import WFOMCProblem, wfomc

from conftest import close

X, Y = Var("x"), Var("y")


def test_matrix_uses_only_xy_variables():
    result = scott_normal_form(parse("forall u. exists v. S(u,v)"))
    for atom in result.matrix.atoms():
        for term in atom.args:
            assert term in (X, Y)


def test_skolem_weights_are_one_minus_one():
    result = scott_normal_form(parse("forall x. exists y. S(x,y)"))
    skolems = [n for n in result.auxiliary_weights if n.startswith("_s")]
    assert skolems
    for name in skolems:
        assert result.auxiliary_weights[name] == (1.0, -1.0)


def test_tseitin_weights_are_neutral():
    result = scott_normal_form(parse("forall x. exists y. S(x,y)"))
    tseitins = [n for n in result.auxiliary_weights if n.startswith("_z")]
    assert tseitins
    for name in tseitins:
        assert result.auxiliary_weights[name] == (1.0, 1.0)


def test_nullary_auxiliary_for_sentence_level_quantifier():
    result = scott_normal_form(parse("exists x. R(x)"))
    assert 0 in result.auxiliary_arities.values()


def test_matrix_is_quantifier_free():
    result = scott_normal_form(
        parse("forall x. (R(x) -> exists y. (S(x,y) & R(y)))")
    )
    assert not any(
        isinstance(node, (Exists, Forall)) for node in result.matrix.walk()
    )


def test_scott_preserves_wfomc_vs_direct():
    # ∀x∃y S(x,y) has both a direct form and a general Scott form; the two
    # must produce the same probability.
    sentence = parse("forall x. exists y. S(x,y)")
    weights = {"S": (0.45, 0.55)}
    direct = direct_normal_form(sentence)
    general = scott_normal_form(sentence)
    for n in (1, 2, 3):
        problems = []
        for normal in (direct, general):
            w = dict(weights)
            w.update(normal.auxiliary_weights)
            problems.append(WFOMCProblem(normal.matrix, w))
        a = wfomc(problems[0], n)
        b = wfomc(problems[1], n)
        assert close(a, b)


def test_direct_form_none_for_exists_prefix():
    assert direct_normal_form(parse("exists x. exists y. S(x,y)")) is None


def test_direct_form_single_universal():
    result = direct_normal_form(parse("forall x. R(x)"))
    assert result is not None
    assert not result.auxiliary_weights


def test_not_fo2_rejected():
    with pytest.raises(NotFO2Error):
        scott_normal_form(
            parse("exists x. exists y. exists z. (S(x,y) & S(y,z))")
        )


def test_free_variable_rejected():
    with pytest.raises(ValueError):
        scott_normal_form(parse("exists y. S(x,y)"))


def test_deeply_nested_alternation():
    # ∃x ∀y (S(x,y) ∨ ∃x... keep within two names: ∃x ∀y (S(x,y) ∨ R(y))
    sentence = parse("exists x. forall y. (S(x,y) | R(y))")
    result = scott_normal_form(sentence)
    db = SymmetricDatabase(2)
    db.add_relation("S", 2, 0.4)
    db.add_relation("R", 1, 0.6)
    weights = {"S": (0.4, 0.6), "R": (0.6, 0.4)}
    weights.update(result.auxiliary_weights)
    got = wfomc(WFOMCProblem(result.matrix, weights), 2)
    want = db.to_tid().brute_force_probability(sentence)
    assert close(got, want)
