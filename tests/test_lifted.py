"""Unit tests for repro.lifted: the rule engine and the safety decider."""

import pytest

from repro.lifted.engine import (
    LiftedEngine,
    lifted_probability,
    sentence_to_ucq,
)
from repro.lifted.errors import NonLiftableError, UnsupportedQueryError
from repro.lifted.safety import Complexity, cq_is_safe, decide_safety
from repro.logic.cq import parse_cq, parse_ucq
from repro.logic.parser import parse
from repro.workloads.generators import random_tid

from conftest import close


@pytest.fixture
def db():
    return random_tid(21, 3)


def brute(db, sentence_text):
    return db.brute_force_probability(parse(sentence_text))


# -- core rules ------------------------------------------------------------------


def test_single_atom_query(db):
    got = lifted_probability(parse_cq("R(x)"), db)
    assert close(got, brute(db, "exists x. R(x)"))


def test_hierarchical_join(db):
    got = lifted_probability(parse_cq("R(x), S(x,y)"), db)
    assert close(got, brute(db, "exists x. exists y. (R(x) & S(x,y))"))


def test_independent_and(db):
    got = lifted_probability(parse_cq("R(x), T(y)"), db)
    assert close(got, brute(db, "(exists x. R(x)) & (exists y. T(y))"))


def test_independent_or(db):
    got = lifted_probability(parse_ucq("R(x) | T(y)"), db)
    assert close(got, brute(db, "(exists x. R(x)) | (exists y. T(y))"))


def test_qj_needs_inclusion_exclusion(db):
    qj = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    engine = LiftedEngine(db, record_trace=True)
    got = engine.probability(qj)
    want = brute(
        db,
        "(exists x. exists y. (R(x) & S(x,y))) | "
        "(exists u. exists v. (T(u) & S(u,v)))",
    )
    assert close(got, want)
    rules = {step.rule for step in engine.trace}
    assert "inclusion-exclusion" in rules
    assert "separator" in rules


def test_h0_cq_not_liftable(db):
    with pytest.raises(NonLiftableError) as excinfo:
        lifted_probability(parse_cq("R(x), S(x,y), T(y)"), db)
    assert excinfo.value.subquery is not None


def test_h1_not_liftable(db):
    with pytest.raises(NonLiftableError):
        lifted_probability(parse_ucq("R(x), S(x,y) | S(u,v), T(v)"), db)


def test_self_join_hierarchical_not_liftable(db):
    # R(x,y), R(y,z): hierarchical but #P-hard (Sec. 4) — engine must not lift it.
    db2 = random_tid(5, 3, schema=(("R", 2),))
    with pytest.raises(NonLiftableError):
        lifted_probability(parse_cq("R(x,y), R(y,z)"), db2)


def test_constants_in_query(db):
    domain = db.domain()
    got = lifted_probability(parse_cq(f"R('{domain[0]}'), S('{domain[0]}', y)"), db)
    want = brute(db, f"R('{domain[0]}') & (exists y. S('{domain[0]}', y))")
    assert close(got, want)


def test_ground_query(db):
    domain = db.domain()
    a = domain[0]
    got = lifted_probability(parse_cq(f"R('{a}'), T('{a}')"), db)
    want = db.probability_of_fact("R", (a,)) * db.probability_of_fact("T", (a,))
    assert close(got, want)


def test_memoization_reuses_results(db):
    engine = LiftedEngine(db)
    q = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    first = engine.probability(q)
    second = engine.probability(q)
    assert first == second


def test_qw_liftable_via_conjunction_ie(db):
    # E9 query Q_W = h30 ∨ (h31 ∧ h32): liftable only thanks to the
    # conjunction-side inclusion/exclusion rule; its decision-DNNF is
    # exponential (Theorem 7.1(ii)), measured in benchmarks/bench_e09.
    db2 = random_tid(31, 2, schema=(("R", 1), ("S1", 2), ("S2", 2), ("S3", 2)))
    h30 = parse_cq("R(x), S1(x,y)")
    h31 = parse_cq("S1(x,y), S2(x,y)")
    h32 = parse_cq("S2(x,y), S3(x,y)")
    from repro.logic.cq import UnionOfConjunctiveQueries

    q = UnionOfConjunctiveQueries((h30, h31.conjoin(h32)))
    engine = LiftedEngine(db2, record_trace=True)
    got = engine.probability(q)
    formula = (
        "(exists x. exists y. (R(x) & S1(x,y))) | "
        "((exists x. exists y. (S1(x,y) & S2(x,y))) & "
        "(exists u. exists v. (S2(u,v) & S3(u,v))))"
    )
    assert close(got, db2.brute_force_probability(parse(formula)))
    rules = {step.rule for step in engine.trace}
    assert "inclusion-exclusion-conj" in rules


def test_conjunction_ie_simple_pair(db):
    # P(h1 ∧ h2) for symbol-sharing, variable-disjoint CQ components.
    db2 = random_tid(33, 2, schema=(("S1", 2), ("S2", 2), ("S3", 2)))
    q = parse_cq("S1(x,y), S2(x,y)").conjoin(parse_cq("S2(u,v), S3(u,v)"))
    got = lifted_probability(q, db2)
    want = db2.brute_force_probability(
        parse(
            "(exists x. exists y. (S1(x,y) & S2(x,y))) & "
            "(exists u. exists v. (S2(u,v) & S3(u,v)))"
        )
    )
    assert close(got, want)


# -- sentence-level entry -----------------------------------------------------------


def test_sentence_exists_monotone(db):
    got = lifted_probability(parse("exists x. exists y. (R(x) & S(x,y))"), db)
    assert close(got, brute(db, "exists x. exists y. (R(x) & S(x,y))"))


def test_sentence_forall_via_dual(db):
    sentence = "forall x. forall y. (~S(x,y) | R(x))"
    got = lifted_probability(parse(sentence), db)
    assert close(got, brute(db, sentence))


def test_sentence_forall_h0_not_liftable(db):
    with pytest.raises(NonLiftableError):
        lifted_probability(parse("forall x. forall y. (R(x) | S(x,y) | T(y))"), db)


def test_sentence_rejects_non_unate(db):
    with pytest.raises(UnsupportedQueryError):
        lifted_probability(
            parse("forall x. ((R(x) -> U(x)) & (U(x) -> T(x)))"), db
        )


def test_sentence_rejects_mixed_prefix(db):
    with pytest.raises(UnsupportedQueryError):
        lifted_probability(parse("forall x. exists y. S(x,y)"), db)


def test_sentence_to_ucq_distributes():
    u = sentence_to_ucq(parse("exists x. exists y. ((R(x) | T(y)) & S(x,y))"))
    assert len(u) == 2


def test_sentence_to_ucq_rejects_forall():
    with pytest.raises(UnsupportedQueryError):
        sentence_to_ucq(parse("forall x. R(x)"))


# -- safety decisions -----------------------------------------------------------------


def test_cq_is_safe_matches_hierarchy():
    assert cq_is_safe(parse_cq("R(x), S(x,y)"))
    assert not cq_is_safe(parse_cq("R(x), S(x,y), T(y)"))


def test_cq_is_safe_rejects_self_joins():
    with pytest.raises(ValueError):
        cq_is_safe(parse_cq("R(x,y), R(y,z)"))


def test_decide_safety_classifications():
    assert decide_safety(parse_cq("R(x), S(x,y)")).complexity is Complexity.PTIME
    assert (
        decide_safety(parse_cq("R(x), S(x,y), T(y)")).complexity
        is Complexity.SHARP_P_HARD
    )
    assert (
        decide_safety(parse_ucq("R(x), S(x,y) | T(u), S(u,v)")).complexity
        is Complexity.PTIME
    )
    assert (
        decide_safety(parse_ucq("R(x), S(x,y) | S(u,v), T(v)")).complexity
        is Complexity.SHARP_P_HARD
    )


def test_decide_safety_self_join():
    verdict = decide_safety(parse_cq("R(x,y), R(y,z)"))
    assert verdict.complexity is Complexity.SHARP_P_HARD
    assert verdict.blocking_subquery


def test_decide_safety_matches_brute_force_when_safe(db):
    # any query declared PTIME must actually evaluate correctly
    for text in ("R(x)", "R(x), S(x,y)", "R(x), T(y)"):
        q = parse_cq(text)
        if decide_safety(q).is_safe:
            got = lifted_probability(q, db)
            want = db.brute_force_probability(q.to_formula())
            assert close(got, want)
