"""Unit tests for repro.kc.differentiate (posterior marginals)."""

import itertools
import random

import pytest

from repro.booleans.expr import BExpr, band, bnot, bor, bvar, evaluate
from repro.kc.differentiate import differentiate
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.wmc.brute import brute_force_wmc
from repro.wmc.dpll import compile_decision_dnnf
from repro.workloads.generators import random_tid

from conftest import close


def brute_posterior(expr: BExpr, probabilities, var: int) -> float:
    """Reference P(X=1 | F) by enumeration."""
    variables = sorted(expr.variables() | {var})
    joint = 0.0
    total = 0.0
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        weight = 1.0
        for v, value in assignment.items():
            p = probabilities[v]
            weight *= p if value else 1.0 - p
        if evaluate(expr, assignment):
            total += weight
            if assignment[var]:
                joint += weight
    return joint / total


def check_all_posteriors(expr: BExpr, probabilities):
    result = compile_decision_dnnf(expr, probabilities)
    reports = differentiate(result.circuit, probabilities)
    for var in expr.variables():
        want = brute_posterior(expr, probabilities, var)
        assert close(reports[var].posterior, want, 1e-9), (var, expr)


def test_single_variable():
    p = {0: 0.3}
    result = compile_decision_dnnf(bvar(0), p)
    reports = differentiate(result.circuit, p)
    assert close(reports[0].posterior, 1.0)
    assert close(reports[0].derivative, 1.0)


def test_irrelevant_variable_keeps_prior():
    p = {0: 0.3, 1: 0.6}
    result = compile_decision_dnnf(bvar(0), p)
    reports = differentiate(result.circuit, p)
    assert close(reports[1].posterior, 0.6)
    assert close(reports[1].derivative, 0.0)


def test_conjunction_posteriors():
    p = {0: 0.3, 1: 0.6}
    check_all_posteriors(band(bvar(0), bvar(1)), p)


def test_disjunction_posteriors():
    p = {0: 0.3, 1: 0.6}
    check_all_posteriors(bor(bvar(0), bvar(1)), p)


def test_negated_variable():
    p = {0: 0.3, 1: 0.6}
    check_all_posteriors(bor(band(bnot(bvar(0)), bvar(1)), bvar(0)), p)


def test_partially_tested_variable():
    # F = x ∨ (y ∧ z): on the x=1 branch, y is never tested.
    p = {0: 0.5, 1: 0.4, 2: 0.7}
    check_all_posteriors(bor(bvar(0), band(bvar(1), bvar(2))), p)


def test_random_formulas_match_brute_force():
    rng = random.Random(12)
    for _ in range(20):
        variables = [bvar(i) for i in range(5)]
        probabilities = {i: rng.uniform(0.1, 0.9) for i in range(5)}
        terms = []
        for _ in range(rng.randint(1, 3)):
            literals = [
                v if rng.random() < 0.6 else bnot(v)
                for v in rng.sample(variables, rng.randint(1, 3))
            ]
            terms.append(band(*literals))
        expr = bor(*terms)
        if not expr.variables():
            continue
        if brute_force_wmc(expr, probabilities) == 0.0:  # prodb-lint: exact
            continue
        check_all_posteriors(expr, probabilities)


def test_derivative_matches_finite_difference():
    p = {0: 0.5, 1: 0.4, 2: 0.7}
    expr = bor(bvar(0), band(bvar(1), bvar(2)))
    result = compile_decision_dnnf(expr, p)
    reports = differentiate(result.circuit, p)
    eps = 1e-6
    for var in (0, 1, 2):
        up = dict(p)
        up[var] += eps
        down = dict(p)
        down[var] -= eps
        finite = (
            brute_force_wmc(expr, up) - brute_force_wmc(expr, down)
        ) / (2 * eps)
        assert abs(reports[var].derivative - finite) < 1e-5


def test_zero_probability_query_raises():
    p = {0: 0.5}
    result = compile_decision_dnnf(band(bvar(0), bnot(bvar(0))), p)
    with pytest.raises(ZeroDivisionError):
        differentiate(result.circuit, p)


def test_query_lineage_posteriors():
    """Posterior tuple marginals for a real query lineage."""
    db = random_tid(6, 3)
    query = parse_cq("R(x), S(x,y)")
    lineage = lineage_of_cq(query, db)
    probabilities = lineage.probabilities()
    result = compile_decision_dnnf(lineage.expr, probabilities)
    reports = differentiate(result.circuit, probabilities)
    for var in lineage.expr.variables():
        want = brute_posterior(lineage.expr, probabilities, var)
        assert close(reports[var].posterior, want, 1e-9)
        # conditioning on a monotone query never lowers a tuple's marginal
        assert reports[var].posterior >= probabilities[var] - 1e-9


def test_influence_ranking_sensible():
    # In x ∨ (y ∧ z) with a dominant x, x has the largest influence.
    p = {0: 0.5, 1: 0.1, 2: 0.1}
    expr = bor(bvar(0), band(bvar(1), bvar(2)))
    result = compile_decision_dnnf(expr, p)
    reports = differentiate(result.circuit, p)
    assert reports[0].influence > reports[1].influence
    assert reports[0].influence > reports[2].influence
