"""Multi-process serving: routing, answer identity, crash semantics."""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.session import EngineSession
from repro.obs import MetricsRegistry
from repro.server import ServerClient, ServerConfig, ServerThread, http_get
from repro.server.pool import _HashRing
from repro.workloads.generators import figure1_database

QUERIES = (
    "R(x), S(x,y)",                       # safe: lifted
    "R(x), S(x,y), T(y)",                 # #P-hard: grounded
    "R(x), S(x,y) | T(u), S(u,v)",        # UCQ
)

METHODS = ("ladder", "auto", "dpll", "brute-force")


def _http_raw(host: str, port: int, path: str) -> tuple[str, str]:
    """Like http_get but returns (status-line, body) without raising."""
    import socket

    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", errors="replace")
    head, _, body = raw.partition("\r\n\r\n")
    return (head.splitlines()[0] if head else ""), body


def small_tid():
    db = figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    db.add_fact("T", ("b1",), 0.6)
    db.add_fact("T", ("b3",), 0.1)
    return db


def _server(mode: str, **overrides):
    session = EngineSession(small_tid(), seed=11)
    options = {
        "workers": 2,
        "mode": mode,
        "default_epsilon": 0.3,
        "default_delta": 0.1,
    }
    options.update(overrides)
    return ServerThread(session, ServerConfig(**options), registry=MetricsRegistry())


@pytest.fixture(scope="module")
def threads_server():
    with _server("threads") as thread:
        yield thread


@pytest.fixture(scope="module")
def process_server():
    with _server("processes") as thread:
        yield thread


def _strip(response):
    """The answer-identity envelope as canonical bytes.

    Every answer-bearing field (ok, probability, rung, guarantee, exact,
    method, bounds, epsilon, delta, samples, deadline_exceeded) is kept;
    dropped are the timing field (``elapsed_ms``), the per-request
    envelope (``coalesced``, ``id``) and the diagnostic ``detail`` string,
    whose memo-hit counters read process-global kernel state and are not
    reproducible across processes with different histories.
    """
    assert response.get("ok"), response
    dropped = ("elapsed_ms", "coalesced", "id", "detail")
    assert "probability" in response and "guarantee" in response
    return json.dumps(
        {k: v for k, v in response.items() if k not in dropped},
        sort_keys=True,
    ).encode()


# -- answer identity ----------------------------------------------------------

_IDENTITY_REQUESTS = tuple(
    (query, method, backend)
    for query in QUERIES
    for method, backend in (("ladder", None), ("dpll", "rows"), ("auto", "columnar"))
)


@settings(max_examples=3, deadline=None)
@given(order=st.permutations(list(_IDENTITY_REQUESTS)))
def test_process_answers_byte_identical_to_threads(order):
    """Same seed, same request sequence ⇒ byte-identical answer envelopes.

    Fresh server pairs per example, in whatever order hypothesis picks:
    probability, rung, guarantee, exactness, method, bounds and sampling
    budget must all come back byte-for-byte equal from a worker process
    that attached shared-memory shards.
    """
    with _server("threads") as reference_server, _server(
        "processes", workers=1
    ) as pooled_server:
        with ServerClient("127.0.0.1", reference_server.port) as reference_client:
            with ServerClient("127.0.0.1", pooled_server.port) as pooled_client:
                for query, method, backend in order:
                    reference = reference_client.query(
                        query, method=method, backend=backend
                    )
                    pooled = pooled_client.query(query, method=method, backend=backend)
                    assert _strip(pooled) == _strip(reference), (query, method, backend)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    query=st.sampled_from(QUERIES),
    method=st.sampled_from(METHODS),
    backend=st.sampled_from([None, "rows", "columnar"]),
)
def test_sharded_answers_equal_threads(
    threads_server, process_server, query, method, backend
):
    """Routing across 2 long-lived workers preserves the answer envelope."""
    with ServerClient("127.0.0.1", threads_server.port) as client:
        reference = client.query(query, method=method, backend=backend)
    with ServerClient("127.0.0.1", process_server.port) as client:
        pooled = client.query(query, method=method, backend=backend)
    assert _strip(pooled) == _strip(reference)


def test_process_error_responses_match_threads(threads_server, process_server):
    for payload, expected in (
        ({"query": "R(x,"}, "bad_request"),  # parse error inside the ladder
        ({"query": "R(x), S(x,y), T(y)", "method": "lifted"}, "internal"),
    ):
        with ServerClient("127.0.0.1", threads_server.port) as client:
            reference = client.request(dict(payload))
        with ServerClient("127.0.0.1", process_server.port) as client:
            pooled = client.request(dict(payload))
        assert not pooled["ok"] and not reference["ok"]
        assert pooled["error"] == reference["error"] == expected
        assert pooled["message"] == reference["message"]


# -- routing ------------------------------------------------------------------


def test_hash_ring_is_deterministic_and_sticky():
    ring = _HashRing()
    for worker in range(4):
        ring.add(worker)
    keys = [f"db|{i}" for i in range(200)]
    first = [ring.route(k) for k in keys]
    assert first == [ring.route(k) for k in keys]  # deterministic
    assert set(first) == {0, 1, 2, 3}  # all workers used
    # Removing one worker only moves that worker's keys.
    ring.remove(2)
    for key, owner in zip(keys, first):
        if owner != 2:
            assert ring.route(key) == owner
        else:
            assert ring.route(key) != 2


# -- health + metrics ---------------------------------------------------------


def test_healthz_reports_worker_liveness(process_server):
    body = http_get("127.0.0.1", process_server.port, "/healthz")
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["mode"] == "processes"
    workers = health["workers"]
    assert len(workers) == 2
    for worker in workers:
        assert worker["alive"] is True
        assert isinstance(worker["pid"], int) and worker["pid"] > 0
        assert worker["queue_depth"] >= 0
        assert worker["heartbeat_age_s"] < 30.0


def test_metrics_expose_worker_gauges(process_server):
    with ServerClient("127.0.0.1", process_server.port) as client:
        assert client.query("R(x), S(x,y)")["ok"]
    metrics = http_get("127.0.0.1", process_server.port, "/metrics")
    for needed in (
        "server_worker_0_alive",
        "server_worker_1_alive",
        "server_worker_0_queue_depth",
        "server_worker_1_heartbeat_age_seconds",
        "server_workers_engine_queries_total",
    ):
        assert needed in metrics, metrics


# -- crash semantics ----------------------------------------------------------


def test_killed_worker_yields_only_explicit_responses():
    """SIGKILL mid-stream: every request is answered or explicitly shed.

    Auto-restart is off so the dead worker stays dead — this test pins the
    degraded-but-correct behavior (503 healthz, survivor still answering).
    """
    with _server(
        "processes", request_timeout_s=60.0, restart_workers=False
    ) as thread:
        pool = thread.server._pool
        responses = []
        lock = threading.Lock()
        stop = threading.Event()

        def fire(offset: int) -> None:
            with ServerClient("127.0.0.1", thread.port, timeout_s=60) as client:
                i = 0
                while not stop.is_set() or i < 3:
                    query = QUERIES[(offset + i) % len(QUERIES)]
                    response = client.query(query, method="dpll")
                    with lock:
                        responses.append(response)
                    i += 1
                    if i > 200:  # safety valve
                        break

        clients = [threading.Thread(target=fire, args=(k,)) for k in range(3)]
        for t in clients:
            t.start()
        time.sleep(0.3)  # let traffic build
        victim = pool.workers_info()[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        time.sleep(1.0)  # keep firing across the crash + reap window
        stop.set()
        for t in clients:
            t.join(timeout=90)
            assert not t.is_alive(), "client hung after worker kill"

        assert responses
        for response in responses:
            if response.get("ok"):
                assert "probability" in response
            else:
                # never hung, never corrupted: only explicit shedding
                assert response["error"] in ("overloaded", "timeout"), response

        status_line, body = _http_raw("127.0.0.1", thread.port, "/healthz")
        assert "503" in status_line, (status_line, body)
        health = json.loads(body)
        assert health["status"] == "degraded"
        assert any(not worker["alive"] for worker in health["workers"])
        registry = thread.server.registry
        assert registry.snapshot().get("server_worker_crashes_total", 0) >= 1
        # The survivor still answers.
        with ServerClient("127.0.0.1", thread.port) as client:
            assert client.query("R(x), S(x,y)")["ok"]


def test_healthz_returns_503_when_worker_dead():
    with _server("processes", restart_workers=False) as thread:
        victim = thread.server._pool.workers_info()[1]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 10
        status_line = ""
        while time.time() < deadline:
            status_line, body = _http_raw("127.0.0.1", thread.port, "/healthz")
            if "503" in status_line:
                health = json.loads(body)
                assert health["status"] == "degraded"
                break
            time.sleep(0.1)
        assert "503" in status_line, status_line


def test_crashed_worker_is_respawned():
    """With restart on (the default) a SIGKILLed worker comes back.

    The replacement re-joins the hash ring, healthz returns to 200/ok, and
    ``server_worker_restarts_total`` counts the respawn.
    """
    with _server("processes") as thread:
        pool = thread.server._pool
        victim = pool.workers_info()[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 30
        recovered = False
        while time.time() < deadline:
            status_line, body = _http_raw("127.0.0.1", thread.port, "/healthz")
            if "200" in status_line:
                health = json.loads(body)
                workers = health["workers"]
                if (
                    health["status"] == "ok"
                    and all(worker["alive"] for worker in workers)
                    and any(worker["pid"] != victim for worker in workers)
                    and any(worker["restarts"] >= 1 for worker in workers)
                ):
                    recovered = True
                    break
            time.sleep(0.1)
        assert recovered, "killed worker was not respawned within 30s"
        registry = thread.server.registry
        assert registry.snapshot().get("server_worker_restarts_total", 0) >= 1
        # The pool routes through the replacement without shedding.
        with ServerClient("127.0.0.1", thread.port) as client:
            for query in QUERIES:
                assert client.query(query)["ok"]


# -- drain --------------------------------------------------------------------


def test_process_server_drains_cleanly():
    thread = _server("processes").start()
    with ServerClient("127.0.0.1", thread.port) as client:
        assert client.query("R(x), S(x,y)")["ok"]
    pool = thread.server._pool
    pids = [w["pid"] for w in pool.workers_info()]
    thread.stop()
    deadline = time.time() + 10
    while time.time() < deadline:
        if all(not _pid_alive(pid) for pid in pids):
            break
        time.sleep(0.05)
    assert all(not _pid_alive(pid) for pid in pids), "workers outlived drain"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True
