"""Unit tests for repro.logic.terms."""

from repro.logic.terms import Const, Var, constants_of, is_constant, is_variable, variables_of


def test_var_equality_by_name():
    assert Var("x") == Var("x")
    assert Var("x") != Var("y")


def test_var_hashable():
    assert len({Var("x"), Var("x"), Var("y")}) == 2


def test_const_equality_by_value():
    assert Const("a") == Const("a")
    assert Const("a") != Const("b")
    assert Const(1) != Const("1")


def test_const_wraps_arbitrary_hashables():
    assert Const((1, 2)).value == (1, 2)


def test_is_variable_and_is_constant():
    assert is_variable(Var("x"))
    assert not is_variable(Const("a"))
    assert is_constant(Const("a"))
    assert not is_constant(Var("x"))


def test_variables_of_mixed_terms():
    terms = [Var("x"), Const("a"), Var("y"), Var("x")]
    assert variables_of(terms) == frozenset({Var("x"), Var("y")})


def test_constants_of_mixed_terms():
    terms = [Var("x"), Const("a"), Const(3)]
    assert constants_of(terms) == frozenset({Const("a"), Const(3)})


def test_var_str():
    assert str(Var("x")) == "x"


def test_const_str_quotes_strings():
    assert str(Const("a1")) == "'a1'"
    assert str(Const(7)) == "7"
