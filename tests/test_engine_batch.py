"""Concurrent batch execution: ordering, dedup, thread-safety, executors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineSession, Method, ProbabilisticDatabase
from repro.core.tid import TupleIndependentDatabase
from repro.workloads.generators import full_tid

QUERY_FAMILY = (
    "R(x)",
    "R(x), S(x,y)",
    "S(x,y), T(y)",
    "R(x), S(x,y), T(y)",
    "R(x), S(x,y) | T(u), S(u,v)",
)


def _family_db() -> TupleIndependentDatabase:
    db = TupleIndependentDatabase()
    db.add_fact("R", ("a",), 0.5)
    db.add_fact("R", ("b",), 0.25)
    db.add_fact("S", ("a", "a"), 0.8)
    db.add_fact("S", ("a", "b"), 0.3)
    db.add_fact("S", ("b", "b"), 0.9)
    db.add_fact("T", ("a",), 0.6)
    db.add_fact("T", ("b",), 0.1)
    return db


def test_batch_preserves_input_order():
    session = EngineSession(_family_db(), seed=3)
    queries = list(QUERY_FAMILY) + list(reversed(QUERY_FAMILY))
    answers = session.query_batch(queries)
    serial = [
        ProbabilisticDatabase(tid=_family_db(), seed=3).probability(q)
        for q in queries
    ]
    assert [a.probability for a in answers] == [a.probability for a in serial]
    assert [a.method for a in answers] == [a.method for a in serial]


def test_batch_executors_agree():
    queries = list(QUERY_FAMILY) * 2
    results = {}
    for executor in ("serial", "thread", "process"):
        session = EngineSession(_family_db(), seed=3)
        answers = session.query_batch(queries, executor=executor, max_workers=2)
        results[executor] = [a.probability for a in answers]
    assert results["serial"] == results["thread"] == results["process"]


def test_inflight_dedup_computes_each_key_once():
    session = EngineSession(full_tid(41, 4), seed=0)
    answers = session.query_batch(
        ["R(x), S(x,y), T(y)"] * 8, Method.DPLL, max_workers=8
    )
    assert len({a.probability for a in answers}) == 1
    # one cold computation; the other seven were served as (shared) hits
    assert session.stats.cache_misses == 1
    assert session.stats.cache_hits == 7


def test_batch_raises_on_bad_query():
    session = EngineSession(_family_db())
    with pytest.raises(Exception):
        session.query_batch(["R(x), S(x,y)", "R(x,"])


def test_batch_rejects_unknown_executor():
    session = EngineSession(_family_db())
    with pytest.raises(ValueError, match="unknown executor"):
        session.query_batch(["R(x)"], executor="carrier-pigeon")


def test_empty_batch():
    session = EngineSession(_family_db())
    assert session.query_batch([]) == []


def test_process_batch_merges_into_cache():
    session = EngineSession(_family_db(), seed=3)
    session.query_batch(["R(x), S(x,y)"], executor="process", max_workers=1)
    warm = session.query("R(x), S(x,y)")
    assert warm.stats.cache_hit


# -- hypothesis: thread-safety under generated workloads ----------------------


@st.composite
def workloads(draw):
    """A small random TID plus a query mix with duplicates."""
    domain = ("a", "b", "c")
    facts = []
    for name, arity in (("R", 1), ("S", 2), ("T", 1)):
        rows = draw(
            st.lists(
                st.tuples(
                    st.tuples(*[st.sampled_from(domain)] * arity),
                    st.floats(min_value=0.05, max_value=0.95),
                ),
                min_size=1,
                max_size=5,
                unique_by=lambda row: row[0],
            )
        )
        facts.extend((name, values, round(prob, 3)) for values, prob in rows)
    queries = draw(
        st.lists(st.sampled_from(QUERY_FAMILY), min_size=1, max_size=12)
    )
    return facts, queries


@settings(max_examples=15, deadline=None)
@given(workloads())
def test_threaded_batch_matches_sequential_reference(workload):
    facts, queries = workload
    session = EngineSession(
        TupleIndependentDatabase.from_facts(facts), seed=9, cache_size=64
    )
    answers = session.query_batch(queries, executor="thread", max_workers=4)
    reference = ProbabilisticDatabase(
        tid=TupleIndependentDatabase.from_facts(facts), seed=9
    )
    for query, answer in zip(queries, answers):
        expected = reference.probability(query)
        assert answer.probability == expected.probability
        assert answer.method == expected.method
    assert len(session.cache) <= 64


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_threaded_batch_is_internally_consistent(workload):
    """Racing duplicates must all observe one value per (query, method)."""
    facts, queries = workload
    session = EngineSession(TupleIndependentDatabase.from_facts(facts), seed=9)
    doubled = queries * 2
    answers = session.query_batch(doubled, executor="thread", max_workers=8)
    by_query: dict[str, set] = {}
    for query, answer in zip(doubled, answers):
        by_query.setdefault(query, set()).add(answer.probability)
    for query, values in by_query.items():
        assert len(values) == 1, f"divergent answers for {query}: {values}"


def test_mp_context_never_uses_fork():
    """Process batches must not fork: the engine holds locks and threads.

    forkserver is preferred (cheap re-spawn after the first), spawn is the
    portable fallback; plain fork would duplicate a possibly-locked
    interpreter and is never acceptable.
    """
    import multiprocessing

    from repro.engine.batch import mp_context

    context = mp_context()
    assert context.get_start_method() in ("forkserver", "spawn")
    if "forkserver" in multiprocessing.get_all_start_methods():
        assert context.get_start_method() == "forkserver"
