"""Unit tests for repro.kc: circuits, OBDDs, orders, and Figure 2."""

import itertools

import pytest

from repro.booleans.expr import band, bnot, bor, bvar, evaluate
from repro.kc.circuits import Circuit, FALSE_LEAF, TRUE_LEAF
from repro.kc.fig2 import (
    fig2a_fbdd,
    fig2a_formula,
    fig2b_decision_dnnf,
    fig2b_formula,
)
from repro.kc.obdd import OBDD, compile_obdd
from repro.kc.orders import (
    exhaustive_minimum_size,
    hierarchical_order,
    predicate_major_order,
)
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.wmc.brute import brute_force_wmc
from repro.workloads.generators import full_tid

from conftest import close


def assignments(k):
    for bits in itertools.product((False, True), repeat=k):
        yield dict(enumerate(bits))


# -- Circuit arena ----------------------------------------------------------------


def test_decision_collapses_equal_children():
    c = Circuit()
    assert c.decision(0, TRUE_LEAF, TRUE_LEAF) == TRUE_LEAF


def test_conjoin_unit_laws():
    c = Circuit()
    n = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    assert c.conjoin((n, TRUE_LEAF)) == n
    assert c.conjoin((n, FALSE_LEAF)) == FALSE_LEAF
    assert c.conjoin(()) == TRUE_LEAF


def test_disjoin_unit_laws():
    c = Circuit()
    n = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    assert c.disjoin((n, FALSE_LEAF)) == n
    assert c.disjoin((n, TRUE_LEAF)) == TRUE_LEAF
    assert c.disjoin(()) == FALSE_LEAF


def test_node_interning():
    c = Circuit()
    a = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    b = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    assert a == b
    assert c.size(a) == 1


def test_circuit_wmc_decision_semantics():
    c = Circuit()
    n = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    c.root = n
    assert close(c.wmc({0: 0.3}), 0.3)


def test_circuit_wmc_marginalizes_untested_variables():
    c = Circuit()
    c.root = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    # variable 1 not tested anywhere: result independent of its probability
    assert close(c.wmc({0: 0.3, 1: 0.9}), 0.3)


def test_circuit_model_count():
    c = Circuit()
    x = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    y = c.decision(1, FALSE_LEAF, TRUE_LEAF)
    c.root = c.conjoin((x, y))
    assert c.model_count([0, 1]) == pytest.approx(1)


def test_check_fbdd_detects_repeated_test():
    c = Circuit()
    inner = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    c.root = c.decision(0, inner, TRUE_LEAF)
    assert not c.check_fbdd()


def test_check_decision_dnnf_rejects_overlapping_and():
    c = Circuit()
    a = c.decision(0, FALSE_LEAF, TRUE_LEAF)
    b = c.decision(0, TRUE_LEAF, FALSE_LEAF)
    # a and b share variable 0 — not decomposable. conjoin doesn't check,
    # the validator must.
    c.root = c.conjoin((a, b))
    assert not c.check_decision_dnnf()


def test_check_d_dnnf_determinism():
    c = Circuit()
    la = c.literal(0, True)
    lb = c.literal(0, False)
    c.root = c.disjoin((la, lb))
    assert c.check_d_dnnf()  # x ∨ ¬x is deterministic (disjoint events)
    c2 = Circuit()
    c2.root = c2.disjoin((c2.literal(0, True), c2.literal(1, True)))
    assert not c2.check_d_dnnf()  # x ∨ y overlaps on x=y=1


# -- Figure 2 ----------------------------------------------------------------------


def test_fig2a_fbdd_semantics():
    circuit, _ = fig2a_fbdd()
    f = fig2a_formula()
    for a in assignments(3):
        assert circuit.evaluate(a) == evaluate(f, a)


def test_fig2a_is_fbdd():
    circuit, _ = fig2a_fbdd()
    assert circuit.check_fbdd()


def test_fig2a_wmc_matches_brute_force():
    circuit, _ = fig2a_fbdd()
    p = {0: 0.5, 1: 0.4, 2: 0.7}
    assert close(circuit.wmc(p), brute_force_wmc(fig2a_formula(), p))


def test_fig2b_decision_dnnf_semantics():
    circuit, _ = fig2b_decision_dnnf()
    f = fig2b_formula()
    for a in assignments(4):
        assert circuit.evaluate(a) == evaluate(f, a)


def test_fig2b_is_decision_dnnf():
    circuit, _ = fig2b_decision_dnnf()
    assert circuit.check_decision_dnnf()
    assert circuit.check_d_dnnf()


def test_fig2b_wmc():
    circuit, _ = fig2b_decision_dnnf()
    p = {0: 0.5, 1: 0.4, 2: 0.7, 3: 0.2}
    assert close(circuit.wmc(p), brute_force_wmc(fig2b_formula(), p))


# -- OBDD ---------------------------------------------------------------------------


def test_obdd_variable_and_negate():
    manager = OBDD((0, 1))
    v = manager.variable(0)
    assert manager.evaluate(v, {0: True, 1: False})
    assert not manager.evaluate(manager.negate(v), {0: True, 1: False})


def test_obdd_semantics_random():
    import random

    rng = random.Random(9)
    for _ in range(20):
        literals = [bvar(i) if rng.random() < 0.5 else bnot(bvar(i)) for i in range(4)]
        f = bor(band(literals[0], literals[1]), band(literals[2], literals[3]))
        manager, root = compile_obdd(f)
        for a in assignments(4):
            assert manager.evaluate(root, a) == evaluate(f, a)


def test_obdd_reduction_canonical():
    # x ∨ (x ∧ y) reduces to just x: one node
    f = bor(bvar(0), band(bvar(0), bvar(1)))
    manager, root = compile_obdd(f, order=[0, 1])
    assert manager.size(root) == 1


def test_obdd_wmc():
    f = bor(band(bvar(0), bvar(1)), bvar(2))
    p = {0: 0.5, 1: 0.3, 2: 0.8}
    manager, root = compile_obdd(f)
    assert close(manager.wmc(root, p), brute_force_wmc(f, p))


def test_obdd_model_count():
    f = bor(bvar(0), bvar(1))
    manager, root = compile_obdd(f)
    assert manager.model_count(root) == 3


def test_obdd_rejects_duplicate_order():
    with pytest.raises(ValueError):
        OBDD((0, 0, 1))


def test_obdd_order_must_cover_variables():
    with pytest.raises(ValueError):
        compile_obdd(band(bvar(0), bvar(5)), order=[0, 1])


# -- orders ---------------------------------------------------------------------------


def test_hierarchical_order_linear_size():
    db = full_tid(3, 4)
    query = parse_cq("R(x), S(x,y)")
    lin = lineage_of_cq(query, db)
    manager, root = compile_obdd(lin.expr, hierarchical_order(query, lin))
    # linear in the number of lineage variables
    assert manager.size(root) <= lin.variable_count + 2


def test_predicate_major_order_is_worse():
    db = full_tid(3, 4)
    query = parse_cq("R(x), S(x,y)")
    lin = lineage_of_cq(query, db)
    good = compile_obdd(lin.expr, hierarchical_order(query, lin))
    bad = compile_obdd(lin.expr, predicate_major_order(lin))
    assert bad[0].size(bad[1]) > good[0].size(good[1])


def test_hierarchical_order_rejects_non_hierarchical():
    db = full_tid(3, 2)
    query = parse_cq("R(x), S(x,y), T(y)")
    lin = lineage_of_cq(query, db)
    with pytest.raises(ValueError):
        hierarchical_order(query, lin)


def test_exhaustive_minimum_exceeds_bound_for_h0():
    # Theorem 7.1(i)(b): every OBDD of H0's lineage has ≥ (2^n - 1)/n nodes.
    db = full_tid(5, 2)
    query = parse_cq("R(x), S(x,y), T(y)")
    lin = lineage_of_cq(query, db)
    n = 2
    minimum = exhaustive_minimum_size(lin.expr, sorted(lin.expr.variables()))
    assert minimum >= (2 ** n - 1) / n
