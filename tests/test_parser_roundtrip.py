"""Property test: printing then re-parsing a formula is the identity."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
)
from repro.logic.parser import parse
from repro.logic.terms import Const, Var

VARIABLES = [Var("x"), Var("y"), Var("z")]
PREDICATES = [("R", 1), ("S", 2), ("T", 1)]


@st.composite
def terms(draw):
    if draw(st.booleans()):
        return draw(st.sampled_from(VARIABLES))
    return Const(draw(st.sampled_from(["a1", "b2", "c3"])))


@st.composite
def atoms(draw):
    name, arity = draw(st.sampled_from(PREDICATES))
    return Atom(name, tuple(draw(terms()) for _ in range(arity)))


@st.composite
def formulas(draw, depth=3) -> Formula:
    if depth == 0:
        return draw(atoms())
    kind = draw(st.sampled_from(["atom", "not", "and", "or", "exists", "forall"]))
    if kind == "atom":
        return draw(atoms())
    if kind == "not":
        return Not(draw(formulas(depth=depth - 1)))
    if kind in ("and", "or"):
        parts = tuple(
            draw(formulas(depth=depth - 1))
            for _ in range(draw(st.integers(2, 3)))
        )
        return And.of(parts) if kind == "and" else Or.of(parts)
    var = draw(st.sampled_from(VARIABLES))
    body = draw(formulas(depth=depth - 1))
    return Exists(var, body) if kind == "exists" else Forall(var, body)


@given(formulas())
@settings(max_examples=250, deadline=None)
def test_parse_str_roundtrip(formula):
    assert parse(str(formula)) == formula


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_str_is_deterministic(formula):
    assert str(formula) == str(formula)


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_roundtrip_preserves_free_variables(formula):
    reparsed = parse(str(formula))
    assert reparsed.free_variables() == formula.free_variables()


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_roundtrip_preserves_relation_symbols(formula):
    assert parse(str(formula)).relation_symbols() == formula.relation_symbols()
