"""Unit tests for repro.core.aggregates."""

import pytest

from repro.core.aggregates import (
    answer_count_distribution,
    expected_answer_count,
    top_k_answers,
)
from repro.logic.cq import parse_cq

from conftest import close


def test_expected_count_single_relation(small_db):
    # q(x) :- R(x): E[count] = 0.5 + 0.25
    got = expected_answer_count(parse_cq("R(x)"), ["x"], small_db)
    assert close(got, 0.75)


def test_expected_count_join(small_db):
    query = parse_cq("R(x), S(x,y)")
    per_answer = {
        "a": 0.5 * (1 - (1 - 0.8) * (1 - 0.3)),
        "b": 0.25 * 0.9,
    }
    got = expected_answer_count(query, ["x"], small_db)
    assert close(got, sum(per_answer.values()))


def test_count_distribution_probabilities_sum_to_one(small_db):
    dist = answer_count_distribution(parse_cq("R(x)"), ["x"], small_db)
    assert close(sum(dist.probabilities), 1.0)


def test_count_distribution_matches_expectation(small_db):
    query = parse_cq("R(x), S(x,y)")
    dist = answer_count_distribution(query, ["x"], small_db)
    expected = expected_answer_count(query, ["x"], small_db)
    assert close(dist.expectation, expected)


def test_count_distribution_exact_values(small_db):
    # independent answers R(a) (0.5) and R(b) (0.25)
    dist = answer_count_distribution(parse_cq("R(x)"), ["x"], small_db)
    assert close(dist.probabilities[0], 0.5 * 0.75)
    assert close(dist.probabilities[1], 0.5 * 0.75 + 0.5 * 0.25)
    assert close(dist.probabilities[2], 0.5 * 0.25)


def test_count_distribution_variance(small_db):
    dist = answer_count_distribution(parse_cq("R(x)"), ["x"], small_db)
    # variance of sum of independent Bernoullis
    assert close(dist.variance, 0.5 * 0.5 + 0.25 * 0.75)


def test_count_distribution_cdf(small_db):
    dist = answer_count_distribution(parse_cq("R(x)"), ["x"], small_db)
    assert close(dist.cdf(len(dist.probabilities) - 1), 1.0)
    assert dist.cdf(0) <= dist.cdf(1)


def test_count_distribution_variable_guard(small_db):
    with pytest.raises(ValueError):
        answer_count_distribution(
            parse_cq("S(x,y)"), ["x", "y"], small_db, max_variables=1
        )


def test_top_k_order(small_db):
    ranked = top_k_answers(parse_cq("R(x), S(x,y)"), ["x"], small_db, k=2)
    assert len(ranked) == 2
    assert ranked[0][1] >= ranked[1][1]
    # the 'a' answer dominates: 0.5·0.86 vs 0.25·0.9
    assert ranked[0][0] == ("a",)


def test_top_k_truncates(small_db):
    ranked = top_k_answers(parse_cq("R(x)"), ["x"], small_db, k=1)
    assert len(ranked) == 1
