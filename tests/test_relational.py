"""Unit tests for repro.relational: relations and the probabilistic algebra."""

import pytest

from repro.relational.algebra import (
    boolean_oplus,
    cartesian_product,
    difference,
    independent_project,
    join,
    oplus,
    project,
    rename_attributes,
    select,
    select_eq,
    union,
)
from repro.relational.relation import Relation, relation_from_rows


@pytest.fixture
def r():
    return relation_from_rows("R", ("x",), {("a",): 0.5, ("b",): 0.25})


@pytest.fixture
def s():
    return relation_from_rows(
        "S",
        ("x", "y"),
        {("a", "a"): 0.8, ("a", "b"): 0.3, ("b", "b"): 0.9},
    )


def test_oplus_definition():
    assert oplus(0.5, 0.5) == pytest.approx(0.75)
    assert oplus(0.0, 0.3) == pytest.approx(0.3)
    assert oplus(1.0, 0.3) == pytest.approx(1.0)


def test_relation_add_and_probability(r):
    assert r.probability(("a",)) == 0.5  # prodb-lint: exact
    assert r.probability(("zzz",)) == 0.0  # prodb-lint: exact
    assert ("a",) in r and ("zzz",) not in r


def test_relation_arity_check():
    rel = Relation("R", ("x",))
    with pytest.raises(ValueError):
        rel.add(("a", "b"))


def test_relation_probability_range_check():
    rel = Relation("R", ("x",))
    with pytest.raises(ValueError):
        rel.add(("a",), 1.5)


def test_active_domain(s):
    assert s.active_domain() == {"a", "b"}


def test_map_probabilities(r):
    doubled = r.map_probabilities(lambda p: p / 2)
    assert doubled.probability(("a",)) == 0.25  # prodb-lint: exact
    assert r.probability(("a",)) == 0.5  # prodb-lint: exact -- original untouched


def test_is_deterministic():
    det = relation_from_rows("D", ("x",), [("a",), ("b",)])
    assert det.is_deterministic()


def test_select(s):
    out = select(s, lambda row: row["y"] == "b")
    assert len(out) == 2


def test_select_eq(s):
    out = select_eq(s, "x", "a")
    assert set(out.rows) == {("a", "a"), ("a", "b")}


def test_project_set_semantics(s):
    out = project(s, ["x"])
    assert set(out.rows) == {("a",), ("b",)}
    assert all(p == 1.0 for p in out.rows.values())  # prodb-lint: exact


def test_independent_project(s):
    out = independent_project(s, ["x"])
    assert out.probability(("a",)) == pytest.approx(oplus(0.8, 0.3))
    assert out.probability(("b",)) == pytest.approx(0.9)


def test_join_multiplies(r, s):
    out = join(r, s)
    assert out.probability(("a", "a")) == pytest.approx(0.5 * 0.8)
    assert out.probability(("b", "b")) == pytest.approx(0.25 * 0.9)
    assert len(out) == 3


def test_join_schema_order(r, s):
    out = join(s, r)
    assert out.attributes == ("x", "y")


def test_join_no_shared_is_product(r):
    t = relation_from_rows("T", ("z",), {("q",): 0.5})
    out = join(r, t)
    assert len(out) == 2
    assert out.probability(("a", "q")) == pytest.approx(0.25)


def test_cartesian_product_rejects_shared_names(r):
    with pytest.raises(ValueError):
        cartesian_product(r, r)


def test_union_oplus(r):
    r2 = relation_from_rows("R2", ("x",), {("a",): 0.5, ("c",): 0.1})
    out = union(r, r2)
    assert out.probability(("a",)) == pytest.approx(0.75)
    assert out.probability(("c",)) == pytest.approx(0.1)


def test_union_schema_mismatch(r, s):
    with pytest.raises(ValueError):
        union(r, s)


def test_difference(r):
    r2 = relation_from_rows("R2", ("x",), {("a",): 1.0})
    out = difference(r, r2)
    assert set(out.rows) == {("b",)}


def test_rename_attributes(s):
    out = rename_attributes(s, ("u", "v"))
    assert out.attributes == ("u", "v")
    with pytest.raises(ValueError):
        rename_attributes(s, ("u",))


def test_boolean_oplus(s):
    expected = 1 - (1 - 0.8) * (1 - 0.3) * (1 - 0.9)
    zero_col = independent_project(s, [])
    assert boolean_oplus(s) == pytest.approx(expected)
    assert zero_col.probability(()) == pytest.approx(expected)


# -- duplicate-row policy (⊕-combine on add, replace to overwrite) ------------


def test_add_duplicate_oplus_combines(r):
    r.add(("a",), 0.5)
    assert r.probability(("a",)) == pytest.approx(0.75)  # 0.5 ⊕ 0.5


def test_replace_overwrites(r):
    r.replace(("a",), 0.1)
    assert r.probability(("a",)) == pytest.approx(0.1)


def test_union_goes_through_add_policy(r):
    # union(r, r) must give the same result as re-adding every row of r
    out = union(r, r)
    rebuilt = relation_from_rows("R", ("x",), dict(r.rows))
    for values, prob in r.items():
        rebuilt.add(values, prob)
    assert out.rows.keys() == rebuilt.rows.keys()
    for values in out.rows:
        assert out.rows[values] == pytest.approx(rebuilt.rows[values])


# -- empty relations through every operator -----------------------------------


def test_empty_relation_through_every_operator(r):
    e = Relation("E", ("x",))
    e2 = Relation("E2", ("x", "y"))
    assert len(select(e, lambda row: True)) == 0
    assert len(select_eq(e, "x", "a")) == 0
    assert len(project(e, ("x",))) == 0
    assert len(independent_project(e, ())) == 0
    assert len(join(e, r)) == 0
    assert len(join(r, e)) == 0
    assert len(join(e, e2)) == 0
    assert len(union(e, Relation("E3", ("x",)))) == 0
    assert len(difference(e, r)) == 0
    assert set(difference(r, e).rows) == set(r.rows)
    assert len(cartesian_product(e, Relation("Z", ("z",)))) == 0
    assert boolean_oplus(e) == 0.0  # prodb-lint: exact -- empty ⊕ is exactly 0
    assert len(rename_attributes(e, ("u",))) == 0
