"""Tests for FBDD compilation (DPLL trace without components)."""

import random

from repro.booleans.expr import band, bnot, bor, bvar
from repro.wmc.brute import brute_force_wmc
from repro.wmc.dpll import compile_decision_dnnf, compile_fbdd

from conftest import close


def random_dnf(rng, variables=5, terms=3):
    leaves = [bvar(i) for i in range(variables)]
    parts = []
    for _ in range(terms):
        literals = [
            v if rng.random() < 0.6 else bnot(v)
            for v in rng.sample(leaves, rng.randint(1, 3))
        ]
        parts.append(band(*literals))
    return bor(*parts)


def test_fbdd_trace_has_no_and_nodes():
    rng = random.Random(1)
    expr = random_dnf(rng)
    probabilities = {i: 0.5 for i in range(5)}
    result = compile_fbdd(expr, probabilities)
    from repro.kc.circuits import AndNode

    for node_id in result.circuit.reachable():
        assert not isinstance(result.circuit.nodes[node_id], AndNode)


def test_fbdd_is_valid_and_correct():
    rng = random.Random(2)
    for _ in range(15):
        expr = random_dnf(rng)
        probabilities = {i: rng.uniform(0.1, 0.9) for i in range(5)}
        result = compile_fbdd(expr, probabilities)
        assert result.circuit.check_fbdd()
        assert close(result.probability, brute_force_wmc(expr, probabilities))
        assert close(result.circuit.wmc(probabilities), result.probability)


def test_fbdd_with_fixed_order_is_ordered():
    rng = random.Random(3)
    expr = random_dnf(rng)
    probabilities = {i: 0.5 for i in range(5)}
    order = [4, 3, 2, 1, 0]
    result = compile_fbdd(expr, probabilities, variable_order=order)
    # along every path, variables must respect the order
    rank = {v: i for i, v in enumerate(order)}
    circuit = result.circuit
    from repro.kc.circuits import Decision

    def check(node_id, minimum):
        if node_id in (0, 1):
            return
        node = circuit.nodes[node_id]
        assert isinstance(node, Decision)
        assert rank[node.var] >= minimum
        check(node.lo, rank[node.var] + 1)
        check(node.hi, rank[node.var] + 1)

    check(circuit.root, 0)


def test_fbdd_at_least_as_large_as_decision_dnnf():
    # components only ever shrink the trace
    rng = random.Random(4)
    for _ in range(10):
        expr = random_dnf(rng, variables=6, terms=3)
        probabilities = {i: 0.5 for i in range(6)}
        fbdd = compile_fbdd(expr, probabilities)
        ddnnf = compile_decision_dnnf(expr, probabilities)
        assert close(fbdd.probability, ddnnf.probability)
