"""Deeper symmetric-WFOMC validation: larger domains, more vocabularies."""

import pytest

from repro.logic.parser import parse
from repro.symmetric.evaluate import symmetric_probability
from repro.symmetric.symmetric_db import SymmetricDatabase

from conftest import close


def sym_db(n, relations):
    db = SymmetricDatabase(n)
    for name, arity, p in relations:
        db.add_relation(name, arity, p)
    return db


@pytest.mark.parametrize(
    "text",
    [
        "forall x. exists y. S(x,y)",
        "exists x. forall y. S(x,y)",
        "forall x. forall y. (S(x,y) -> S(y,x))",
        "forall x. S(x,x)",
        "exists x. S(x,x)",
        "forall x. exists y. (S(x,y) & ~S(y,x))",
    ],
)
def test_binary_only_vocabulary_n3(text):
    db = sym_db(3, [("S", 2, 0.35)])
    sentence = parse(text)
    got = symmetric_probability(sentence, db)
    want = db.to_tid().brute_force_probability(sentence)
    assert close(got, want), text


@pytest.mark.parametrize(
    "text",
    [
        "forall x. (R(x) | exists y. S(x,y))",
        "exists x. (R(x) & forall y. (S(x,y) -> R(y)))",
        "forall x. forall y. ((R(x) & R(y)) -> S(x,y))",
    ],
)
@pytest.mark.parametrize("n", [1, 2])
def test_mixed_vocabulary(text, n):
    db = sym_db(n, [("R", 1, 0.6), ("S", 2, 0.25)])
    sentence = parse(text)
    got = symmetric_probability(sentence, db)
    want = db.to_tid().brute_force_probability(sentence)
    assert close(got, want), (text, n)


def test_extreme_probabilities():
    db = sym_db(3, [("S", 2, 1.0)])
    assert close(
        symmetric_probability(parse("forall x. forall y. S(x,y)"), db), 1.0
    )
    db0 = sym_db(3, [("S", 2, 0.0)])
    assert close(
        symmetric_probability(parse("exists x. exists y. S(x,y)"), db0), 0.0
    )


def test_domain_size_one_degenerate():
    db = sym_db(1, [("S", 2, 0.5), ("R", 1, 0.3)])
    sentence = parse("forall x. exists y. (S(x,y) & R(y))")
    got = symmetric_probability(sentence, db)
    # single element: S(0,0) ∧ R(0)
    assert close(got, 0.15)


def test_monotonicity_in_probability():
    sentence = parse("forall x. exists y. S(x,y)")
    values = []
    for p in (0.2, 0.4, 0.6, 0.8):
        db = sym_db(4, [("S", 2, p)])
        values.append(symmetric_probability(sentence, db))
    assert values == sorted(values)


def test_monotonicity_in_domain_for_existential():
    sentence = parse("exists x. exists y. S(x,y)")
    values = []
    for n in (1, 2, 3, 4):
        db = sym_db(n, [("S", 2, 0.3)])
        values.append(symmetric_probability(sentence, db))
    assert values == sorted(values)


def test_complement_consistency():
    # p(Q) + p(¬Q) = 1 through two separate WFOMC runs
    q = parse("forall x. exists y. S(x,y)")
    nq = parse("exists x. forall y. ~S(x,y)")
    db = sym_db(3, [("S", 2, 0.45)])
    assert close(
        symmetric_probability(q, db) + symmetric_probability(nq, db), 1.0
    )


def test_three_unary_predicates():
    db = sym_db(2, [("R", 1, 0.3), ("U", 1, 0.5), ("T", 1, 0.7)])
    sentence = parse("forall x. ((R(x) & U(x)) -> T(x))")
    got = symmetric_probability(sentence, db)
    want = db.to_tid().brute_force_probability(sentence)
    assert close(got, want)
