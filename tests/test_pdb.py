"""Unit tests for the public façade (repro.core.pdb)."""

import pytest

from repro.core.pdb import Method, ProbabilisticDatabase
from repro.logic.cq import parse_cq
from repro.logic.parser import parse
from repro.workloads.generators import random_tid

from conftest import close


@pytest.fixture
def pdb():
    return ProbabilisticDatabase(tid=random_tid(19, 3), seed=11)


def test_parse_query_routes():
    assert parse_cq("R(x), S(x,y)") == ProbabilisticDatabase.parse_query(
        "R(x), S(x,y)"
    )
    sentence = ProbabilisticDatabase.parse_query("exists x. R(x)")
    assert sentence.is_sentence()
    ucq = ProbabilisticDatabase.parse_query("R(x) | T(y)")
    assert len(ucq) == 2


def test_auto_uses_lifted_for_safe_query(pdb):
    answer = pdb.probability("R(x), S(x,y)")
    assert answer.method is Method.LIFTED
    assert answer.exact


def test_auto_falls_back_for_hard_query(pdb):
    answer = pdb.probability("R(x), S(x,y), T(y)")
    assert answer.method is Method.DPLL
    assert "lifted failed" in answer.detail


def test_all_exact_methods_agree(pdb):
    text = "R(x), S(x,y)"
    values = [
        pdb.probability(text, method).probability
        for method in (Method.LIFTED, Method.SAFE_PLAN, Method.DPLL, Method.BRUTE_FORCE)
    ]
    for value in values[1:]:
        assert close(values[0], value)


def test_exact_methods_agree_on_hard_query(pdb):
    text = "R(x), S(x,y), T(y)"
    dpll = pdb.probability(text, Method.DPLL).probability
    brute = pdb.probability(text, Method.BRUTE_FORCE).probability
    assert close(dpll, brute)


def test_monte_carlo_close(pdb):
    text = "R(x), S(x,y)"
    exact = pdb.probability(text, Method.DPLL).probability
    pdb.mc_epsilon = 0.03
    estimate = pdb.probability(text, Method.MONTE_CARLO)
    assert not estimate.exact
    assert abs(estimate.probability - exact) < 0.05


def test_karp_luby_close(pdb):
    text = "R(x), S(x,y), T(y)"
    exact = pdb.probability(text, Method.DPLL).probability
    pdb.mc_epsilon = 0.05
    estimate = pdb.probability(text, Method.KARP_LUBY)
    assert not estimate.exact
    if exact > 0:
        assert abs(estimate.probability - exact) / exact < 0.15


def test_sentence_query(pdb):
    text = "forall x. forall y. (~S(x,y) | R(x))"
    got = pdb.probability(text)
    want = pdb.probability(text, Method.BRUTE_FORCE)
    assert close(got.probability, want.probability)


def test_safe_plan_method_rejects_ucq(pdb):
    from repro.plans.safe_plan import UnsafePlanError

    with pytest.raises(UnsafePlanError):
        pdb.probability("R(x) | T(y)", Method.SAFE_PLAN)


def test_probability_rejects_free_variables(pdb):
    with pytest.raises(ValueError):
        pdb.probability(parse("R(x)"))


def test_answers_per_tuple(pdb):
    answers = pdb.answers("R(x), S(x,y)", ["x"])
    assert answers
    for values, answer in answers.items():
        assert len(values) == 1
        assert 0.0 <= answer.probability <= 1.0
        assert answer.exact


def test_answers_match_boolean_with_constant(pdb):
    answers = pdb.answers("R(x), S(x,y)", ["x"])
    for (value,), answer in answers.items():
        boolean = pdb.probability(f"R('{value}'), S('{value}', y)", Method.DPLL)
        assert close(answer.probability, boolean.probability)


def test_answers_rejects_unknown_head(pdb):
    with pytest.raises(ValueError):
        pdb.answers("R(x), S(x,y)", ["z"])


def test_explain_contains_method(pdb):
    text = pdb.explain("R(x), S(x,y)")
    assert "lifted" in text
    assert "probability" in text


def test_add_fact_and_domain_roundtrip():
    pdb = ProbabilisticDatabase()
    pdb.add_fact("R", ("a",), 0.5)
    pdb.add_fact("S", ("a", "b"), 0.5)
    assert pdb.domain == ("a", "b")
    pdb.set_domain(("a", "b", "c"))
    assert pdb.domain == ("a", "b", "c")


def test_query_answer_float_protocol(pdb):
    answer = pdb.probability("R(x)")
    assert float(answer) == answer.probability


def test_tuple_posteriors_monotone_query(pdb):
    reports = pdb.tuple_posteriors("R(x), S(x,y)")
    assert reports
    for (name, values), report in reports.items():
        prior = pdb.tid.probability_of_fact(name, values)
        assert close(report.prior, prior)
        # monotone query: conditioning on truth never lowers a marginal
        assert report.posterior >= report.prior - 1e-9


def test_most_probable_world_satisfies_query(pdb):
    from repro.logic.semantics import satisfies

    world, probability = pdb.most_probable_world("R(x), S(x,y)")
    present = frozenset(fact for fact, value in world.items() if value)
    sentence = ProbabilisticDatabase.parse_query("R(x), S(x,y)").to_formula()
    assert satisfies(present, pdb.domain, sentence)
    assert 0.0 < probability <= 1.0
