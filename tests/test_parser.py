"""Unit tests for repro.logic.parser."""

import pytest

from repro.logic.formulas import And, Atom, Exists, Forall, Not, Or
from repro.logic.parser import ParseError, parse, parse_sentence
from repro.logic.terms import Const, Var


def test_parse_atom():
    f = parse("R(x)")
    assert f == Atom("R", (Var("x"),))


def test_parse_constants_quoted_and_numeric():
    f = parse("S('a1', 3)")
    assert f == Atom("S", (Const("a1"), Const(3)))


def test_parse_double_quoted_constant():
    f = parse('R("hello world")')
    assert f == Atom("R", (Const("hello world"),))


def test_parse_conjunction_precedence():
    f = parse("R(x) & S(x,y) | T(y)")
    assert isinstance(f, Or)
    assert isinstance(f.parts[0], And)


def test_parse_negation_binds_tightest():
    f = parse("~R(x) & S(x,y)")
    assert isinstance(f, And)
    assert isinstance(f.parts[0], Not)


def test_parse_implication_expands():
    f = parse("R(x) -> S(x,y)")
    assert isinstance(f, Or)
    assert isinstance(f.parts[0], Not)


def test_parse_implication_right_associative():
    f = parse("R(x) -> S(x,y) -> T(y)")
    # a -> (b -> c) = ~a | (~b | c) which flattens to a 3-way Or
    assert isinstance(f, Or)
    assert len(f.parts) == 3


def test_parse_iff():
    f = parse("R(x) <-> T(x)")
    assert isinstance(f, And)


def test_parse_quantifiers():
    f = parse("forall x. exists y. S(x,y)")
    assert isinstance(f, Forall)
    assert isinstance(f.sub, Exists)


def test_parse_multi_variable_quantifier():
    f = parse("forall x, y. S(x,y)")
    assert isinstance(f, Forall)
    assert isinstance(f.sub, Forall)


def test_parse_h0():
    f = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
    assert f.is_sentence()
    assert f.relation_symbols() == {"R", "S", "T"}


def test_parse_true_false():
    assert parse("true & R(x)") == Atom("R", (Var("x"),))


def test_parse_error_on_garbage():
    with pytest.raises(ParseError):
        parse("R(x) &")
    with pytest.raises(ParseError):
        parse("R(x")
    with pytest.raises(ParseError):
        parse("R(x) S(y)")


def test_parse_error_position_reported():
    try:
        parse("R(x) @")
    except ParseError as error:
        assert "position" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected ParseError")


def test_parse_sentence_rejects_free_variables():
    with pytest.raises(ParseError, match="free variables"):
        parse_sentence("R(x)")


def test_parse_sentence_accepts_closed():
    f = parse_sentence("exists x. R(x)")
    assert f.is_sentence()


def test_keyword_cannot_be_term():
    with pytest.raises(ParseError):
        parse("R(forall)")


def test_parse_nested_parens():
    f = parse("((R(x)))")
    assert f == Atom("R", (Var("x"),))
