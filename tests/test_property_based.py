"""Property-based tests (hypothesis) for the core data structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.booleans.expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BOr,
    bnot,
    bvar,
    evaluate,
)
from repro.booleans.forms import from_cnf, from_dnf, to_cnf, to_dnf
from repro.booleans.ops import condition, independent_factors
from repro.kc.obdd import compile_obdd
from repro.wmc.brute import brute_force_wmc
from repro.wmc.dpll import DPLLCounter, compile_decision_dnnf

VARS = 5


@st.composite
def boolean_exprs(draw, depth=3) -> BExpr:
    if depth == 0:
        index = draw(st.integers(0, VARS - 1))
        leaf = bvar(index)
        return bnot(leaf) if draw(st.booleans()) else leaf
    kind = draw(st.sampled_from(["var", "not", "and", "or"]))
    if kind == "var":
        return draw(boolean_exprs(depth=0))
    if kind == "not":
        return bnot(draw(boolean_exprs(depth=depth - 1)))
    parts = draw(
        st.lists(boolean_exprs(depth=depth - 1), min_size=2, max_size=3)
    )
    return BAnd.of(parts) if kind == "and" else BOr.of(parts)


@st.composite
def assignments(draw):
    return {i: draw(st.booleans()) for i in range(VARS)}


@st.composite
def probability_maps(draw):
    return {
        i: draw(st.floats(0.05, 0.95, allow_nan=False, allow_infinity=False))
        for i in range(VARS)
    }


@given(boolean_exprs(), assignments())
@settings(max_examples=150, deadline=None)
def test_negation_involution(expr, assignment):
    assert evaluate(bnot(bnot(expr)), assignment) == evaluate(expr, assignment)


@given(boolean_exprs(), boolean_exprs(), assignments())
@settings(max_examples=150, deadline=None)
def test_de_morgan(f, g, assignment):
    left = bnot(BAnd.of((f, g)))
    right = BOr.of((bnot(f), bnot(g)))
    assert evaluate(left, assignment) == evaluate(right, assignment)


@given(boolean_exprs(), assignments())
@settings(max_examples=100, deadline=None)
def test_condition_agrees_with_evaluation(expr, assignment):
    conditioned = condition(expr, assignment)
    assert conditioned in (B_TRUE, B_FALSE)
    assert (conditioned == B_TRUE) == evaluate(expr, assignment)


@given(boolean_exprs(), assignments())
@settings(max_examples=100, deadline=None)
def test_dnf_preserves_semantics(expr, assignment):
    rebuilt = from_dnf(to_dnf(expr))
    assert evaluate(rebuilt, assignment) == evaluate(expr, assignment)


@given(boolean_exprs(), assignments())
@settings(max_examples=100, deadline=None)
def test_cnf_preserves_semantics(expr, assignment):
    rebuilt = from_cnf(to_cnf(expr))
    assert evaluate(rebuilt, assignment) == evaluate(expr, assignment)


@given(boolean_exprs(), assignments())
@settings(max_examples=100, deadline=None)
def test_independent_factors_partition_semantics(expr, assignment):
    factors = independent_factors(expr)
    if isinstance(expr, BAnd):
        combined = all(evaluate(f, assignment) for f in factors)
    elif isinstance(expr, BOr):
        combined = any(evaluate(f, assignment) for f in factors)
    else:
        combined = evaluate(factors[0], assignment)
    assert combined == evaluate(expr, assignment)


@given(boolean_exprs(), probability_maps())
@settings(max_examples=60, deadline=None)
def test_dpll_matches_brute_force(expr, probabilities):
    got = DPLLCounter().run(expr, probabilities).probability
    want = brute_force_wmc(expr, probabilities)
    assert abs(got - want) < 1e-9


@given(boolean_exprs(), probability_maps())
@settings(max_examples=40, deadline=None)
def test_obdd_matches_brute_force(expr, probabilities):
    manager, root = compile_obdd(expr)
    got = manager.wmc(root, probabilities)
    want = brute_force_wmc(expr, probabilities)
    assert abs(got - want) < 1e-9


@given(boolean_exprs(), probability_maps())
@settings(max_examples=40, deadline=None)
def test_trace_is_valid_decision_dnnf(expr, probabilities):
    result = compile_decision_dnnf(expr, probabilities)
    assert result.circuit.check_decision_dnnf()
    assert abs(result.circuit.wmc(probabilities) - result.probability) < 1e-9


@given(boolean_exprs(), assignments())
@settings(max_examples=60, deadline=None)
def test_obdd_pointwise_semantics(expr, assignment):
    manager, root = compile_obdd(expr)
    assert manager.evaluate(root, assignment) == evaluate(expr, assignment)


@given(boolean_exprs())
@settings(max_examples=100, deadline=None)
def test_structural_key_is_stable(expr):
    # rebuilding the same expression yields the same key and hash
    assert expr.key() == expr.key()
    clone = BAnd.of((expr, B_TRUE))
    assert clone.key() == expr.key()
