"""Unit tests for repro.datalog (probabilistic datalog / ProbLog route)."""

import itertools

import pytest

from repro.core.tid import TupleIndependentDatabase
from repro.datalog.program import DatalogProgram, Rule, parse_rule
from repro.logic.formulas import Atom
from repro.logic.terms import Var

from conftest import close


def graph_db(edges: dict[tuple, float]) -> TupleIndependentDatabase:
    db = TupleIndependentDatabase()
    for (u, v), p in edges.items():
        db.add_fact("edge", (u, v), p)
    return db


def reachability_program(db) -> DatalogProgram:
    program = DatalogProgram(db)
    program.add_rule("path(x,y) :- edge(x,y)")
    program.add_rule("path(x,z) :- path(x,y), edge(y,z)")
    return program


def brute_reachability(edges: dict[tuple, float], source, target) -> float:
    """Reference: enumerate edge subsets, check reachability."""
    items = sorted(edges.items(), key=repr)
    total = 0.0
    for bits in itertools.product((False, True), repeat=len(items)):
        weight = 1.0
        present = set()
        for include, ((u, v), p) in zip(bits, items):
            weight *= p if include else 1.0 - p
            if include:
                present.add((u, v))
        # BFS
        frontier = {source}
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == target:
                break
            seen.add(node)
            frontier.update(
                v for (u, v) in present if u == node and v not in seen
            )
        else:
            continue
        total += weight
    return total


# -- rule parsing -----------------------------------------------------------------


def test_parse_rule():
    rule = parse_rule("path(x,z) :- path(x,y), edge(y,z)")
    assert rule.head.predicate == "path"
    assert len(rule.body) == 2


def test_parse_rule_rejects_missing_arrow():
    with pytest.raises(ValueError):
        parse_rule("path(x,y)")


def test_rule_rejects_unbound_head_variable():
    with pytest.raises(ValueError, match="not bound"):
        Rule(Atom("p", (Var("x"), Var("w"))), (Atom("edge", (Var("x"), Var("y"))),))


def test_rule_rejects_empty_body():
    with pytest.raises(ValueError):
        Rule(Atom("p", (Var("x"),)), ())


def test_head_cannot_be_edb():
    db = graph_db({("a", "b"): 0.5})
    program = DatalogProgram(db)
    with pytest.raises(ValueError):
        program.add_rule("edge(x,y) :- edge(y,x)")


# -- evaluation -------------------------------------------------------------------


def test_single_edge_path():
    edges = {("a", "b"): 0.7}
    program = reachability_program(graph_db(edges))
    assert close(program.fact_probability("path", ("a", "b")), 0.7)


def test_two_hop_path():
    edges = {("a", "b"): 0.7, ("b", "c"): 0.5}
    program = reachability_program(graph_db(edges))
    assert close(program.fact_probability("path", ("a", "c")), 0.35)


def test_diamond_graph_matches_brute_force():
    edges = {
        ("s", "u"): 0.6,
        ("s", "v"): 0.5,
        ("u", "t"): 0.7,
        ("v", "t"): 0.8,
        ("u", "v"): 0.3,
    }
    program = reachability_program(graph_db(edges))
    got = program.fact_probability("path", ("s", "t"))
    want = brute_reachability(edges, "s", "t")
    assert close(got, want)


def test_cyclic_graph_terminates_and_is_correct():
    edges = {
        ("a", "b"): 0.5,
        ("b", "a"): 0.5,
        ("b", "c"): 0.6,
        ("c", "a"): 0.4,
    }
    program = reachability_program(graph_db(edges))
    evaluation = program.evaluate()
    assert evaluation.rounds < 20
    got = evaluation.probability(("path", ("a", "c")))
    want = brute_reachability(edges, "a", "c")
    assert close(got, want)


def test_self_loop():
    edges = {("a", "a"): 0.9}
    program = reachability_program(graph_db(edges))
    assert close(program.fact_probability("path", ("a", "a")), 0.9)


def test_unreachable_pair_has_probability_zero():
    edges = {("a", "b"): 0.5, ("c", "d"): 0.5}
    program = reachability_program(graph_db(edges))
    assert program.fact_probability("path", ("a", "d")) == 0.0  # prodb-lint: exact


def test_query_with_pattern():
    edges = {("a", "b"): 0.5, ("b", "c"): 0.5, ("a", "c"): 0.2}
    program = reachability_program(graph_db(edges))
    from_a = program.query("path", ("a", None))
    assert set(from_a) == {("a", "b"), ("a", "c")}
    want_ac = brute_reachability(edges, "a", "c")
    assert close(from_a[("a", "c")], want_ac)


def test_multiple_idb_predicates():
    db = TupleIndependentDatabase()
    db.add_fact("parent", ("ann", "bob"), 0.9)
    db.add_fact("parent", ("bob", "cal"), 0.8)
    db.add_fact("parent", ("ann", "dee"), 0.7)
    program = DatalogProgram(db)
    program.add_rule("ancestor(x,y) :- parent(x,y)")
    program.add_rule("ancestor(x,z) :- ancestor(x,y), parent(y,z)")
    program.add_rule("related(x,y) :- ancestor(z,x), ancestor(z,y)")
    evaluation = program.evaluate()
    assert close(evaluation.probability(("ancestor", ("ann", "cal"))), 0.72)
    # related(bob, dee) via common ancestor ann: parent(ann,bob)·parent(ann,dee)
    assert close(
        evaluation.probability(("related", ("bob", "dee"))), 0.9 * 0.7
    )


def test_rule_with_constant():
    edges = {("hub", "a"): 0.5, ("hub", "b"): 0.4, ("a", "b"): 0.9}
    db = graph_db(edges)
    program = DatalogProgram(db)
    program.add_rule("fromhub(y) :- edge('hub', y)")
    result = program.query("fromhub")
    assert close(result[("a",)], 0.5)
    assert close(result[("b",)], 0.4)


def test_shared_subgoal_correlations_handled():
    # path(a,c) via b and direct both use edge(a,b): lineage, not naive
    # multiplication, must be used.
    edges = {("a", "b"): 0.5, ("b", "c"): 0.5, ("b", "d"): 0.5, ("d", "c"): 0.5}
    program = reachability_program(graph_db(edges))
    got = program.fact_probability("path", ("a", "c"))
    want = brute_reachability(edges, "a", "c")
    assert close(got, want)


def test_evaluation_reuses_edb_probabilities():
    edges = {("a", "b"): 0.25}
    program = reachability_program(graph_db(edges))
    evaluation = program.evaluate()
    probabilities = evaluation.pool.probability_map()
    assert list(probabilities.values()) == [0.25]
