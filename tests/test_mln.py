"""Unit tests for repro.mln: MLN semantics, Prop. 3.1, Boolean factors."""

import pytest

from repro.booleans.expr import band, bnot, bor, bvar
from repro.logic.parser import parse
from repro.mln.markov_network import (
    BooleanMarkovNetwork,
    Factor,
    conditional_probability as bool_conditional,
    encode_factor_iff,
    encode_factor_or,
)
from repro.mln.mln import MarkovLogicNetwork, SoftConstraint
from repro.mln.translate import (
    Encoding,
    conditional_probability,
    mln_query_probability,
    mln_query_probability_symmetric,
    mln_to_tid,
)

from conftest import close


@pytest.fixture
def manager_mln():
    """The paper's Sec. 3 example: (3.9, Manager(m,e) ⇒ HighComp(m))."""
    delta = parse("Manager(m,e) -> HighComp(m)")
    return MarkovLogicNetwork([SoftConstraint(3.9, delta)], domain=("a", "b"))


def test_soft_constraint_rejects_negative_weight():
    with pytest.raises(ValueError):
        SoftConstraint(-1.0, parse("R(x)"))


def test_groundings_count(manager_mln):
    factors = manager_mln.ground()
    assert len(factors) == 4  # 2 × 2 substitutions of (m, e)
    assert all(w == 3.9 for w, _ in factors)  # prodb-lint: exact


def test_possible_tuples(manager_mln):
    tuples = manager_mln.possible_tuples()
    assert len(tuples) == 4 + 2  # Manager/2 over 2² plus HighComp/1 over 2


def test_weight_of_world_example(manager_mln):
    # Empty world satisfies all 4 groundings vacuously: weight 3.9⁴.
    assert close(manager_mln.weight_of_world(frozenset()), 3.9 ** 4)
    # A world violating exactly one grounding: Manager(a,b) without HighComp(a).
    world = frozenset({("Manager", ("a", "b"))})
    assert close(manager_mln.weight_of_world(world), 3.9 ** 3)


def test_partition_function_positive(manager_mln):
    z = manager_mln.partition_function()
    assert z > 0


def test_probability_monotone_in_evidence(manager_mln):
    # Given the constraint, seeing a manager should raise P(HighComp).
    base = manager_mln.probability(parse("HighComp('a')"))
    with_manager = manager_mln.probability(
        parse("Manager('a','b') & HighComp('a')")
    ) / manager_mln.probability(parse("Manager('a','b')"))
    assert with_manager > base


def test_hard_constraint_zeroes_violating_worlds():
    mln = MarkovLogicNetwork(
        [SoftConstraint(float("inf"), parse("R(x)"))], domain=("a",)
    )
    assert close(mln.probability(parse("R('a')")), 1.0)


def test_mln_to_tid_structure(manager_mln):
    encoded = mln_to_tid(manager_mln, Encoding.OR)
    db = encoded.database
    assert db.probability_of_fact("Manager", ("a", "b")) == 0.5  # prodb-lint: exact
    assert db.probability_of_fact("HighComp", ("a",)) == 0.5  # prodb-lint: exact
    # or-encoding: auxiliary probability 1/w
    assert close(db.probability_of_fact("Aux0", ("a", "b")), 1 / 3.9)
    assert encoded.database.is_symmetric()


def test_mln_to_tid_iff_probability(manager_mln):
    encoded = mln_to_tid(manager_mln, Encoding.IFF)
    assert close(
        encoded.database.probability_of_fact("Aux0", ("a", "b")), 3.9 / 4.9
    )


def test_or_encoding_needs_weight_above_one():
    mln = MarkovLogicNetwork([SoftConstraint(0.5, parse("R(x)"))], domain=("a",))
    with pytest.raises(ValueError):
        mln_to_tid(mln, Encoding.OR)
    # but the iff encoding handles w < 1
    assert mln_to_tid(mln, Encoding.IFF)


@pytest.mark.parametrize("encoding", [Encoding.OR, Encoding.IFF])
@pytest.mark.parametrize(
    "query",
    [
        "exists m. HighComp(m)",
        "Manager('a','b') & HighComp('a')",
        "forall m. forall e. (Manager(m,e) -> HighComp(m))",
    ],
)
def test_proposition_31(manager_mln, encoding, query):
    """p_MLN(Q) = p_D(Q | Γ) for both encodings (Prop. 3.1)."""
    q = parse(query)
    direct = manager_mln.probability(q)
    via_tid = mln_query_probability(manager_mln, q, encoding)
    assert close(direct, via_tid)


def test_conditional_probability_methods_agree(manager_mln):
    encoded = mln_to_tid(manager_mln, Encoding.IFF)
    q = parse("exists m. HighComp(m)")
    dpll = conditional_probability(encoded.database, q, encoded.constraint, "dpll")
    brute = conditional_probability(encoded.database, q, encoded.constraint, "brute")
    assert close(dpll, brute)


def test_conditional_probability_unknown_method(manager_mln):
    encoded = mln_to_tid(manager_mln, Encoding.IFF)
    with pytest.raises(ValueError):
        conditional_probability(
            encoded.database, parse("exists m. HighComp(m)"), encoded.constraint, "nope"
        )


def test_multi_constraint_mln():
    mln = MarkovLogicNetwork(
        [
            SoftConstraint(2.0, parse("R(x) -> U(x)")),
            SoftConstraint(3.0, parse("U(x)")),
        ],
        domain=("a", "b"),
    )
    q = parse("exists x. U(x)")
    direct = mln.probability(q)
    via = mln_query_probability(mln, q, Encoding.IFF)
    assert close(direct, via)


# -- lifted MLN inference via symmetric WFOMC (SlimShot route) ------------------------


@pytest.mark.parametrize("encoding", [Encoding.OR, Encoding.IFF])
@pytest.mark.parametrize(
    "query",
    [
        "exists m. HighComp(m)",
        "forall m. forall e. (Manager(m,e) -> HighComp(m))",
        "forall m. exists e. Manager(m,e)",
    ],
)
def test_symmetric_mln_inference_matches_direct(manager_mln, encoding, query):
    q = parse(query)
    direct = manager_mln.probability(q)
    lifted = mln_query_probability_symmetric(manager_mln, q, encoding)
    assert close(direct, lifted)


def test_symmetric_mln_inference_scales_beyond_enumeration():
    mln = MarkovLogicNetwork(
        [SoftConstraint(3.9, parse("Manager(m,e) -> HighComp(m)"))],
        domain=tuple(f"p{i}" for i in range(6)),
    )
    # direct enumeration would need 2^(36+6+36) worlds; this must be fast
    p = mln_query_probability_symmetric(
        mln, parse("forall m. forall e. (Manager(m,e) -> HighComp(m))")
    )
    assert 0.0 <= p <= 1.0


def test_symmetric_mln_rejects_fo3():
    from repro.symmetric.scott import NotFO2Error

    mln = MarkovLogicNetwork(
        [SoftConstraint(2.0, parse("R(x) -> U(x)"))], domain=("a", "b")
    )
    with pytest.raises(NotFO2Error):
        mln_query_probability_symmetric(
            mln, parse("exists x. exists y. exists z. (S0(x,y) & S0(y,z))")
        )


# -- Boolean Markov networks (appendix) ----------------------------------------------


def test_fig3_weight_table():
    x1, x2, x3 = bvar(1), bvar(2), bvar(3)
    f = band(bor(x1, x2), bor(x1, x3), bor(x2, x3))
    w = {1: 2.0, 2: 3.0, 3: 4.0}
    network = BooleanMarkovNetwork(dict(w))
    assert close(
        network.weight_of_formula(f),
        w[2] * w[3] + w[1] * w[3] + w[1] * w[2] + w[1] * w[2] * w[3],
    )


def test_fig3_with_factor_weight_table():
    # adding the factor (w4, X1 ⇒ X2) reweights per the last Fig. 3 column
    x1, x2, x3 = bvar(1), bvar(2), bvar(3)
    f = band(bor(x1, x2), bor(x1, x3), bor(x2, x3))
    w = {1: 2.0, 2: 3.0, 3: 4.0}
    w4 = 1.7
    network = BooleanMarkovNetwork(dict(w), [Factor(w4, bor(bnot(x1), x2))])
    expected = (
        w[2] * w[3] * w4
        + w[1] * w[3]
        + w[1] * w[2] * w4
        + w[1] * w[2] * w[3] * w4
    )
    assert close(network.weight_of_formula(f), expected)


@pytest.mark.parametrize("w4", [0.3, 0.6, 1.5, 3.9])
def test_factor_encodings_preserve_conditionals(w4):
    x1, x2, x3 = bvar(1), bvar(2), bvar(3)
    event = band(bor(x1, x2), bor(x2, x3))
    network = BooleanMarkovNetwork(
        {1: 0.9, 2: 1.4, 3: 2.2}, [Factor(w4, bor(bnot(x1), x2))]
    )
    want = network.probability(event)
    independent_iff, gamma_iff = encode_factor_iff(network, 0, 9)
    independent_or, gamma_or = encode_factor_or(network, 0, 9)
    assert close(bool_conditional(independent_iff, event, gamma_iff), want)
    assert close(bool_conditional(independent_or, event, gamma_or), want)


def test_or_encoding_negative_weight_below_one():
    # w4 < 1 ⇒ auxiliary weight negative: a non-standard probability, yet
    # all conditionals stay in [0, 1] (appendix closing remark).
    network = BooleanMarkovNetwork(
        {1: 1.0, 2: 1.0}, [Factor(0.4, bor(bvar(1), bvar(2)))]
    )
    independent, gamma = encode_factor_or(network, 0, 5)
    assert independent.variable_weights[5] < 0
    p = bool_conditional(independent, bvar(1), gamma)
    assert 0.0 <= p <= 1.0


def test_or_encoding_rejects_weight_one():
    network = BooleanMarkovNetwork({1: 1.0}, [Factor(1.0, bvar(1))])
    with pytest.raises(ValueError):
        encode_factor_or(network, 0, 5)
