"""Shared-memory shards: round trips, interner transport, immutability."""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tid import TupleIndependentDatabase
from repro.relational.columnar import ValueInterner, from_relation
from repro.relational.shm import attach, publish
from repro.workloads.generators import figure1_database

# Value pool: mixed types, all hashable, all repr-stable.
_VALUES = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["a", "b", "c", "d1", "d2", "♥"]),
)
_PROBS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)


@st.composite
def tids(draw):
    db = TupleIndependentDatabase()
    db.add_relation("R", ("a0",))
    db.add_relation("S", ("a0", "a1"))
    db.add_relation("E", ("a0",))  # stays empty: schema-only shard
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        db.set_fact("R", (draw(_VALUES),), draw(_PROBS))
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        db.set_fact("S", (draw(_VALUES), draw(_VALUES)), draw(_PROBS))
    return db


@settings(max_examples=30, deadline=None)
@given(db=tids())
def test_publish_attach_round_trips_bit_for_bit(db):
    """Attached codes and probabilities equal the source arrays exactly."""
    source_interner = ValueInterner()
    reference = {
        name: from_relation(relation, source_interner)
        for name, relation in sorted(db.relations.items())
    }
    publisher = publish(db, source_interner)
    try:
        attached = attach(publisher.handle, ValueInterner())
        try:
            assert set(attached.columnar) == set(reference)
            for name, encoded in reference.items():
                mirrored = attached.columnar[name]
                assert mirrored.attributes == encoded.attributes
                for ours, theirs in zip(encoded.columns, mirrored.columns):
                    assert ours.tobytes() == theirs.tobytes()
                assert (
                    encoded.probabilities.tobytes()
                    == mirrored.probabilities.tobytes()
                )
            # The decoded database is *the same* database.
            decoded = attached.to_tid()
            assert decoded.fingerprint() == db.fingerprint()
            assert list(decoded.facts()) == list(db.facts())
        finally:
            attached.close()
    finally:
        publisher.unlink()


@settings(max_examples=30, deadline=None)
@given(db=tids())
def test_interner_snapshot_round_trips_codes(db):
    """load_snapshot reproduces every (value, code) pair exactly."""
    source = ValueInterner()
    for name in sorted(db.relations):
        from_relation(db.relations[name], source)
    mirror = ValueInterner()
    mirror.load_snapshot(source.snapshot())
    assert mirror.snapshot() == source.snapshot()
    for code, value in enumerate(source.snapshot()):
        assert mirror.code_of(value) == code


def test_concurrent_interning_never_aliases():
    """Racing encode_column calls never hand one code to two values."""
    interner = ValueInterner()
    values = [f"v{i}" for i in range(200)] + list(range(200))
    rng = random.Random(7)
    errors = []

    def worker(seed: int) -> None:
        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        try:
            interner.encode_column(shuffled)
        except Exception as error:  # pragma: no cover - defensive
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(rng.random(),)) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    snapshot = interner.snapshot()
    assert len(snapshot) == len(set(values))
    # Bijection: every value's code is unique and stable on re-encode.
    assert len(set(snapshot)) == len(snapshot)
    again = interner.encode_column(values)
    assert [snapshot[c] for c in again] == values


def test_snapshot_conflict_raises():
    a = ValueInterner()
    a.encode_column(["x", "y"])
    b = ValueInterner()
    b.encode_column(["y", "x"])  # same values, opposite codes
    with pytest.raises(ValueError, match="conflict"):
        b.load_snapshot(a.snapshot())
    # Extending an agreeing prefix is fine.
    c = ValueInterner()
    c.encode_column(["x"])
    c.load_snapshot(a.snapshot())
    assert c.snapshot() == a.snapshot()


def test_attached_shards_refuse_mutation():
    publisher = publish(figure1_database(), ValueInterner())
    try:
        attached = attach(publisher.handle, ValueInterner())
        try:
            for encoded in attached.columnar.values():
                if len(encoded) == 0:
                    continue
                with pytest.raises(ValueError, match="read-only"):
                    encoded.probabilities[0] = 0.5
                with pytest.raises(ValueError, match="read-only"):
                    encoded.columns[0][0] = 99
        finally:
            attached.close()
    finally:
        publisher.unlink()


def test_attach_after_unlink_fails():
    publisher = publish(figure1_database(), ValueInterner())
    handle = publisher.handle
    publisher.unlink()
    with pytest.raises(FileNotFoundError):
        attach(handle, ValueInterner())


def test_empty_relation_round_trips():
    db = TupleIndependentDatabase()
    db.add_relation("R", ("a0",))
    publisher = publish(db, ValueInterner())
    try:
        attached = attach(publisher.handle, ValueInterner())
        try:
            assert len(attached.columnar["R"]) == 0
            decoded = attached.to_tid()
            assert decoded.fingerprint() == db.fingerprint()
        finally:
            attached.close()
    finally:
        publisher.unlink()


def test_probability_bits_survive_exactly():
    """No clamping/rounding on the wire: float64 bit patterns survive."""
    db = TupleIndependentDatabase()
    db.add_relation("R", ("a0",))
    awkward = [0.1 + 0.2, 1e-300, 1.0 - 1e-16, 0.5000000000000001]
    for i, p in enumerate(awkward):
        db.set_fact("R", (i,), p)
    publisher = publish(db, ValueInterner())
    try:
        attached = attach(publisher.handle, ValueInterner())
        try:
            decoded = attached.to_tid()
            for (_, values, prob), p in zip(decoded.facts(), awkward):
                assert prob == p  # exact equality, not approx
        finally:
            attached.close()
    finally:
        publisher.unlink()
