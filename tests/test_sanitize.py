"""Tests for the opt-in runtime sanitizer (repro.sanitize).

Each audit gets a *negative* test — a deliberately corrupted structure that
must trip the corresponding :class:`SanitizerError` subclass — and a
*positive* test showing healthy engine output sails through.
"""

from __future__ import annotations

import threading

import pytest

from repro.booleans.expr import BAnd, BOr, bnot, bvar
from repro.kc.circuits import FALSE_LEAF, TRUE_LEAF, Circuit
from repro.kc.obdd import FALSE_NODE, TRUE_NODE, OBDD, compile_obdd
from repro.sanitize import (
    BoundsOrderError,
    CircuitInvariantError,
    KernelTableError,
    LockOrderError,
    OrderViolationError,
    ProbabilityDomainError,
    RankedLock,
    TOLERANCE,
    assert_lock_order,
    audit_kernel,
    check_bounds,
    check_circuit,
    check_obdd,
    check_probability,
    prodb_sanitize,
    sanitize_enabled,
)
from repro.wmc.dpll import compile_decision_dnnf, compile_fbdd


@pytest.fixture
def sanitized():
    """Enable the sanitizer for one test, restoring the previous state."""
    previous = prodb_sanitize(True)
    yield
    prodb_sanitize(previous)


def test_toggle_returns_previous_state():
    first = prodb_sanitize(True)
    try:
        assert sanitize_enabled()
        assert prodb_sanitize(False) is True
        assert not sanitize_enabled()
    finally:
        prodb_sanitize(first)


# -- circuits ----------------------------------------------------------------


def test_corrupted_fbdd_repeated_variable_trips(sanitized):
    circuit = Circuit()
    inner = circuit.decision(1, FALSE_LEAF, TRUE_LEAF)
    circuit.root = circuit.decision(1, inner, FALSE_LEAF)
    with pytest.raises(CircuitInvariantError):
        check_circuit(circuit, "fbdd")


def test_overlapping_and_children_trip_decision_dnnf(sanitized):
    circuit = Circuit()
    a = circuit.decision(2, FALSE_LEAF, TRUE_LEAF)
    b = circuit.decision(2, TRUE_LEAF, FALSE_LEAF)
    circuit.root = circuit.conjoin([a, b])
    with pytest.raises(CircuitInvariantError):
        check_circuit(circuit, "decision-dnnf")


def test_nondeterministic_or_trips_d_dnnf(sanitized):
    circuit = Circuit()
    circuit.root = circuit.disjoin(
        [circuit.literal(1, True), circuit.literal(2, True)]
    )
    with pytest.raises(CircuitInvariantError):
        check_circuit(circuit, "d-dnnf")


def test_unknown_kind_rejected(sanitized):
    with pytest.raises(ValueError):
        check_circuit(Circuit(), "obdd")


def test_checks_are_noops_when_disabled():
    previous = prodb_sanitize(False)
    try:
        circuit = Circuit()
        inner = circuit.decision(1, FALSE_LEAF, TRUE_LEAF)
        circuit.root = circuit.decision(1, inner, FALSE_LEAF)
        check_circuit(circuit, "fbdd")  # must not raise
        check_probability(7.0)
        check_bounds(0.9, 0.1)
    finally:
        prodb_sanitize(previous)


def test_compiled_circuits_pass_the_audit(sanitized):
    expr = BOr.of((BAnd.of((bvar(0), bvar(1))), BAnd.of((bvar(1), bvar(2)))))
    probabilities = {0: 0.5, 1: 0.8, 2: 0.3}
    # compile_* already run the hook internally; re-check explicitly too.
    check_circuit(compile_decision_dnnf(expr, probabilities).circuit, "decision-dnnf")
    check_circuit(compile_fbdd(expr, probabilities).circuit, "fbdd")


# -- OBDD order --------------------------------------------------------------


def test_obdd_order_violation_trips(sanitized):
    manager = OBDD(order=(0, 1))
    inner = manager.make(0, FALSE_NODE, TRUE_NODE)
    root = manager.make(1, inner, TRUE_NODE)  # level 1 above level 0
    with pytest.raises(OrderViolationError):
        check_obdd(manager, root)


def test_compiled_obdd_respects_order(sanitized):
    expr = BOr.of((bvar(0), BAnd.of((bvar(1), bnot(bvar(2))))))
    manager, root = compile_obdd(expr, order=(2, 0, 1))
    check_obdd(manager, root)  # compile_obdd also runs this internally


# -- probability domain ------------------------------------------------------


def test_probability_domain(sanitized):
    check_probability(0.0)
    check_probability(1.0)
    check_probability(1.0 + TOLERANCE / 2)  # rounding slack allowed
    with pytest.raises(ProbabilityDomainError):
        check_probability(1.5, context="unit test")
    with pytest.raises(ProbabilityDomainError):
        check_probability(-0.1)


def test_bounds_sandwich(sanitized):
    check_bounds(0.2, 0.8)
    check_bounds(0.5, 0.5)
    with pytest.raises(BoundsOrderError):
        check_bounds(0.9, 0.1, context="unit test")
    with pytest.raises(ProbabilityDomainError):
        check_bounds(-0.5, 0.5)  # bound outside [0, 1] reported first


# -- kernel unique table -----------------------------------------------------


class _FakeManager:
    def __init__(self, unique):
        self.unique = unique


def test_kernel_audit_passes_on_live_kernel(sanitized):
    BAnd.of((bvar(0), bnot(bvar(1))))  # ensure the table is non-trivial
    assert audit_kernel() >= 2


def test_kernel_audit_force_runs_when_disabled():
    previous = prodb_sanitize(False)
    try:
        bvar(0)
        assert audit_kernel() == 0  # disabled: no-op
        assert audit_kernel(force=True) >= 1
    finally:
        prodb_sanitize(previous)


def test_poisoned_key_trips_kernel_audit(sanitized):
    node = bvar(123)
    fake = _FakeManager({("v", 999): node})
    with pytest.raises(KernelTableError):
        audit_kernel(manager=fake)


def test_tabled_constant_trips_kernel_audit(sanitized):
    from repro.booleans.expr import B_TRUE

    fake = _FakeManager({("1",): B_TRUE})
    with pytest.raises(KernelTableError):
        audit_kernel(manager=fake)


# -- lock ordering -----------------------------------------------------------


def test_increasing_lock_ranks_allowed(sanitized):
    low = RankedLock(10, "low")
    high = RankedLock(20, "high")
    with low:
        with high:
            pass
    with high:  # independent chains reset the stack
        pass


def test_inverted_lock_ranks_trip(sanitized):
    low = RankedLock(10, "low")
    high = RankedLock(20, "high")
    with high:
        with pytest.raises(LockOrderError):
            low.acquire()
    # The failed acquisition must leave both locks usable.
    with low:
        with high:
            pass


def test_equal_rank_distinct_locks_trip(sanitized):
    first = RankedLock(10, "first")
    second = RankedLock(10, "second")
    with first:
        with pytest.raises(LockOrderError):
            second.acquire()


def test_reentrant_lock_may_reenter(sanitized):
    lock = RankedLock(20, "cache", reentrant=True)
    with lock:
        with lock:
            pass


def test_lock_order_ignored_when_disabled():
    previous = prodb_sanitize(False)
    try:
        low = RankedLock(10, "low")
        high = RankedLock(20, "high")
        with high:
            with low:  # would trip under the sanitizer
                pass
    finally:
        prodb_sanitize(previous)


def test_lock_ranks_are_per_thread(sanitized):
    high = RankedLock(20, "high")
    errors: list[BaseException] = []

    def other_thread():
        try:
            with RankedLock(10, "low"):
                pass
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    with high:
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
    assert errors == []


def test_assert_lock_order(sanitized):
    assert_lock_order([10, 20, 30])
    with pytest.raises(LockOrderError):
        assert_lock_order([10, 10])
    with pytest.raises(LockOrderError):
        assert_lock_order([30, 20])


# -- end to end --------------------------------------------------------------


def test_engine_runs_clean_under_sanitizer(sanitized, small_db):
    """A full query through the façade trips no audit on healthy code."""
    from repro.core.pdb import ProbabilisticDatabase

    pdb = ProbabilisticDatabase(tid=small_db)
    answer = pdb.probability("R(x), S(x,y)")
    assert 0.0 <= answer.probability <= 1.0
