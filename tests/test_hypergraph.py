"""Unit tests for repro.logic.hypergraph (α- and γ-acyclicity)."""

from repro.logic.cq import parse_cq
from repro.logic.hypergraph import (
    Hypergraph,
    is_alpha_acyclic,
    is_gamma_acyclic,
    query_is_alpha_acyclic,
    query_is_gamma_acyclic,
)


def hg(*edges):
    return Hypergraph.from_edges(edges)


# -- alpha ---------------------------------------------------------------------


def test_alpha_single_edge():
    assert is_alpha_acyclic(hg("xy"))


def test_alpha_path():
    assert is_alpha_acyclic(hg("xy", "yz"))


def test_alpha_triangle_of_binary_edges_is_cyclic():
    assert not is_alpha_acyclic(hg("xy", "yz", "zx"))


def test_alpha_triangle_with_covering_edge_is_acyclic():
    # the classic: adding the big edge makes the triangle α-acyclic
    assert is_alpha_acyclic(hg("xy", "yz", "zx", "xyz"))


def test_alpha_star():
    assert is_alpha_acyclic(hg("ax", "ay", "az"))


def test_alpha_h0_query():
    assert query_is_alpha_acyclic(parse_cq("R(x), S(x,y), T(y)"))


# -- gamma ---------------------------------------------------------------------


def test_gamma_single_edge():
    assert is_gamma_acyclic(hg("xy"))


def test_gamma_path_of_two():
    assert is_gamma_acyclic(hg("xy", "yz"))


def test_gamma_h0_query():
    # H0's CQ is γ-acyclic — the Theorem 8.2(c) example: PTIME on symmetric DBs
    assert query_is_gamma_acyclic(parse_cq("R(x), S(x,y), T(y)"))


def test_gamma_triangle_cyclic():
    assert not is_gamma_acyclic(hg("xy", "yz", "zx"))


def test_gamma_triangle_with_cover_still_cyclic():
    # α-acyclic but NOT γ-acyclic: γ is strictly stronger
    assert is_alpha_acyclic(hg("xy", "yz", "zx", "xyz"))
    assert not is_gamma_acyclic(hg("xy", "yz", "zx", "xyz"))


def test_gamma_two_overlapping_edges_sharing_two_vertices():
    # edges {x,y,z} and {x,y,w}: share the pair {x,y} — still γ-acyclic
    # (after merging the module {x,y} this reduces away)
    assert is_gamma_acyclic(hg("xyz", "xyw"))


def test_gamma_fagin_counterexample():
    # {x,y}, {y,z}, {x,y,z}: α-acyclic but not γ-acyclic (Fagin's example of
    # the strictness: the pair-of-pairs inside a covering triple).
    graph = hg("xy", "yz", "xyz")
    assert is_alpha_acyclic(graph)
    assert not is_gamma_acyclic(graph)


def test_gamma_star_query():
    assert query_is_gamma_acyclic(parse_cq("R(x), S(x,y), U(x), W(x,z)"))


def test_hypergraph_of_query_drops_constants():
    graph = Hypergraph.of_query(parse_cq("R(x), S(x, 'a')"))
    assert graph.vertices == {v for e in graph.edges for v in e}


def test_empty_edges_ignored():
    graph = Hypergraph.from_edges([""])
    assert is_gamma_acyclic(graph)
