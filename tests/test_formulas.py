"""Unit tests for repro.logic.formulas."""

import pytest

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    Forall,
    Not,
    Or,
    exists_many,
    forall_many,
    iff,
    implies,
)
from repro.logic.terms import Const, Var

x, y, z = Var("x"), Var("y"), Var("z")
R = Atom("R", (x,))
S = Atom("S", (x, y))


def test_atom_free_variables():
    assert S.free_variables() == {x, y}
    assert Atom("R", (Const("a"),)).free_variables() == frozenset()


def test_atom_is_ground():
    assert Atom("R", (Const("a"),)).is_ground()
    assert not R.is_ground()


def test_and_flattens_and_simplifies():
    f = And.of((R, And.of((S, TRUE))))
    assert isinstance(f, And)
    assert len(f.parts) == 2
    assert And.of((R, FALSE)) == FALSE
    assert And.of(()) == TRUE
    assert And.of((R,)) == R


def test_or_flattens_and_simplifies():
    f = Or.of((R, Or.of((S, FALSE))))
    assert isinstance(f, Or)
    assert len(f.parts) == 2
    assert Or.of((R, TRUE)) == TRUE
    assert Or.of(()) == FALSE
    assert Or.of((S,)) == S


def test_operator_sugar():
    assert (R & S) == And.of((R, S))
    assert (R | S) == Or.of((R, S))
    assert (~R) == Not(R)


def test_quantifier_free_variables():
    f = Exists(y, S)
    assert f.free_variables() == {x}
    assert Forall(x, f).free_variables() == frozenset()


def test_is_sentence():
    assert Forall(x, Exists(y, S)).is_sentence()
    assert not Exists(y, S).is_sentence()


def test_substitute_atom():
    mapped = S.substitute({x: Const("a")})
    assert mapped == Atom("S", (Const("a"), y))


def test_substitute_skips_bound_variable():
    f = Exists(y, S)
    mapped = f.substitute({y: Const("a")})
    assert mapped == f


def test_substitute_capture_avoidance():
    # Substituting x := y under ∃y must not capture the new y.
    f = Exists(y, S)  # ∃y S(x, y)
    mapped = f.substitute({x: y})
    assert isinstance(mapped, Exists)
    assert mapped.var != y
    inner = mapped.sub
    assert isinstance(inner, Atom)
    assert inner.args[0] == y  # the substituted free y
    assert inner.args[1] == mapped.var


def test_implies_expands():
    f = implies(R, S)
    assert f == Or.of((Not(R), S))


def test_iff_expands_to_two_implications():
    f = iff(R, S)
    assert isinstance(f, And)
    assert len(f.parts) == 2


def test_exists_many_order():
    f = exists_many([x, y], S)
    assert isinstance(f, Exists) and f.var == x
    assert isinstance(f.sub, Exists) and f.sub.var == y


def test_forall_many_order():
    f = forall_many([x, y], S)
    assert isinstance(f, Forall) and f.var == x


def test_relation_symbols():
    f = And.of((R, S, Not(Atom("T", (z,)))))
    assert f.relation_symbols() == {"R", "S", "T"}


def test_atoms_in_order_with_duplicates():
    f = And.of((R, Or.of((R, S))))
    assert [a.predicate for a in f.atoms()] == ["R", "R", "S"]


def test_constants_collects_all():
    f = And.of((Atom("R", (Const("a"),)), Atom("S", (Const("a"), Const(2)))))
    assert f.constants() == {Const("a"), Const(2)}


def test_structural_equality_and_hash():
    assert And.of((R, S)) == And.of((R, S))
    assert hash(And.of((R, S))) == hash(And.of((R, S)))


def test_str_round_trippable_shape():
    f = Forall(x, Or.of((R, Not(S))))
    text = str(f)
    assert "forall x." in text and "R(x)" in text and "~S(x, y)" in text
