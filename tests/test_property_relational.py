"""Property-based tests for the relational algebra and CQ machinery."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic.cq import ConjunctiveQuery
from repro.logic.formulas import Atom
from repro.logic.terms import Var
from repro.relational.algebra import (
    independent_project,
    join,
    oplus,
    select_eq,
    union,
)
from repro.relational.relation import Relation

VALUES = ("a", "b", "c")


@st.composite
def relations(draw, attributes=("x", "y")):
    rows = draw(
        st.dictionaries(
            st.tuples(*(st.sampled_from(VALUES) for _ in attributes)),
            st.floats(0.0, 1.0, allow_nan=False),
            max_size=6,
        )
    )
    return Relation("R", tuple(attributes), dict(rows))


@st.composite
def probabilities(draw):
    return draw(st.floats(0.0, 1.0, allow_nan=False))


# -- ⊕ is a commutative monoid on [0,1] ---------------------------------------------


@given(probabilities(), probabilities())
@settings(max_examples=200, deadline=None)
def test_oplus_commutative(u, v):
    assert abs(oplus(u, v) - oplus(v, u)) < 1e-12


@given(probabilities(), probabilities(), probabilities())
@settings(max_examples=200, deadline=None)
def test_oplus_associative(u, v, w):
    assert abs(oplus(oplus(u, v), w) - oplus(u, oplus(v, w))) < 1e-12


@given(probabilities())
@settings(max_examples=100, deadline=None)
def test_oplus_identity_and_absorbing(u):
    # identity holds up to float rounding (1 - (1-u) loses tiny u)
    assert abs(oplus(u, 0.0) - u) < 1e-12
    assert abs(oplus(u, 1.0) - 1.0) < 1e-12


@given(probabilities(), probabilities())
@settings(max_examples=200, deadline=None)
def test_oplus_stays_in_unit_interval(u, v):
    result = oplus(u, v)
    assert -1e-12 <= result <= 1.0 + 1e-12


# -- algebra laws ----------------------------------------------------------------------


@given(relations(), relations(attributes=("y", "z")))
@settings(max_examples=80, deadline=None)
def test_join_row_count_bounded_by_product(r, s):
    out = join(r, s)
    assert len(out) <= len(r) * len(s)


@given(relations(), relations(attributes=("y", "z")))
@settings(max_examples=80, deadline=None)
def test_join_probabilities_multiply(r, s):
    out = join(r, s)
    for (x, y, z), probability in out.items():
        assert abs(probability - r.probability((x, y)) * s.probability((y, z))) < 1e-12


@given(relations())
@settings(max_examples=80, deadline=None)
def test_independent_project_groups_cover_rows(r):
    out = independent_project(r, ["x"])
    assert {row[0] for row in r} == set(row[0] for row in out)


@given(relations())
@settings(max_examples=80, deadline=None)
def test_independent_project_dominates_each_row(r):
    out = independent_project(r, ["x"])
    for (x, y), probability in r.items():
        assert out.probability((x,)) >= probability - 1e-12


@given(relations(), relations())
@settings(max_examples=80, deadline=None)
def test_union_commutative(r, s):
    a = union(r, s)
    b = union(s, r)
    assert a.rows.keys() == b.rows.keys()
    for row in a.rows:
        assert abs(a.rows[row] - b.rows[row]) < 1e-12


@given(relations(), st.sampled_from(VALUES))
@settings(max_examples=80, deadline=None)
def test_select_subset(r, value):
    out = select_eq(r, "x", value)
    assert set(out.rows) <= set(r.rows)
    assert all(row[0] == value for row in out.rows)


# -- CQ canonicalization ----------------------------------------------------------------


@st.composite
def small_cqs(draw):
    predicates = [("R", 1), ("S", 2), ("T", 1)]
    variables = [Var("x"), Var("y"), Var("z")]
    count = draw(st.integers(1, 3))
    atoms = []
    for _ in range(count):
        name, arity = draw(st.sampled_from(predicates))
        args = tuple(draw(st.sampled_from(variables)) for _ in range(arity))
        atoms.append(Atom(name, args))
    return ConjunctiveQuery(tuple(atoms))


@given(small_cqs(), st.permutations([Var("x"), Var("y"), Var("z")]))
@settings(max_examples=150, deadline=None)
def test_canonical_key_invariant_under_renaming(query, permuted):
    mapping = dict(zip([Var("x"), Var("y"), Var("z")], permuted))
    renamed = query.substitute(mapping)
    assert query.canonical_key() == renamed.canonical_key()


@given(small_cqs())
@settings(max_examples=100, deadline=None)
def test_core_is_equivalent(query):
    core = query.core()
    assert core.equivalent(query)
    assert len(core.atoms) <= len(query.atoms)


@given(small_cqs())
@settings(max_examples=100, deadline=None)
def test_core_idempotent(query):
    core = query.core()
    assert core.core().canonical_key() == core.canonical_key()


@given(small_cqs(), small_cqs())
@settings(max_examples=100, deadline=None)
def test_implication_consistent_with_keys(q1, q2):
    if q1.canonical_key() == q2.canonical_key():
        assert q1.equivalent(q2)


@given(small_cqs(), small_cqs())
@settings(max_examples=80, deadline=None)
def test_conjoin_implies_both(q1, q2):
    joined = q1.conjoin(q2)
    assert joined.implies(q1)
    assert joined.implies(q2)
