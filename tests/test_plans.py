"""Unit tests for repro.plans: plans, safe plans, dissociations, bounds."""

import pytest

from repro.logic.cq import parse_cq
from repro.logic.terms import Var
from repro.plans.bounds import (
    extensional_bounds,
    oblivious_database,
    plan_lower_bound,
    plan_upper_bound,
)
from repro.plans.dissociation import (
    Dissociation,
    all_dissociations,
    minimal_dissociations,
)
from repro.plans.plan import (
    JoinNode,
    ProjectNode,
    ScanNode,
    execute,
    execute_boolean,
    plan_atoms,
    plan_variables,
    project_boolean,
)
from repro.plans.safe_plan import UnsafePlanError, safe_plan, try_safe_plan
from repro.workloads.generators import random_tid

from conftest import close


@pytest.fixture
def db():
    return random_tid(17, 3)


# -- plan execution --------------------------------------------------------------


def test_scan_renames_columns(small_db):
    atom = parse_cq("S(x,y)").atoms[0]
    rel = execute(ScanNode(atom), small_db)
    assert rel.attributes == ("x", "y")
    assert len(rel) == 3


def test_scan_filters_constants(small_db):
    atom = parse_cq("S('a', y)").atoms[0]
    rel = execute(ScanNode(atom), small_db)
    assert rel.attributes == ("y",)
    assert set(rel.rows) == {("a",), ("b",)}


def test_scan_repeated_variable_filters_diagonal(small_db):
    atom = parse_cq("S(x,x)").atoms[0]
    rel = execute(ScanNode(atom), small_db)
    assert set(rel.rows) == {("a",), ("b",)}


def test_scan_missing_relation_is_empty(small_db):
    atom = parse_cq("Nope(x)").atoms[0]
    assert len(execute(ScanNode(atom), small_db)) == 0


def test_plan_variables_and_atoms(small_db):
    q = parse_cq("R(x), S(x,y)")
    plan = JoinNode(ScanNode(q.atoms[0]), ScanNode(q.atoms[1]))
    assert plan_variables(plan) == {Var("x"), Var("y")}
    assert len(plan_atoms(plan)) == 2


def test_execute_boolean_requires_zero_columns(small_db):
    q = parse_cq("R(x)")
    with pytest.raises(ValueError):
        execute_boolean(ScanNode(q.atoms[0]), small_db)


def test_footnote9_plans(small_db):
    # Plan1 = γ⊕(R ⋈ S) vs Plan2 = γ⊕(R ⋈ γ_{x,⊕}(S)); only Plan2 is safe.
    q = parse_cq("R(x), S(x,y)")
    r_atom, s_atom = q.atoms
    x = Var("x")
    plan1 = project_boolean(JoinNode(ScanNode(r_atom), ScanNode(s_atom)))
    plan2 = project_boolean(
        JoinNode(ScanNode(r_atom), ProjectNode(ScanNode(s_atom), (x,)))
    )
    exact = small_db.brute_force_probability(q.to_formula())
    v1 = execute_boolean(plan1, small_db)
    v2 = execute_boolean(plan2, small_db)
    assert close(v2, exact)
    assert v1 >= exact - 1e-12
    assert v1 != pytest.approx(exact)  # plan1 is genuinely unsafe here


# -- safe plans ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "text",
    [
        "R(x)",
        "S(x,y)",
        "R(x), S(x,y)",
        "R(x), T(y)",
        "R(x), S(x,y), U(x)",
        "R(x), S(x,y), W(x,y)",
        "S(x,y), W(x,y)",
    ],
)
def test_safe_plan_exactness(text):
    db = random_tid(3, 3, schema=(("R", 1), ("S", 2), ("T", 1), ("U", 1), ("W", 2)))
    q = parse_cq(text)
    plan = project_boolean(safe_plan(q))
    got = execute_boolean(plan, db)
    want = db.brute_force_probability(q.to_formula())
    assert close(got, want)


def test_safe_plan_fails_on_h0():
    with pytest.raises(UnsafePlanError):
        safe_plan(parse_cq("R(x), S(x,y), T(y)"))


def test_safe_plan_rejects_self_joins():
    with pytest.raises(UnsafePlanError):
        safe_plan(parse_cq("R(x,y), R(y,z)"))


def test_try_safe_plan():
    assert try_safe_plan(parse_cq("R(x), S(x,y)")) is not None
    assert try_safe_plan(parse_cq("R(x), S(x,y), T(y)")) is None


def test_safe_plan_with_constant(db):
    domain = db.domain()
    q = parse_cq(f"R('{domain[0]}'), S('{domain[0]}', y)")
    got = execute_boolean(project_boolean(safe_plan(q)), db)
    want = db.brute_force_probability(q.to_formula())
    assert close(got, want)


# -- dissociations ---------------------------------------------------------------------


def test_h0_minimal_dissociations():
    h0 = parse_cq("R(x), S(x,y), T(y)")
    minimal = minimal_dissociations(h0)
    descriptions = {str(d) for d in minimal}
    assert descriptions == {"R(x) + (y)", "T(y) + (x)"}


def test_all_dissociations_are_hierarchical():
    h0 = parse_cq("R(x), S(x,y), T(y)")
    for d in all_dissociations(h0):
        assert d.dissociated_query().is_hierarchical()


def test_trivial_dissociation_for_hierarchical_query():
    q = parse_cq("R(x), S(x,y)")
    minimal = minimal_dissociations(q)
    assert len(minimal) == 1
    assert minimal[0].is_trivial()


def test_dissociated_database_duplicates_tuples(db):
    h0 = parse_cq("R(x), S(x,y), T(y)")
    d = next(d for d in minimal_dissociations(h0) if not d.is_trivial())
    widened = d.dissociated_database(db)
    name = d.dissociated_query().atoms[
        [i for i, extra in enumerate(d.added) if extra][0]
    ].predicate
    original = name.replace("__diss", "")
    assert len(widened.relations[name]) == len(db.relations[original]) * len(
        db.domain()
    )


def test_dissociation_rejects_self_joins():
    with pytest.raises(ValueError):
        list(all_dissociations(parse_cq("R(x,y), R(y,z)")))


# -- Theorem 6.1 bounds ---------------------------------------------------------------


def test_every_plan_upper_bounds(db):
    h0 = parse_cq("R(x), S(x,y), T(y)")
    exact = db.brute_force_probability(h0.to_formula())
    for d in minimal_dissociations(h0):
        assert plan_upper_bound(h0, db, d) >= exact - 1e-9


def test_every_plan_lower_bounds(db):
    h0 = parse_cq("R(x), S(x,y), T(y)")
    exact = db.brute_force_probability(h0.to_formula())
    for d in minimal_dissociations(h0):
        assert plan_lower_bound(h0, db, d) <= exact + 1e-9


def test_bounds_sandwich_many_seeds():
    h0 = parse_cq("R(x), S(x,y), T(y)")
    for seed in range(6):
        db = random_tid(seed, 3)
        exact = db.brute_force_probability(h0.to_formula())
        bounds = extensional_bounds(h0, db)
        assert bounds.contains(exact)
        assert bounds.plan_count == 2


def test_bounds_tight_for_safe_query(db):
    q = parse_cq("R(x), S(x,y)")
    bounds = extensional_bounds(q, db)
    exact = db.brute_force_probability(q.to_formula())
    assert close(bounds.lower, exact, 1e-6) or bounds.lower <= exact
    assert close(bounds.upper, exact)


def test_oblivious_database_lowers_shared_tuples(db):
    h0 = parse_cq("R(x), S(x,y), T(y)")
    rescaled = oblivious_database(h0, db)
    lowered = 0
    for name, values, p in db.facts():
        p2 = rescaled.probability_of_fact(name, values)
        assert p2 <= p + 1e-12
        if p2 < p - 1e-12:
            lowered += 1
    assert lowered > 0


def test_scan_arity_mismatch_raises(small_db):
    atom = parse_cq("S(x,y,z)").atoms[0]
    with pytest.raises(ValueError, match="relation arity 2 does not match"):
        execute(ScanNode(atom), small_db)
