"""Unit tests for repro.kc.mpe (most probable explanation)."""

import itertools
import random

import pytest

from repro.booleans.expr import band, bnot, bor, bvar, evaluate
from repro.kc.mpe import most_probable_model
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.wmc.dpll import compile_decision_dnnf
from repro.workloads.generators import random_tid

from conftest import close


def brute_mpe(expr, probabilities):
    variables = sorted(set(probabilities))
    best = None
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if not evaluate(expr, assignment):
            continue
        weight = 1.0
        for var, value in assignment.items():
            p = probabilities[var]
            weight *= p if value else 1.0 - p
        if best is None or weight > best[0]:
            best = (weight, assignment)
    return best


def check(expr, probabilities):
    compiled = compile_decision_dnnf(expr, probabilities)
    explanation = most_probable_model(compiled.circuit, probabilities)
    want_weight, _ = brute_mpe(expr, probabilities)
    assert close(explanation.probability, want_weight)
    assert evaluate(expr, explanation.assignment)


def test_single_variable():
    check(bvar(0), {0: 0.3})


def test_forced_variable_against_prior():
    # query forces x true even though its prior prefers false
    probabilities = {0: 0.1, 1: 0.9}
    compiled = compile_decision_dnnf(bvar(0), probabilities)
    explanation = most_probable_model(compiled.circuit, probabilities)
    assert explanation.assignment[0] is True
    assert explanation.assignment[1] is True  # free variable takes its mode


def test_conjunction_and_disjunction():
    probabilities = {0: 0.2, 1: 0.7, 2: 0.5}
    check(band(bvar(0), bvar(1)), probabilities)
    check(bor(bvar(0), bvar(1)), probabilities)


def test_negations():
    probabilities = {0: 0.8, 1: 0.6}
    check(band(bnot(bvar(0)), bvar(1)), probabilities)


def test_unsatisfiable_raises():
    probabilities = {0: 0.5}
    compiled = compile_decision_dnnf(band(bvar(0), bnot(bvar(0))), probabilities)
    with pytest.raises(ValueError):
        most_probable_model(compiled.circuit, probabilities)


def test_random_formulas():
    rng = random.Random(77)
    for _ in range(20):
        leaves = [bvar(i) for i in range(5)]
        probabilities = {i: rng.uniform(0.05, 0.95) for i in range(5)}
        terms = []
        for _ in range(rng.randint(1, 3)):
            literals = [
                v if rng.random() < 0.6 else bnot(v)
                for v in rng.sample(leaves, rng.randint(1, 3))
            ]
            terms.append(band(*literals))
        expr = bor(*terms)
        if brute_mpe(expr, probabilities) is None:
            continue
        check(expr, probabilities)


def test_query_lineage_mpe_is_a_model_of_the_query():
    db = random_tid(14, 3)
    query = parse_cq("R(x), S(x,y)")
    lineage = lineage_of_cq(query, db)
    probabilities = lineage.probabilities()
    compiled = compile_decision_dnnf(lineage.expr, probabilities)
    explanation = most_probable_model(compiled.circuit, probabilities)
    assert evaluate(lineage.expr, explanation.assignment)
    # total assignment over every lineage variable
    assert set(explanation.assignment) == set(probabilities)
