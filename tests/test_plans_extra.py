"""Deeper plan/bounds validation: longer chains, star queries, 4-atom CQs."""

import pytest

from repro.logic.cq import parse_cq
from repro.plans.bounds import extensional_bounds
from repro.plans.dissociation import all_dissociations, minimal_dissociations
from repro.plans.plan import execute_boolean, project_boolean
from repro.plans.safe_plan import safe_plan, try_safe_plan
from repro.workloads.generators import random_tid

from conftest import close

CHAIN_SCHEMA = (("R0", 1), ("E1", 2), ("E2", 2), ("T", 1), ("U", 1))


def chain_db(seed=3):
    return random_tid(seed, 3, schema=CHAIN_SCHEMA, density=0.75)


def test_chain_query_is_unsafe():
    # R0(x), E1(x,y), E2(y,z): at(y) = {E1, E2} vs at(x) = {R0, E1} overlap
    q = parse_cq("R0(x), E1(x,y), E2(y,z)")
    assert try_safe_plan(q) is None


def test_chain_bounds_sandwich():
    q = parse_cq("R0(x), E1(x,y), E2(y,z)")
    for seed in (0, 1, 2):
        db = random_tid(seed, 2, schema=CHAIN_SCHEMA, density=0.8)
        exact = db.brute_force_probability(q.to_formula())
        bounds = extensional_bounds(q, db)
        assert bounds.contains(exact), seed


def test_four_atom_star_is_safe():
    q = parse_cq("R0(x), E1(x,y), U(x), T(x)")
    db = random_tid(3, 2, schema=CHAIN_SCHEMA, density=0.9)
    plan = project_boolean(safe_plan(q))
    got = execute_boolean(plan, db)
    want = db.brute_force_probability(q.to_formula())
    assert close(got, want)


def test_four_atom_unsafe_bounds():
    q = parse_cq("R0(x), E1(x,y), T(y), U(x)")
    db = random_tid(5, 2, schema=CHAIN_SCHEMA, density=0.9)
    exact = db.brute_force_probability(q.to_formula())
    bounds = extensional_bounds(q, db)
    assert bounds.contains(exact)


def test_minimal_dissociations_subset_of_all():
    q = parse_cq("R0(x), E1(x,y), E2(y,z)")
    every = list(all_dissociations(q))
    minimal = minimal_dissociations(q)
    assert len(minimal) <= len(every)
    every_keys = {d.added for d in every}
    assert all(d.added in every_keys for d in minimal)


def test_minimal_dissociations_are_incomparable():
    q = parse_cq("R0(x), E1(x,y), E2(y,z)")
    minimal = minimal_dissociations(q)
    for a in minimal:
        for b in minimal:
            if a is b:
                continue
            dominates = all(x <= y for x, y in zip(a.added, b.added))
            assert not dominates or a.added == b.added


def test_bounds_width_shrinks_with_extreme_probabilities():
    # near-deterministic tuples make every plan nearly exact
    q = parse_cq("R(x), S(x,y), T(y)")
    sharp = random_tid(2, 3, probability_range=(0.97, 0.99))
    fuzzy = random_tid(2, 3, probability_range=(0.4, 0.6))
    assert (
        extensional_bounds(q, sharp).width
        <= extensional_bounds(q, fuzzy).width + 1e-6
    )


def test_safe_plan_str_mentions_operators():
    plan = project_boolean(safe_plan(parse_cq("R(x), S(x,y)")))
    text = str(plan)
    assert "γ" in text and "⋈" in text


def test_bounds_zero_when_relation_empty():
    q = parse_cq("R0(x), E1(x,y), E2(y,z)")
    db = random_tid(1, 2, schema=(("E1", 2), ("E2", 2)))  # no R0 at all
    bounds = extensional_bounds(q, db)
    assert bounds.lower == 0.0  # prodb-lint: exact
    assert bounds.upper == 0.0  # prodb-lint: exact
