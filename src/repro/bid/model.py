"""Block-independent-disjoint (BID) databases.

The paper's introduction lists BID databases [16] as the main studied
alternative to tuple independence: tuples are partitioned into *blocks*
(typically by a key); tuples in the same block are mutually exclusive, and
distinct blocks are independent. A block's probabilities may sum to less
than 1 — the remainder is the probability that *no* tuple of the block is
present.

This module gives BIDs a full semantics stack:

* possible-world enumeration (one choice per block) — the oracle;
* exact query evaluation by *multi-valued lineage*: each block becomes a
  categorical variable, and P(Q) is computed by a block-level Shannon
  expansion with caching (the BID analogue of the DPLL counter);
* conversion of the special case "every block a singleton" back to a TID.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..core.tid import TupleIndependentDatabase
from ..logic.formulas import Formula
from ..logic.semantics import Fact, satisfies


@dataclass
class Block:
    """One disjointness block: mutually exclusive alternative tuples."""

    relation: str
    key: tuple
    alternatives: list[tuple[tuple, float]] = field(default_factory=list)

    def total_probability(self) -> float:
        return sum(p for _, p in self.alternatives)

    def add(self, values: tuple, probability: float) -> None:
        if probability < 0:
            raise ValueError("probabilities must be non-negative")
        self.alternatives.append((tuple(values), float(probability)))
        if self.total_probability() > 1.0 + 1e-9:
            raise ValueError(
                f"block {self.relation}{self.key} probabilities exceed 1"
            )

    def choices(self) -> list[tuple[Optional[tuple], float]]:
        """All outcomes: each alternative, plus 'absent' with the remainder."""
        remainder = 1.0 - self.total_probability()
        outcomes: list[tuple[Optional[tuple], float]] = list(self.alternatives)
        if remainder > 1e-12:
            outcomes.append((None, remainder))
        return outcomes


@dataclass
class BlockIndependentDatabase:
    """A BID: blocks keyed by (relation, key-values)."""

    blocks: dict[tuple, Block] = field(default_factory=dict)
    key_arities: dict[str, int] = field(default_factory=dict)
    explicit_domain: Optional[frozenset] = None

    def add_alternative(
        self,
        relation: str,
        key: Sequence,
        values: Sequence,
        probability: float,
    ) -> None:
        """Add one alternative tuple; *key* is the block identifier prefix.

        The stored fact is ``relation(key..., values...)``.
        """
        key = tuple(key)
        arity = self.key_arities.setdefault(relation, len(key))
        if arity != len(key):
            raise ValueError(f"{relation}: inconsistent key arity")
        block_id = (relation, key)
        block = self.blocks.get(block_id)
        if block is None:
            block = Block(relation, key)
            self.blocks[block_id] = block
        block.add(tuple(key) + tuple(values), probability)

    def domain(self) -> tuple:
        if self.explicit_domain is not None:
            return tuple(sorted(self.explicit_domain, key=repr))
        values: set = set()
        for block in self.blocks.values():
            for row, _ in block.alternatives:
                values.update(row)
        return tuple(sorted(values, key=repr))

    def block_list(self) -> list[Block]:
        return [self.blocks[k] for k in sorted(self.blocks, key=repr)]

    # -- possible-world semantics ------------------------------------------------

    def possible_worlds(self) -> Iterator[tuple[frozenset[Fact], float]]:
        """One independent categorical choice per block; exponential oracle."""
        blocks = self.block_list()
        all_choices = [block.choices() for block in blocks]
        for combo in itertools.product(*all_choices):
            probability = 1.0
            members: list[Fact] = []
            for block, (row, p) in zip(blocks, combo):
                probability *= p
                if row is not None:
                    members.append((block.relation, row))
            if probability > 0.0:
                yield frozenset(members), probability

    def brute_force_probability(self, sentence: Formula) -> float:
        domain = self.domain()
        return sum(
            probability
            for world, probability in self.possible_worlds()
            if satisfies(world, domain, sentence)
        )

    # -- exact evaluation by block-level Shannon expansion --------------------------

    def probability(self, sentence: Formula) -> float:
        """Exact P(sentence) by conditioning block-by-block with caching.

        Expands one block at a time (a |block|+1-way Shannon expansion) and
        memoizes on the set of facts decided so far restricted to the
        sentence's relations. Exponential in the worst case but typically
        far smaller than full world enumeration thanks to early evaluation:
        once every block of the query's relations is decided, the residual
        is a single model check.
        """
        domain = self.domain()
        relations = sentence.relation_symbols()
        blocks = [b for b in self.block_list() if b.relation in relations]
        # Blocks of relations the query never mentions don't matter.
        cache: dict[tuple, float] = {}

        def expand(index: int, chosen: tuple[Optional[tuple], ...]) -> float:
            if index == len(blocks):
                world = frozenset(
                    (blocks[i].relation, row)
                    for i, row in enumerate(chosen)
                    if row is not None
                )
                return 1.0 if satisfies(world, domain, sentence) else 0.0
            key = (index, chosen)
            cached = cache.get(key)
            if cached is not None:
                return cached
            total = 0.0
            for row, p in blocks[index].choices():
                total += p * expand(index + 1, chosen + (row,))
            cache[key] = total
            return total

        return expand(0, ())

    def to_tid(self) -> TupleIndependentDatabase:
        """Convert when every block has a single alternative (pure TID)."""
        db = TupleIndependentDatabase()
        for block in self.block_list():
            if len(block.alternatives) != 1:
                raise ValueError(
                    "BID with multi-alternative blocks is not tuple-independent"
                )
            row, p = block.alternatives[0]
            db.add_fact(block.relation, row, p)
        if self.explicit_domain is not None:
            db.explicit_domain = self.explicit_domain
        return db

    def tuple_count(self) -> int:
        return sum(len(b.alternatives) for b in self.blocks.values())
