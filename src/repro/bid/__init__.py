"""Block-independent-disjoint databases (the BID model of the paper's intro)."""

from .model import Block, BlockIndependentDatabase

__all__ = ["Block", "BlockIndependentDatabase"]
