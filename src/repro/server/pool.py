"""A pool of worker *processes* behind the asyncio front door.

The thread-pool serving mode is GIL-bound: one cold exact computation
occupies the whole interpreter. This module scales out instead — N
``spawn``/``forkserver`` worker processes, each owning a private
:class:`~repro.engine.session.EngineSession` over the **same** bytes:
the parent publishes the database once as shared-memory columnar shards
(:mod:`repro.relational.shm`) and every worker attaches read-only,
zero-copy.

Routing is a consistent-hash ring over
``(db_fingerprint, query_fingerprint)``: a given query always lands on
the same worker, so that worker's answer/lineage caches stay hot and the
pool's aggregate cache capacity is the *sum* of the per-worker caches
rather than N copies of one. When a worker dies the ring re-routes only
the keys it owned.

Crash semantics: the response-reader thread notices a dead worker (its
process stops answering ``is_alive()``), fails it out of the ring, and
re-queues each of its in-flight requests **once** onto a surviving
worker; a request that already used its retry — or that finds no
survivors — is settled with an explicit ``overloaded`` error. A killed
worker therefore never yields a hung or corrupted reply, only a served
or explicitly-shed one.

Self-healing: unless constructed with ``restart=False``, a crashed
worker is respawned with capped exponential backoff (first retry after
``restart_backoff_s``, doubling up to ``restart_backoff_max_s``; the
backoff never resets, so a flapping worker keeps slowing down). The
replacement attaches the same shared shards, re-joins the ring on its
``ready`` message, and transparently re-installs any conditioning
scenario the next routed query names (query messages carry the full
constraint specs). ``server_worker_restarts_total`` counts successful
respawns; ``/healthz`` reflects them via the per-worker ``restarts``
field and flips back from ``degraded`` once the replacement is up.

Lock discipline: the single internal lock ranks
:data:`~repro.sanitize.RANK_WORKER_POOL` — below every server and engine
lock — and is held only for table/ring bookkeeping, never across queue
operations that can block or while settling futures.
"""

from __future__ import annotations

import hashlib
import os
import queue as queue_module
import signal
import threading
import time
from bisect import bisect_right, insort
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..engine.cache import query_fingerprint
from ..obs import MetricsRegistry, get_registry
from ..relational.shm import DatabaseHandle, attach
from ..sanitize import RANK_WORKER_POOL, RankedLock, audited_dict
from .protocol import ErrorCode, ProtocolError, QueryRequest

__all__ = ["WorkerOptions", "WorkerPool"]

#: Worker-side idle poll / heartbeat period, seconds.
_HEARTBEAT_S = 0.5

#: Parent-side response poll period, seconds (also bounds crash latency).
_POLL_S = 0.1

#: How many times a request orphaned by a worker crash is re-queued
#: before it is shed with ``overloaded``.
_MAX_REQUEUES = 1

#: Virtual nodes per worker on the consistent-hash ring.
_RING_REPLICAS = 64

#: Worker gauge names whose pool-wide *sum* is meaningful; merged into
#: ``server_workers_<name>`` alongside the monotone counter keys.
_MERGED_GAUGES = frozenset(
    {"engine_cache_entries", "scenario_circuits_cached", "scenarios_installed"}
)


@dataclass(frozen=True)
class WorkerOptions:
    """Picklable per-worker engine/ladder configuration."""

    cache_size: int = 256
    seed: Optional[int] = None
    backend: Optional[str] = None
    exact_lineage_limit: int = 40
    mc_epsilon: float = 0.02
    mc_delta: float = 0.05
    use_cache: bool = True
    default_epsilon: float = 0.2
    default_delta: float = 0.05
    default_deadline_s: Optional[float] = None
    scenario_cache_size: int = 32


# -- worker process ----------------------------------------------------------


def _error_payload(code: ErrorCode, error: BaseException) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": code.value,
        "message": f"{type(error).__name__}: {error}",
    }


def _evaluate_in_worker(
    ladder: Any,
    options: WorkerOptions,
    fields: Dict[str, Any],
    scenarios: Any = None,
    specs: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Mirror of ``QueryServer._evaluate``: run the ladder, shape the payload.

    Errors become error *payloads* (not exceptions): the parent settles
    the future with whatever comes back, keeping responses byte-identical
    to the in-process path where ``ProtocolError`` takes the same shape.
    *specs* carries the scenario's constraint specs so a worker that never
    saw the install (fresh, or restarted after a crash) conditions
    transparently.
    """
    from ..condition.core import InconsistentConstraints
    from ..condition.session import StaleScenarioError, UnknownScenarioError

    request = QueryRequest(**fields)
    scenario = None
    if request.scenario is not None:
        try:
            if request.force:
                scenario = scenarios.derived(
                    request.scenario, dict(request.force), specs=specs
                )
            else:
                scenario = scenarios.resolve(request.scenario, specs=specs)
        except UnknownScenarioError as error:
            return _error_payload(ErrorCode.UNKNOWN_SCENARIO, error)
        except StaleScenarioError as error:
            return _error_payload(ErrorCode.STALE_SCENARIO, error)
        except InconsistentConstraints as error:
            return _error_payload(ErrorCode.UNSATISFIABLE, error)
        except (ValueError, NotImplementedError) as error:
            return _error_payload(ErrorCode.BAD_REQUEST, error)
    pdb = ladder.session.pdb
    previous_backend = pdb.backend
    if request.backend is not None:
        pdb.backend = request.backend
    try:
        deadline_s = (
            request.deadline_ms / 1e3
            if request.deadline_ms is not None
            else options.default_deadline_s
        )
        answer = ladder.evaluate(
            request.query,
            method=request.method,
            deadline_s=deadline_s,
            epsilon=request.epsilon,
            delta=request.delta,
            scenario=scenario,
            scenario_id=request.scenario,
        )
    except (ValueError, NotImplementedError) as error:
        return _error_payload(ErrorCode.BAD_REQUEST, error)
    except Exception as error:  # noqa: BLE001 - worker boundary
        return _error_payload(ErrorCode.INTERNAL, error)
    finally:
        pdb.backend = previous_backend
    payload = answer.to_payload()
    payload["elapsed_ms"] = round(answer.elapsed_s * 1e3, 3)
    return payload


def _condition_in_worker(scenarios: Any, specs: List[str]) -> Dict[str, Any]:
    """Install a constraint set in this worker; shape the install payload."""
    from ..condition.core import InconsistentConstraints

    try:
        scenario_id, scenario = scenarios.install(specs)
    except InconsistentConstraints as error:
        return _error_payload(ErrorCode.UNSATISFIABLE, error)
    except (ValueError, NotImplementedError) as error:
        return _error_payload(ErrorCode.BAD_REQUEST, error)
    except Exception as error:  # noqa: BLE001 - worker boundary
        return _error_payload(ErrorCode.INTERNAL, error)
    return {
        "ok": True,
        "scenario": scenario_id,
        "constraints": scenario.constraints.specs(),
        "gamma_probability": scenario.gamma_probability,
        "scenario_facts": scenario.variable_count,
    }


def _worker_main(
    index: int,
    handle: DatabaseHandle,
    options: WorkerOptions,
    request_queue: Any,
    response_queue: Any,
) -> None:
    """Entry point of one worker process.

    Attaches the shared shards, builds a private session + ladder, then
    serves its request queue; idle gaps emit heartbeats carrying this
    process's metrics snapshot so the parent can merge them.
    """
    # A terminal Ctrl-C signals the whole foreground process group; the
    # parent owns the drain (stop sentinels after in-flight work settles),
    # so workers must not die mid-request with a KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    pid = os.getpid()
    try:
        from ..condition.session import ScenarioManager
        from ..engine.session import EngineSession
        from ..plans.vectorized import seed_scan_cache
        from .ladder import MethodLadder

        shards = attach(handle)  # interner snapshot → this process's default
        db = shards.to_tid()  # fingerprint-verified against the handle
        seed_scan_cache(db, shards.columnar)
        session = EngineSession(
            db,
            cache_size=options.cache_size,
            seed=options.seed,
            backend=options.backend,
        )
        session.pdb.exact_lineage_limit = options.exact_lineage_limit
        session.pdb.mc_epsilon = options.mc_epsilon
        session.pdb.mc_delta = options.mc_delta
        ladder = MethodLadder(
            session,
            use_cache=options.use_cache,
            default_epsilon=options.default_epsilon,
            default_delta=options.default_delta,
        )
        scenarios = ScenarioManager(
            session.pdb, maxsize=options.scenario_cache_size
        )
    except BaseException as error:  # noqa: BLE001 - report, then die
        response_queue.put(
            {"kind": "failed", "worker": index, "pid": pid, "message": repr(error)}
        )
        raise
    registry = get_registry()

    def snapshot() -> Dict[str, float]:
        # Publish this worker's occupancy gauges right before snapshotting
        # so the parent's merged /metrics view stays current.
        registry.gauge(
            "engine_cache_entries", "engine cache entries resident"
        ).set(len(session.cache))
        scenarios.publish_metrics()
        return registry.snapshot()

    response_queue.put({"kind": "ready", "worker": index, "pid": pid})
    while True:
        try:
            message = request_queue.get(timeout=_HEARTBEAT_S)
        except queue_module.Empty:
            response_queue.put(
                {
                    "kind": "heartbeat",
                    "worker": index,
                    "pid": pid,
                    "metrics": snapshot(),
                }
            )
            continue
        op = message.get("op")
        if op == "stop":
            break
        if op == "drop":
            # Fire-and-forget: the parent already answered the client.
            scenarios.drop(str(message.get("scenario", "")))
            continue
        if op == "condition":
            payload = _condition_in_worker(scenarios, list(message["specs"]))
        else:
            payload = _evaluate_in_worker(
                ladder,
                options,
                message["request"],
                scenarios,
                message.get("specs"),
            )
        response_queue.put(
            {
                "kind": "answer",
                "worker": index,
                "seq": message["seq"],
                "payload": payload,
                "metrics": snapshot(),
            }
        )


# -- consistent hashing ------------------------------------------------------


def _ring_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class _HashRing:
    """A deterministic consistent-hash ring over worker indices."""

    def __init__(self, replicas: int = _RING_REPLICAS) -> None:
        self._replicas = replicas
        self._points: List[Tuple[int, int]] = []  # sorted (hash, worker)

    def add(self, worker: int) -> None:
        for replica in range(self._replicas):
            insort(self._points, (_ring_hash(f"worker:{worker}:{replica}"), worker))

    def remove(self, worker: int) -> None:
        self._points = [p for p in self._points if p[1] != worker]

    def route(self, key: str) -> Optional[int]:
        if not self._points:
            return None
        position = bisect_right(self._points, (_ring_hash(key), -1))
        if position == len(self._points):
            position = 0
        return self._points[position][1]


# -- parent-side pool --------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    index: int
    process: Any
    request_queue: Any
    pid: Optional[int] = None
    alive: bool = True
    depth: int = 0  # submitted but not yet answered
    last_seen: float = 0.0
    metrics: Optional[Dict[str, float]] = None
    restarts: int = 0  # successful respawns (ready received)
    respawn_at: Optional[float] = None  # monotonic deadline for next respawn
    backoff_s: float = 0.0  # current restart backoff (doubles, capped)


@dataclass
class _Pending:
    """One routed request awaiting its answer."""

    future: "Future[Dict[str, Any]]"
    worker: int
    message: Dict[str, Any]
    requeues: int = 0


class WorkerPool:
    """N worker processes over shared shards, with affinity routing.

    ``submit`` returns a :class:`concurrent.futures.Future` resolved by
    the response-reader thread; the front door wraps it with
    ``asyncio.wrap_future``. All public methods are thread-safe.
    """

    def __init__(
        self,
        handle: DatabaseHandle,
        workers: int,
        *,
        options: Optional[WorkerOptions] = None,
        registry: Optional[MetricsRegistry] = None,
        start_timeout_s: float = 60.0,
        restart: bool = True,
        restart_backoff_s: float = 0.5,
        restart_backoff_max_s: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.handle = handle
        self.options = options if options is not None else WorkerOptions()
        self.registry = registry if registry is not None else get_registry()
        self._start_timeout_s = start_timeout_s
        self._restart = restart
        self._restart_backoff_s = restart_backoff_s
        self._restart_backoff_max_s = restart_backoff_max_s
        self._lock = RankedLock(RANK_WORKER_POOL, "server.pool")
        self._workers: List[_Worker] = []
        self._pending: Dict[int, _Pending] = audited_dict("pool.pending")
        self._ring = _HashRing()
        self._seq = 0
        self._started = False
        self._stopping = False
        self._context: Any = None
        self._response_queue: Any = None
        self._reader: Optional[threading.Thread] = None
        self._requested = workers
        reg = self.registry
        self._m_crashes = reg.counter(
            "server_worker_crashes_total", "worker processes found dead"
        )
        self._m_restarts = reg.counter(
            "server_worker_restarts_total",
            "crashed workers successfully respawned",
        )
        self._m_requeued = reg.counter(
            "server_requeued_total", "orphaned requests re-queued after a crash"
        )
        self._m_alive: List[Any] = []
        self._m_depth: List[Any] = []
        self._m_beat_age: List[Any] = []
        for index in range(workers):
            self._m_alive.append(
                reg.gauge(
                    f"server_worker_{index}_alive",
                    f"1 while worker {index}'s process is alive",
                )
            )
            self._m_depth.append(
                reg.gauge(
                    f"server_worker_{index}_queue_depth",
                    f"requests submitted to worker {index} and not yet answered",
                )
            )
            self._m_beat_age.append(
                reg.gauge(
                    f"server_worker_{index}_heartbeat_age_seconds",
                    f"seconds since worker {index} last reported in",
                )
            )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the workers and wait until every one is serving."""
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        from ..engine.batch import mp_context

        context = mp_context()
        self._context = context
        self._response_queue = context.Queue()
        now = time.monotonic()
        for index in range(self._requested):
            request_queue, process = self._spawn(index)
            with self._lock:
                self._workers.append(
                    _Worker(index, process, request_queue, last_seen=now)
                )
        ready: set[int] = set()
        deadline = time.monotonic() + self._start_timeout_s
        while len(ready) < self._requested:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.shutdown()
                raise RuntimeError(
                    f"worker pool: only {len(ready)}/{self._requested} workers "
                    f"came up within {self._start_timeout_s:g}s"
                )
            try:
                message = self._response_queue.get(timeout=min(remaining, _POLL_S * 5))
            except queue_module.Empty:
                continue
            if message.get("kind") == "failed":
                self.shutdown()
                raise RuntimeError(
                    f"worker {message.get('worker')} failed to start: "
                    f"{message.get('message')}"
                )
            if message.get("kind") == "ready":
                index = int(message["worker"])
                ready.add(index)
                with self._lock:
                    worker = self._workers[index]
                    worker.pid = int(message["pid"])
                    worker.last_seen = time.monotonic()
                    self._ring.add(index)
        self._reader = threading.Thread(
            target=self._drain_responses, name="prodb-pool-reader", daemon=True
        )
        self._reader.start()

    def _spawn(self, index: int) -> Tuple[Any, Any]:
        """Create and start one worker process with a fresh request queue."""
        request_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                index,
                self.handle,
                self.options,
                request_queue,
                self._response_queue,
            ),
            name=f"prodb-pool-{index}",
            daemon=True,
        )
        process.start()
        return request_queue, process

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop the workers, settle unanswered futures, join everything."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            workers = list(self._workers)
            orphans = list(self._pending.values())
            # In place, not rebound: rebinding would drop the race detector
            # attached by audited_dict().
            self._pending.clear()
        for entry in orphans:
            if not entry.future.done():
                entry.future.set_exception(
                    ProtocolError(
                        ErrorCode.SHUTTING_DOWN,
                        "server is draining; retry elsewhere",
                    )
                )
        for worker in workers:
            if worker.process.is_alive():
                try:
                    worker.request_queue.put({"op": "stop"})
                except (ValueError, OSError):  # pragma: no cover - queue closed
                    pass
        deadline = time.monotonic() + timeout_s
        for worker in workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if self._reader is not None and self._reader is not threading.current_thread():
            self._reader.join(timeout=5.0)
        for worker in workers:
            worker.request_queue.cancel_join_thread()
            worker.request_queue.close()
        if self._response_queue is not None:
            self._response_queue.cancel_join_thread()
            self._response_queue.close()

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        request: QueryRequest,
        *,
        specs: Optional[List[str]] = None,
    ) -> "Future[Dict[str, Any]]":
        """Route *request* to its affinity worker; resolve via the reader.

        A scenario-carrying request routes on ``(db, scenario_id)`` so
        every query against one scenario lands on the worker holding its
        compiled circuit; *specs* rides along for install-on-miss (fresh
        or restarted workers re-condition transparently).
        """
        if request.scenario is not None:
            key = f"{self.handle.fingerprint}|scenario:{request.scenario}"
        else:
            key = f"{self.handle.fingerprint}|{query_fingerprint(request.query)}"
        message: Dict[str, Any] = {"op": "query", "request": asdict(request)}
        if specs is not None:
            message["specs"] = list(specs)
        return self._submit_message(key, message)

    def submit_condition(
        self, scenario_id: str, specs: List[str]
    ) -> "Future[Dict[str, Any]]":
        """Install a constraint set on the scenario's ring owner."""
        key = f"{self.handle.fingerprint}|scenario:{scenario_id}"
        message: Dict[str, Any] = {
            "op": "condition",
            "scenario": scenario_id,
            "specs": list(specs),
        }
        return self._submit_message(key, message)

    def broadcast_drop(self, scenario_id: str) -> None:
        """Tell every live worker to forget a scenario (fire-and-forget)."""
        with self._lock:
            if self._stopping:
                return
            targets = [
                worker for worker in self._workers
                if worker.alive and worker.process.is_alive()
            ]
        for worker in targets:
            try:
                worker.request_queue.put({"op": "drop", "scenario": scenario_id})
            except (ValueError, OSError):  # pragma: no cover - queue closed
                pass

    def _submit_message(
        self, key: str, message: Dict[str, Any]
    ) -> "Future[Dict[str, Any]]":
        future: "Future[Dict[str, Any]]" = Future()
        with self._lock:
            if self._stopping:
                raise ProtocolError(
                    ErrorCode.SHUTTING_DOWN, "server is draining; retry elsewhere"
                )
            index = self._ring.route(key)
            if index is None:
                raise ProtocolError(
                    ErrorCode.OVERLOADED,
                    "no live workers; shedding load — retry with backoff",
                )
            worker = self._workers[index]
            seq = self._seq
            self._seq += 1
            message["seq"] = seq
            self._pending[seq] = _Pending(future, index, message)
            worker.depth += 1
        worker.request_queue.put(message)
        return future

    # -- response reader -------------------------------------------------------

    def _drain_responses(self) -> None:
        while True:
            with self._lock:
                if self._stopping and not self._pending:
                    return
            try:
                message = self._response_queue.get(timeout=_POLL_S)
            except queue_module.Empty:
                message = None
            except (ValueError, OSError):  # pragma: no cover - queue closed
                return
            if message is not None:
                self._on_message(message)
            self._reap_dead()
            self._maybe_restart()

    def _on_message(self, message: Dict[str, Any]) -> None:
        kind = message.get("kind")
        entry: Optional[_Pending] = None
        with self._lock:
            index = int(message.get("worker", -1))
            if 0 <= index < len(self._workers):
                worker = self._workers[index]
                worker.last_seen = time.monotonic()
                metrics = message.get("metrics")
                if isinstance(metrics, dict):
                    worker.metrics = metrics
                if kind == "answer":
                    entry = self._pending.pop(int(message["seq"]), None)
                    worker.depth = max(0, worker.depth - 1)
                elif kind == "ready" and not worker.alive:
                    # A respawned replacement came up: re-join the ring.
                    worker.alive = True
                    worker.pid = int(message["pid"])
                    worker.depth = 0
                    worker.respawn_at = None
                    worker.restarts += 1
                    self._ring.add(worker.index)
                    self._m_restarts.inc()
        if entry is not None and not entry.future.done():
            entry.future.set_result(message["payload"])

    def _reap_dead(self) -> None:
        """Fail dead workers out of the ring; requeue or shed their orphans."""
        shed: List[_Pending] = []
        requeued: List[Tuple[_Worker, Dict[str, Any]]] = []
        with self._lock:
            for worker in self._workers:
                if not worker.alive or worker.process.is_alive():
                    continue
                worker.alive = False
                worker.depth = 0
                self._ring.remove(worker.index)
                self._m_crashes.inc()
                if self._restart and not self._stopping:
                    # Capped exponential backoff; never reset, so a
                    # crash-looping worker keeps slowing down.
                    worker.backoff_s = min(
                        max(worker.backoff_s * 2.0, self._restart_backoff_s),
                        self._restart_backoff_max_s,
                    )
                    worker.respawn_at = time.monotonic() + worker.backoff_s
                orphan_seqs = [
                    seq
                    for seq, entry in self._pending.items()
                    if entry.worker == worker.index
                ]
                for seq in orphan_seqs:
                    entry = self._pending[seq]
                    target: Optional[int] = None
                    if entry.requeues < _MAX_REQUEUES:
                        target = self._ring.route(f"requeue:{seq}")
                    if target is None:
                        del self._pending[seq]
                        shed.append(entry)
                        continue
                    entry.requeues += 1
                    entry.worker = target
                    survivor = self._workers[target]
                    survivor.depth += 1
                    self._m_requeued.inc()
                    requeued.append((survivor, entry.message))
        for survivor, message in requeued:
            survivor.request_queue.put(message)
        for entry in shed:
            if not entry.future.done():
                entry.future.set_exception(
                    ProtocolError(
                        ErrorCode.OVERLOADED,
                        "worker process died mid-computation; request shed — "
                        "retry with backoff",
                    )
                )

    def _maybe_restart(self) -> None:
        """Respawn crashed workers whose backoff deadline has passed.

        Runs on the reader thread only, so claiming a worker (clearing
        ``respawn_at`` under the lock) cannot race another restarter; the
        spawn itself happens outside the lock. The replacement joins the
        ring when its ``ready`` message arrives (:meth:`_on_message`) —
        a replacement that dies during init is reaped and rescheduled
        with doubled backoff like any other crash.
        """
        now = time.monotonic()
        claimed: List[_Worker] = []
        with self._lock:
            if self._stopping or not self._restart:
                return
            for worker in self._workers:
                if worker.alive:
                    continue
                if worker.respawn_at is None:
                    # No restart pending: either a replacement is still
                    # initializing (process alive, ready not yet seen) or
                    # it died during init — reschedule the latter with
                    # doubled backoff, since _reap_dead only watches
                    # ring-joined workers.
                    if not worker.process.is_alive():
                        worker.backoff_s = min(
                            max(worker.backoff_s * 2.0, self._restart_backoff_s),
                            self._restart_backoff_max_s,
                        )
                        worker.respawn_at = now + worker.backoff_s
                    continue
                if worker.respawn_at <= now:
                    worker.respawn_at = None
                    claimed.append(worker)
        for worker in claimed:
            old_queue = worker.request_queue
            request_queue, process = self._spawn(worker.index)
            with self._lock:
                worker.process = process
                worker.request_queue = request_queue
                worker.pid = None
                worker.last_seen = time.monotonic()
            try:
                old_queue.cancel_join_thread()
                old_queue.close()
            except (ValueError, OSError):  # pragma: no cover - already closed
                pass

    # -- observability ---------------------------------------------------------

    def workers_info(self) -> List[Dict[str, Any]]:
        """Per-worker liveness for ``/healthz``."""
        now = time.monotonic()
        out: List[Dict[str, Any]] = []
        with self._lock:
            for worker in self._workers:
                out.append(
                    {
                        "worker": worker.index,
                        "pid": worker.pid,
                        "alive": worker.alive and worker.process.is_alive(),
                        "queue_depth": worker.depth,
                        "heartbeat_age_s": round(now - worker.last_seen, 3),
                        "restarts": worker.restarts,
                    }
                )
        return out

    def all_alive(self) -> bool:
        with self._lock:
            return all(
                worker.alive and worker.process.is_alive()
                for worker in self._workers
            )

    def refresh_metrics(self) -> None:
        """Publish per-worker gauges and merge worker counters (as gauges).

        Quantile-style snapshot keys cannot be merged by summation, so
        only monotone ``*_total`` / ``*_count`` / ``*_sum`` keys aggregate
        into ``server_workers_<name>`` — plus the occupancy gauges in
        ``_MERGED_GAUGES``, whose pool-wide sum is the meaningful figure
        (aggregate cache capacity is the sum of per-worker caches).
        """
        now = time.monotonic()
        merged: Dict[str, float] = {}
        with self._lock:
            for worker in self._workers:
                alive = worker.alive and worker.process.is_alive()
                self._m_alive[worker.index].set(1.0 if alive else 0.0)
                self._m_depth[worker.index].set(float(worker.depth))
                self._m_beat_age[worker.index].set(round(now - worker.last_seen, 3))
                for name, value in (worker.metrics or {}).items():
                    if (
                        name.endswith(("_total", "_count", "_sum"))
                        or name in _MERGED_GAUGES
                    ):
                        merged[name] = merged.get(name, 0.0) + float(value)
        for name, value in merged.items():
            self.registry.gauge(
                f"server_workers_{name}", "summed across pool workers"
            ).set(value)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
