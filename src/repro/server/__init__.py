"""Serving layer: a query server over one shared engine session.

Three cooperating pieces:

* :mod:`repro.server.protocol` — the NDJSON wire format and validation;
* :mod:`repro.server.ladder` — deadline-driven method degradation
  (exact → dissociation bounds → seeded sampling), every answer naming
  its rung and guarantee;
* :mod:`repro.server.service` — the asyncio server with request
  coalescing, admission control and graceful drain, plus the HTTP shim
  (``POST /query``, ``POST /condition``, ``DELETE /condition/<id>``,
  ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.server.pool` — the multi-process mode: shared-memory
  columnar shards published once, N spawned workers attached read-only,
  consistent-hash routing for cache affinity, crash requeue-or-shed with
  optional auto-respawn.

Conditioning rides the same protocol: ``op: condition`` installs a
constraint set as a server-side scenario (compiled once), queries naming
a ``scenario`` answer ``P(Q | Γ)``, and ``force`` derives what-if
cofactors — see :mod:`repro.condition`.

See docs/api.md ("Serving", "Conditioning & what-if") for the protocol
and guarantee catalog.
"""

from .client import ServerClient, http_get, http_request
from .ladder import CostPredictor, MethodLadder, RungAnswer
from .pool import WorkerOptions, WorkerPool
from .protocol import (
    ConditionRequest,
    DropConditionRequest,
    ErrorCode,
    ProtocolError,
    QueryRequest,
    Request,
    decode_request,
    encode,
    error_response,
)
from .service import QueryServer, ServerConfig, ServerThread

__all__ = [
    "ConditionRequest",
    "CostPredictor",
    "DropConditionRequest",
    "ErrorCode",
    "MethodLadder",
    "ProtocolError",
    "QueryRequest",
    "QueryServer",
    "Request",
    "RungAnswer",
    "ServerClient",
    "ServerConfig",
    "ServerThread",
    "WorkerOptions",
    "WorkerPool",
    "decode_request",
    "encode",
    "error_response",
    "http_get",
    "http_request",
]
