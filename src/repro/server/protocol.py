"""The wire protocol: newline-delimited JSON requests and responses.

One request per line, one response line per request, always in order.
A request is a JSON object::

    {"query": "R(x), S(x,y)",        # required: Boolean query text
     "method": "ladder",             # optional: "ladder" (default) or any
                                     #   engine route ("lifted", "dpll", ...)
     "backend": "columnar",          # optional: extensional backend override
     "deadline_ms": 50,              # optional: degradation deadline
     "timeout_ms": 30000,            # optional: hard per-request timeout
     "epsilon": 0.2, "delta": 0.05,  # optional: error budget for degraded rungs
     "id": "req-17"}                 # optional: echoed back verbatim

A successful response names the ladder rung that answered and the
guarantee that rung carries::

    {"ok": true, "id": "req-17", "probability": 0.8, "rung": "exact",
     "guarantee": "exact probability (no approximation)", "exact": true,
     "method": "lifted", "detail": "...", "coalesced": false,
     "elapsed_ms": 1.93}

Degraded answers add rung-specific fields: ``bounds`` rungs carry
``{"lower": ..., "upper": ...}``; ``sampled`` rungs carry
``{"epsilon": ..., "delta": ..., "samples": ...}``.

Errors are ``{"ok": false, "error": <code>, "message": ...}`` with codes
from :class:`ErrorCode` — notably ``overloaded`` (admission control shed
the request) and ``shutting_down`` (the server is draining).

The HTTP shim speaks the same JSON: ``POST /query`` takes one request
object as the body and returns one response object.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = [
    "ErrorCode",
    "ProtocolError",
    "QueryRequest",
    "decode_request",
    "encode",
    "error_response",
]

#: Engine methods a request may name instead of the ladder.
_DIRECT_METHODS = (
    "auto",
    "lifted",
    "safe-plan",
    "dpll",
    "karp-luby",
    "monte-carlo",
    "brute-force",
)

_BACKENDS = ("auto", "rows", "columnar")


class ErrorCode(Enum):
    """Machine-readable error categories."""

    BAD_REQUEST = "bad_request"
    OVERLOADED = "overloaded"
    SHUTTING_DOWN = "shutting_down"
    TIMEOUT = "timeout"
    INTERNAL = "internal"


class ProtocolError(ValueError):
    """A request that cannot be admitted; carries the response code."""

    def __init__(self, code: ErrorCode, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class QueryRequest:
    """One decoded, validated request."""

    query: str
    method: str = "ladder"
    backend: Optional[str] = None
    deadline_ms: Optional[float] = None
    timeout_ms: Optional[float] = None
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    id: Optional[str] = field(default=None)

    def coalesce_key(self, db_fingerprint: str) -> tuple:
        """The identity under which concurrent requests share one answer.

        ``(db_fingerprint, query, method, backend)`` per the serving
        design, refined by the error budget so a caller asking for a
        tighter ε/δ never receives a looser answer.
        """
        return (
            db_fingerprint,
            " ".join(self.query.split()),
            self.method,
            self.backend,
            self.epsilon,
            self.delta,
        )


def _optional_number(
    payload: Dict[str, Any], name: str, positive: bool = True
) -> Optional[float]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"field {name!r} must be a number"
        )
    number = float(value)
    if positive and number <= 0:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"field {name!r} must be positive"
        )
    return number


def decode_request(line: str) -> QueryRequest:
    """Parse and validate one NDJSON request line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"request is not valid JSON: {error}"
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "request must be a JSON object"
        )
    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'query' (non-empty string) is required"
        )
    method = payload.get("method", "ladder")
    if method not in ("ladder",) + _DIRECT_METHODS:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"unknown method {method!r}; expected 'ladder' or one of "
            + ", ".join(_DIRECT_METHODS),
        )
    backend = payload.get("backend")
    if backend is not None and backend not in _BACKENDS:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"unknown backend {backend!r}; expected one of {_BACKENDS}",
        )
    delta = _optional_number(payload, "delta")
    if delta is not None and delta >= 1.0:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'delta' must be in (0, 1)"
        )
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        request_id = str(request_id)
    return QueryRequest(
        query=query,
        method=str(method),
        backend=backend,
        deadline_ms=_optional_number(payload, "deadline_ms"),
        timeout_ms=_optional_number(payload, "timeout_ms"),
        epsilon=_optional_number(payload, "epsilon"),
        delta=delta,
        id=request_id,
    )


def encode(payload: Dict[str, Any]) -> str:
    """One response object as a single NDJSON line (no trailing newline)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def error_response(
    code: ErrorCode, message: str, request_id: Optional[str] = None
) -> Dict[str, Any]:
    """The uniform error payload."""
    out: Dict[str, Any] = {"ok": False, "error": code.value, "message": message}
    if request_id is not None:
        out["id"] = request_id
    return out
