"""The wire protocol: newline-delimited JSON requests and responses.

One request per line, one response line per request, always in order.
A request is a JSON object::

    {"query": "R(x), S(x,y)",        # required: Boolean query text
     "method": "ladder",             # optional: "ladder" (default) or any
                                     #   engine route ("lifted", "dpll", ...)
     "backend": "columnar",          # optional: extensional backend override
     "deadline_ms": 50,              # optional: degradation deadline
     "timeout_ms": 30000,            # optional: hard per-request timeout
     "epsilon": 0.2, "delta": 0.05,  # optional: error budget for degraded rungs
     "id": "req-17"}                 # optional: echoed back verbatim

A successful response names the ladder rung that answered and the
guarantee that rung carries::

    {"ok": true, "id": "req-17", "probability": 0.8, "rung": "exact",
     "guarantee": "exact probability (no approximation)", "exact": true,
     "method": "lifted", "detail": "...", "coalesced": false,
     "elapsed_ms": 1.93}

Degraded answers add rung-specific fields: ``bounds`` rungs carry
``{"lower": ..., "upper": ...}``; ``sampled`` rungs carry
``{"epsilon": ..., "delta": ..., "samples": ...}``.

Errors are ``{"ok": false, "error": <code>, "message": ...}`` with codes
from :class:`ErrorCode` — notably ``overloaded`` (admission control shed
the request) and ``shutting_down`` (the server is draining).

**Conditioning.** A request object may instead carry an ``op``:

* ``{"op": "condition", "constraints": ["+R(1)", "S(x,y), T(y)"]}``
  installs a constraint set against the current database contents and
  returns ``{"ok": true, "scenario": "s...", ...}`` — see
  :mod:`repro.condition.session` for the id scheme;
* ``{"op": "drop_condition", "scenario": "s..."}`` uninstalls it;
* a query request may add ``"scenario": "s..."`` (answer ``P(Q | Γ)``
  through the installed scenario's compiled circuit) and ``"force":
  {"R(1)": true}`` (a what-if derivation of that scenario).

Scenario errors use the codes ``unknown_scenario`` (HTTP 404),
``stale_scenario`` (409 — the database changed since install) and
``unsatisfiable`` (400 — ``P(Γ) = 0``).

The HTTP shim speaks the same JSON: ``POST /query`` takes one request
object as the body and returns one response object; ``POST /condition``
and ``DELETE /condition/<id>`` map onto the two ops.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple, Union

__all__ = [
    "ConditionRequest",
    "DropConditionRequest",
    "ErrorCode",
    "ProtocolError",
    "QueryRequest",
    "Request",
    "decode_request",
    "encode",
    "error_response",
]

#: Engine methods a request may name instead of the ladder.
_DIRECT_METHODS = (
    "auto",
    "lifted",
    "safe-plan",
    "dpll",
    "karp-luby",
    "monte-carlo",
    "brute-force",
)

_BACKENDS = ("auto", "rows", "columnar")


class ErrorCode(Enum):
    """Machine-readable error categories."""

    BAD_REQUEST = "bad_request"
    OVERLOADED = "overloaded"
    SHUTTING_DOWN = "shutting_down"
    TIMEOUT = "timeout"
    INTERNAL = "internal"
    UNKNOWN_SCENARIO = "unknown_scenario"
    STALE_SCENARIO = "stale_scenario"
    UNSATISFIABLE = "unsatisfiable"


class ProtocolError(ValueError):
    """A request that cannot be admitted; carries the response code."""

    def __init__(self, code: ErrorCode, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class QueryRequest:
    """One decoded, validated request."""

    query: str
    method: str = "ladder"
    backend: Optional[str] = None
    deadline_ms: Optional[float] = None
    timeout_ms: Optional[float] = None
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    id: Optional[str] = field(default=None)
    #: Answer ``P(Q | Γ)`` through this installed scenario id.
    scenario: Optional[str] = None
    #: What-if evidence applied to the scenario: canonical sorted
    #: ``(fact spec, forced value)`` pairs (hashable for coalescing).
    force: Optional[Tuple[Tuple[str, bool], ...]] = None

    def coalesce_key(self, db_fingerprint: str) -> tuple:
        """The identity under which concurrent requests share one answer.

        ``(db_fingerprint, query, method, backend)`` per the serving
        design, refined by the error budget so a caller asking for a
        tighter ε/δ never receives a looser answer, and by the scenario
        identity (conditioned and unconditioned answers never coalesce).
        """
        return (
            db_fingerprint,
            " ".join(self.query.split()),
            self.method,
            self.backend,
            self.epsilon,
            self.delta,
            self.scenario,
            self.force,
        )


@dataclass(frozen=True)
class ConditionRequest:
    """``op: condition`` — install a constraint set, returning its id."""

    constraints: Tuple[str, ...]
    id: Optional[str] = None


@dataclass(frozen=True)
class DropConditionRequest:
    """``op: drop_condition`` — uninstall a scenario (idempotent)."""

    scenario: str
    id: Optional[str] = None


#: Anything :func:`decode_request` may return.
Request = Union[QueryRequest, ConditionRequest, DropConditionRequest]


def _optional_number(
    payload: Dict[str, Any], name: str, positive: bool = True
) -> Optional[float]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"field {name!r} must be a number"
        )
    number = float(value)
    if positive and number <= 0:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"field {name!r} must be positive"
        )
    return number


def decode_request(line: str) -> Request:
    """Parse and validate one NDJSON request line.

    Dispatches on ``op``: absent (or ``"query"``) yields a
    :class:`QueryRequest`; ``"condition"`` / ``"drop_condition"`` yield
    the scenario-management requests.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"request is not valid JSON: {error}"
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "request must be a JSON object"
        )
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        request_id = str(request_id)
    op = payload.get("op", "query")
    if op == "condition":
        constraints = payload.get("constraints")
        if isinstance(constraints, str):
            constraints = [part for part in constraints.split(";") if part.strip()]
        if (
            not isinstance(constraints, (list, tuple))
            or not constraints
            or not all(isinstance(c, str) and c.strip() for c in constraints)
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                "op 'condition' needs 'constraints': a non-empty list of "
                "constraint spec strings (or one ';'-separated string)",
            )
        return ConditionRequest(tuple(constraints), id=request_id)
    if op == "drop_condition":
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                "op 'drop_condition' needs 'scenario': the id to uninstall",
            )
        return DropConditionRequest(scenario, id=request_id)
    if op != "query":
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"unknown op {op!r}; expected 'query', 'condition' or "
            "'drop_condition'",
        )
    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'query' (non-empty string) is required"
        )
    method = payload.get("method", "ladder")
    if method not in ("ladder",) + _DIRECT_METHODS:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"unknown method {method!r}; expected 'ladder' or one of "
            + ", ".join(_DIRECT_METHODS),
        )
    backend = payload.get("backend")
    if backend is not None and backend not in _BACKENDS:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"unknown backend {backend!r}; expected one of {_BACKENDS}",
        )
    delta = _optional_number(payload, "delta")
    if delta is not None and delta >= 1.0:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'delta' must be in (0, 1)"
        )
    scenario = payload.get("scenario")
    if scenario is not None and (not isinstance(scenario, str) or not scenario):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'scenario' must be a scenario id"
        )
    raw_force = payload.get("force")
    force: Optional[Tuple[Tuple[str, bool], ...]] = None
    if raw_force is not None:
        if scenario is None:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                "field 'force' needs 'scenario': what-if evidence applies "
                "to an installed scenario",
            )
        if (
            not isinstance(raw_force, dict)
            or not raw_force
            or not all(
                isinstance(k, str) and k.strip() and isinstance(v, bool)
                for k, v in raw_force.items()
            )
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                "field 'force' must map fact specs to booleans, "
                'e.g. {"R(1)": true}',
            )
        force = tuple(
            sorted((" ".join(k.split()), v) for k, v in raw_force.items())
        )
    return QueryRequest(
        query=query,
        method=str(method),
        backend=backend,
        deadline_ms=_optional_number(payload, "deadline_ms"),
        timeout_ms=_optional_number(payload, "timeout_ms"),
        epsilon=_optional_number(payload, "epsilon"),
        delta=delta,
        id=request_id,
        scenario=scenario,
        force=force,
    )


def encode(payload: Dict[str, Any]) -> str:
    """One response object as a single NDJSON line (no trailing newline)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def error_response(
    code: ErrorCode, message: str, request_id: Optional[str] = None
) -> Dict[str, Any]:
    """The uniform error payload."""
    out: Dict[str, Any] = {"ok": False, "error": code.value, "message": message}
    if request_id is not None:
        out["id"] = request_id
    return out
