"""The asyncio query server: NDJSON over TCP plus a minimal HTTP shim.

One :class:`QueryServer` bridges client connections onto a shared
:class:`~repro.engine.session.EngineSession` through a bounded thread
pool. The event loop owns all connection state; evaluations run in worker
threads; results fan back out through asyncio futures. Three mechanics:

* **Coalescing** — concurrent identical requests (same
  ``(db_fingerprint, query, method, backend)`` identity, refined by error
  budget) share one computation: the first becomes the *leader* and
  submits to the pool, the rest await the leader's future and are marked
  ``"coalesced": true`` in their responses. Answers are byte-identical to
  what sequential evaluation would have returned.
* **Admission control** — at most ``max_pending`` leader computations may
  be admitted (running + queued for the pool). Beyond that the server
  sheds load with an immediate ``overloaded`` error instead of queueing
  unboundedly; per-request hard timeouts return ``timeout`` without
  cancelling the shared computation (followers may still be served).
* **Graceful drain** — :meth:`QueryServer.shutdown` stops accepting
  connections, answers every in-flight computation, responds
  ``shutting_down`` to requests arriving during the drain, then closes
  every socket.

Protocol sniffing: a connection whose first line starts with an HTTP verb
is served by the shim (``POST /query``, ``POST /condition``,
``DELETE /condition/<id>``, ``GET /healthz``, ``GET /metrics``); anything
else is treated as newline-delimited JSON.

**Scenarios** (conditioning): ``op: condition`` installs a constraint set
through the :class:`~repro.condition.session.ScenarioManager`; queries
naming a ``scenario`` evaluate ``P(Q | Γ)`` against the installed
compiled circuit, and ``force`` derives a what-if cofactor. In processes
mode the parent registers scenario *specs* only; the compile happens on
the scenario's consistent-hash ring owner, and queries ship the specs so
a respawned worker re-installs transparently.

All shared containers in this module are confined to the event-loop
thread (single-threaded by construction), which is the concurrency
discipline prodb-lint rule PL002 accepts via the ``lockfree`` pragma —
see docs/dev.md.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set

from ..condition.core import InconsistentConstraints
from ..condition.session import (
    ScenarioManager,
    StaleScenarioError,
    UnknownScenarioError,
    scenario_id_of,
)
from ..engine.session import EngineSession
from ..obs import MetricsRegistry, get_registry
from .ladder import MethodLadder
from .protocol import (
    ConditionRequest,
    DropConditionRequest,
    ErrorCode,
    ProtocolError,
    QueryRequest,
    Request,
    decode_request,
    encode,
    error_response,
)

__all__ = ["QueryServer", "ServerConfig", "ServerThread"]

_HTTP_VERBS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")


@dataclass
class ServerConfig:
    """Tunables for one :class:`QueryServer`.

    ``mode`` selects the evaluation backend behind the asyncio front
    door: ``"threads"`` (default) runs the ladder in a bounded thread
    pool over the one shared session; ``"processes"`` publishes the
    database as shared-memory shards and fans out to ``workers`` worker
    *processes* with consistent-hash routing
    (:mod:`repro.server.pool`). Coalescing, admission control, deadlines
    and graceful drain behave identically in both modes, and answers are
    byte-identical.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port; read it back from ``server.port``
    workers: int = 4
    mode: str = "threads"  # "threads" | "processes"
    max_pending: int = 64
    coalesce: bool = True
    default_deadline_s: Optional[float] = None
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    default_epsilon: float = 0.2
    default_delta: float = 0.05
    worker_cache_size: Optional[int] = None  # processes mode; None: parent's size
    scenario_cache_size: int = 32  # compiled conditioned circuits kept (LRU)
    restart_workers: bool = True  # processes mode: respawn crashed workers


@dataclass
class _Inflight:
    """One leader computation and its fan-out future."""

    future: "asyncio.Future[Dict[str, Any]]"
    followers: int = 0
    started: float = field(default_factory=time.perf_counter)


class QueryServer:
    """Serve Boolean queries from one engine session over TCP/HTTP.

    Not thread-safe by design: construct and drive it from one event
    loop (use :class:`ServerThread` to embed in synchronous code).
    """

    def __init__(
        self,
        session: EngineSession,
        config: Optional[ServerConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        ladder: Optional[MethodLadder] = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else ServerConfig()
        self.registry = registry if registry is not None else get_registry()
        self.ladder = (
            ladder
            if ladder is not None
            else MethodLadder(
                session,
                use_cache=self.config.coalesce,
                default_epsilon=self.config.default_epsilon,
                default_delta=self.config.default_delta,
            )
        )
        if self.config.mode not in ("threads", "processes"):
            raise ValueError(
                f"unknown server mode {self.config.mode!r}; "
                "expected 'threads' or 'processes'"
            )
        self.scenarios = ScenarioManager(
            session.pdb,
            maxsize=self.config.scenario_cache_size,
            registry=self.registry,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool: Optional[Any] = None
        self._shards: Optional[Any] = None
        self._inflight: Dict[tuple, _Inflight] = {}
        self._writers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: "Set[asyncio.Task[None]]" = set()
        self._active_requests = 0
        self._draining = False
        self._started = False
        # -- metrics ----------------------------------------------------------
        reg = self.registry
        self._m_requests = reg.counter(
            "server_requests_total", "requests received (all outcomes)"
        )
        self._m_answers = reg.counter(
            "server_answers_total", "successful answers returned"
        )
        self._m_errors = reg.counter(
            "server_errors_total", "error responses returned"
        )
        self._m_coalesced = reg.counter(
            "server_coalesced_total", "requests served by joining an in-flight twin"
        )
        self._m_overloaded = reg.counter(
            "server_overloaded_total", "requests shed by admission control"
        )
        self._m_timeouts = reg.counter(
            "server_timeouts_total", "requests that hit the hard timeout"
        )
        self._m_shutdown = reg.counter(
            "server_shutting_down_total", "requests refused during drain"
        )
        self._m_rung: Dict[str, Any] = {
            rung: reg.counter(
                f"server_rung_{rung}_total", f"answers served by the {rung} rung"
            )
            for rung in ("exact", "bounds", "sampled")
        }
        self._m_inflight = reg.gauge(
            "server_inflight", "admitted leader computations in flight"
        )
        self._m_latency = reg.histogram(
            "server_request_seconds", "request wall time, admission to response"
        )

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.config.mode == "processes":
            # Publish once, spawn workers, verify they all came up before
            # the socket accepts anything.
            from ..relational.shm import publish
            from .pool import WorkerOptions, WorkerPool

            pdb = self.session.pdb
            options = WorkerOptions(
                cache_size=(
                    self.config.worker_cache_size
                    if self.config.worker_cache_size is not None
                    else self.session.cache.maxsize
                ),
                seed=pdb.seed,
                backend=pdb.backend,
                exact_lineage_limit=pdb.exact_lineage_limit,
                mc_epsilon=pdb.mc_epsilon,
                mc_delta=pdb.mc_delta,
                use_cache=self.config.coalesce,
                default_epsilon=self.config.default_epsilon,
                default_delta=self.config.default_delta,
                default_deadline_s=self.config.default_deadline_s,
                scenario_cache_size=self.config.scenario_cache_size,
            )
            self._shards = publish(self.session.tid)
            pool = WorkerPool(
                self._shards.handle,
                self.config.workers,
                options=options,
                registry=self.registry,
                restart=self.config.restart_workers,
            )
            loop = asyncio.get_running_loop()
            try:
                # start() blocks on worker spawn — keep the loop responsive.
                await loop.run_in_executor(None, pool.start)
            except BaseException:
                self._shards.unlink()
                self._shards = None
                raise
            self._pool = pool
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers, thread_name_prefix="prodb-worker"
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain_timeout_s: Optional[float] = None) -> None:
        """Drain gracefully: finish in-flight work, refuse new, close sockets."""
        timeout = (
            drain_timeout_s
            if drain_timeout_s is not None
            else self.config.drain_timeout_s
        )
        self._draining = True
        if self._server is not None:
            self._server.close()
        # In-flight requests run to completion and their responses are
        # flushed; only then are sockets torn down.
        deadline = time.perf_counter() + timeout
        while self._active_requests > 0 and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        # Let connection handlers observe EOF and exit before the loop
        # winds down (a handler cancelled mid-readline logs noisily).
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=1.0)
        if self._server is not None:
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._pool is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._pool.shutdown)
            self._pool = None
        if self._shards is not None:
            self._shards.unlink()
            self._shards = None

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)  # prodb-lint: lockfree -- event-loop confined
        self._writers.add(writer)  # prodb-lint: lockfree -- event-loop confined
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_VERBS):
                self._active_requests += 1  # prodb-lint: lockfree -- event-loop confined
                try:
                    await self._handle_http(first, reader, writer)
                finally:
                    self._active_requests -= 1  # prodb-lint: lockfree -- event-loop confined
                return
            line: bytes = first
            while line:
                text = line.decode("utf-8", errors="replace").strip()
                if text:
                    self._active_requests += 1  # prodb-lint: lockfree -- event-loop confined
                    try:
                        response = await self._handle_request(text)
                        writer.write((encode(response) + "\n").encode())
                        await writer.drain()
                    finally:
                        self._active_requests -= 1  # prodb-lint: lockfree -- event-loop confined
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled a parked read: the connection is dead
            # either way, and finishing cleanly avoids a spurious
            # "exception in callback" log from asyncio.streams on 3.11.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)  # prodb-lint: lockfree -- event-loop confined
            self._writers.discard(writer)  # prodb-lint: lockfree -- event-loop confined
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closing
                pass

    # -- request path ---------------------------------------------------------

    async def _handle_request(self, line: str) -> Dict[str, Any]:
        self._m_requests.inc()
        started = time.perf_counter()
        request_id: Optional[str] = None
        try:
            request = decode_request(line)
            request_id = request.id
            if self._draining:
                self._m_shutdown.inc()
                raise ProtocolError(
                    ErrorCode.SHUTTING_DOWN, "server is draining; retry elsewhere"
                )
            if isinstance(request, ConditionRequest):
                response = await self._admit_condition(request)
            elif isinstance(request, DropConditionRequest):
                response = await self._drop_condition(request)
            else:
                response = await self._admit(request)
        except ProtocolError as error:
            self._m_errors.inc()
            response = error_response(error.code, error.message, request_id)
        except Exception as error:  # noqa: BLE001 - server boundary
            self._m_errors.inc()
            response = error_response(
                ErrorCode.INTERNAL, f"{type(error).__name__}: {error}", request_id
            )
        self._m_latency.observe(time.perf_counter() - started)
        return response

    async def _admit(self, request: QueryRequest) -> Dict[str, Any]:
        key = request.coalesce_key(self.session.tid.fingerprint())
        entry = self._inflight.get(key) if self.config.coalesce else None
        if entry is not None:
            # Follower: share the leader's computation, never a pool slot.
            entry.followers += 1
            self._m_coalesced.inc()
            payload = await self._await_result(entry.future, request)
            response = dict(payload)
            response["coalesced"] = True
            if request.id is not None:
                response["id"] = request.id
            if response.get("ok"):
                self._m_answers.inc()
            return response

        if len(self._inflight) >= self.config.max_pending:
            self._m_overloaded.inc()
            self._m_errors.inc()
            raise ProtocolError(
                ErrorCode.OVERLOADED,
                f"pending computations at the limit ({self.config.max_pending}); "
                "shedding load — retry with backoff",
            )

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = _Inflight(future)  # prodb-lint: lockfree -- event-loop confined
        self._m_inflight.set(len(self._inflight))
        if self._pool is not None:
            try:
                specs = self._scenario_specs(request)
                worker_future = self._pool.submit(request, specs=specs)
            except ProtocolError:
                self._inflight.pop(key, None)  # prodb-lint: lockfree -- event-loop confined
                self._m_inflight.set(len(self._inflight))
                raise
            pool_future: "asyncio.Future[Dict[str, Any]]" = asyncio.wrap_future(
                worker_future, loop=loop
            )
        else:
            assert self._executor is not None, "server not started"
            pool_future = loop.run_in_executor(
                self._executor, self._evaluate, request
            )
        pool_future.add_done_callback(
            lambda done: self._settle(key, future, done)
        )
        payload = await self._await_result(future, request)
        response = dict(payload)
        response["coalesced"] = False
        if request.id is not None:
            response["id"] = request.id
        if response.get("ok"):
            self._m_answers.inc()
            rung = response.get("rung")
            if isinstance(rung, str) and rung in self._m_rung:
                self._m_rung[rung].inc()
        else:
            self._m_errors.inc()
        return response

    def _settle(
        self,
        key: tuple,
        future: "asyncio.Future[Dict[str, Any]]",
        done: "asyncio.Future[Dict[str, Any]]",
    ) -> None:
        # Runs on the event loop (run_in_executor futures complete there).
        self._inflight.pop(key, None)  # prodb-lint: lockfree -- event-loop confined
        self._m_inflight.set(len(self._inflight))
        if future.cancelled():
            return
        error = done.exception()
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(done.result())

    async def _await_result(
        self, future: "asyncio.Future[Dict[str, Any]]", request: QueryRequest
    ) -> Dict[str, Any]:
        timeout = (
            request.timeout_ms / 1e3
            if request.timeout_ms is not None
            else self.config.request_timeout_s
        )
        try:
            # shield: one caller's timeout must not cancel the shared
            # computation other coalesced callers are waiting on.
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self._m_timeouts.inc()
            raise ProtocolError(
                ErrorCode.TIMEOUT,
                f"request exceeded its hard timeout ({timeout:g}s); "
                "the computation keeps running for coalesced peers",
            ) from None

    def _scenario_specs(self, request: QueryRequest) -> Optional[tuple]:
        """Constraint specs to ship with a routed scenario query (processes).

        Workers re-install evicted or crash-lost scenarios from these, so a
        re-routed request after a worker respawn conditions transparently.
        """
        if request.scenario is None:
            return None
        try:
            return self.scenarios.constraints_of(request.scenario).specs()
        except UnknownScenarioError:
            raise ProtocolError(
                ErrorCode.UNKNOWN_SCENARIO,
                f"unknown scenario {request.scenario!r}; install it with "
                "op 'condition' first",
            ) from None

    def _resolve_scenario(self, request: QueryRequest) -> Any:
        """Look up (and possibly derive) the scenario a request names.

        Raised errors carry their own :class:`ProtocolError` codes, so this
        must run *before* the generic ``ValueError -> bad_request`` wrapper
        in :meth:`_evaluate` (the scenario exceptions subclass ValueError).
        """
        if request.scenario is None:
            return None
        try:
            if request.force is not None:
                return self.scenarios.derived(
                    request.scenario, dict(request.force)
                )
            return self.scenarios.resolve(request.scenario)
        except UnknownScenarioError as error:
            raise ProtocolError(
                ErrorCode.UNKNOWN_SCENARIO, str(error)
            ) from None
        except StaleScenarioError as error:
            raise ProtocolError(ErrorCode.STALE_SCENARIO, str(error)) from None
        except InconsistentConstraints as error:
            raise ProtocolError(ErrorCode.UNSATISFIABLE, str(error)) from None

    def _evaluate(self, request: QueryRequest) -> Dict[str, Any]:
        """Worker-thread entry: run the ladder, shape the response."""
        scenario = self._resolve_scenario(request)
        pdb = self.session.pdb
        previous_backend = pdb.backend
        if request.backend is not None:
            pdb.backend = request.backend
        try:
            deadline_s = (
                request.deadline_ms / 1e3
                if request.deadline_ms is not None
                else self.config.default_deadline_s
            )
            answer = self.ladder.evaluate(
                request.query,
                method=request.method,
                deadline_s=deadline_s,
                epsilon=request.epsilon,
                delta=request.delta,
                scenario=scenario,
                scenario_id=request.scenario,
            )
        except (ValueError, NotImplementedError) as error:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, f"{type(error).__name__}: {error}"
            ) from error
        finally:
            pdb.backend = previous_backend
        payload = answer.to_payload()
        payload["elapsed_ms"] = round(answer.elapsed_s * 1e3, 3)
        return payload

    # -- scenario management --------------------------------------------------

    async def _admit_condition(self, request: ConditionRequest) -> Dict[str, Any]:
        """Install a constraint set; returns its content-addressed id.

        Threads mode compiles in the executor (compilation can be heavy);
        processes mode registers the specs parent-side and routes the
        compile to the scenario's ring owner.
        """
        from ..condition.core import ConstraintSet

        loop = asyncio.get_running_loop()
        try:
            gamma = ConstraintSet.parse(request.constraints)
        except ValueError as error:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, f"bad constraint: {error}"
            ) from error
        if self._pool is not None:
            sid = scenario_id_of(self.session.tid.fingerprint(), gamma)
            worker_future = self._pool.submit_condition(sid, gamma.specs())
            payload = await asyncio.wrap_future(worker_future, loop=loop)
            if not payload.get("ok"):
                self._m_errors.inc()
                if request.id is not None:
                    payload = dict(payload)
                    payload["id"] = request.id
                return payload
            self.scenarios.register(gamma)
        else:
            try:
                sid, scenario = await loop.run_in_executor(
                    self._executor, self.scenarios.install, gamma
                )
            except InconsistentConstraints as error:
                raise ProtocolError(
                    ErrorCode.UNSATISFIABLE, str(error)
                ) from None
            except (ValueError, NotImplementedError) as error:
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST, f"{type(error).__name__}: {error}"
                ) from error
            payload = {
                "ok": True,
                "scenario": sid,
                "gamma_probability": scenario.gamma_probability,
                "constraints": list(gamma.specs()),
            }
        response = dict(payload)
        if request.id is not None:
            response["id"] = request.id
        self._m_answers.inc()
        return response

    async def _drop_condition(self, request: DropConditionRequest) -> Dict[str, Any]:
        """Uninstall a scenario everywhere (idempotent)."""
        dropped = self.scenarios.drop(request.scenario)
        if self._pool is not None:
            self._pool.broadcast_drop(request.scenario)
        response: Dict[str, Any] = {
            "ok": True,
            "scenario": request.scenario,
            "dropped": dropped,
        }
        if request.id is not None:
            response["id"] = request.id
        self._m_answers.inc()
        return response

    # -- HTTP shim ------------------------------------------------------------

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._http_reply(writer, 400, "text/plain", "bad request line\n")
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if method == "GET" and target == "/healthz":
            status = "draining" if self._draining else "ok"
            payload: Dict[str, Any] = {
                "status": status,
                "inflight": len(self._inflight),
                "scenarios": self.scenarios.scenario_count(),
            }
            code = 200
            if self._pool is not None:
                self._pool.refresh_metrics()
                workers = self._pool.workers_info()
                payload["mode"] = "processes"
                payload["workers"] = workers
                if any(not worker["alive"] for worker in workers):
                    payload["status"] = "degraded"
                    code = 503
            body = json.dumps(payload)
            await self._http_reply(writer, code, "application/json", body + "\n")
        elif method == "GET" and target == "/metrics":
            if self._pool is not None:
                self._pool.refresh_metrics()
            self.registry.gauge(
                "engine_cache_entries", "answers in the session LRU cache"
            ).set(float(len(self.session.cache)))
            self.scenarios.publish_metrics()
            await self._http_reply(
                writer, 200, "text/plain; version=0.0.4", self.registry.render_text()
            )
        elif method == "POST" and target == "/query":
            body_bytes = (
                await reader.readexactly(content_length) if content_length else b""
            )
            response = await self._handle_request(
                body_bytes.decode("utf-8", errors="replace")
            )
            code = 200 if response.get("ok") else _http_status(response)
            await self._http_reply(
                writer, code, "application/json", encode(response) + "\n"
            )
        elif method == "POST" and target == "/condition":
            body_bytes = (
                await reader.readexactly(content_length) if content_length else b""
            )
            # Same JSON as the NDJSON op, with "op" implied by the route.
            line = _with_op(
                body_bytes.decode("utf-8", errors="replace"), "condition"
            )
            response = await self._handle_request(line)
            code = 200 if response.get("ok") else _http_status(response)
            await self._http_reply(
                writer, code, "application/json", encode(response) + "\n"
            )
        elif method == "DELETE" and target.startswith("/condition/"):
            scenario = target[len("/condition/") :]
            line = encode({"op": "drop_condition", "scenario": scenario})
            response = await self._handle_request(line)
            code = 200 if response.get("ok") else _http_status(response)
            await self._http_reply(
                writer, code, "application/json", encode(response) + "\n"
            )
        else:
            await self._http_reply(
                writer,
                404,
                "text/plain",
                "prodb endpoints: POST /query, POST /condition, "
                "DELETE /condition/<id>, GET /healthz, GET /metrics\n",
            )

    async def _http_reply(
        self, writer: asyncio.StreamWriter, status: int, ctype: str, body: str
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            409: "Conflict",
            503: "Unavailable",
        }
        payload = body.encode()
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Status')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


def _http_status(response: Dict[str, Any]) -> int:
    code = response.get("error")
    if code in (ErrorCode.OVERLOADED.value, ErrorCode.SHUTTING_DOWN.value):
        return 503
    if code in (ErrorCode.BAD_REQUEST.value, ErrorCode.UNSATISFIABLE.value):
        return 400
    if code == ErrorCode.UNKNOWN_SCENARIO.value:
        return 404
    if code == ErrorCode.STALE_SCENARIO.value:
        return 409
    return 500


def _with_op(body: str, op: str) -> str:
    """Inject the op a REST route implies into a JSON request body."""
    try:
        payload = json.loads(body) if body.strip() else {}
    except json.JSONDecodeError:
        return body  # let decode_request produce the uniform error
    if not isinstance(payload, dict):
        return body
    payload.setdefault("op", op)
    return encode(payload)


class ServerThread:
    """Run a :class:`QueryServer` on a background event-loop thread.

    The synchronous embedding used by tests, benchmarks and the smoke
    script::

        with ServerThread(session) as server:
            with ServerClient("127.0.0.1", server.port) as client:
                client.query("R(x), S(x,y)")

    ``stop()`` (or leaving the ``with`` block) performs the graceful
    drain before joining the thread.
    """

    def __init__(
        self,
        session: EngineSession,
        config: Optional[ServerConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        ladder: Optional[MethodLadder] = None,
    ) -> None:
        import threading

        self._config = config if config is not None else ServerConfig()
        self._loop = asyncio.new_event_loop()
        self.server = QueryServer(
            session, self._config, registry=registry, ladder=ladder
        )
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="prodb-server", daemon=True
        )
        self._stopped = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        self._loop.run_forever()
        # Drain scheduled callbacks after run_forever stops.
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server thread did not come up within 10s")
        return self

    @property
    def host(self) -> str:
        return self._config.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, drain_timeout_s: Optional[float] = None) -> None:
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout_s), self._loop
        )
        future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
