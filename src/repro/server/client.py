"""A small synchronous client for the NDJSON protocol.

Used by tests, the benchmark load generator and the CI smoke script; it
is also a reference implementation for anyone speaking the protocol from
another language: open a TCP connection, write one JSON object per line,
read one JSON object per line back, in order.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

__all__ = ["ServerClient", "http_get", "http_request"]


class ServerClient:
    """One persistent NDJSON connection to a :class:`~repro.server.QueryServer`.

    Not thread-safe; use one client per thread (responses come back in
    request order on the shared socket).
    """

    def __init__(self, host: str, port: int, timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request object, return the decoded response."""
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        self._sock.sendall(line.encode())
        response = self._reader.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        decoded = json.loads(response)
        if not isinstance(decoded, dict):
            raise ValueError(f"malformed response: {response!r}")
        return decoded

    def query(
        self,
        query: str,
        *,
        method: str = "ladder",
        backend: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        timeout_ms: Optional[float] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        id: Optional[str] = None,
        scenario: Optional[str] = None,
        force: Optional[Mapping[str, bool]] = None,
    ) -> Dict[str, Any]:
        """Evaluate one Boolean query; keyword args mirror the protocol.

        Pass ``scenario`` (an id returned by :meth:`condition`) to answer
        ``P(Q | Γ)`` through the installed scenario, and ``force`` (fact
        spec → bool) for a what-if derivation of it.
        """
        payload: Dict[str, Any] = {"query": query, "method": method}
        for name, value in (
            ("backend", backend),
            ("deadline_ms", deadline_ms),
            ("timeout_ms", timeout_ms),
            ("epsilon", epsilon),
            ("delta", delta),
            ("id", id),
            ("scenario", scenario),
            ("force", dict(force) if force is not None else None),
        ):
            if value is not None:
                payload[name] = value
        return self.request(payload)

    def condition(
        self,
        constraints: Union[str, Iterable[str]],
        *,
        id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Install a constraint set; the response carries its scenario id.

        *constraints* is a list of spec strings (``"+R(1)"``, ``"-S(2,3)"``,
        ``"!Q"``, or a required Boolean query) or one ``;``-separated
        string. Idempotent: same constraints + same database → same id.
        """
        specs = (
            constraints if isinstance(constraints, str) else list(constraints)
        )
        payload: Dict[str, Any] = {"op": "condition", "constraints": specs}
        if id is not None:
            payload["id"] = id
        return self.request(payload)

    def drop_condition(
        self, scenario: str, *, id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Uninstall a scenario everywhere (idempotent)."""
        payload: Dict[str, Any] = {"op": "drop_condition", "scenario": scenario}
        if id is not None:
            payload["id"] = id
        return self.request(payload)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout_s: float = 10.0,
) -> Tuple[int, str]:
    """One HTTP-shim request; returns ``(status, body)`` without raising.

    Covers the REST face of the protocol: ``POST /condition``,
    ``DELETE /condition/<id>``, ``POST /query``, plus the GET endpoints.
    """
    payload = (
        json.dumps(body, separators=(",", ":")).encode() if body is not None else b""
    )
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(head.encode("latin-1") + payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", errors="replace")
    headers, _, reply = raw.partition("\r\n\r\n")
    try:
        status = int(headers.split(" ", 2)[1])
    except (IndexError, ValueError):
        raise ConnectionError(f"{method} {path}: malformed reply {headers!r}") from None
    return status, reply


def http_get(host: str, port: int, path: str, timeout_s: float = 10.0) -> str:
    """Fetch one HTTP-shim endpoint (``/healthz``, ``/metrics``); return the body."""
    status, body = http_request(host, port, "GET", path, timeout_s=timeout_s)
    if status != 200:
        raise ConnectionError(f"GET {path} failed: HTTP {status}")
    return body
