"""A small synchronous client for the NDJSON protocol.

Used by tests, the benchmark load generator and the CI smoke script; it
is also a reference implementation for anyone speaking the protocol from
another language: open a TCP connection, write one JSON object per line,
read one JSON object per line back, in order.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

__all__ = ["ServerClient", "http_get"]


class ServerClient:
    """One persistent NDJSON connection to a :class:`~repro.server.QueryServer`.

    Not thread-safe; use one client per thread (responses come back in
    request order on the shared socket).
    """

    def __init__(self, host: str, port: int, timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request object, return the decoded response."""
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        self._sock.sendall(line.encode())
        response = self._reader.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        decoded = json.loads(response)
        if not isinstance(decoded, dict):
            raise ValueError(f"malformed response: {response!r}")
        return decoded

    def query(
        self,
        query: str,
        *,
        method: str = "ladder",
        backend: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        timeout_ms: Optional[float] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Evaluate one Boolean query; keyword args mirror the protocol."""
        payload: Dict[str, Any] = {"query": query, "method": method}
        for name, value in (
            ("backend", backend),
            ("deadline_ms", deadline_ms),
            ("timeout_ms", timeout_ms),
            ("epsilon", epsilon),
            ("delta", delta),
            ("id", id),
        ):
            if value is not None:
                payload[name] = value
        return self.request(payload)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def http_get(host: str, port: int, path: str, timeout_s: float = 10.0) -> str:
    """Fetch one HTTP-shim endpoint (``/healthz``, ``/metrics``); return the body."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", errors="replace")
    head, _, body = raw.partition("\r\n\r\n")
    if not head.startswith("HTTP/1.1 200"):
        status = head.splitlines()[0] if head else "<empty reply>"
        raise ConnectionError(f"GET {path} failed: {status}")
    return body
