"""Deadline-driven degradation: exact → dissociation bounds → sampling.

A serving layer cannot afford the library's default behaviour — compute
the best answer however long it takes. The :class:`MethodLadder` instead
walks a fixed ladder of rungs, best guarantee first, and takes the first
rung whose *predicted* cost fits the request's remaining deadline:

1. ``exact`` — lifted inference when the query is liftable (polynomial),
   else grounded DPLL when the lineage is small enough. Guarantee: the
   exact probability.
2. ``bounds`` — the dissociation sandwich of Theorem 6.1
   (:mod:`repro.plans.bounds`): every minimal dissociation's safe plan is
   an upper bound on D and a lower bound on the rescaled D₁. Guarantee:
   ``lower ≤ P ≤ upper``; the reported point estimate is the midpoint, so
   its absolute error is at most ``(upper − lower) / 2``.
3. ``sampled`` — seeded Karp–Luby over the DNF lineage with the request's
   error budget (relative ε w.p. ≥ 1 − δ); if the DNF is too large to
   materialize, seeded naive Monte Carlo (additive ε). This rung always
   answers — it is the floor of the ladder.

**Conditioned evaluation.** When a request names an installed scenario
(:mod:`repro.condition`), the ladder walks a two-rung conditioned
variant instead: ``exact`` counts ``P(Q ∧ Γ) / P(Γ)`` on the scenario's
compiled circuit (gated on the grounded lineage size, like grounded
DPLL), else ``sampled`` runs Karp–Luby with Γ-rejection
(:func:`repro.condition.core.conditioned_karp_luby`). The dissociation
``bounds`` rung does not apply — the sandwich bounds ``P(Q)``, not the
conditional. The predictor keys conditioned costs per
``(query, scenario)``, so per-scenario latencies are learned separately.

**Predicted vs actual overrun.** Rung costs are predicted from an EWMA of
observed latencies per ``(query, rung)`` (:class:`CostPredictor`), seeded
by structural heuristics (liftability, lineage variable count vs the
exact limit). Python cannot preempt a running exact computation, so an
*actual* overrun — a rung that finishes after its deadline — still returns
its (correct, strictly better) answer, flagged ``deadline_exceeded``; the
observed cost feeds the predictor, so the next identical request degrades
up front. This is the standard "first request pays, the fleet learns"
behaviour of latency-budgeted serving.

Reproducibility: both sampling estimators draw from
``ProbabilisticDatabase.rng()``, which derives from the session's
``--seed``; identical servers started with the same seed return identical
degraded answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..booleans.forms import FormSizeExceeded, to_dnf
from ..condition.core import ConditionedAnswer, ConditionedScenario
from ..core.pdb import Method, ProbabilisticDatabase, QueryAnswer
from ..engine.cache import query_fingerprint
from ..engine.session import EngineSession
from ..lifted.errors import NonLiftableError, UnsupportedQueryError
from ..logic.cq import ConjunctiveQuery
from ..sanitize import RANK_SERVER, RankedLock, check_bounds
from ..wmc.karp_luby import karp_luby
from ..wmc.sampling import monte_carlo_wmc

__all__ = ["CostPredictor", "MethodLadder", "RungAnswer"]

#: Ladder rung names, in degradation order.
RUNGS = ("exact", "bounds", "sampled")

#: EWMA smoothing factor for observed rung latencies.
_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class RungAnswer:
    """One served answer: the probability plus the rung and its guarantee."""

    rung: str
    probability: float
    guarantee: str
    exact: bool
    method: str
    detail: str = ""
    lower: Optional[float] = None
    upper: Optional[float] = None
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    samples: Optional[int] = None
    elapsed_s: float = 0.0
    deadline_exceeded: bool = False
    cache_hit: bool = False
    scenario: Optional[str] = None
    gamma_probability: Optional[float] = None

    def to_payload(self) -> Dict[str, Any]:
        """The response fields this answer contributes to the protocol."""
        out: Dict[str, Any] = {
            "ok": True,
            "probability": self.probability,
            "rung": self.rung,
            "guarantee": self.guarantee,
            "exact": self.exact,
            "method": self.method,
            "detail": self.detail,
        }
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.gamma_probability is not None:
            out["gamma_probability"] = self.gamma_probability
        if self.lower is not None and self.upper is not None:
            out["bounds"] = {"lower": self.lower, "upper": self.upper}
        if self.epsilon is not None:
            out["epsilon"] = self.epsilon
        if self.delta is not None:
            out["delta"] = self.delta
        if self.samples is not None:
            out["samples"] = self.samples
        if self.deadline_exceeded:
            out["deadline_exceeded"] = True
        return out


class CostPredictor:
    """EWMA of observed per-``(query, rung)`` latencies, plus applicability.

    The lock (rank :data:`~repro.sanitize.RANK_SERVER`) is held only for
    dictionary operations, never across an evaluation.
    """

    def __init__(self) -> None:
        self._lock = RankedLock(RANK_SERVER, "server.predictor")
        self._seconds: Dict[Tuple[str, str], float] = {}
        self._inapplicable: Dict[Tuple[str, str], bool] = {}

    def observe(self, qfp: str, rung: str, seconds: float) -> None:
        key = (qfp, rung)
        with self._lock:
            previous = self._seconds.get(key)
            if previous is None:
                self._seconds[key] = seconds
            else:
                self._seconds[key] = (
                    _EWMA_ALPHA * seconds + (1.0 - _EWMA_ALPHA) * previous
                )

    def predict(self, qfp: str, rung: str) -> Optional[float]:
        with self._lock:
            return self._seconds.get((qfp, rung))

    def mark_inapplicable(self, qfp: str, rung: str) -> None:
        with self._lock:
            self._inapplicable[(qfp, rung)] = True

    def known_inapplicable(self, qfp: str, rung: str) -> bool:
        with self._lock:
            return self._inapplicable.get((qfp, rung), False)


class MethodLadder:
    """Evaluate Boolean queries against a deadline, degrading gracefully.

    Parameters
    ----------
    session:
        The shared :class:`~repro.engine.session.EngineSession`. Its seed
        governs every sampling rung; its cache memoizes exact answers and
        (keyed by error budget and seed) degraded ones.
    use_cache:
        When ``False``, every evaluation is computed from scratch through
        the bare façade — the "naive server" baseline that the coalescing
        benchmark compares against.
    default_epsilon / default_delta:
        The error budget for the sampled rung when the request names none.
    """

    def __init__(
        self,
        session: EngineSession,
        *,
        use_cache: bool = True,
        default_epsilon: float = 0.2,
        default_delta: float = 0.05,
    ) -> None:
        self.session = session
        self.use_cache = use_cache
        self.default_epsilon = default_epsilon
        self.default_delta = default_delta
        self.predictor = CostPredictor()

    @property
    def pdb(self) -> ProbabilisticDatabase:
        return self.session.pdb

    # -- public entry ---------------------------------------------------------

    def evaluate(
        self,
        query: str,
        *,
        method: str = "ladder",
        deadline_s: Optional[float] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        scenario: Optional[ConditionedScenario] = None,
        scenario_id: Optional[str] = None,
    ) -> RungAnswer:
        """Answer *query*, naming the rung and the guarantee it carries.

        ``method="ladder"`` walks the degradation ladder under
        *deadline_s*; any engine route name evaluates that route directly
        (still reporting rung/guarantee uniformly). With *scenario* the
        answer is ``P(Q | Γ)`` through the conditioned rungs instead.
        """
        start = time.perf_counter()
        eps = epsilon if epsilon is not None else self.default_epsilon
        dlt = delta if delta is not None else self.default_delta
        if scenario is not None:
            answer = self._conditioned(
                query, scenario, scenario_id, start, deadline_s, eps, dlt
            )
            return self._finish(answer, start, deadline_s)
        if method != "ladder":
            answer = self._direct(query, Method(method))
            return self._finish(answer, start, deadline_s)
        qfp = query_fingerprint(query)

        exact = self._try_exact(query, qfp, start, deadline_s)
        if exact is not None:
            return self._finish(exact, start, deadline_s)
        bounded = self._try_bounds(query, qfp, start, deadline_s)
        if bounded is not None:
            return self._finish(bounded, start, deadline_s)
        sampled = self._sampled(query, qfp, eps, dlt)
        return self._finish(sampled, start, deadline_s)

    # -- plumbing -------------------------------------------------------------

    def _finish(
        self, answer: RungAnswer, start: float, deadline_s: Optional[float]
    ) -> RungAnswer:
        elapsed = time.perf_counter() - start
        exceeded = deadline_s is not None and elapsed > deadline_s
        return replace(answer, elapsed_s=elapsed, deadline_exceeded=exceeded)

    def _remaining(self, start: float, deadline_s: Optional[float]) -> Optional[float]:
        if deadline_s is None:
            return None
        return deadline_s - (time.perf_counter() - start)

    def _fits(self, predicted: Optional[float], remaining: Optional[float]) -> bool:
        """Whether a rung with *predicted* cost fits the *remaining* budget."""
        if remaining is None:
            return True
        if remaining <= 0.0:
            return False
        return predicted is None or predicted <= remaining

    def _query_answer(self, query: str, method: Method) -> QueryAnswer:
        if self.use_cache:
            return self.session.query(query, method)
        return self.pdb.probability(query, method)

    def _direct(self, query: str, method: Method) -> RungAnswer:
        answer = self._query_answer(query, method)
        if answer.exact:
            rung, guarantee = "exact", "exact probability (no approximation)"
        elif answer.method is Method.KARP_LUBY:
            rung = "sampled"
            guarantee = (
                f"relative error ≤ {self.pdb.mc_epsilon} with probability "
                f"≥ {1 - self.pdb.mc_delta} (Karp–Luby FPRAS, seeded)"
            )
        else:
            rung = "sampled"
            guarantee = (
                f"additive error ≤ {self.pdb.mc_epsilon} with probability "
                f"≥ {1 - self.pdb.mc_delta} (Monte Carlo, seeded)"
            )
        return RungAnswer(
            rung=rung,
            probability=answer.probability,
            guarantee=guarantee,
            exact=answer.exact,
            method=answer.method.value,
            detail=answer.detail,
            cache_hit=bool(answer.stats and answer.stats.cache_hit),
        )

    # -- conditioned rungs ----------------------------------------------------

    def _conditioned(
        self,
        query: str,
        scenario: ConditionedScenario,
        scenario_id: Optional[str],
        start: float,
        deadline_s: Optional[float],
        epsilon: float,
        delta: float,
    ) -> RungAnswer:
        """``P(Q | Γ)``: exact on the conditioned circuit, else Γ-rejection KL.

        Answers are cached under the scenario's content address (database
        fingerprint, Γ fingerprint, what-if evidence), so cache entries
        are invalidated by construction exactly like unconditioned ones.
        """
        qfp = query_fingerprint(query)
        skey = "|".join(
            (
                scenario.db_fingerprint,
                scenario.constraints.fingerprint(),
                scenario.forced_fingerprint(),
            )
        )
        pfp = f"{qfp}|{skey}"  # predictor key: costs are per (query, scenario)
        exact_key = ("ladder", skey, qfp, "cond-exact")
        if self.use_cache:
            cached = self.session.cache.get(exact_key)
            if cached is not None:
                assert isinstance(cached, RungAnswer)
                return replace(cached, cache_hit=True)
        # Exact: gate on the grounded lineage size like the DPLL rung (Γ
        # itself already counted at install; the gate bounds Q's side).
        fits_exact = (
            scenario.grounded_size(query) <= self.pdb.exact_lineage_limit
            and self._fits(
                self.predictor.predict(pfp, "cond-exact"),
                self._remaining(start, deadline_s),
            )
        )
        if fits_exact:
            attempt = time.perf_counter()
            answer = self._conditioned_rung(scenario.posterior(query), scenario_id)
            self.predictor.observe(pfp, "cond-exact", time.perf_counter() - attempt)
            if self.use_cache:
                self.session.cache.put(exact_key, answer)
            return answer
        sampled_key = (
            "ladder", skey, qfp, "cond-sampled", epsilon, delta, self.pdb.seed,
        )
        if self.use_cache:
            cached = self.session.cache.get(sampled_key)
            if cached is not None:
                assert isinstance(cached, RungAnswer)
                return replace(cached, cache_hit=True)
        attempt = time.perf_counter()
        try:
            conditioned = scenario.sample_posterior(
                query, epsilon=epsilon, delta=delta, rng=self.pdb.rng()
            )
        except FormSizeExceeded:
            # Floor: the DNF is too large to sample over, so pay for the
            # exact count however long it takes (flagged by _finish when
            # it overruns; the predictor learns the observed cost).
            answer = self._conditioned_rung(scenario.posterior(query), scenario_id)
            self.predictor.observe(pfp, "cond-exact", time.perf_counter() - attempt)
            if self.use_cache:
                self.session.cache.put(exact_key, answer)
            return answer
        answer = self._conditioned_rung(conditioned, scenario_id)
        self.predictor.observe(pfp, "cond-sampled", time.perf_counter() - attempt)
        if self.use_cache:
            self.session.cache.put(sampled_key, answer)
        return answer

    def _conditioned_rung(
        self, answer: ConditionedAnswer, scenario_id: Optional[str]
    ) -> RungAnswer:
        return RungAnswer(
            rung="exact" if answer.exact else "sampled",
            probability=answer.probability,
            guarantee=answer.guarantee,
            exact=answer.exact,
            method=answer.method,
            detail=answer.detail,
            epsilon=answer.epsilon,
            delta=answer.delta,
            samples=answer.samples,
            scenario=scenario_id,
            gamma_probability=answer.gamma_probability,
        )

    # -- rung 1: exact --------------------------------------------------------

    def _try_exact(
        self, query: str, qfp: str, start: float, deadline_s: Optional[float]
    ) -> Optional[RungAnswer]:
        # Lifted: polynomial when applicable, so attempt it unless history
        # says this query is not liftable or its observed cost overruns.
        if not self.predictor.known_inapplicable(qfp, "lifted"):
            remaining = self._remaining(start, deadline_s)
            if self._fits(self.predictor.predict(qfp, "lifted"), remaining):
                attempt = time.perf_counter()
                try:
                    answer = self._query_answer(query, Method.LIFTED)
                except (NonLiftableError, UnsupportedQueryError):
                    self.predictor.mark_inapplicable(qfp, "lifted")
                else:
                    self.predictor.observe(
                        qfp, "lifted", time.perf_counter() - attempt
                    )
                    return self._exact_answer(answer)
        # Grounded DPLL: exponential worst case; gate on the lineage size
        # (predicted) and on observed history (actual overruns learned).
        lineage = self.session.lineage(query) if self.use_cache else None
        if lineage is None:
            parsed = self.pdb.parse_query(query)
            lineage = self.pdb._lineage(parsed)
        variable_count = int(getattr(lineage, "variable_count", 0))
        if variable_count > self.pdb.exact_lineage_limit:
            return None  # predicted overrun: lineage too large for exact
        remaining = self._remaining(start, deadline_s)
        if not self._fits(self.predictor.predict(qfp, "dpll"), remaining):
            return None
        attempt = time.perf_counter()
        answer = self._query_answer(query, Method.DPLL)
        self.predictor.observe(qfp, "dpll", time.perf_counter() - attempt)
        return self._exact_answer(answer)

    def _exact_answer(self, answer: QueryAnswer) -> RungAnswer:
        return RungAnswer(
            rung="exact",
            probability=answer.probability,
            guarantee="exact probability (no approximation)",
            exact=True,
            method=answer.method.value,
            detail=answer.detail,
            cache_hit=bool(answer.stats and answer.stats.cache_hit),
        )

    # -- rung 2: dissociation bounds ------------------------------------------

    def _try_bounds(
        self, query: str, qfp: str, start: float, deadline_s: Optional[float]
    ) -> Optional[RungAnswer]:
        if self.predictor.known_inapplicable(qfp, "bounds"):
            return None
        remaining = self._remaining(start, deadline_s)
        predicted = self.predictor.predict(qfp, "bounds")
        if remaining is not None and not self._fits(predicted, remaining):
            return None
        parsed = self.pdb.parse_query(query)
        if not isinstance(parsed, ConjunctiveQuery) or parsed.has_self_joins():
            self.predictor.mark_inapplicable(qfp, "bounds")
            return None
        cache_key = (
            "ladder",
            self.session.tid.fingerprint(),
            qfp,
            "bounds",
            self.pdb.backend,
        )
        if self.use_cache:
            cached = self.session.cache.get(cache_key)
            if cached is not None:
                assert isinstance(cached, RungAnswer)
                return replace(cached, cache_hit=True)
        from ..plans.bounds import extensional_bounds

        attempt = time.perf_counter()
        try:
            result = extensional_bounds(parsed, self.pdb.tid)
        except (ValueError, RuntimeError):
            self.predictor.mark_inapplicable(qfp, "bounds")
            return None
        self.predictor.observe(qfp, "bounds", time.perf_counter() - attempt)
        check_bounds(result.lower, result.upper, context="ladder bounds rung")
        midpoint = 0.5 * (result.lower + result.upper)
        answer = RungAnswer(
            rung="bounds",
            probability=midpoint,
            guarantee=(
                f"{result.lower:.6g} ≤ P ≤ {result.upper:.6g} "
                "(Theorem 6.1 dissociation sandwich; midpoint reported, "
                f"absolute error ≤ {result.width / 2:.6g})"
            ),
            exact=False,
            method="dissociation-bounds",
            detail=(
                f"min over {result.plan_count} minimal dissociation plans "
                "(upper on D, lower on rescaled D₁)"
            ),
            lower=result.lower,
            upper=result.upper,
        )
        if self.use_cache:
            self.session.cache.put(cache_key, answer)
        return answer

    # -- rung 3: seeded sampling ----------------------------------------------

    def _sampled(
        self, query: str, qfp: str, epsilon: float, delta: float
    ) -> RungAnswer:
        cache_key = (
            "ladder",
            self.session.tid.fingerprint(),
            qfp,
            "sampled",
            epsilon,
            delta,
            self.pdb.seed,
        )
        if self.use_cache:
            cached = self.session.cache.get(cache_key)
            if cached is not None:
                assert isinstance(cached, RungAnswer)
                return replace(cached, cache_hit=True)
        lineage = self.session.lineage(query) if self.use_cache else None
        if lineage is None:
            parsed = self.pdb.parse_query(query)
            lineage = self.pdb._lineage(parsed)
        attempt = time.perf_counter()
        try:
            clauses = to_dnf(lineage.expr)  # type: ignore[attr-defined]
        except FormSizeExceeded:
            estimate = monte_carlo_wmc(
                lineage.expr,  # type: ignore[attr-defined]
                lineage.probabilities(),  # type: ignore[attr-defined]
                epsilon=epsilon,
                delta=delta,
                rng=self.pdb.rng(),
            )
            answer = RungAnswer(
                rung="sampled",
                probability=estimate.estimate,
                guarantee=(
                    f"additive error ≤ {epsilon} with probability "
                    f"≥ {1 - delta} (naive Monte Carlo, seeded)"
                ),
                exact=False,
                method=Method.MONTE_CARLO.value,
                detail=f"{estimate.samples} seeded samples (DNF too large)",
                epsilon=epsilon,
                delta=delta,
                samples=estimate.samples,
            )
        else:
            estimate_kl = karp_luby(
                clauses,
                lineage.probabilities(),  # type: ignore[attr-defined]
                epsilon=epsilon,
                delta=delta,
                rng=self.pdb.rng(),
            )
            answer = RungAnswer(
                rung="sampled",
                probability=estimate_kl.estimate,
                guarantee=(
                    f"relative error ≤ {epsilon} with probability "
                    f"≥ {1 - delta} (Karp–Luby FPRAS, seeded)"
                ),
                exact=False,
                method=Method.KARP_LUBY.value,
                detail=f"{estimate_kl.samples} seeded union-space samples",
                epsilon=epsilon,
                delta=delta,
                samples=estimate_kl.samples,
            )
        self.predictor.observe(qfp, "sampled", time.perf_counter() - attempt)
        if self.use_cache:
            self.session.cache.put(cache_key, answer)
        return answer
