"""prodb — a probabilistic database engine.

A from-scratch reproduction of Dan Suciu, *Probabilistic Databases for All*
(PODS 2020): tuple-independent databases, lifted inference with
inclusion/exclusion, safe and unsafe extensional plans with guaranteed
bounds, grounded inference via DPLL / knowledge compilation, MLN-style
correlations through constraints, and symmetric-database FO² model counting.

Quickstart::

    from repro import ProbabilisticDatabase

    pdb = ProbabilisticDatabase()
    pdb.add_fact("R", ("a1",), 0.5)
    pdb.add_fact("S", ("a1", "b1"), 0.7)
    answer = pdb.probability("R(x), S(x,y)")
    print(answer.probability, answer.method)
"""

from .core.pdb import Method, ProbabilisticDatabase, QueryAnswer
from .core.tid import TupleIndependentDatabase
from .engine.session import EngineSession
from .lifted.engine import LiftedEngine, lifted_probability
from .lifted.errors import NonLiftableError, UnsupportedQueryError
from .lifted.safety import Complexity, decide_safety
from .logic.parser import parse, parse_sentence
from .logic.cq import parse_cq, parse_ucq
from .symmetric.symmetric_db import SymmetricDatabase
from .symmetric.evaluate import symmetric_probability

__version__ = "1.0.0"

__all__ = [
    "Method",
    "ProbabilisticDatabase",
    "QueryAnswer",
    "TupleIndependentDatabase",
    "EngineSession",
    "LiftedEngine",
    "lifted_probability",
    "NonLiftableError",
    "UnsupportedQueryError",
    "Complexity",
    "decide_safety",
    "parse",
    "parse_sentence",
    "parse_cq",
    "parse_ucq",
    "SymmetricDatabase",
    "symmetric_probability",
    "__version__",
]
