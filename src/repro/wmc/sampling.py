"""Naive Monte Carlo estimation of P(F) and of query probabilities.

The simplest fallback route for #P-hard queries: sample worlds from the TID,
check the event, average. Comes with the standard additive Hoeffding bound:
``n ≥ ln(2/δ) / (2ε²)`` samples give |estimate − p| ≤ ε with probability
1 − δ.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..booleans.expr import BExpr, evaluate


@dataclass(frozen=True)
class MonteCarloEstimate:
    """An estimate with its sample count and additive-error certificate."""

    estimate: float
    samples: int
    epsilon: float
    delta: float


def hoeffding_samples(epsilon: float, delta: float) -> int:
    """Samples needed for an (ε, δ) additive guarantee."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def monte_carlo_wmc(
    expr: BExpr,
    probabilities: Mapping[int, float],
    epsilon: float = 0.05,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
    samples: Optional[int] = None,
) -> MonteCarloEstimate:
    """Estimate P(expr) by sampling assignments variable-by-variable.

    The default RNG is seeded so runs are reproducible; pass ``rng`` for an
    independent stream.
    """
    rng = rng if rng is not None else random.Random(0)
    n = samples if samples is not None else hoeffding_samples(epsilon, delta)
    variables = sorted(expr.variables())
    hits = 0
    for _ in range(n):
        assignment = {v: rng.random() < probabilities[v] for v in variables}
        if evaluate(expr, assignment):
            hits += 1
    return MonteCarloEstimate(hits / n if n else 0.0, n, epsilon, delta)


def monte_carlo_event(
    sample_world: Callable[[random.Random], object],
    event: Callable[[object], bool],
    epsilon: float = 0.05,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
    samples: Optional[int] = None,
) -> MonteCarloEstimate:
    """Estimate P(event) for an arbitrary world sampler (e.g. a TID).

    The default RNG is seeded so runs are reproducible; pass ``rng`` for an
    independent stream.
    """
    rng = rng if rng is not None else random.Random(0)
    n = samples if samples is not None else hoeffding_samples(epsilon, delta)
    hits = 0
    for _ in range(n):
        if event(sample_world(rng)):
            hits += 1
    return MonteCarloEstimate(hits / n if n else 0.0, n, epsilon, delta)
