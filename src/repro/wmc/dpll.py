"""A DPLL-style exact weighted model counter with caching and components.

Implements exactly the three primitives of Sec. 7:

* rule (11), the Shannon expansion
  ``p(F) = p(F[X:=0])·(1-p(X)) + p(F[X:=1])·p(X)``;
* rule (12), independent components
  ``p(F₁ ∧ F₂) = p(F₁)·p(F₂)`` when the conjuncts share no variables;
* a cache of previously computed probabilities.

Following Huang and Darwiche, the *trace* of the search is materialized as a
decision-DNNF in a :class:`repro.kc.circuits.Circuit`: Shannon expansions
become decision nodes, component splits become independent-∧ nodes, and the
cache makes the trace a DAG. The size of that circuit is the quantity
bounded below by Theorem 7.1(ii).

Optionally the counter may also split variable-disjoint *disjunctions*
(independent-or). That is sound for probabilities but steps outside the
decision-DNNF language, so it is off by default and never used when a trace
is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..booleans.expr import B_FALSE, B_TRUE, BAnd, BExpr, BOr
from ..booleans.kernel import kernel_statistics
from ..booleans.ops import cofactors, independent_factors, most_frequent_variable
from ..kc.circuits import FALSE_LEAF, TRUE_LEAF, Circuit
from ..sanitize import check_circuit


@dataclass
class DPLLStatistics:
    """Counters describing one run of the counter.

    The ``kernel_intern_hits`` and ``cofactor_memo_*`` fields are deltas of
    the hash-consing kernel's *thread-local* counters over the run: a run
    executes on one thread, so the deltas attribute interning and
    cofactor-memo traffic to this query alone even while the engine's
    batch executor evaluates other queries concurrently (the memo tables
    themselves stay shared — a hit counted here may have been seeded by
    another query, which is the point). ``kernel_unique_nodes`` is the
    process-wide unique-table size at the end of the run.
    """

    calls: int = 0
    cache_hits: int = 0
    shannon_expansions: int = 0
    component_splits: int = 0
    kernel_unique_nodes: int = 0
    kernel_intern_hits: int = 0
    cofactor_memo_hits: int = 0
    cofactor_memo_misses: int = 0


@dataclass
class DPLLResult:
    """Probability plus the search trace and statistics."""

    probability: float
    statistics: DPLLStatistics
    circuit: Optional[Circuit] = None

    @property
    def trace_size(self) -> int:
        """Node count of the decision-DNNF trace (0 when not recorded)."""
        return self.circuit.size() if self.circuit is not None else 0


@dataclass
class DPLLCounter:
    """Configurable DPLL-style counter; see module docstring."""

    use_cache: bool = True
    use_components: bool = True
    use_or_components: bool = False
    variable_order: Optional[Sequence[int]] = None
    record_trace: bool = False
    #: When set, ``run`` reads and extends this mapping instead of a fresh
    #: per-run dict, so counts of shared subformulas persist across runs.
    #: Only sound while the weights stay fixed (node ids identify formulas,
    #: not their probabilities) and with ``record_trace=False`` (trace node
    #: ids are circuit-local). The conditioning layer uses this to count a
    #: constraint circuit once and amortize it over every posterior query.
    external_cache: Optional[dict] = None

    # Keyed by interned node id: an O(1) int lookup per call, where the
    # pre-kernel counter hashed an O(|subtree|) nested structural key.
    _cache: dict[int, tuple[float, int]] = field(default_factory=dict, repr=False)

    def run(self, expr: BExpr, probabilities: Mapping[int, float]) -> DPLLResult:
        """Compute P(expr) under independent tuple probabilities."""
        if self.record_trace and self.use_or_components:
            raise ValueError(
                "or-components fall outside decision-DNNF; disable one option"
            )
        if self.external_cache is not None:
            if self.record_trace:
                raise ValueError(
                    "external_cache entries carry no trace nodes; "
                    "disable record_trace to share counts across runs"
                )
            self._cache = self.external_cache
        else:
            self._cache = {}
        statistics = DPLLStatistics()
        kernel_before = kernel_statistics()
        circuit = Circuit() if self.record_trace else None
        rank = (
            {v: i for i, v in enumerate(self.variable_order)}
            if self.variable_order is not None
            else None
        )

        def choose_variable(formula: BExpr) -> int:
            if rank is not None:
                candidates = formula.variables()
                return min(candidates, key=lambda v: rank.get(v, len(rank) + v))
            return most_frequent_variable(formula)

        def count(formula: BExpr) -> tuple[float, int]:
            statistics.calls += 1
            if formula is B_TRUE:
                return 1.0, TRUE_LEAF
            if formula is B_FALSE:
                return 0.0, FALSE_LEAF
            key = formula.nid
            if self.use_cache:
                cached = self._cache.get(key)
                if cached is not None:
                    statistics.cache_hits += 1
                    return cached

            result: tuple[float, int]
            factors = (
                independent_factors(formula)
                if self.use_components and isinstance(formula, BAnd)
                else [formula]
            )
            if len(factors) > 1:
                statistics.component_splits += 1
                probability = 1.0
                children = []
                for factor in factors:
                    p, node = count(factor)
                    probability *= p
                    children.append(node)
                node_id = circuit.conjoin(children) if circuit is not None else TRUE_LEAF
                result = (probability, node_id)
            elif (
                self.use_or_components
                and isinstance(formula, BOr)
                and len(independent_factors(formula)) > 1
            ):
                statistics.component_splits += 1
                complement = 1.0
                for factor in independent_factors(formula):
                    p, _ = count(factor)
                    complement *= 1.0 - p
                result = (1.0 - complement, TRUE_LEAF)
            else:
                var = choose_variable(formula)
                statistics.shannon_expansions += 1
                low, high = cofactors(formula, var)
                p_low, node_low = count(low)
                p_high, node_high = count(high)
                p = probabilities[var]
                probability = (1.0 - p) * p_low + p * p_high
                node_id = (
                    circuit.decision(var, node_low, node_high)
                    if circuit is not None
                    else TRUE_LEAF
                )
                result = (probability, node_id)

            if self.use_cache:
                self._cache[key] = result
            return result

        probability, root = count(expr)
        if circuit is not None:
            circuit.root = root
            # Sanitizer (no-op unless REPRO_SANITIZE=1): the recorded trace
            # must lie in its target language — FBDD without the component
            # rule, decision-DNNF with it.
            check_circuit(
                circuit, "decision-dnnf" if self.use_components else "fbdd"
            )
        kernel_after = kernel_statistics()
        statistics.kernel_unique_nodes = kernel_after.unique_nodes
        statistics.kernel_intern_hits = (
            kernel_after.intern_hits - kernel_before.intern_hits
        )
        statistics.cofactor_memo_hits = (
            kernel_after.cofactor_hits - kernel_before.cofactor_hits
        )
        statistics.cofactor_memo_misses = (
            kernel_after.cofactor_misses - kernel_before.cofactor_misses
        )
        return DPLLResult(probability, statistics, circuit)


def dpll_probability(
    expr: BExpr,
    probabilities: Mapping[int, float],
    use_cache: bool = True,
    use_components: bool = True,
    variable_order: Optional[Sequence[int]] = None,
) -> float:
    """Convenience wrapper returning just the probability."""
    counter = DPLLCounter(
        use_cache=use_cache,
        use_components=use_components,
        variable_order=variable_order,
    )
    return counter.run(expr, probabilities).probability


def compile_decision_dnnf(
    expr: BExpr,
    probabilities: Optional[Mapping[int, float]] = None,
    variable_order: Optional[Sequence[int]] = None,
) -> DPLLResult:
    """Compile *expr* into a decision-DNNF by recording the DPLL trace.

    The weights do not affect the trace shape (it depends only on the
    branching heuristic); they default to 1/2 so the result also reports
    the uniform-weight probability.
    """
    if probabilities is None:
        probabilities = {v: 0.5 for v in expr.variables()}
    counter = DPLLCounter(record_trace=True, variable_order=variable_order)
    return counter.run(expr, probabilities)


def compile_fbdd(
    expr: BExpr,
    probabilities: Optional[Mapping[int, float]] = None,
    variable_order: Optional[Sequence[int]] = None,
) -> DPLLResult:
    """Compile *expr* into an FBDD: the trace of DPLL *without* components.

    Per Huang–Darwiche, caching without the component rule yields a pure
    decision DAG — a Free Binary Decision Diagram. With a fixed
    ``variable_order`` the trace is an OBDD (possibly larger than the
    reduced one built by :mod:`repro.kc.obdd`, since the cache keys are
    formulas, not nodes).
    """
    if probabilities is None:
        probabilities = {v: 0.5 for v in expr.variables()}
    counter = DPLLCounter(
        record_trace=True, use_components=False, variable_order=variable_order
    )
    return counter.run(expr, probabilities)
