"""The Karp–Luby FPRAS for weighted DNF counting.

UCQ lineages are positive DNFs, and naive Monte Carlo is useless when P(F)
is tiny (relative error explodes). Karp–Luby samples from the *union space*
instead: pick a clause with probability proportional to its weight, sample a
world satisfying it, and count the fraction of samples for which the chosen
clause is the first satisfied one. The estimate has relative error ε with
probability 1 − δ after ``⌈ 3·m·ln(2/δ) / ε² ⌉`` samples, where *m* is the
number of clauses.

This gives the FPRAS the paper's conclusion alludes to for the "other" (hard)
queries, applicable whenever the lineage is available in DNF.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..booleans.forms import Clause, literal_sign, literal_var


@dataclass(frozen=True)
class KarpLubyEstimate:
    """Estimate of P(F) with the number of trials used."""

    estimate: float
    samples: int
    epsilon: float
    delta: float


def clause_probability(clause: Clause, probabilities: Mapping[int, float]) -> float:
    """Probability that a single conjunctive clause is satisfied."""
    result = 1.0
    for lit in clause:
        p = probabilities[literal_var(lit)]
        result *= p if literal_sign(lit) else 1.0 - p
    return result


def karp_luby_samples(clause_count: int, epsilon: float, delta: float) -> int:
    """Trial count for an (ε, δ) *relative*-error guarantee."""
    if not 0 < epsilon or not 0 < delta < 1:
        raise ValueError("epsilon must be positive, delta in (0, 1)")
    return math.ceil(3.0 * clause_count * math.log(2.0 / delta) / (epsilon * epsilon))


def karp_luby(
    clauses: Sequence[Clause],
    probabilities: Mapping[int, float],
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
    samples: Optional[int] = None,
) -> KarpLubyEstimate:
    """Karp–Luby estimator for P(⋁ clauses) under independent variables.

    Clauses use the literal encoding of :mod:`repro.booleans.forms`. Clauses
    with probability 0 are dropped; an empty clause list yields estimate 0.

    The default RNG is seeded so runs are reproducible; pass ``rng`` for an
    independent stream.
    """
    rng = rng if rng is not None else random.Random(0)
    live = [c for c in clauses if clause_probability(c, probabilities) > 0.0]
    if not live:
        return KarpLubyEstimate(0.0, 0, epsilon, delta)

    weights = [clause_probability(c, probabilities) for c in live]
    total_weight = sum(weights)
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)

    n = samples if samples is not None else karp_luby_samples(len(live), epsilon, delta)
    # Pre-index: variables fixed by each clause.
    fixed: list[dict[int, bool]] = [
        {literal_var(lit): literal_sign(lit) for lit in clause} for clause in live
    ]
    all_vars = sorted({literal_var(lit) for c in live for lit in c})

    hits = 0
    for _ in range(n):
        # 1. pick a clause proportionally to its weight
        r = rng.random() * total_weight
        index = _bisect(cumulative, r)
        chosen = fixed[index]
        # 2. sample a world conditioned on the chosen clause being true
        assignment = {}
        for var in all_vars:
            if var in chosen:
                assignment[var] = chosen[var]
            else:
                assignment[var] = rng.random() < probabilities[var]
        # 3. success iff the chosen clause is the *first* satisfied clause
        first = True
        for j in range(index):
            if all(assignment[v] == val for v, val in fixed[j].items()):
                first = False
                break
        if first:
            hits += 1

    estimate = (hits / n) * total_weight if n else 0.0
    return KarpLubyEstimate(min(estimate, 1.0), n, epsilon, delta)


def _bisect(cumulative: Sequence[float], value: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo
