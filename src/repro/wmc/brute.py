"""Brute-force weighted model counting — the reference oracle.

Enumerates all assignments of the formula's variables and sums the product
weights of the satisfying ones (appendix, Eq. 15). Exponential; used to
validate every other engine on small inputs. A :mod:`fractions` mode gives
exact rational arithmetic.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Mapping

from ..booleans.expr import BExpr, evaluate


def brute_force_wmc(expr: BExpr, probabilities: Mapping[int, float]) -> float:
    """P(expr) by enumerating all assignments of its variables."""
    variables = sorted(expr.variables())
    total = 0.0
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if evaluate(expr, assignment):
            weight = 1.0
            for var, value in assignment.items():
                p = probabilities[var]
                weight *= p if value else 1.0 - p
            total += weight
    return total


def brute_force_wmc_exact(
    expr: BExpr, probabilities: Mapping[int, Fraction]
) -> Fraction:
    """Exact rational version of :func:`brute_force_wmc`."""
    variables = sorted(expr.variables())
    total = Fraction(0)
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if evaluate(expr, assignment):
            weight = Fraction(1)
            for var, value in assignment.items():
                p = Fraction(probabilities[var])
                weight *= p if value else 1 - p
            total += weight
    return total


def model_count(expr: BExpr, variables: Iterable[int] | None = None) -> int:
    """#F: the number of satisfying assignments over the given universe.

    When *variables* is omitted the universe is the formula's own variable
    set. This is Valiant's model counting problem (Sec. 7).
    """
    universe = sorted(expr.variables() if variables is None else set(variables))
    count = 0
    for bits in itertools.product((False, True), repeat=len(universe)):
        if evaluate(expr, dict(zip(universe, bits))):
            count += 1
    return count


def weighted_model_count(
    expr: BExpr, weights: Mapping[int, float]
) -> tuple[float, float]:
    """Weight-of-formula and partition function Z (appendix, Eq. 16–17).

    Weights follow the appendix convention: a variable set to 1 contributes
    ``w_i``, a variable set to 0 contributes 1. Returns ``(weight(F), Z)``
    with ``Z = Π (1 + w_i)``; the probability of F is ``weight(F) / Z``.
    """
    variables = sorted(expr.variables())
    weight_of_f = 0.0
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if evaluate(expr, assignment):
            weight = 1.0
            for var, value in assignment.items():
                if value:
                    weight *= weights[var]
            weight_of_f += weight
    z = 1.0
    for var in variables:
        z *= 1.0 + weights[var]
    return weight_of_f, z


def probability_from_weight(weight: float) -> float:
    """The appendix mapping p = w / (1 + w)."""
    if weight == float("inf"):
        return 1.0
    return weight / (1.0 + weight)


def weight_from_probability(probability: float) -> float:
    """The appendix mapping w = p / (1 - p) ("odds")."""
    if probability >= 1.0:
        return float("inf")
    return probability / (1.0 - probability)
