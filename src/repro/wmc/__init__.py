"""Weighted model counting engines: brute force, DPLL, Monte Carlo, Karp–Luby."""

from .brute import (
    brute_force_wmc,
    brute_force_wmc_exact,
    model_count,
    probability_from_weight,
    weight_from_probability,
    weighted_model_count,
)
from .dpll import (
    DPLLCounter,
    DPLLResult,
    DPLLStatistics,
    compile_decision_dnnf,
    compile_fbdd,
    dpll_probability,
)
from .sampling import (
    MonteCarloEstimate,
    hoeffding_samples,
    monte_carlo_event,
    monte_carlo_wmc,
)
from .karp_luby import (
    KarpLubyEstimate,
    clause_probability,
    karp_luby,
    karp_luby_samples,
)

__all__ = [
    "brute_force_wmc",
    "brute_force_wmc_exact",
    "model_count",
    "probability_from_weight",
    "weight_from_probability",
    "weighted_model_count",
    "DPLLCounter",
    "DPLLResult",
    "DPLLStatistics",
    "compile_decision_dnnf",
    "compile_fbdd",
    "dpll_probability",
    "MonteCarloEstimate",
    "hoeffding_samples",
    "monte_carlo_event",
    "monte_carlo_wmc",
    "KarpLubyEstimate",
    "clause_probability",
    "karp_luby",
    "karp_luby_samples",
]
