"""Observability: process-wide counters, gauges and latency histograms.

``repro.obs`` is the metrics subsystem the serving stack publishes into:
the query server (:mod:`repro.server`), the engine session
(:mod:`repro.engine.session`) and the batch executor
(:mod:`repro.engine.batch`) all record their traffic here, and the
server's ``/metrics`` endpoint and ``prodb serve --stats`` log line render
it. See :mod:`repro.obs.metrics` for the metric kinds and the registry,
and ``docs/api.md`` for the metric catalog.
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]
