"""Counters, gauges and log-linear latency histograms with one registry.

The serving layer (:mod:`repro.server`), the engine session
(:mod:`repro.engine.session`) and the batch executor all publish into a
process-wide :class:`MetricsRegistry`; the server's ``/metrics`` endpoint
and the ``prodb serve --stats`` periodic log line render it.

Three metric kinds:

* :class:`Counter` — a monotonically increasing count (requests served,
  cache hits, load-shed responses);
* :class:`Gauge` — a point-in-time level (in-flight requests, queue depth);
* :class:`Histogram` — a **log-linear** latency histogram: each power-of-two
  decade ``[2^k, 2^(k+1))`` of seconds is split into
  :data:`Histogram.SUBBUCKETS` linear sub-buckets, giving bounded relative
  error (≤ 1/SUBBUCKETS per decade) over ~9 orders of magnitude with a few
  hundred integers and O(1) ``observe``. Quantiles (p50/p95/p99) are read
  off the cumulative bucket counts.

Thread safety: every metric created through a registry shares that
registry's single :class:`~repro.sanitize.RankedLock` (rank
:data:`~repro.sanitize.RANK_METRICS`, the highest in the engine) — one
uncontended lock acquisition per update, and metrics may be published from
code that already holds engine locks without violating the sanitizer's
lock order. Registry locks are never held across calls into other
subsystems.

This module imports only the standard library and :mod:`repro.sanitize`,
so any layer — including :mod:`repro.engine.stats`, which ``core.pdb``
loads — can depend on it without an import cycle.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..sanitize import RANK_METRICS, RankedLock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

Number = Union[int, float]


class Metric:
    """Shared plumbing: a name, a help string, and the owning lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", lock: Optional[RankedLock] = None):
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ValueError(
                f"metric name {name!r} must be non-empty [A-Za-z0-9_]"
            )
        self.name = name
        self.help = help
        self._lock = lock if lock is not None else RankedLock(RANK_METRICS, f"obs.{name}")

    def render(self) -> Iterator[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", lock: Optional[RankedLock] = None):
        super().__init__(name, help, lock)
        self._value = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> Iterator[str]:
        yield f"# TYPE {self.name} counter"
        yield f"{self.name} {_format_number(self.value)}"


class Gauge(Metric):
    """A level that can move both ways (in-flight requests, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", lock: Optional[RankedLock] = None):
        super().__init__(name, help, lock)
        self._value = 0.0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def sub(self, amount: Number = 1) -> None:
        self.add(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> Iterator[str]:
        yield f"# TYPE {self.name} gauge"
        yield f"{self.name} {_format_number(self.value)}"


class Histogram(Metric):
    """A log-linear histogram of positive observations (seconds).

    Bucket layout: decades ``[2^k, 2^(k+1))`` for ``k`` in
    ``[MIN_EXP, MAX_EXP]``, each split into :data:`SUBBUCKETS` equal-width
    sub-buckets. Observations below ``2^MIN_EXP`` land in the first
    bucket, above ``2^(MAX_EXP+1)`` in the last — the range (≈ 1 µs to
    ≈ 2 min) covers every latency this engine produces.

    ``quantile(q)`` returns the upper edge of the bucket holding the
    q-th observation: an overestimate by at most one sub-bucket width,
    i.e. a relative error bounded by ``1/SUBBUCKETS``.
    """

    kind = "histogram"

    #: Linear subdivisions per power-of-two decade.
    SUBBUCKETS = 8
    #: Smallest tracked decade: 2^-20 s ≈ 1 µs.
    MIN_EXP = -20
    #: Largest tracked decade: 2^7 s = 128 s.
    MAX_EXP = 7

    #: Quantiles rendered by ``render()`` / shown in summaries.
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, name: str, help: str = "", lock: Optional[RankedLock] = None):
        super().__init__(name, help, lock)
        self._nbuckets = (self.MAX_EXP - self.MIN_EXP + 1) * self.SUBBUCKETS
        self._buckets: List[int] = [0] * self._nbuckets
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def _bucket_index(self, value: float) -> int:
        if value <= 0.0:
            return 0
        exponent = math.floor(math.log2(value))
        if exponent < self.MIN_EXP:
            return 0
        if exponent > self.MAX_EXP:
            return self._nbuckets - 1
        # Position within the decade, linearly subdivided.
        fraction = value / (2.0 ** exponent) - 1.0  # in [0, 1)
        sub = min(int(fraction * self.SUBBUCKETS), self.SUBBUCKETS - 1)
        return (exponent - self.MIN_EXP) * self.SUBBUCKETS + sub

    def _bucket_upper(self, index: int) -> float:
        if index == self._nbuckets - 1:
            # The overflow bucket also holds values beyond 2^(MAX_EXP+1);
            # its edge is unbounded (quantile() clamps to the max seen).
            return math.inf
        decade, sub = divmod(index, self.SUBBUCKETS)
        exponent = decade + self.MIN_EXP
        return (2.0 ** exponent) * (1.0 + (sub + 1) / self.SUBBUCKETS)

    def observe(self, value: Number) -> None:
        value = float(value)
        if value < 0.0:
            raise ValueError(f"histogram {self.name} observations must be >= 0")
        with self._lock:
            self._buckets[self._bucket_index(value)] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 < q ≤ 1) as a bucket upper edge; 0 if empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = math.ceil(q * self._count)
            seen = 0
            for index, bucket in enumerate(self._buckets):
                seen += bucket
                if seen >= target:
                    return min(self._bucket_upper(index), self._max)
            return self._max

    def summary(self) -> str:
        """One line: ``count=10 p50=1.2ms p95=3.4ms p99=3.4ms``."""
        parts = [f"count={self.count}"]
        for q in self.QUANTILES:
            label = f"p{int(q * 100)}"
            parts.append(f"{label}={self.quantile(q) * 1e3:.2f}ms")
        return " ".join(parts)

    def render(self) -> Iterator[str]:
        yield f"# TYPE {self.name} summary"
        for q in self.QUANTILES:
            yield f'{self.name}{{quantile="{q}"}} {_format_number(self.quantile(q))}'
        yield f"{self.name}_count {self.count}"
        yield f"{self.name}_sum {_format_number(self.sum)}"


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:  # prodb-lint: exact -- integral check
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """A named set of metrics sharing one lock, rendered as one document.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same name returns the same instance; asking for an existing
    name with a different kind raises ``ValueError``. The registry's single
    lock (rank :data:`~repro.sanitize.RANK_METRICS`) guards both the name
    table and every member metric's series.
    """

    def __init__(self) -> None:
        self._lock = RankedLock(RANK_METRICS, "obs.registry", reentrant=True)
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type, help: str) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.__name__.lower()}"
                    )
                return existing
            metric = kind(name, help, lock=self._lock)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, Counter, help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, Gauge, help)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help: str = "") -> Histogram:
        metric = self._get_or_create(name, Histogram, help)
        assert isinstance(metric, Histogram)
        return metric

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` map (histograms expand to count/sum/qXX)."""
        out: Dict[str, float] = {}
        for name in self.names():
            with self._lock:
                metric = self._metrics.get(name)
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
            elif isinstance(metric, Histogram):
                out[f"{name}_count"] = float(metric.count)
                out[f"{name}_sum"] = metric.sum
                for q in Histogram.QUANTILES:
                    out[f"{name}_p{int(q * 100)}"] = metric.quantile(q)
        return out

    def render_text(self) -> str:
        """The full registry in Prometheus-style text exposition format."""
        lines: List[str] = []
        for name in self.names():
            with self._lock:
                metric = self._metrics.get(name)
            if metric is None:
                continue
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every metric (tests; a fresh server can also start clean)."""
        with self._lock:
            self._metrics.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (engine + server publish here)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
