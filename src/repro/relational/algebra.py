"""Relational algebra operators, deterministic and probabilistic.

The deterministic operators implement standard bag-free (set) semantics and
ignore probabilities (each output row gets probability 1). The probabilistic
variants are the two extensional operators of Sec. 6:

* :func:`join` — natural join that *multiplies* the probabilities of the
  joined rows;
* :func:`independent_project` — group-by/aggregate γ whose aggregate is
  ``u ⊕ v = 1 - (1-u)(1-v)`` (independent-or over the grouped rows).

Every lifted inference rule corresponds to one of these operators, which is
how extensional plans compute probabilities inside ordinary query processing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .relation import Relation


def oplus(u: float, v: float) -> float:
    """The independent-or aggregate of Sec. 6: ``1 - (1-u)(1-v)``."""
    return 1.0 - (1.0 - u) * (1.0 - v)


def select(relation: Relation, predicate: Callable[[dict], bool]) -> Relation:
    """Rows whose attribute dict satisfies *predicate*; probabilities kept."""
    out = Relation(relation.name, relation.attributes)
    for values, prob in relation.items():
        row = dict(zip(relation.attributes, values))
        if predicate(row):
            out.add(values, prob)
    return out


def select_eq(relation: Relation, attribute: str, value) -> Relation:
    """Equality selection σ_{attribute = value}."""
    index = relation.attributes.index(attribute)
    out = Relation(relation.name, relation.attributes)
    for values, prob in relation.items():
        if values[index] == value:
            out.add(values, prob)
    return out


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Deterministic (set-semantics) projection; output rows get P = 1."""
    indices = [relation.attributes.index(a) for a in attributes]
    out = Relation(relation.name, tuple(attributes))
    for values in relation:
        out.add(tuple(values[i] for i in indices), 1.0)
    return out


def independent_project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """γ_{attributes, ⊕}: group on *attributes*, ⊕-combine probabilities.

    This is the correct probabilistic duplicate elimination when the grouped
    rows are independent events — the defining operator of safe plans.
    """
    indices = [relation.attributes.index(a) for a in attributes]
    grouped: dict[tuple, float] = {}
    for values, prob in relation.items():
        key = tuple(values[i] for i in indices)
        grouped[key] = oplus(grouped.get(key, 0.0), prob)
    return Relation(relation.name, tuple(attributes), grouped)


def join(left: Relation, right: Relation, name: str = "join") -> Relation:
    """Natural join ⋈ multiplying probabilities (Sec. 6 operator (1)).

    Output attributes are the left attributes followed by the right-only
    attributes; rows match on all shared attribute names.
    """
    shared = [a for a in left.attributes if a in right.attributes]
    left_idx = [left.attributes.index(a) for a in shared]
    right_idx = [right.attributes.index(a) for a in shared]
    right_extra = [
        i for i, a in enumerate(right.attributes) if a not in left.attributes
    ]
    out_attributes = left.attributes + tuple(right.attributes[i] for i in right_extra)

    # Hash join on the shared attributes.
    buckets: dict[tuple, list[tuple[tuple, float]]] = {}
    for rvalues, rprob in right.items():
        key = tuple(rvalues[i] for i in right_idx)
        buckets.setdefault(key, []).append((rvalues, rprob))

    out = Relation(name, out_attributes)
    for lvalues, lprob in left.items():
        key = tuple(lvalues[i] for i in left_idx)
        for rvalues, rprob in buckets.get(key, ()):
            combined = lvalues + tuple(rvalues[i] for i in right_extra)
            out.add(combined, lprob * rprob)
    return out


def union(left: Relation, right: Relation, name: str = "union") -> Relation:
    """Probabilistic union: same-schema rows combined with ⊕.

    Built entirely through :meth:`Relation.add`, whose documented
    duplicate-row policy *is* the ⊕-combine — so union inherits the row
    validation (arity, probability range) instead of poking ``rows``
    directly, and both backends share one definition of what a duplicate
    row means.
    """
    if left.attributes != right.attributes:
        raise ValueError("union requires identical schemas")
    out = Relation(name, left.attributes)
    for values, prob in left.items():
        out.add(values, prob)
    for values, prob in right.items():
        out.add(values, prob)
    return out


def difference(left: Relation, right: Relation, name: str = "difference") -> Relation:
    """Deterministic set difference (probabilities from the left input)."""
    if left.attributes != right.attributes:
        raise ValueError("difference requires identical schemas")
    out = Relation(name, left.attributes)
    for values, prob in left.items():
        if values not in right.rows:
            out.add(values, prob)
    return out


def rename_attributes(relation: Relation, attributes: Sequence[str]) -> Relation:
    """A copy with a new attribute list (arity must match)."""
    attributes = tuple(attributes)
    if len(attributes) != relation.arity:
        raise ValueError("attribute count mismatch")
    return Relation(relation.name, attributes, dict(relation.rows))


def cartesian_product(left: Relation, right: Relation, name: str = "product") -> Relation:
    """Cross product ×, multiplying probabilities; attribute names must differ."""
    if set(left.attributes) & set(right.attributes):
        raise ValueError("cartesian product requires disjoint attribute names")
    return join(left, right, name)


def aggregate_all(relation: Relation, combine: Callable[[float, float], float], initial: float) -> float:
    """Fold all row probabilities into a single number (Boolean plans' root)."""
    result = initial
    for _, prob in relation.items():
        result = combine(result, prob)
    return result


def boolean_oplus(relation: Relation) -> float:
    """⊕ over all rows: the probability output of a Boolean plan root."""
    return aggregate_all(relation, oplus, 0.0)


def relations_join_all(relations: Iterable[Relation], name: str = "join") -> Relation:
    """Left-deep natural join of several relations."""
    iterator = iter(relations)
    try:
        result = next(iterator).copy()
    except StopIteration:
        raise ValueError("need at least one relation") from None
    for relation in iterator:
        result = join(result, relation, name)
    return result
