"""Relational substrate: in-memory relations and (probabilistic) algebra.

Two execution representations share one semantics: the row backend
(:mod:`~repro.relational.relation` / :mod:`~repro.relational.algebra`,
dict-of-tuples, tuple-at-a-time operators) and the columnar backend
(:mod:`~repro.relational.columnar`, dictionary-encoded numpy columns with
vectorized operators and log-space ⊕-aggregation).
"""

from .columnar import NUMPY_AVAILABLE, ColumnarRelation, ValueInterner, from_relation
from .relation import Relation, relation_from_rows
from .algebra import (
    boolean_oplus,
    cartesian_product,
    difference,
    independent_project,
    join,
    oplus,
    project,
    relations_join_all,
    rename_attributes,
    select,
    select_eq,
    union,
)

__all__ = [
    "NUMPY_AVAILABLE",
    "ColumnarRelation",
    "ValueInterner",
    "from_relation",
    "Relation",
    "relation_from_rows",
    "boolean_oplus",
    "cartesian_product",
    "difference",
    "independent_project",
    "join",
    "oplus",
    "project",
    "relations_join_all",
    "rename_attributes",
    "select",
    "select_eq",
    "union",
]
