"""Relational substrate: in-memory relations and (probabilistic) algebra."""

from .relation import Relation, relation_from_rows
from .algebra import (
    boolean_oplus,
    cartesian_product,
    difference,
    independent_project,
    join,
    oplus,
    project,
    relations_join_all,
    rename_attributes,
    select,
    select_eq,
    union,
)

__all__ = [
    "Relation",
    "relation_from_rows",
    "boolean_oplus",
    "cartesian_product",
    "difference",
    "independent_project",
    "join",
    "oplus",
    "project",
    "relations_join_all",
    "rename_attributes",
    "select",
    "select_eq",
    "union",
]
