"""CSV import/export for probabilistic relations and TIDs.

File format: standard CSV with a header row; the last column must be named
``P`` (case-insensitive) and holds the tuple probability, mirroring how the
paper stores a TID inside a standard relational database (Sec. 2). A file
without a ``P`` column loads as a deterministic relation (every P = 1).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from ..core.tid import TupleIndependentDatabase
from .relation import Relation

PathLike = Union[str, Path]

__all__ = [
    "PathLike",
    "load_relation",
    "load_tid",
    "save_relation",
    "save_tid",
]


def load_relation(path: PathLike, name: str | None = None) -> Relation:
    """Load one relation from a CSV file (see module docstring)."""
    path = Path(path)
    relation_name = name if name is not None else path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        has_probability = bool(header) and header[-1].strip().lower() == "p"
        attributes = tuple(
            h.strip() for h in (header[:-1] if has_probability else header)
        )
        relation = Relation(relation_name, attributes)
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if has_probability:
                *values, probability_text = row
                try:
                    probability = float(probability_text)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: bad probability "
                        f"{probability_text!r}"
                    ) from None
            else:
                values, probability = row, 1.0
            if len(values) != len(attributes):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(attributes)} "
                    f"values, found {len(values)}"
                )
            relation.add(tuple(v.strip() for v in values), probability)
    return relation


def save_relation(relation: Relation, path: PathLike) -> None:
    """Write a relation as CSV with a trailing P column."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(relation.attributes) + ["P"])
        for values, probability in sorted(
            relation.items(), key=lambda kv: repr(kv[0])
        ):
            writer.writerow(list(values) + [repr(probability)])


def load_tid(paths: Iterable[PathLike]) -> TupleIndependentDatabase:
    """Load a TID from several CSV files (one relation per file)."""
    db = TupleIndependentDatabase()
    for path in paths:
        relation = load_relation(path)
        if relation.name in db.relations:
            raise ValueError(f"duplicate relation {relation.name}")
        db.relations[relation.name] = relation
    return db


def save_tid(db: TupleIndependentDatabase, directory: PathLike) -> list[Path]:
    """Write every relation of a TID into ``directory/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in sorted(db.relations):
        path = directory / f"{name}.csv"
        save_relation(db.relations[name], path)
        written.append(path)
    return written
