"""Process-shareable columnar storage: shards in ``shared_memory``.

The multi-process server (:mod:`repro.server.pool`) needs every worker to
see the same database without N copies and without re-parsing anything on
the worker side. This module provides that transport for the columnar
layout of :mod:`repro.relational.columnar`:

* :func:`publish` encodes each relation of a
  :class:`~repro.core.tid.TupleIndependentDatabase` once (int64 code
  columns + one float64 probability vector) and lays the arrays out in
  one ``multiprocessing.shared_memory`` segment per relation;
* the result is a :class:`DatabaseHandle` — a small picklable record of
  segment names, dtypes, shapes and the database fingerprint, plus the
  :class:`~repro.relational.columnar.ValueInterner` snapshot (pickled into
  its own segment) so workers decode codes to the very same values;
* :func:`attach` maps those segments in another process as **read-only,
  zero-copy** numpy views, loads the interner snapshot, and can rebuild a
  row-level TID whose :meth:`fingerprint` must equal the publisher's —
  the byte-identity guarantee the serving layer advertises.

Lifecycle: the publisher owns the segments (``DatabaseShards.unlink()``
releases them at server shutdown); workers merely ``close()`` their
attachments. Attached arrays are marked non-writable, so a worker that
tries to mutate base data fails loudly instead of corrupting its
siblings.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - numpy is a declared dependency
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only in stripped envs
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

from ..core.tid import TupleIndependentDatabase
from .columnar import (
    DEFAULT_INTERNER,
    ColumnarRelation,
    ValueInterner,
    from_relation,
)

__all__ = [
    "AttachedShards",
    "DatabaseHandle",
    "DatabaseShards",
    "ShardHandle",
    "attach",
    "publish",
]

_CODE_DTYPE = "int64"
_PROB_DTYPE = "float64"
_ITEMSIZE = 8  # both dtypes above


def _require_numpy() -> None:
    if not NUMPY_AVAILABLE:
        raise RuntimeError(
            "shared-memory shards require numpy; install it or serve with "
            "mode='threads'"
        )


@dataclass(frozen=True)
class ShardHandle:
    """One relation's shared-memory placement (picklable).

    The segment holds ``arity`` int64 code columns followed by the
    float64 probability vector, each ``rows`` long and contiguous.
    ``segment`` is None for an empty relation (schema only, no bytes).
    """

    relation: str
    attributes: Tuple[str, ...]
    segment: Optional[str]
    code_dtype: str
    prob_dtype: str
    rows: int
    db_fingerprint: str


@dataclass(frozen=True)
class DatabaseHandle:
    """Everything a worker needs to attach: shards + dictionary + identity."""

    fingerprint: str
    shards: Tuple[ShardHandle, ...]
    interner_segment: str
    interner_nbytes: int
    domain: Optional[frozenset]


class DatabaseShards:
    """Publisher side: encodes a TID into owned shared-memory segments.

    The instance owns every segment it creates; :meth:`unlink` releases
    them (call it exactly once, from the publishing process, after all
    workers are gone). Usable as a context manager.
    """

    def __init__(
        self,
        db: TupleIndependentDatabase,
        interner: Optional[ValueInterner] = None,
    ) -> None:
        _require_numpy()
        interner = interner if interner is not None else DEFAULT_INTERNER
        self._segments: List[shared_memory.SharedMemory] = []
        fingerprint = db.fingerprint()
        shards: List[ShardHandle] = []
        try:
            for name in sorted(db.relations):
                relation = db.relations[name]
                encoded = from_relation(relation, interner)
                rows = len(encoded)
                if rows == 0:
                    shards.append(
                        ShardHandle(
                            name, relation.attributes, None,
                            _CODE_DTYPE, _PROB_DTYPE, 0, fingerprint,
                        )
                    )
                    continue
                arity = encoded.arity
                segment = shared_memory.SharedMemory(
                    create=True, size=(arity + 1) * rows * _ITEMSIZE
                )
                self._segments.append(segment)
                for i, column in enumerate(encoded.columns):
                    view = np.ndarray(
                        (rows,), dtype=np.int64,
                        buffer=segment.buf, offset=i * rows * _ITEMSIZE,
                    )
                    view[:] = column
                probabilities = np.ndarray(
                    (rows,), dtype=np.float64,
                    buffer=segment.buf, offset=arity * rows * _ITEMSIZE,
                )
                probabilities[:] = encoded.probabilities
                shards.append(
                    ShardHandle(
                        name, relation.attributes, segment.name,
                        _CODE_DTYPE, _PROB_DTYPE, rows, fingerprint,
                    )
                )
            # Snapshot *after* encoding: every code the columns reference
            # exists in the snapshot.
            blob = pickle.dumps(
                interner.snapshot(), protocol=pickle.HIGHEST_PROTOCOL
            )
            dictionary = shared_memory.SharedMemory(
                create=True, size=max(1, len(blob))
            )
            self._segments.append(dictionary)
            dictionary.buf[: len(blob)] = blob
        except BaseException:
            self.unlink()
            raise
        self.handle = DatabaseHandle(
            fingerprint, tuple(shards), dictionary.name, len(blob), db.explicit_domain
        )

    def close(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def unlink(self) -> None:
        """Release the segments (publisher only; call once, at shutdown)."""
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already closed
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __enter__(self) -> "DatabaseShards":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unlink()


def publish(
    db: TupleIndependentDatabase, interner: Optional[ValueInterner] = None
) -> DatabaseShards:
    """Encode *db* into shared memory; returns the owning publisher."""
    return DatabaseShards(db, interner)


class AttachedShards:
    """Worker side: read-only, zero-copy views over a publisher's shards.

    ``columnar`` maps each relation name to a
    :class:`~repro.relational.columnar.ColumnarRelation` whose arrays are
    non-writable views straight into shared memory; the publisher's
    interner snapshot is loaded into *interner* (default: this process's
    ``DEFAULT_INTERNER``) so codes decode to identical values.
    """

    def __init__(
        self, handle: DatabaseHandle, interner: Optional[ValueInterner] = None
    ) -> None:
        _require_numpy()
        self.handle = handle
        self.interner = interner if interner is not None else DEFAULT_INTERNER
        self._segments: List[shared_memory.SharedMemory] = []
        self.columnar: Dict[str, ColumnarRelation] = {}
        try:
            # NB: attaching registers the name with the (shared) resource
            # tracker again; that is a set-semantics no-op, and ownership
            # stays with the publisher, whose unlink() deregisters it.
            dictionary = shared_memory.SharedMemory(name=handle.interner_segment)
            self._segments.append(dictionary)
            snapshot = pickle.loads(bytes(dictionary.buf[: handle.interner_nbytes]))
            self.interner.load_snapshot(snapshot)
            for shard in handle.shards:
                rows, arity = shard.rows, len(shard.attributes)
                if shard.segment is None:
                    self.columnar[shard.relation] = ColumnarRelation(
                        shard.relation,
                        shard.attributes,
                        tuple(
                            _readonly(np.empty(0, dtype=shard.code_dtype))
                            for _ in shard.attributes
                        ),
                        _readonly(np.empty(0, dtype=shard.prob_dtype)),
                    )
                    continue
                segment = shared_memory.SharedMemory(name=shard.segment)
                self._segments.append(segment)
                columns = tuple(
                    _readonly(
                        np.ndarray(
                            (rows,), dtype=shard.code_dtype,
                            buffer=segment.buf, offset=i * rows * _ITEMSIZE,
                        )
                    )
                    for i in range(arity)
                )
                probabilities = _readonly(
                    np.ndarray(
                        (rows,), dtype=shard.prob_dtype,
                        buffer=segment.buf, offset=arity * rows * _ITEMSIZE,
                    )
                )
                self.columnar[shard.relation] = ColumnarRelation(
                    shard.relation, shard.attributes, columns, probabilities
                )
        except BaseException:
            self.close()
            raise

    def to_tid(self) -> TupleIndependentDatabase:
        """Decode the shards back into a row-level TID.

        The result's :meth:`fingerprint` is verified against the
        publisher's — a mismatch means the segments no longer describe
        the database the handle was minted for, and raises rather than
        silently serving stale data.
        """
        db = TupleIndependentDatabase()
        for shard in self.handle.shards:
            relation = db.add_relation(shard.relation, shard.attributes)
            encoded = self.columnar[shard.relation]
            decoded = [self.interner.decode_column(col) for col in encoded.columns]
            for i in range(len(encoded)):
                relation.replace(
                    tuple(col[i] for col in decoded),
                    float(encoded.probabilities[i]),
                )
        if self.handle.domain is not None:
            db.explicit_domain = frozenset(self.handle.domain)
        db.touch()
        actual = db.fingerprint()
        if actual != self.handle.fingerprint:
            raise ValueError(
                "attached shards decode to a database with fingerprint "
                f"{actual[:12]}… but the handle was published for "
                f"{self.handle.fingerprint[:12]}… — stale or corrupted segments"
            )
        return db

    def close(self) -> None:
        """Drop this process's mappings (the publisher still owns the bytes)."""
        self.columnar = {}
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - exported views
                pass
        self._segments = []

    def __enter__(self) -> "AttachedShards":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _readonly(array: "np.ndarray") -> "np.ndarray":
    array.flags.writeable = False
    return array


def attach(
    handle: DatabaseHandle, interner: Optional[ValueInterner] = None
) -> AttachedShards:
    """Map a publisher's shards into this process, read-only."""
    return AttachedShards(handle, interner)
