"""Columnar (vectorized) relations: the fast lane for extensional plans.

The paper's central scaling claim (Sec. 6) is that safe queries evaluate
*extensionally* — inside ordinary relational query processing — in
polynomial time. The row backend in :mod:`repro.relational.algebra` is a
faithful but tuple-at-a-time implementation of those operators; this module
is the MonetDB/X100-style columnar counterpart: a relation is a set of
dictionary-encoded value columns plus one float64 probability vector, and
every operator is a handful of numpy array passes with **zero per-row
Python in the hot loop**.

Layout
------
* Values of any hashable Python type are interned once into a process-wide
  :class:`ValueInterner`; a column is then an ``int64`` array of codes.
  Code equality is value equality, so equality-based operators (hash join,
  group-by, selection) work directly on codes and never touch the values.
* Probabilities ride along as one ``float64`` vector per relation.

Operators
---------
* :func:`join` — sort/searchsorted hash join on the shared attributes that
  multiplies probabilities (the extensional ⋈ of Sec. 6);
* :func:`independent_project` — grouped ⊕-aggregation computed in log
  space: ``1 ⊖ Π(1-pᵢ)`` becomes ``-expm1(Σ log1p(-pᵢ))`` via
  ``np.bincount``, which is numerically stable for thousands of near-zero
  (or exactly-one) probabilities in one group;
* :func:`select_mask` / :func:`select_eq`, :func:`union` (⊕ on duplicate
  rows, the same policy as :meth:`repro.relational.relation.Relation.add`),
  :func:`cartesian_product` and :func:`boolean_oplus`.

Converting to and from the row representation
(:func:`from_relation` / :meth:`ColumnarRelation.to_relation`) is the only
per-row work, and it happens once per base relation at the scan boundary —
:mod:`repro.plans.vectorized` memoizes the encoded form per database
version.

numpy is a declared dependency, but the module degrades gracefully when it
is absent: ``NUMPY_AVAILABLE`` is False and every entry point raises a
clear error, so the row backend keeps working (see
``ProbabilisticDatabase.backend``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..sanitize import RANK_INTERNER, RankedLock

try:  # pragma: no cover - numpy is a declared dependency
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only in stripped envs
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

from .relation import Relation

__all__ = [
    "NUMPY_AVAILABLE",
    "ColumnarRelation",
    "ValueInterner",
    "boolean_oplus",
    "cartesian_product",
    "from_relation",
    "independent_project",
    "join",
    "select_eq",
    "select_mask",
    "union",
]


def _require_numpy() -> None:
    if not NUMPY_AVAILABLE:
        raise RuntimeError(
            "the columnar backend requires numpy; install it or use the "
            "row backend (backend='rows')"
        )


class ValueInterner:
    """A process-wide value ↔ ``int64`` code dictionary.

    Codes are assigned on first sight and never change, so two columns
    encoded at different times (even for different relations) agree on
    every shared value — which is what lets :func:`join` compare raw code
    arrays. Thread-safe: scans from concurrent ``query_batch`` workers may
    encode simultaneously.
    """

    def __init__(self) -> None:
        self._codes: dict[object, int] = {}
        self._lock = RankedLock(RANK_INTERNER, "relational.interner")

    def __len__(self) -> int:
        return len(self._codes)

    def encode_column(self, values: Sequence[object]) -> "np.ndarray":
        """Encode one column of values into an ``int64`` code array."""
        _require_numpy()
        codes = self._codes
        with self._lock:
            out = np.empty(len(values), dtype=np.int64)
            for i, value in enumerate(values):
                code = codes.get(value)
                if code is None:
                    code = len(codes)
                    codes[value] = code
                out[i] = code
        return out

    def code_of(self, value: object) -> Optional[int]:
        """The code of *value*, or None when it was never interned.

        A never-seen value cannot occur in any encoded column, so callers
        (e.g. :func:`select_eq`) can report an empty result without
        interning garbage.
        """
        return self._codes.get(value)

    def decode_column(self, codes: "np.ndarray") -> list:
        """Codes back to values (boundary use only; O(rows) Python)."""
        with self._lock:
            values: list[object] = [None] * len(self._codes)
            for value, code in self._codes.items():
                values[code] = value
        return [values[c] for c in codes]

    def snapshot(self) -> list:
        """The dictionary as a list of values ordered by code.

        Codes are dense (0..n-1 in first-sight order), so the list *is*
        the whole mapping: ``snapshot()[code] == value``. This is the
        transportable form used to ship the dictionary to worker
        processes — see :meth:`load_snapshot` and
        :mod:`repro.relational.shm`.
        """
        with self._lock:
            values = [None] * len(self._codes)
            for value, code in self._codes.items():
                values[code] = value
        return values

    def load_snapshot(self, values: Sequence[object]) -> None:
        """Install a snapshot so this interner agrees code-for-code.

        Loading into a fresh interner reproduces the source dictionary
        bit-for-bit. Loading into a non-empty one is allowed only when
        every assignment agrees (the snapshot extends, or is a prefix of,
        the existing dictionary) — a conflicting code would silently
        re-label columns encoded earlier, so it raises ``ValueError``.
        """
        with self._lock:
            codes = self._codes
            for code, value in enumerate(values):
                existing = codes.get(value)
                if existing is None:
                    if len(codes) != code:
                        raise ValueError(
                            f"interner snapshot conflict: value {value!r} wants "
                            f"code {code} but the next free code is {len(codes)}"
                        )
                    codes[value] = code
                elif existing != code:
                    raise ValueError(
                        f"interner snapshot conflict: value {value!r} is coded "
                        f"{existing} here but {code} in the snapshot"
                    )


#: The default interner shared by every relation in the process.
DEFAULT_INTERNER = ValueInterner()


@dataclass
class ColumnarRelation:
    """A relation as dictionary-encoded columns plus a probability vector.

    ``columns[i]`` holds the ``int64`` codes of attribute ``attributes[i]``
    (all the same length); ``probabilities`` is the float64 ``P`` column.
    Instances are cheap views — operators share column arrays whenever the
    operation allows it, so treat the arrays as immutable.
    """

    name: str
    attributes: tuple[str, ...]
    columns: tuple["np.ndarray", ...]
    probabilities: "np.ndarray"

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return int(len(self.probabilities))

    def column(self, attribute: str) -> "np.ndarray":
        return self.columns[self.attributes.index(attribute)]

    def take(self, indices: "np.ndarray", name: Optional[str] = None) -> "ColumnarRelation":
        """Gather the given row indices into a new relation."""
        return ColumnarRelation(
            name if name is not None else self.name,
            self.attributes,
            tuple(col[indices] for col in self.columns),
            self.probabilities[indices],
        )

    def to_relation(self, interner: Optional[ValueInterner] = None) -> Relation:
        """Decode into the row representation (duplicates ⊕-combine via
        :meth:`Relation.add`, the shared duplicate policy of both backends)."""
        interner = interner if interner is not None else DEFAULT_INTERNER
        decoded = [interner.decode_column(col) for col in self.columns]
        out = Relation(self.name, self.attributes)
        for i, prob in enumerate(self.probabilities):
            out.add(tuple(col[i] for col in decoded), float(min(1.0, max(0.0, prob))))
        return out


def empty(name: str, attributes: Sequence[str]) -> ColumnarRelation:
    """An empty columnar relation with the given schema."""
    _require_numpy()
    attributes = tuple(attributes)
    return ColumnarRelation(
        name,
        attributes,
        tuple(np.empty(0, dtype=np.int64) for _ in attributes),
        np.empty(0, dtype=np.float64),
    )


def from_relation(
    relation: Relation, interner: Optional[ValueInterner] = None
) -> ColumnarRelation:
    """Encode a row relation into columns (the scan-boundary conversion)."""
    _require_numpy()
    interner = interner if interner is not None else DEFAULT_INTERNER
    if not relation.rows:
        return empty(relation.name, relation.attributes)
    value_columns = list(zip(*relation.rows))
    return ColumnarRelation(
        relation.name,
        relation.attributes,
        tuple(interner.encode_column(col) for col in value_columns),
        np.fromiter(relation.rows.values(), dtype=np.float64, count=len(relation.rows)),
    )


# -- grouping machinery -------------------------------------------------------


def _group_ids(columns: Sequence["np.ndarray"], length: int) -> tuple["np.ndarray", int]:
    """Dense group ids (0..k-1) for the row tuples of *columns*.

    Multi-column keys are folded pairwise: the running key is re-densified
    with ``np.unique`` before each combine, so the intermediate products
    stay far below ``int64`` overflow (≤ rows × interner size).
    """
    if length == 0:
        return np.empty(0, dtype=np.int64), 0
    if not columns:
        return np.zeros(length, dtype=np.int64), 1
    key = columns[0]
    for col in columns[1:]:
        _, key = np.unique(key, return_inverse=True)
        key = key * (np.int64(col.max()) + 1 if len(col) else 1) + col
    uniques, inverse = np.unique(key, return_inverse=True)
    return inverse.astype(np.int64, copy=False), int(len(uniques))


def _grouped_oplus(
    ids: "np.ndarray", group_count: int, probabilities: "np.ndarray"
) -> "np.ndarray":
    """Per-group ⊕ = 1 - Π(1-pᵢ), computed in log space.

    ``log1p(-p)`` maps each probability to ``log(1-p)`` (``-inf`` at exactly
    1, which correctly saturates its group at probability 1); ``bincount``
    sums per group; ``-expm1`` maps back without catastrophic cancellation
    for groups whose combined probability is tiny.
    """
    clipped = np.clip(probabilities, 0.0, 1.0)
    with np.errstate(divide="ignore"):
        log_not = np.log1p(-clipped)
    sums = np.bincount(ids, weights=log_not, minlength=group_count)
    return -np.expm1(sums)


# -- operators ----------------------------------------------------------------


def select_mask(relation: ColumnarRelation, mask: "np.ndarray") -> ColumnarRelation:
    """Rows where the boolean *mask* holds; probabilities kept."""
    return relation.take(np.flatnonzero(mask))


def select_eq(
    relation: ColumnarRelation,
    attribute: str,
    value: object,
    interner: Optional[ValueInterner] = None,
) -> ColumnarRelation:
    """Equality selection σ_{attribute = value} on the code column."""
    interner = interner if interner is not None else DEFAULT_INTERNER
    code = interner.code_of(value)
    if code is None:
        return empty(relation.name, relation.attributes)
    return select_mask(relation, relation.column(attribute) == code)


def independent_project(
    relation: ColumnarRelation, attributes: Sequence[str]
) -> ColumnarRelation:
    """γ_{attributes, ⊕}: group on *attributes*, ⊕-combine probabilities.

    The defining operator of safe plans (Sec. 6), here as one grouped
    log-space aggregation — see :func:`_grouped_oplus`.
    """
    attributes = tuple(attributes)
    indices = [relation.attributes.index(a) for a in attributes]
    n = len(relation)
    if n == 0:
        return empty(relation.name, attributes)
    key_columns = [relation.columns[i] for i in indices]
    ids, group_count = _group_ids(key_columns, n)
    probabilities = _grouped_oplus(ids, group_count, relation.probabilities)
    # Any group member supplies the key values: all rows of a group agree
    # on exactly the projected columns.
    representative = np.zeros(group_count, dtype=np.int64)
    representative[ids] = np.arange(n)
    return ColumnarRelation(
        relation.name,
        attributes,
        tuple(col[representative] for col in key_columns),
        probabilities,
    )


def join(
    left: ColumnarRelation, right: ColumnarRelation, name: str = "join"
) -> ColumnarRelation:
    """Natural join ⋈ multiplying probabilities (Sec. 6 operator (1)).

    Shared-attribute codes from both sides are densified together, the
    right side is sorted by key, and ``np.searchsorted`` finds each left
    row's matching range — a sort-based hash join with no per-row Python.
    Output attributes are the left attributes followed by the right-only
    attributes, matching :func:`repro.relational.algebra.join`.
    """
    shared = [a for a in left.attributes if a in right.attributes]
    right_extra = [i for i, a in enumerate(right.attributes) if a not in left.attributes]
    out_attributes = left.attributes + tuple(right.attributes[i] for i in right_extra)
    n_left, n_right = len(left), len(right)
    if n_left == 0 or n_right == 0:
        return empty(name, out_attributes)

    concatenated = [
        np.concatenate([left.column(a), right.column(a)]) for a in shared
    ]
    ids, _ = _group_ids(concatenated, n_left + n_right)
    left_keys, right_keys = ids[:n_left], ids[n_left:]

    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    starts = np.searchsorted(sorted_keys, left_keys, side="left")
    ends = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    left_index = np.repeat(np.arange(n_left), counts)
    # Position within each left row's match range, then into sorted order.
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_index = order[np.repeat(starts, counts) + offsets]

    return ColumnarRelation(
        name,
        out_attributes,
        tuple(col[left_index] for col in left.columns)
        + tuple(right.columns[i][right_index] for i in right_extra),
        left.probabilities[left_index] * right.probabilities[right_index],
    )


def cartesian_product(
    left: ColumnarRelation, right: ColumnarRelation, name: str = "product"
) -> ColumnarRelation:
    """Cross product ×, multiplying probabilities; attribute names must differ."""
    if set(left.attributes) & set(right.attributes):
        raise ValueError("cartesian product requires disjoint attribute names")
    return join(left, right, name)


def union(
    left: ColumnarRelation, right: ColumnarRelation, name: str = "union"
) -> ColumnarRelation:
    """Probabilistic union: same-schema rows combined with ⊕.

    The duplicate-row policy matches :meth:`Relation.add` and the row
    backend's union: a row present on both sides gets ``u ⊕ v``.
    """
    if left.attributes != right.attributes:
        raise ValueError("union requires identical schemas")
    stacked = ColumnarRelation(
        name,
        left.attributes,
        tuple(
            np.concatenate([lcol, rcol])
            for lcol, rcol in zip(left.columns, right.columns)
        ),
        np.concatenate([left.probabilities, right.probabilities]),
    )
    return independent_project(stacked, left.attributes)


def boolean_oplus(relation: ColumnarRelation) -> float:
    """⊕ over all rows: the probability output of a Boolean plan root."""
    if len(relation) == 0:
        return 0.0
    clipped = np.clip(relation.probabilities, 0.0, 1.0)
    with np.errstate(divide="ignore"):
        log_not = np.log1p(-clipped)
    return float(-np.expm1(log_not.sum()))


def columnar_from_rows(
    name: str,
    attributes: Iterable[str],
    rows: Iterable[tuple],
    probabilities: Iterable[float],
) -> ColumnarRelation:
    """Build directly from parallel row/probability iterables (test helper)."""
    _require_numpy()
    relation = Relation(name, tuple(attributes))
    for values, prob in zip(rows, probabilities):
        relation.add(values, prob)
    return from_relation(relation)
