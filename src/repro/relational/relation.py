"""In-memory relations with an optional probability column.

The paper represents a TID inside a standard relational database by giving
every relation one extra attribute ``P`` holding the tuple's marginal
probability (Sec. 2). :class:`Relation` follows that convention: rows map a
value tuple to its probability; a deterministic relation simply has every
probability equal to 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping


@dataclass
class Relation:
    """A named relation: attribute list plus ``{value-tuple: probability}``."""

    name: str
    attributes: tuple[str, ...]
    rows: dict[tuple, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.attributes, tuple):
            self.attributes = tuple(self.attributes)
        for values, prob in self.rows.items():
            self._check_row(values, prob)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def _check_row(self, values: tuple, prob: float) -> None:
        if len(values) != self.arity:
            raise ValueError(
                f"{self.name}: row {values!r} has arity {len(values)}, "
                f"expected {self.arity}"
            )
        if not -1e-9 <= prob <= 1 + 1e-9:
            raise ValueError(f"{self.name}: probability {prob} out of [0, 1]")

    def add(self, values: Iterable, prob: float = 1.0) -> None:
        """Insert a row; a duplicate row ⊕-combines with the existing one.

        This is the single duplicate-row policy of the engine, shared by
        the row and columnar backends: adding the same value tuple twice
        yields ``u ⊕ v = 1 - (1-u)(1-v)``, treating the two insertions as
        independent evidence for the tuple (the Sec. 6 aggregate). To
        overwrite a row's probability instead, use :meth:`replace`.
        """
        values = tuple(values)
        self._check_row(values, prob)
        existing = self.rows.get(values)
        if existing is None:
            self.rows[values] = float(prob)
        else:
            self.rows[values] = 1.0 - (1.0 - existing) * (1.0 - float(prob))

    def replace(self, values: Iterable, prob: float) -> None:
        """Set a row's probability outright (insert when absent)."""
        values = tuple(values)
        self._check_row(values, prob)
        self.rows[values] = float(prob)

    def probability(self, values: Iterable) -> float:
        """Marginal probability of the tuple; 0.0 when absent."""
        return self.rows.get(tuple(values), 0.0)

    def __contains__(self, values: object) -> bool:
        return tuple(values) in self.rows  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def items(self) -> Iterator[tuple[tuple, float]]:
        """Iterate over (values, probability) pairs."""
        return iter(self.rows.items())

    def active_domain(self) -> frozenset:
        """All values occurring in any row."""
        return frozenset(v for values in self.rows for v in values)

    def copy(self) -> "Relation":
        return Relation(self.name, self.attributes, dict(self.rows))

    def map_probabilities(self, fn: Callable[[float], float]) -> "Relation":
        """A copy with every probability transformed by *fn*."""
        return Relation(
            self.name,
            self.attributes,
            {values: fn(p) for values, p in self.rows.items()},
        )

    def is_deterministic(self, tolerance: float = 1e-12) -> bool:
        """True when every tuple has probability 1."""
        return all(abs(p - 1.0) <= tolerance for p in self.rows.values())

    def rename(self, name: str) -> "Relation":
        return Relation(name, self.attributes, dict(self.rows))

    def __str__(self) -> str:
        header = f"{self.name}({', '.join(self.attributes)})"
        lines = [header] + [
            f"  {values} : {prob:.6g}" for values, prob in sorted(self.rows.items(), key=lambda kv: repr(kv[0]))
        ]
        return "\n".join(lines)


def relation_from_rows(
    name: str,
    attributes: Iterable[str],
    rows: Iterable[tuple] | Mapping[tuple, float],
    default_probability: float = 1.0,
) -> Relation:
    """Build a relation from row tuples or a ``{row: probability}`` mapping."""
    relation = Relation(name, tuple(attributes))
    if isinstance(rows, Mapping):
        for values, prob in rows.items():
            relation.add(values, prob)
    else:
        for values in rows:
            relation.add(values, default_probability)
    return relation
