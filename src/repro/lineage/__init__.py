"""Lineage: grounding queries over TIDs into Boolean formulas."""

from .build import (
    Lineage,
    VariablePool,
    answer_lineages,
    lineage_of_cq,
    lineage_of_sentence,
    lineage_of_ucq,
)

__all__ = [
    "Lineage",
    "VariablePool",
    "answer_lineages",
    "lineage_of_cq",
    "lineage_of_sentence",
    "lineage_of_ucq",
]
