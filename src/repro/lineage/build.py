"""Lineage construction: grounding a query into a Boolean formula.

Implements the inductive definition from the paper's appendix ("Lineage of an
FO sentence"): each possible tuple becomes a Boolean variable, conjunction /
disjunction map to ∧ / ∨, and the quantifiers expand over the finite domain.

Two builders are provided:

* :func:`lineage_of_sentence` — the generic inductive construction, works for
  any FO sentence (cost ``|DOM|^quantifier-depth``);
* :func:`lineage_of_ucq` — a join-based construction for UCQs that only
  touches stored tuples, producing the positive DNF lineage directly.

Both share a :class:`VariablePool` mapping facts to variable indices, so that
their outputs are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..booleans.expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BOr,
    BVar,
    bnot,
    bvar,
)
from ..core.tid import TupleIndependentDatabase
from ..logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
)
from ..logic.semantics import Fact, ground_atom
from ..logic.terms import Const, Var


@dataclass
class VariablePool:
    """Assigns consecutive integer indices to facts, remembering probabilities.

    The pool also keeps the interned :class:`BVar` node per fact, so
    grounding a fact that was seen before returns the existing literal
    object without touching the kernel's unique table.
    """

    var_of_fact: dict[Fact, int] = field(default_factory=dict)
    fact_of_var: list[Fact] = field(default_factory=list)
    probabilities: list[float] = field(default_factory=list)
    node_of_var: list[BVar] = field(default_factory=list)

    def variable(self, fact: Fact, probability: float) -> int:
        index = self.var_of_fact.get(fact)
        if index is None:
            index = len(self.fact_of_var)
            self.var_of_fact[fact] = index
            self.fact_of_var.append(fact)
            self.probabilities.append(probability)
            self.node_of_var.append(bvar(index))
        return index

    def literal(self, fact: Fact, probability: float) -> BVar:
        """The interned literal node for *fact*, registering it if new."""
        return self.node_of_var[self.variable(fact, probability)]

    def probability_map(self) -> dict[int, float]:
        return dict(enumerate(self.probabilities))

    def __len__(self) -> int:
        return len(self.fact_of_var)


@dataclass
class Lineage:
    """A grounded query: the Boolean expression plus the fact/variable maps."""

    expr: BExpr
    pool: VariablePool

    @property
    def variable_count(self) -> int:
        return len(self.pool)

    def probabilities(self) -> dict[int, float]:
        """``{variable index: marginal probability}`` for WMC engines."""
        return self.pool.probability_map()

    def fact(self, index: int) -> Fact:
        return self.pool.fact_of_var[index]


def lineage_of_sentence(
    sentence: Formula,
    db: TupleIndependentDatabase,
    domain: Optional[tuple] = None,
    pool: Optional[VariablePool] = None,
) -> Lineage:
    """The lineage F_{Q,DOM} of an FO sentence over a TID.

    A ground atom whose tuple is absent from the database (marginal 0)
    grounds to *false*; every stored tuple grounds to its Boolean variable.
    Simplification happens on the fly through the smart constructors, so the
    returned expression never mentions impossible tuples.
    """
    values = db.domain() if domain is None else tuple(domain)
    pool = pool if pool is not None else VariablePool()
    env: dict[Var, object] = {}

    def walk(f: Formula) -> BExpr:
        if isinstance(f, Top):
            return B_TRUE
        if isinstance(f, Bottom):
            return B_FALSE
        if isinstance(f, Atom):
            fact = ground_atom(f, env)
            probability = db.probability_of_fact(fact[0], fact[1])
            if probability <= 0.0:
                return B_FALSE
            return pool.literal(fact, probability)
        if isinstance(f, Not):
            return bnot(walk(f.sub))
        if isinstance(f, And):
            return BAnd.of(walk(p) for p in f.parts)
        if isinstance(f, Or):
            return BOr.of(walk(p) for p in f.parts)
        if isinstance(f, (Exists, Forall)):
            missing = object()
            previous = env.get(f.var, missing)
            parts = []
            for value in values:
                env[f.var] = value
                parts.append(walk(f.sub))
            if previous is missing:
                env.pop(f.var, None)
            else:
                env[f.var] = previous
            return BOr.of(parts) if isinstance(f, Exists) else BAnd.of(parts)
        raise TypeError(f"unknown formula node {f!r}")

    if sentence.free_variables():
        raise ValueError("lineage requires a sentence (no free variables)")
    return Lineage(walk(sentence), pool)


def _match_atoms(
    atoms: tuple[Atom, ...],
    db: TupleIndependentDatabase,
    binding: dict[Var, object],
) -> Iterator[dict[Var, object]]:
    """All total matches of the atom list against stored tuples."""
    if not atoms:
        yield dict(binding)
        return
    atom, rest = atoms[0], atoms[1:]
    relation = db.relations.get(atom.predicate)
    if relation is None:
        return
    for values, probability in relation.items():
        if probability <= 0.0 or len(values) != atom.arity:
            continue
        trail: list[Var] = []
        ok = True
        for term, value in zip(atom.args, values):
            if isinstance(term, Const):
                if term.value != value:
                    ok = False
                    break
            else:
                bound = binding.get(term)
                if bound is None:
                    binding[term] = value
                    trail.append(term)
                elif bound != value:
                    ok = False
                    break
        if ok:
            yield from _match_atoms(rest, db, binding)
        for var in trail:
            del binding[var]


def lineage_of_cq(
    query: ConjunctiveQuery,
    db: TupleIndependentDatabase,
    pool: Optional[VariablePool] = None,
) -> Lineage:
    """Join-based lineage of a Boolean CQ: the positive DNF over matches."""
    pool = pool if pool is not None else VariablePool()
    terms: list[BExpr] = []
    # Order atoms so highly selective (constant-rich) atoms bind first.
    ordered = tuple(
        sorted(query.atoms, key=lambda a: -sum(isinstance(t, Const) for t in a.args))
    )
    for match in _match_atoms(ordered, db, {}):
        factors = []
        for atom in query.atoms:
            fact = ground_atom(atom, match)
            probability = db.probability_of_fact(fact[0], fact[1])
            factors.append(pool.literal(fact, probability))
        terms.append(BAnd.of(factors))
    return Lineage(BOr.of(terms), pool)


def lineage_of_ucq(
    query: UnionOfConjunctiveQueries,
    db: TupleIndependentDatabase,
    pool: Optional[VariablePool] = None,
) -> Lineage:
    """Join-based lineage of a UCQ: disjunction of the per-CQ lineages."""
    pool = pool if pool is not None else VariablePool()
    parts = [lineage_of_cq(disjunct, db, pool).expr for disjunct in query]
    return Lineage(BOr.of(parts), pool)


def answer_lineages(
    query: ConjunctiveQuery,
    head: tuple[Var, ...],
    db: TupleIndependentDatabase,
    pool: Optional[VariablePool] = None,
) -> tuple[dict[tuple, BExpr], VariablePool]:
    """Per-answer lineage for a non-Boolean CQ.

    *head* lists the free (output) variables; all others are existential.
    Returns ``{answer values: lineage}`` plus the shared variable pool —
    this is the "intensional semantics" of Fuhr and Rölleke that the paper
    recalls in the Terminology paragraph.
    """
    pool = pool if pool is not None else VariablePool()
    grouped: dict[tuple, list[BExpr]] = {}
    ordered = tuple(
        sorted(query.atoms, key=lambda a: -sum(isinstance(t, Const) for t in a.args))
    )
    for match in _match_atoms(ordered, db, {}):
        key = tuple(match[v] for v in head)
        factors = []
        for atom in query.atoms:
            fact = ground_atom(atom, match)
            probability = db.probability_of_fact(fact[0], fact[1])
            factors.append(pool.literal(fact, probability))
        grouped.setdefault(key, []).append(BAnd.of(factors))
    return {key: BOr.of(parts) for key, parts in grouped.items()}, pool
