"""Extensional query plans (Sec. 6).

A plan is a tree of operators over the probabilistic relations of a TID:

* leaf: scan one relation, renaming its columns to the atom's variables;
* ``JoinNode``: natural join ⋈, multiplying probabilities;
* ``ProjectNode``: independent project γ, ⊕-combining probabilities.

Executing a plan for a Boolean query yields a single number — the
probability the plan *claims*. For safe plans that number equals p(Q)
(Theorem: safe plans compute PQE); for any other plan of a self-join-free CQ
it is an upper bound (Theorem 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from ..core.tid import TupleIndependentDatabase
from ..engine.stats import OperatorProfile
from ..logic.formulas import Atom
from ..logic.terms import Const, Var
from ..relational.algebra import independent_project, join
from ..relational.relation import Relation


@dataclass(frozen=True)
class ScanNode:
    """Scan an atom's relation; columns are named after the atom's variables.

    Constants in the atom act as selections; repeated variables as equality
    filters. Duplicate rows arising from projection onto the variable
    columns are NOT ⊕-combined here — a scan is purely a rename/filter.
    """

    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class JoinNode:
    """Natural join of two subplans, multiplying probabilities."""

    left: "PlanNode"
    right: "PlanNode"

    def __str__(self) -> str:
        return f"({self.left} ⋈ {self.right})"


@dataclass(frozen=True)
class ProjectNode:
    """Independent project: keep *variables*, ⊕-combine grouped rows."""

    child: "PlanNode"
    variables: tuple[Var, ...]

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"γ[{names}]({self.child})"


PlanNode = Union[ScanNode, JoinNode, ProjectNode]


def plan_variables(plan: PlanNode) -> frozenset[Var]:
    """The output variables (schema) of a plan node."""
    if isinstance(plan, ScanNode):
        return plan.atom.free_variables()
    if isinstance(plan, JoinNode):
        return plan_variables(plan.left) | plan_variables(plan.right)
    return frozenset(plan.variables)


def plan_atoms(plan: PlanNode) -> tuple[Atom, ...]:
    """All atoms scanned by the plan, left-to-right."""
    if isinstance(plan, ScanNode):
        return (plan.atom,)
    if isinstance(plan, JoinNode):
        return plan_atoms(plan.left) + plan_atoms(plan.right)
    return plan_atoms(plan.child)


def execute(
    plan: PlanNode,
    db: TupleIndependentDatabase,
    profile: Optional[list[OperatorProfile]] = None,
) -> Relation:
    """Evaluate a plan, producing a relation keyed by variable names.

    *profile*, when given, collects one
    :class:`~repro.engine.stats.OperatorProfile` per operator in execution
    order — the same instrumentation the columnar backend emits, so
    ``explain()`` output is uniform across backends.
    """
    if isinstance(plan, ScanNode):
        start = time.perf_counter()
        out = _scan(plan.atom, db)
        if profile is not None:
            relation = db.relations.get(plan.atom.predicate)
            rows_in = len(relation) if relation is not None else 0
            profile.append(
                OperatorProfile(
                    f"scan {plan.atom}", rows_in, len(out), time.perf_counter() - start
                )
            )
        return out
    if isinstance(plan, JoinNode):
        left = execute(plan.left, db, profile)
        right = execute(plan.right, db, profile)
        start = time.perf_counter()
        out = join(left, right)
        if profile is not None:
            profile.append(
                OperatorProfile(
                    "join ⋈", len(left) + len(right), len(out), time.perf_counter() - start
                )
            )
        return out
    if isinstance(plan, ProjectNode):
        child = execute(plan.child, db, profile)
        start = time.perf_counter()
        out = independent_project(child, [v.name for v in plan.variables])
        if profile is not None:
            names = ", ".join(v.name for v in plan.variables)
            profile.append(
                OperatorProfile(
                    f"project γ[{names}]", len(child), len(out), time.perf_counter() - start
                )
            )
        return out
    raise TypeError(f"unknown plan node {plan!r}")


def execute_boolean(
    plan: PlanNode,
    db: TupleIndependentDatabase,
    profile: Optional[list[OperatorProfile]] = None,
) -> float:
    """Evaluate a Boolean plan: the plan must project down to zero columns."""
    result = execute(plan, db, profile)
    if result.attributes:
        raise ValueError(
            f"plan output still has columns {result.attributes}; "
            "wrap it in a final ProjectNode((), ...)"
        )
    if not result.rows:
        return 0.0
    return result.rows[()]


def _scan(atom: Atom, db: TupleIndependentDatabase) -> Relation:
    """Scan + rename + select for one atom.

    An atom whose arity disagrees with the stored relation is a schema
    error and raises :class:`ValueError` naming the predicate — silently
    skipping mismatched rows would turn a malformed query into an empty
    (hence wrong) result.
    """
    relation = db.relations.get(atom.predicate)
    variables: list[Var] = []
    positions: list[int] = []
    seen: dict[Var, int] = {}
    for i, term in enumerate(atom.args):
        if isinstance(term, Var) and term not in seen:
            seen[term] = i
            variables.append(term)
            positions.append(i)
    out = Relation(atom.predicate, tuple(v.name for v in variables))
    if relation is None:
        return out
    if relation.arity != atom.arity:
        raise ValueError(
            f"scan of {atom.predicate}: relation arity {relation.arity} does "
            f"not match atom {atom} (arity {atom.arity})"
        )
    for values, prob in relation.items():
        if len(values) != atom.arity:
            raise ValueError(
                f"scan of {atom.predicate}: row {values!r} has arity "
                f"{len(values)}, expected {atom.arity}"
            )
        ok = True
        for i, term in enumerate(atom.args):
            if isinstance(term, Const):
                if values[i] != term.value:
                    ok = False
                    break
            else:
                if values[i] != values[seen[term]]:
                    ok = False
                    break
        if ok:
            out.add(tuple(values[i] for i in positions), prob)
    return out


def project_boolean(child: PlanNode) -> ProjectNode:
    """Final projection onto zero columns (the Boolean root)."""
    return ProjectNode(child, ())
