"""Columnar execution of extensional plans (the vectorized backend).

Runs the same plan trees as :mod:`repro.plans.plan` — ``ScanNode`` /
``JoinNode`` / ``ProjectNode`` — end-to-end over
:class:`~repro.relational.columnar.ColumnarRelation`, so the whole
evaluation is a short sequence of numpy array passes. Differential tests
pin the two backends to agree within 1e-9 on every safe query; the engine
picks between them through ``ProbabilisticDatabase.backend``
(``"rows"`` / ``"columnar"`` / ``"auto"`` — auto selects columnar once the
database holds at least :data:`COLUMNAR_AUTO_THRESHOLD` facts and numpy is
importable).

The only per-row Python is the one-time dictionary encoding of each base
relation, memoized per ``(database version, predicate)`` on the database
instance itself — repeat queries against an unchanged database scan
pre-encoded columns, and the memo dies with the database.

Both executors accept an optional *profile* list and append one
:class:`~repro.engine.stats.OperatorProfile` per operator (rows in, rows
out, seconds), which the façade surfaces through ``QueryAnswer.stats`` and
``explain()``.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.tid import TupleIndependentDatabase
from ..engine.stats import OperatorProfile
from ..logic.formulas import Atom
from ..logic.terms import Const, Var
from ..relational import columnar
from ..relational.columnar import NUMPY_AVAILABLE, ColumnarRelation
from .plan import JoinNode, PlanNode, ProjectNode, ScanNode

if NUMPY_AVAILABLE:  # pragma: no branch - numpy is a declared dependency
    import numpy as np

__all__ = [
    "COLUMNAR_AUTO_THRESHOLD",
    "available",
    "execute_boolean_columnar",
    "execute_columnar",
    "seed_scan_cache",
]

#: ``backend="auto"`` switches to columnar at this many stored facts: below
#: it, dict lookups beat array setup; above it, vectorized operators win by
#: orders of magnitude (benchmark E16).
COLUMNAR_AUTO_THRESHOLD = 5000


def available() -> bool:
    """True when the columnar backend can run (numpy importable)."""
    return NUMPY_AVAILABLE


# -- scan cache ---------------------------------------------------------------
#
# Stored on the database instance as ``(version, {predicate: encoded
# relation})``; the version check drops every entry the moment the database
# mutates, and the memo is garbage-collected with the database. Races
# between batch workers at worst encode the same relation twice — both
# results are equivalent.

_SCAN_CACHE_ATTR = "_columnar_scan_cache"


def _encoded_relation(
    db: TupleIndependentDatabase, predicate: str
) -> Optional[ColumnarRelation]:
    relation = db.relations.get(predicate)
    if relation is None:
        return None
    cached: Optional[tuple[int, dict[str, ColumnarRelation]]]
    cached = getattr(db, _SCAN_CACHE_ATTR, None)
    if cached is None or cached[0] != db.version:
        cached = (db.version, {})
        setattr(db, _SCAN_CACHE_ATTR, cached)
    encoded = cached[1].get(predicate)
    if encoded is None:
        encoded = columnar.from_relation(relation)
        cached[1][predicate] = encoded
    return encoded


def seed_scan_cache(
    db: TupleIndependentDatabase, encoded: dict[str, ColumnarRelation]
) -> None:
    """Pre-populate the per-database scan memo with *encoded* relations.

    Used by the multi-process server: a worker that attaches shared-memory
    shards (:mod:`repro.relational.shm`) already holds every base relation
    in columnar form, so seeding the memo makes the first scan of each
    predicate zero-copy instead of re-encoding the rows.
    """
    setattr(db, _SCAN_CACHE_ATTR, (db.version, dict(encoded)))


# -- plan execution -----------------------------------------------------------


def execute_columnar(
    plan: PlanNode,
    db: TupleIndependentDatabase,
    profile: Optional[list[OperatorProfile]] = None,
) -> ColumnarRelation:
    """Evaluate a plan columnar, producing codes keyed by variable names."""
    if isinstance(plan, ScanNode):
        start = time.perf_counter()
        out = _scan_columnar(plan.atom, db)
        if profile is not None:
            relation = db.relations.get(plan.atom.predicate)
            rows_in = len(relation) if relation is not None else 0
            profile.append(
                OperatorProfile(
                    f"scan {plan.atom}", rows_in, len(out), time.perf_counter() - start
                )
            )
        return out
    if isinstance(plan, JoinNode):
        left = execute_columnar(plan.left, db, profile)
        right = execute_columnar(plan.right, db, profile)
        start = time.perf_counter()
        out = columnar.join(left, right)
        if profile is not None:
            profile.append(
                OperatorProfile(
                    "join ⋈", len(left) + len(right), len(out), time.perf_counter() - start
                )
            )
        return out
    if isinstance(plan, ProjectNode):
        child = execute_columnar(plan.child, db, profile)
        start = time.perf_counter()
        out = columnar.independent_project(child, [v.name for v in plan.variables])
        if profile is not None:
            names = ", ".join(v.name for v in plan.variables)
            profile.append(
                OperatorProfile(
                    f"project γ[{names}]", len(child), len(out), time.perf_counter() - start
                )
            )
        return out
    raise TypeError(f"unknown plan node {plan!r}")


def execute_boolean_columnar(
    plan: PlanNode,
    db: TupleIndependentDatabase,
    profile: Optional[list[OperatorProfile]] = None,
) -> float:
    """Evaluate a Boolean plan: the plan must project down to zero columns."""
    result = execute_columnar(plan, db, profile)
    if result.attributes:
        raise ValueError(
            f"plan output still has columns {result.attributes}; "
            "wrap it in a final ProjectNode((), ...)"
        )
    if len(result) == 0:
        return 0.0
    return float(result.probabilities[0])


def _scan_columnar(atom: Atom, db: TupleIndependentDatabase) -> ColumnarRelation:
    """Scan + rename + select for one atom, vectorized.

    Mirrors :func:`repro.plans.plan._scan`: constants become equality
    selections, repeated variables become diagonal filters, and columns are
    renamed to the atom's variables. An atom whose arity disagrees with the
    stored relation is a schema error, never an empty result.
    """
    variables: list[Var] = []
    positions: list[int] = []
    seen: dict[Var, int] = {}
    for i, term in enumerate(atom.args):
        if isinstance(term, Var) and term not in seen:
            seen[term] = i
            variables.append(term)
            positions.append(i)
    out_attributes = tuple(v.name for v in variables)

    base = _encoded_relation(db, atom.predicate)
    if base is None:
        return columnar.empty(atom.predicate, out_attributes)
    if base.arity != atom.arity:
        raise ValueError(
            f"scan of {atom.predicate}: relation arity {base.arity} does not "
            f"match atom {atom} (arity {atom.arity})"
        )

    mask = None
    for i, term in enumerate(atom.args):
        if isinstance(term, Const):
            code = columnar.DEFAULT_INTERNER.code_of(term.value)
            condition = (
                base.columns[i] == code
                if code is not None
                else np.zeros(len(base), dtype=bool)
            )
        elif seen[term] != i:
            condition = base.columns[i] == base.columns[seen[term]]
        else:
            continue
        mask = condition if mask is None else mask & condition

    indices = (
        np.arange(len(base), dtype=np.int64) if mask is None else np.flatnonzero(mask)
    )
    return ColumnarRelation(
        atom.predicate,
        out_attributes,
        tuple(base.columns[i][indices] for i in positions),
        base.probabilities[indices],
    )
