"""Safe-plan construction for self-join-free conjunctive queries.

A *safe plan* (Sec. 6) is an extensional plan whose output probability is
exactly p(Q). The classic recursive algorithm (Dalvi–Suciu) builds one for
every hierarchical self-join-free CQ, and fails precisely on the unsafe
(non-hierarchical ⇒ #P-hard) ones:

1. split the residual atoms into groups connected through not-yet-kept
   variables; var-disjoint (hence, self-join-free, symbol-disjoint) groups
   are independent given the kept columns, so a natural join is safe;
2. a single atom may always be independently projected onto the kept
   columns — distinct tuples of one relation are independent;
3. a connected multi-atom group needs a *root* variable occurring in every
   atom: grouping it out is an independent project because the events for
   distinct root values touch disjoint tuples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..logic.cq import ConjunctiveQuery
from ..logic.formulas import Atom
from ..logic.terms import Var
from .plan import JoinNode, PlanNode, ProjectNode, ScanNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..core.tid import TupleIndependentDatabase


class UnsafePlanError(ValueError):
    """No safe plan exists (the query is not hierarchical)."""


class CostModel:
    """Cardinality estimates for join ordering, from one database snapshot.

    Uses the textbook uniform-distribution model: a group of atoms joins to
    roughly the product of its relation cardinalities, divided by the
    domain size once per *repeated* variable occurrence (each repeat is an
    equality predicate with selectivity ≈ 1/|domain|). Crude, but it only
    has to rank var-disjoint groups — smallest estimated intermediate
    first — so that the left-deep join fold keeps intermediates small.
    """

    def __init__(self, db: "TupleIndependentDatabase"):
        self.sizes = {name: len(rel) for name, rel in db.relations.items()}
        self.domain_size = max(1, len(db.domain()))

    def atom_cardinality(self, atom: Atom) -> int:
        return self.sizes.get(atom.predicate, 0)

    def group_cardinality(self, atoms: tuple[Atom, ...]) -> float:
        estimate = 1.0
        seen: set[Var] = set()
        repeats = 0
        for atom in atoms:
            estimate *= max(1, self.atom_cardinality(atom))
            for var in atom.free_variables():
                if var in seen:
                    repeats += 1
                else:
                    seen.add(var)
        return estimate / (self.domain_size ** repeats)


def safe_plan(
    query: ConjunctiveQuery, db: Optional["TupleIndependentDatabase"] = None
) -> PlanNode:
    """A safe plan for a Boolean self-join-free CQ.

    Raises :class:`UnsafePlanError` when the query is not hierarchical
    (Theorem 4.3's hard side). With *db* given, independent subplans are
    join-ordered by estimated cardinality (smallest intermediate first, see
    :class:`CostModel`) — safety never depends on the order, only the size
    of the intermediates does.
    """
    if query.has_self_joins():
        raise UnsafePlanError("safe plans require a self-join-free query")
    model = CostModel(db) if db is not None else None
    return _build(query.atoms, frozenset(), model)


def try_safe_plan(
    query: ConjunctiveQuery, db: Optional["TupleIndependentDatabase"] = None
) -> Optional[PlanNode]:
    """:func:`safe_plan`, returning None instead of raising."""
    try:
        return safe_plan(query, db)
    except UnsafePlanError:
        return None


def _build(
    atoms: tuple[Atom, ...],
    keep: frozenset[Var],
    model: Optional[CostModel] = None,
) -> PlanNode:
    """A plan with output schema exactly *keep* computing P(∃rest ⋀atoms)."""
    groups = _groups_modulo(atoms, keep)
    if len(groups) > 1:
        groups = _order_groups(groups, model)
        plan: PlanNode = _build(groups[0], keep & _vars(groups[0]), model)
        for group in groups[1:]:
            plan = JoinNode(plan, _build(group, keep & _vars(group), model))
        return _project_to(plan, keep)

    group = groups[0]
    if len(group) == 1:
        ordered = _ordered(keep, _vars(group))
        return ProjectNode(ScanNode(group[0]), ordered)

    residual_roots = [
        v
        for v in sorted(_vars(group) - keep, key=lambda v: v.name)
        if all(v in atom.free_variables() for atom in group)
    ]
    if not residual_roots:
        raise UnsafePlanError(
            f"connected subquery {', '.join(map(str, group))} has no root "
            "variable — the query is not hierarchical"
        )
    root = residual_roots[0]
    inner = _build(group, keep | {root}, model)
    return ProjectNode(inner, _ordered(keep, keep))


def _order_groups(
    groups: list[tuple[Atom, ...]], model: Optional[CostModel]
) -> list[tuple[Atom, ...]]:
    """Smallest-estimated-intermediate first; stable without a cost model."""
    if model is None:
        return groups
    return sorted(
        groups,
        key=lambda group: (
            model.group_cardinality(group),
            tuple(str(atom) for atom in group),
        ),
    )


def _vars(atoms: tuple[Atom, ...]) -> frozenset[Var]:
    return frozenset(v for atom in atoms for v in atom.free_variables())


def _ordered(keep: frozenset[Var], available: frozenset[Var]) -> tuple[Var, ...]:
    return tuple(sorted(keep & available, key=lambda v: v.name))


def _groups_modulo(
    atoms: tuple[Atom, ...], keep: frozenset[Var]
) -> list[tuple[Atom, ...]]:
    """Atoms grouped by connectivity through variables outside *keep*."""
    n = len(atoms)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            shared = (
                atoms[i].free_variables() & atoms[j].free_variables()
            ) - keep
            if shared:
                parent[find(i)] = find(j)
    groups: dict[int, list[Atom]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(atoms[i])
    return [tuple(g) for g in groups.values()]


def _project_to(plan: PlanNode, keep: frozenset[Var]) -> PlanNode:
    from .plan import plan_variables

    if plan_variables(plan) == keep:
        return plan
    return ProjectNode(plan, tuple(sorted(keep, key=lambda v: v.name)))
