"""Extensional plans: safe plans, dissociations, Theorem 6.1 bounds."""

from .plan import (
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    execute,
    execute_boolean,
    plan_atoms,
    plan_variables,
    project_boolean,
)
from .safe_plan import CostModel, UnsafePlanError, safe_plan, try_safe_plan
from .vectorized import (
    COLUMNAR_AUTO_THRESHOLD,
    execute_boolean_columnar,
    execute_columnar,
)
from .dissociation import Dissociation, all_dissociations, minimal_dissociations
from .bounds import (
    BoundsResult,
    extensional_bounds,
    oblivious_database,
    plan_lower_bound,
    plan_upper_bound,
)

__all__ = [
    "JoinNode",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "execute",
    "execute_boolean",
    "plan_atoms",
    "plan_variables",
    "project_boolean",
    "CostModel",
    "UnsafePlanError",
    "safe_plan",
    "try_safe_plan",
    "COLUMNAR_AUTO_THRESHOLD",
    "execute_boolean_columnar",
    "execute_columnar",
    "Dissociation",
    "all_dissociations",
    "minimal_dissociations",
    "BoundsResult",
    "extensional_bounds",
    "oblivious_database",
    "plan_lower_bound",
    "plan_upper_bound",
]
