"""Dissociations: the plan space behind Theorem 6.1's bounds.

Following Gatterbauer–Suciu, every extensional plan for a self-join-free CQ
corresponds to a *dissociation*: extend some atoms with extra variables until
the query becomes hierarchical, duplicate each affected tuple across the
domain values of its new variables (keeping the original probability), and
run the now-safe plan. The plan's output is an upper bound on p(Q), and the
minimum over (minimal) dissociations is the best extensional upper bound.

Example (H0's CQ form): R(x), S(x,y), T(y) is non-hierarchical; adding y to
R — R'(x,y) — or x to T — T'(x,y) — makes it hierarchical. Those two are the
minimal dissociations, i.e. the two "query plans" of Sec. 6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..core.tid import TupleIndependentDatabase
from ..logic.cq import ConjunctiveQuery
from ..logic.formulas import Atom
from ..logic.terms import Var


@dataclass(frozen=True)
class Dissociation:
    """Per-atom sets of added variables (aligned with the query's atoms)."""

    query: ConjunctiveQuery
    added: tuple[frozenset[Var], ...]

    def is_trivial(self) -> bool:
        return all(not extra for extra in self.added)

    def total_added(self) -> int:
        return sum(len(extra) for extra in self.added)

    def dissociated_query(self) -> ConjunctiveQuery:
        """The query over the widened relations ``R__diss``.

        Added variables are appended to the atom's argument list in sorted
        order; untouched atoms keep their original relation name.
        """
        atoms = []
        for atom, extra in zip(self.query.atoms, self.added):
            if not extra:
                atoms.append(atom)
                continue
            ordered = tuple(sorted(extra, key=lambda v: v.name))
            atoms.append(
                Atom(atom.predicate + "__diss", atom.args + ordered)
            )
        return ConjunctiveQuery(tuple(atoms))

    def dissociated_database(
        self, db: TupleIndependentDatabase
    ) -> TupleIndependentDatabase:
        """Copy *db*, materializing the widened relations.

        Every original tuple of a dissociated relation is duplicated once per
        combination of domain values for the added variables, keeping its
        original probability — the copies are treated as independent, which
        is exactly the relaxation that makes the plan an upper bound.
        """
        result = db.copy()
        domain = db.domain()
        for atom, extra in zip(self.query.atoms, self.added):
            if not extra:
                continue
            source = db.relations.get(atom.predicate)
            arity = atom.arity + len(extra)
            widened = result.add_relation(
                atom.predicate + "__diss",
                tuple(f"a{i}" for i in range(arity)),
            )
            if source is None:
                continue
            for values, prob in source.items():
                for suffix in itertools.product(domain, repeat=len(extra)):
                    widened.add(values + suffix, prob)
        return result

    def __str__(self) -> str:
        parts = []
        for atom, extra in zip(self.query.atoms, self.added):
            if extra:
                names = ", ".join(v.name for v in sorted(extra, key=lambda v: v.name))
                parts.append(f"{atom} + ({names})")
        return "; ".join(parts) if parts else "identity"


def all_dissociations(query: ConjunctiveQuery) -> Iterator[Dissociation]:
    """All variable-additions that make the query hierarchical.

    Candidates per atom are subsets of the query variables missing from it.
    Exponential in the query size (queries are small); results are yielded
    in order of total added variables.
    """
    if query.has_self_joins():
        raise ValueError("dissociation bounds require a self-join-free query")
    variables = sorted(query.variables, key=lambda v: v.name)
    options_per_atom = []
    for atom in query.atoms:
        missing = [v for v in variables if v not in atom.free_variables()]
        options = [
            frozenset(combo)
            for size in range(len(missing) + 1)
            for combo in itertools.combinations(missing, size)
        ]
        options_per_atom.append(options)

    candidates = []
    for choice in itertools.product(*options_per_atom):
        dissociation = Dissociation(query, tuple(choice))
        if dissociation.dissociated_query().is_hierarchical():
            candidates.append(dissociation)
    candidates.sort(key=lambda d: d.total_added())
    yield from candidates


def minimal_dissociations(query: ConjunctiveQuery) -> list[Dissociation]:
    """Dissociations minimal under componentwise ⊆ of the added sets.

    Larger dissociations are dominated: they relax more joins and can only
    loosen the upper bound, so pruning them loses nothing (Sec. 6's
    "pruning plans dominated by others").
    """
    minimal: list[Dissociation] = []
    for candidate in all_dissociations(query):
        dominated = any(
            all(small <= big for small, big in zip(kept.added, candidate.added))
            for kept in minimal
        )
        if not dominated:
            minimal.append(candidate)
    return minimal
