"""Theorem 6.1: extensional upper and lower bounds for unsafe queries.

* Upper bound: execute the safe plan of every (minimal) dissociation; each
  result upper-bounds p(Q); return the minimum.
* Lower bound: first rescale every tuple probability to
  ``1 − (1 − p)^(1/k)`` where *k* is the number of times the tuple occurs in
  the DNF lineage of Q on D (the paper's "simple modification" producing
  D₁), then execute the same plans; each result lower-bounds p(Q); return
  the maximum.

Together: ``Plan_{D₁} ≤ p(Q) ≤ Plan_D`` for every plan, and the module
returns the tightest sandwich the plan space offers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..booleans.forms import dnf_occurrence_counts, to_dnf
from ..core.tid import TupleIndependentDatabase
from ..lineage.build import lineage_of_cq
from ..logic.cq import ConjunctiveQuery
from ..sanitize import check_bounds
from .dissociation import Dissociation, minimal_dissociations
from .plan import execute_boolean, project_boolean
from .safe_plan import safe_plan


@dataclass(frozen=True)
class BoundsResult:
    """The extensional sandwich around p(Q)."""

    lower: float
    upper: float
    plan_count: int
    per_plan_upper: tuple[float, ...]
    per_plan_lower: tuple[float, ...]

    def contains(self, probability: float, tolerance: float = 1e-9) -> bool:
        return self.lower - tolerance <= probability <= self.upper + tolerance

    @property
    def width(self) -> float:
        return self.upper - self.lower


def plan_upper_bound(
    query: ConjunctiveQuery,
    db: TupleIndependentDatabase,
    dissociation: Dissociation,
) -> float:
    """One plan's output on D — an upper bound on p(Q) (Theorem 6.1)."""
    widened_query = dissociation.dissociated_query()
    widened_db = dissociation.dissociated_database(db)
    plan = project_boolean(safe_plan(widened_query))
    return execute_boolean(plan, widened_db)


def oblivious_database(
    query: ConjunctiveQuery, db: TupleIndependentDatabase
) -> TupleIndependentDatabase:
    """The paper's D₁: tuple probabilities rescaled to 1 − (1−p)^(1/k).

    *k* counts the tuple's occurrences in the DNF lineage of Q on D (the
    group-by-count(*) query of Sec. 6). Tuples outside the lineage keep
    their probability — they cannot affect the query.
    """
    lineage = lineage_of_cq(query, db)
    counts = dnf_occurrence_counts(to_dnf(lineage.expr))
    result = db.copy()
    for index, fact in enumerate(lineage.pool.fact_of_var):
        k = counts.get(index, 0)
        if k <= 1:
            continue
        name, values = fact
        p = db.probability_of_fact(name, values)
        result.relations[name].replace(values, 1.0 - (1.0 - p) ** (1.0 / k))
    return result


def plan_lower_bound(
    query: ConjunctiveQuery,
    db: TupleIndependentDatabase,
    dissociation: Dissociation,
) -> float:
    """One plan's output on D₁ — a lower bound on p(Q) (Theorem 6.1)."""
    rescaled = oblivious_database(query, db)
    widened_query = dissociation.dissociated_query()
    widened_db = dissociation.dissociated_database(rescaled)
    plan = project_boolean(safe_plan(widened_query))
    return execute_boolean(plan, widened_db)


def extensional_bounds(
    query: ConjunctiveQuery, db: TupleIndependentDatabase
) -> BoundsResult:
    """The min-over-plans upper bound and max-over-plans lower bound."""
    dissociations = minimal_dissociations(query)
    uppers = tuple(plan_upper_bound(query, db, d) for d in dissociations)
    lowers = tuple(plan_lower_bound(query, db, d) for d in dissociations)
    # Sanitizer (no-op unless REPRO_SANITIZE=1): Theorem 6.1 guarantees
    # every lower bound sits below every upper bound.
    check_bounds(
        max(lowers), min(uppers), context="extensional sandwich (Thm 6.1)"
    )
    return BoundsResult(
        lower=max(lowers),
        upper=min(uppers),
        plan_count=len(dissociations),
        per_plan_upper=uppers,
        per_plan_lower=lowers,
    )
