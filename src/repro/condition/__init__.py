"""Conditioning probabilistic databases: ``P(Q | Γ)`` and what-if analysis.

The engine answers ``P(Q)``; this package *maintains* a database under a
constraint set Γ in the sense of Koch–Olteanu ("Conditioning Probabilistic
Databases"): compile Γ once into an interned-kernel circuit, then serve
posteriors, per-fact marginals, top-k most probable worlds and incremental
what-if scenarios against it.

* :mod:`repro.condition.core` — the constraint grammar and the
  compile-once :class:`~repro.condition.core.ConditionedScenario`;
* :mod:`repro.condition.session` — the server-side scenario registry with
  content-addressed ids and LRU-bounded circuit memory.
"""

from .core import (
    ConditionedAnswer,
    ConditionedScenario,
    Constraint,
    ConstraintSet,
    InconsistentConstraints,
    WorldCandidate,
    condition_database,
    conditioned_karp_luby,
)
from .session import (
    ScenarioManager,
    StaleScenarioError,
    UnknownScenarioError,
    scenario_id_of,
)

__all__ = [
    "ConditionedAnswer",
    "ConditionedScenario",
    "Constraint",
    "ConstraintSet",
    "InconsistentConstraints",
    "ScenarioManager",
    "StaleScenarioError",
    "UnknownScenarioError",
    "WorldCandidate",
    "condition_database",
    "conditioned_karp_luby",
    "scenario_id_of",
]
