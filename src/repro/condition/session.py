"""Server-side scenario sessions over compiled constraint circuits.

The server installs a constraint set Γ once (``POST /condition``) and hands
back a *scenario id*; later queries carrying that id are answered against
the compiled :class:`~repro.condition.core.ConditionedScenario` instead of
recompiling Γ per request. This module is the registry behind that
protocol:

* **Content-addressed ids.** ``scenario_id = f(db_fingerprint, Γ_fingerprint)``
  — installing the same constraints against the same database contents is
  idempotent and returns the same id, on any worker.
* **Bounded circuit memory.** Compiled scenarios live in an
  :class:`~repro.engine.cache.LRUCache` keyed ``(db_fp, Γ_fp)`` — the same
  invalidation-by-construction scheme as the engine's answer cache. The id
  table survives eviction: it stores only the constraint *specs*, so a
  resolved id whose circuit was evicted recompiles transparently (counted
  by ``scenario_recompiles_total``).
* **Staleness.** Mutating the database changes its fingerprint; resolving
  a scenario installed against the old contents raises
  :class:`StaleScenarioError` (the conditional answers would silently mix
  old evidence with new data otherwise). Clients re-install.
* **What-if derivations.** ``derived()`` memoizes
  :meth:`~repro.condition.core.ConditionedScenario.whatif` cofactors in
  the same LRU, keyed by the base scenario plus a canonical force
  fingerprint.

Thread safety: the manager's id table takes a
:data:`~repro.sanitize.RANK_SCENARIO` ranked lock held only for
bookkeeping — never across constraint compilation or a conditioned
evaluation, both of which take the scenario *family's* lock of the same
rank (two same-rank locks must never nest; see ``docs/dev.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..core.pdb import ProbabilisticDatabase
from ..core.tid import TupleIndependentDatabase
from ..engine.cache import LRUCache, digest
from ..logic.semantics import Fact
from ..obs.metrics import MetricsRegistry, get_registry
from ..sanitize import RANK_SCENARIO, RankedLock
from .core import ConditionedScenario, Constraint, ConstraintSet

__all__ = [
    "ScenarioManager",
    "StaleScenarioError",
    "UnknownScenarioError",
    "scenario_id_of",
]


class UnknownScenarioError(KeyError):
    """No scenario with this id is installed (or it was dropped)."""


class StaleScenarioError(ValueError):
    """The database changed since the scenario was installed.

    Conditioned answers are only meaningful against the contents Γ was
    grounded over; the client must re-install the constraints (which, being
    content-addressed, yields a fresh id for the new fingerprint).
    """


def scenario_id_of(db_fingerprint: str, constraints: ConstraintSet) -> str:
    """The content-addressed scenario id for Γ over these database contents."""
    return "s" + digest(["scenario", db_fingerprint, constraints.fingerprint()])[:16]


@dataclass
class _Installed:
    """Id-table entry: enough to recompile after eviction, plus bookkeeping."""

    db_fingerprint: str
    constraints: ConstraintSet
    #: Circuit-cache keys owned by this scenario (base + derived), so a
    #: drop can release them eagerly instead of waiting for LRU aging.
    cache_keys: Set[Tuple[object, ...]] = field(default_factory=set)


class ScenarioManager:
    """The registry of installed scenarios and their compiled circuits.

    One manager serves one database façade (a server, or one worker
    process). All public methods are thread-safe; compilation runs outside
    the registry lock, so two concurrent installs of the same Γ may both
    compile — the second ``put`` wins, which is harmless because the value
    is content-addressed.
    """

    def __init__(
        self,
        pdb: ProbabilisticDatabase,
        *,
        maxsize: int = 32,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.pdb = pdb
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._lock = RankedLock(RANK_SCENARIO, "condition.manager")
        self._installed: Dict[str, _Installed] = {}
        self._circuits = LRUCache(maxsize=maxsize)
        self._installs = registry.counter(
            "scenario_installs_total", "Scenario installs (POST /condition)"
        )
        self._recompiles = registry.counter(
            "scenario_recompiles_total",
            "Scenario circuits recompiled after LRU eviction",
        )
        self._stale = registry.counter(
            "scenario_stale_total", "Scenario resolutions rejected as stale"
        )
        self._drops = registry.counter(
            "scenario_drops_total", "Scenario drops (DELETE /condition/<id>)"
        )
        self._evictions = registry.counter(
            "scenario_evictions_total", "Scenario circuits evicted by the LRU"
        )
        self._published_evictions = 0

    # -- install / drop --------------------------------------------------------

    def install(
        self,
        constraints: Union[ConstraintSet, str, Iterable[Union[str, Constraint]]],
    ) -> Tuple[str, ConditionedScenario]:
        """Compile (or re-use) Γ against the current database contents.

        Idempotent: the id is a content hash of ``(db_fp, Γ_fp)``, so
        re-installing the same constraints returns the same id and the
        cached circuit. Raises
        :class:`~repro.condition.core.InconsistentConstraints` when
        ``P(Γ) = 0``.
        """
        gamma = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet.parse(constraints)
        )
        db_fp = self.pdb.tid.fingerprint()
        scenario_id = scenario_id_of(db_fp, gamma)
        key = ("scenario", db_fp, gamma.fingerprint())
        cached = self._circuits.get(key)
        if cached is not None:
            with self._lock:
                entry = self._installed.get(scenario_id)
                if entry is None:
                    entry = _Installed(db_fp, gamma)
                    self._installed[scenario_id] = entry
                entry.cache_keys.add(key)
            self._installs.inc()
            return scenario_id, cached
        scenario = ConditionedScenario.compile(self.pdb, gamma)
        with self._lock:
            entry = self._installed.get(scenario_id)
            if entry is None:
                entry = _Installed(db_fp, gamma)
                self._installed[scenario_id] = entry
            entry.cache_keys.add(key)
        self._circuits.put(key, scenario)
        self._installs.inc()
        return scenario_id, scenario

    def register(
        self,
        constraints: Union[ConstraintSet, str, Iterable[Union[str, Constraint]]],
    ) -> str:
        """Record a scenario id without compiling its circuit.

        The processes-mode parent registers specs only — the compile lives
        on the scenario's ring-owner worker — but still needs the id table
        for ``constraints_of`` (shipping specs with routed queries),
        ``/healthz`` occupancy and idempotent drops.
        """
        gamma = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet.parse(constraints)
        )
        db_fp = self.pdb.tid.fingerprint()
        scenario_id = scenario_id_of(db_fp, gamma)
        with self._lock:
            if scenario_id not in self._installed:
                self._installed[scenario_id] = _Installed(db_fp, gamma)
        self._installs.inc()
        return scenario_id

    def drop(self, scenario_id: str) -> bool:
        """Uninstall a scenario and release its cached circuits.

        Returns False when the id was never installed (drops are
        idempotent — a re-routed DELETE must not error).
        """
        with self._lock:
            entry = self._installed.pop(scenario_id, None)
        if entry is None:
            return False
        for key in entry.cache_keys:
            self._circuits.pop(key)
        self._drops.inc()
        return True

    def clear(self) -> None:
        """Drop every scenario (server shutdown)."""
        with self._lock:
            self._installed.clear()
        self._circuits.clear()

    # -- resolution ------------------------------------------------------------

    def resolve(
        self,
        scenario_id: str,
        *,
        specs: Optional[Iterable[str]] = None,
    ) -> ConditionedScenario:
        """The compiled scenario behind an id, recompiling if evicted.

        *specs* is the install-on-miss path used by worker processes: a
        query message carries the full constraint spec list, so a worker
        that never saw the install (or was restarted) conditions
        transparently — provided the id still matches the current database
        contents. Raises :class:`UnknownScenarioError` for an unknown id
        without specs, :class:`StaleScenarioError` when the database has
        changed since install.
        """
        with self._lock:
            entry = self._installed.get(scenario_id)
        db_fp = self.pdb.tid.fingerprint()
        if entry is None:
            if specs is None:
                raise UnknownScenarioError(scenario_id)
            gamma = ConstraintSet.parse(specs)
            if scenario_id_of(db_fp, gamma) != scenario_id:
                self._stale.inc()
                raise StaleScenarioError(
                    f"scenario {scenario_id} was installed against different "
                    "database contents; re-install the constraints"
                )
            installed_id, scenario = self.install(gamma)
            assert installed_id == scenario_id
            return scenario
        if entry.db_fingerprint != db_fp:
            self._stale.inc()
            raise StaleScenarioError(
                f"scenario {scenario_id} is stale: the database changed "
                "since the constraints were installed; re-install them"
            )
        key = ("scenario", db_fp, entry.constraints.fingerprint())
        scenario = self._circuits.get(key)
        if scenario is None:
            scenario = ConditionedScenario.compile(self.pdb, entry.constraints)
            self._circuits.put(key, scenario)
            self._recompiles.inc()
        return scenario

    def derived(
        self,
        scenario_id: str,
        force: Mapping[Union[str, Fact], bool],
        *,
        specs: Optional[Iterable[str]] = None,
    ) -> ConditionedScenario:
        """A what-if derivation of an installed scenario, memoized.

        The cofactor itself is cheap (that is the point of
        :meth:`~repro.condition.core.ConditionedScenario.whatif`), but a
        repeated what-if re-uses the derived scenario's count cache and
        compiled circuit, so derivations are cached under the base
        scenario's id plus a canonical force fingerprint.
        """
        base = self.resolve(scenario_id, specs=specs)
        if not force:
            return base
        force_fp = digest(
            ["force"]
            + [
                f"{spec}={int(bool(value))}"
                for spec, value in sorted(
                    ((str(s), v) for s, v in force.items()), key=lambda kv: kv[0]
                )
            ]
        )
        key = ("derived", scenario_id, force_fp)
        cached = self._circuits.get(key)
        if cached is not None:
            return cached
        derived = base.whatif(force)
        with self._lock:
            entry = self._installed.get(scenario_id)
            if entry is not None:
                entry.cache_keys.add(key)
        self._circuits.put(key, derived)
        return derived

    # -- introspection ---------------------------------------------------------

    def scenario_count(self) -> int:
        """Installed scenario ids (survives circuit eviction)."""
        with self._lock:
            return len(self._installed)

    def cached_count(self) -> int:
        """Compiled circuits currently resident (base + derived)."""
        return len(self._circuits)

    def scenario_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._installed)

    def constraints_of(self, scenario_id: str) -> ConstraintSet:
        """The installed constraint set (for re-routing query messages)."""
        with self._lock:
            entry = self._installed.get(scenario_id)
        if entry is None:
            raise UnknownScenarioError(scenario_id)
        return entry.constraints

    def publish_metrics(self) -> None:
        """Refresh the occupancy gauges and eviction counter (at scrape time)."""
        self._registry.gauge(
            "scenarios_installed", "Installed scenario ids"
        ).set(self.scenario_count())
        self._registry.gauge(
            "scenario_circuits_cached", "Compiled conditioned circuits resident"
        ).set(self.cached_count())
        evictions = self._circuits.stats.evictions
        delta = evictions - self._published_evictions
        if delta > 0:
            self._evictions.inc(delta)
            self._published_evictions = evictions
