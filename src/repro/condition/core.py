"""Compile a constraint set Γ once; serve ``P(Q | Γ)``, top-k and what-if.

Conditioning (Koch–Olteanu) turns a tuple-independent database into the
posterior distribution ``P(W | W ⊨ Γ)``. Everything reduces to weighted
model counting over one shared variable pool:

* ``posterior(Q)`` — ``P(Q ∧ Γ) / P(Γ)``: the query's lineage is grounded
  over the *scenario's* pool (so variable indices line up with Γ), the
  conjunction is counted by the DPLL counter, and the count is
  renormalized by ``P(Γ)``. Ground single-fact queries skip the
  conjunction: one memoized differentiation pass over the compiled
  circuit yields every fact's posterior, making each such request O(1).
* ``fact_posteriors()`` — per-fact posteriors via circuit differentiation
  (:mod:`repro.kc.differentiate`) on the compiled constraint circuit.
* ``top_k_worlds(k)`` — the k most probable Γ-satisfying worlds via the
  branch-and-bound extension of :mod:`repro.kc.mpe`.
* ``whatif(force)`` — incremental re-conditioning: forcing a fact in/out
  is a kernel cofactor on its literal (:func:`repro.booleans.ops.condition`),
  never a recompile; the derived scenario shares the parent's pool and
  count cache.

**Compile once, count forever.** The scenario owns a persistent
``{node id → probability}`` cache threaded through every DPLL run
(:class:`~repro.wmc.dpll.DPLLCounter` ``external_cache``). Counting Γ at
install time seeds the cache with every Shannon subformula of Γ; a later
``P(Q ∧ Γ)`` only explores the thin layer where Q's lineage meets Γ — in
the common case where they share no variables, the Γ factor is an O(1)
lookup. This is sound because node ids identify formulas and the pool's
probabilities are fixed for the scenario's lifetime.

Constraint grammar (one constraint per spec string)::

    +R(1,2)        assert: the fact R(1,2) is in  (condition on X = 1)
    -R(1,2)        deny:   the fact R(1,2) is out (condition on X = 0)
    R(x), S(x,y)   require: the Boolean query must hold
    ! R(x), T(x)   forbid:  the Boolean query must be false

Queries use the engine's full syntax (FO sentence, CQ or UCQ shorthand);
constants are integers or quoted strings, as in the parser.

Thread safety: a scenario family (base plus its what-if derivations)
shares one :class:`~repro.sanitize.RankedLock` of rank
:data:`~repro.sanitize.RANK_SCENARIO`, held across pool growth and
counting — evaluations against one scenario serialize, distinct scenarios
proceed independently. The lock wraps only kernel and counter work, never
another ranked lock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..booleans.expr import B_FALSE, B_TRUE, BAnd, BExpr, BVar, bnot, evaluate
from ..booleans.forms import Clause, literal_sign, literal_var, to_dnf
from ..booleans.ops import condition as restrict
from ..core.pdb import ProbabilisticDatabase, Query
from ..core.tid import TupleIndependentDatabase
from ..engine.cache import digest
from ..kc.circuits import Circuit
from ..kc.differentiate import VariableReport, differentiate
from ..kc.mpe import top_k_models
from ..lineage.build import (
    Lineage,
    VariablePool,
    lineage_of_cq,
    lineage_of_sentence,
    lineage_of_ucq,
)
from ..logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.formulas import Atom
from ..logic.semantics import Fact
from ..logic.terms import Const
from ..sanitize import RANK_SCENARIO, RankedLock, check_probability
from ..wmc.dpll import DPLLCounter, DPLLResult, compile_decision_dnnf
from ..wmc.karp_luby import KarpLubyEstimate, clause_probability, karp_luby_samples

__all__ = [
    "ConditionedAnswer",
    "ConditionedScenario",
    "Constraint",
    "ConstraintSet",
    "InconsistentConstraints",
    "WorldCandidate",
    "condition_database",
    "conditioned_karp_luby",
]

#: Constraint kinds, in the canonical order specs sort into.
_KINDS = ("assert", "deny", "require", "forbid")

#: Spec prefixes per kind (the wire/CLI syntax).
_PREFIX = {"assert": "+", "deny": "-", "require": "", "forbid": "!"}

#: Hard ceiling on Γ-rejection sample counts: the 1/P(Γ) inflation must
#: not turn a degraded rung into an unbounded computation.
_MAX_CONDITIONED_SAMPLES = 200_000


class InconsistentConstraints(ValueError):
    """Γ has probability zero — conditioning on it is undefined."""


@dataclass(frozen=True)
class Constraint:
    """One parsed constraint: a kind plus its canonicalized body text."""

    kind: str
    text: str

    @classmethod
    def parse(cls, spec: Union[str, "Constraint"]) -> "Constraint":
        """Parse one spec string (see the module docstring's grammar)."""
        if isinstance(spec, Constraint):
            return spec
        if not isinstance(spec, str):
            raise ValueError(
                f"constraint spec must be a string, not {type(spec).__name__}"
            )
        text = spec.strip()
        if not text:
            raise ValueError("constraint spec must be non-empty")
        if text[0] == "+":
            kind, body = "assert", text[1:]
        elif text[0] == "-":
            kind, body = "deny", text[1:]
        elif text[0] == "!":
            kind, body = "forbid", text[1:]
        else:
            kind, body = "require", text
        body = " ".join(body.split())
        if not body:
            raise ValueError(f"constraint spec {spec!r} has an empty body")
        return cls(kind, body)

    def spec(self) -> str:
        """The canonical wire form (re-parses to an equal constraint)."""
        return _PREFIX[self.kind] + self.text

    def __str__(self) -> str:
        return self.spec()


@dataclass(frozen=True)
class ConstraintSet:
    """An immutable, canonicalized set of constraints (Γ).

    Parsing sorts and deduplicates, so two spellings of the same Γ share
    a :meth:`fingerprint` — the content address under which compiled
    scenarios are cached and coalesced.
    """

    constraints: Tuple[Constraint, ...]

    @classmethod
    def parse(
        cls, specs: Union[str, Iterable[Union[str, Constraint]]]
    ) -> "ConstraintSet":
        """Parse a ``;``-separated string or an iterable of specs."""
        if isinstance(specs, str):
            items: Iterable[Union[str, Constraint]] = [
                part for part in specs.split(";") if part.strip()
            ]
        else:
            items = specs
        parsed = sorted(
            {Constraint.parse(spec) for spec in items},
            key=lambda c: (_KINDS.index(c.kind), c.text),
        )
        if not parsed:
            raise ValueError("a constraint set needs at least one constraint")
        return cls(tuple(parsed))

    def fingerprint(self) -> str:
        """A content hash of the canonical spec list (Γ_fp)."""
        return digest(["gamma"] + [c.spec() for c in self.constraints])

    def specs(self) -> List[str]:
        """The canonical wire form, one spec string per constraint."""
        return [c.spec() for c in self.constraints]

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __str__(self) -> str:
        return "; ".join(self.specs())


@dataclass(frozen=True)
class ConditionedAnswer:
    """One conditioned evaluation: ``P(Q | Γ)`` with its provenance."""

    probability: float
    joint: float
    gamma_probability: float
    exact: bool
    method: str
    guarantee: str
    detail: str = ""
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    samples: Optional[int] = None


@dataclass(frozen=True)
class WorldCandidate:
    """One of the k most probable Γ-worlds.

    ``world`` assigns every constraint-relevant fact (facts Γ or a what-if
    force mentions; other facts are marginalized out). ``probability`` is
    the world's prior mass over those facts, ``posterior`` its probability
    given Γ (``probability / P(Γ)``; forced facts contribute no factor —
    they are part of the evidence).
    """

    world: Dict[Fact, bool]
    probability: float
    posterior: float


def _lineage_with_pool(
    parsed: object, tid: TupleIndependentDatabase, pool: VariablePool
) -> Lineage:
    """Ground a parsed query over *pool* so indices align with Γ's."""
    if isinstance(parsed, ConjunctiveQuery):
        return lineage_of_cq(parsed, tid, pool)
    if isinstance(parsed, UnionOfConjunctiveQueries):
        return lineage_of_ucq(parsed, tid, pool)
    return lineage_of_sentence(parsed, tid, pool=pool)  # type: ignore[arg-type]


def _parse_fact(pdb: ProbabilisticDatabase, text: str) -> Fact:
    """Parse a ground-atom spec like ``R(1, "a")`` into a fact."""
    parsed = pdb.parse_query(text)
    if isinstance(parsed, Atom):
        atom = parsed
    elif isinstance(parsed, ConjunctiveQuery) and len(parsed.atoms) == 1:
        atom = parsed.atoms[0]
    else:
        raise ValueError(f"fact spec {text!r} must be a single atom")
    values = []
    for term in atom.args:
        if not isinstance(term, Const):
            raise ValueError(
                f"fact spec {text!r} must be ground: {term} is a variable "
                "(constants are integers or quoted strings)"
            )
        values.append(term.value)
    return (atom.predicate, tuple(values))


class ConditionedScenario:
    """A compiled constraint set and everything served against it.

    Build with :meth:`compile` (or :func:`condition_database`); derive
    what-if variants with :meth:`whatif`. A base scenario and its
    derivations form one family sharing the variable pool, the persistent
    count cache and the family lock.
    """

    def __init__(
        self,
        pdb: ProbabilisticDatabase,
        constraints: ConstraintSet,
        *,
        pool: VariablePool,
        gamma_expr: BExpr,
        gamma_probability: float,
        gamma_vars: Tuple[int, ...],
        forced: Dict[int, bool],
        counts: Dict[int, Tuple[float, int]],
        lock: RankedLock,
        db_fingerprint: str,
    ) -> None:
        self.pdb = pdb
        self.constraints = constraints
        self.pool = pool
        self.gamma_expr = gamma_expr
        self.gamma_probability = gamma_probability
        self.db_fingerprint = db_fingerprint
        self._gamma_vars = gamma_vars
        self._forced = dict(forced)
        self._counts = counts
        self._lock = lock
        self._compiled_gamma: Optional[DPLLResult] = None
        self._fact_reports: Optional[Dict[int, VariableReport]] = None
        # The family's base scenario: what-if derivations answer single-fact
        # posteriors by re-weighting ITS compiled circuit (forced variables
        # pinned to probability 1/0) instead of compiling their own Γ'.
        self._root: "ConditionedScenario" = self

    # -- construction ----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        db: Union[ProbabilisticDatabase, TupleIndependentDatabase],
        constraints: Union[ConstraintSet, str, Iterable[Union[str, Constraint]]],
    ) -> "ConditionedScenario":
        """Ground and count Γ once; raises on an impossible constraint set.

        Counting ``P(Γ)`` seeds the scenario's persistent count cache with
        every Shannon subformula of Γ — the work later posteriors reuse.
        """
        pdb = (
            db
            if isinstance(db, ProbabilisticDatabase)
            else ProbabilisticDatabase(tid=db)
        )
        gamma = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet.parse(constraints)
        )
        pool = VariablePool()
        parts: List[BExpr] = []
        for constraint in gamma:
            parts.append(cls._ground_constraint(pdb, pool, constraint))
        gamma_expr = BAnd.of(parts)
        counts: Dict[int, Tuple[float, int]] = {}
        scenario = cls(
            pdb,
            gamma,
            pool=pool,
            gamma_expr=gamma_expr,
            gamma_probability=1.0,
            gamma_vars=tuple(sorted(gamma_expr.variables())),
            forced={},
            counts=counts,
            lock=RankedLock(RANK_SCENARIO, "condition.scenario"),
            db_fingerprint=pdb.tid.fingerprint(),
        )
        with scenario._lock:
            p_gamma = scenario._count_locked(gamma_expr)
        if p_gamma <= 0.0:
            raise InconsistentConstraints(
                f"constraints have probability zero: {gamma}"
            )
        scenario.gamma_probability = p_gamma
        return scenario

    @staticmethod
    def _ground_constraint(
        pdb: ProbabilisticDatabase, pool: VariablePool, constraint: Constraint
    ) -> BExpr:
        tid = pdb.tid
        if constraint.kind in ("assert", "deny"):
            fact = _parse_fact(pdb, constraint.text)
            probability = tid.probability_of_fact(fact[0], fact[1])
            if probability <= 0.0:
                # An absent fact: asserting it is impossible, denying it
                # is vacuous — neither pollutes the pool.
                return B_FALSE if constraint.kind == "assert" else B_TRUE
            literal = pool.literal(fact, probability)
            return literal if constraint.kind == "assert" else bnot(literal)
        parsed = pdb.parse_query(constraint.text)
        expr = _lineage_with_pool(parsed, tid, pool).expr
        return expr if constraint.kind == "require" else bnot(expr)

    # -- counting --------------------------------------------------------------

    def _probability_map(self) -> Dict[int, float]:
        return dict(enumerate(self.pool.probabilities))

    def _count_locked(self, expr: BExpr) -> float:
        counter = DPLLCounter(external_cache=self._counts)
        return counter.run(expr, self._probability_map()).probability

    def _joint_locked(self, q_expr: BExpr) -> float:
        """``P(Q ∧ Γ)`` for a grounded query expression.

        When Q's lineage is one positive variable, the joint is
        ``P(f | Γ) · P(Γ)`` with no DPLL run per query: base scenarios
        read the fact's posterior from the memoized differentiation pass;
        what-if derivations re-weight the base's compiled circuit with the
        forced variables pinned to 1/0 (one linear evaluation). Everything
        else counts the conjunction.
        """
        if isinstance(q_expr, BVar):
            var = q_expr.index
            if not self._forced:
                try:
                    report = self._fact_reports_locked().get(var)
                except ZeroDivisionError:
                    # Float disagreement between the DPLL count that
                    # admitted this scenario and the circuit evaluation:
                    # fall through to the conjunction count, don't crash.
                    pass
                else:
                    if report is None:
                        # The fact was pooled after the differentiation
                        # pass ran, so it cannot occur in Γ: it is
                        # independent of Γ and its posterior is its prior.
                        return (
                            self.pool.probabilities[var]
                            * self.gamma_probability
                        )
                    return report.posterior * self.gamma_probability
            elif self._root._compiled_gamma is not None:
                circuit = self._root._compiled_locked()
                probabilities = self._pinned_probabilities_locked()
                prior = probabilities[var]
                probabilities[var] = 1.0
                # P(f ∧ Γ | F) = p_f · P(Γ | F, f=1)
                return prior * circuit.wmc(probabilities)
        return self._count_locked(BAnd.of((q_expr, self.gamma_expr)))

    def _pinned_probabilities_locked(self) -> Dict[int, float]:
        """The pool's priors with each forced variable pinned to 1/0.

        Evaluating a d-DNNF under this re-weighted measure computes
        conditional masses ``P(· | forced)`` exactly — the circuit never
        needs recompiling for what-if evidence.
        """
        probabilities = self._probability_map()
        for var, value in self._forced.items():
            probabilities[var] = 1.0 if value else 0.0
        return probabilities

    def _ground_locked(self, query: Query) -> BExpr:
        parsed = self.pdb.parse_query(query)
        expr = _lineage_with_pool(parsed, self.pdb.tid, self.pool).expr
        if self._forced:
            expr = restrict(expr, self._forced)
        return expr

    # -- queries ---------------------------------------------------------------

    @property
    def variable_count(self) -> int:
        """Pool size: Γ's facts plus every fact queried so far."""
        return len(self.pool)

    @property
    def forced(self) -> Dict[Fact, bool]:
        """The what-if evidence: facts forced in/out by :meth:`whatif`."""
        return {
            self.pool.fact_of_var[var]: value
            for var, value in self._forced.items()
        }

    def world_facts(self) -> List[Fact]:
        """The constraint-relevant facts :meth:`top_k_worlds` assigns."""
        return [self.pool.fact_of_var[var] for var in self._gamma_vars]

    def grounded_size(self, query: Query) -> int:
        """Variables of Q's lineage under this scenario (exact-rung gate)."""
        with self._lock:
            return len(self._ground_locked(query).variables())

    def posterior(self, query: Query) -> ConditionedAnswer:
        """``P(Q | Γ)`` exactly, via conjunction counting + renormalization.

        Ground single-fact queries on a base scenario skip the conjunction
        entirely: one differentiation pass over the compiled Γ circuit
        (memoized for the scenario's lifetime) yields *every* fact's
        posterior at once, so each lookup is O(1) after the first.
        """
        with self._lock:
            q_expr = self._ground_locked(query)
            joint = self._joint_locked(q_expr)
        p_gamma = self.gamma_probability
        probability = min(joint / p_gamma, 1.0)
        check_probability(probability, context="conditioned posterior")
        return ConditionedAnswer(
            probability=probability,
            joint=joint,
            gamma_probability=p_gamma,
            exact=True,
            method="conditioned-dpll",
            guarantee="exact conditional probability (no approximation)",
            detail=(
                f"P(Q∧Γ)={joint:.6g} / P(Γ)={p_gamma:.6g} over "
                f"{len(self.pool)} pooled facts"
            ),
        )

    def sample_posterior(
        self,
        query: Query,
        *,
        epsilon: float,
        delta: float,
        rng: Optional[random.Random] = None,
    ) -> ConditionedAnswer:
        """Degraded ``P(Q | Γ)``: Γ-rejection Karp–Luby over Q's DNF.

        ``P(Q ∧ Γ)`` is estimated by the Karp–Luby union-space sampler
        with Γ-violating samples rejected, then renormalized by the
        *exact* ``P(Γ)`` — so the conditional inherits the joint's
        relative-error guarantee. Raises
        :class:`~repro.booleans.forms.FormSizeExceeded` when Q's DNF is
        too large; callers fall back to their own floor.
        """
        with self._lock:
            q_expr = self._ground_locked(query)
            gamma_expr = self.gamma_expr
            probabilities = self._probability_map()
        clauses = to_dnf(q_expr)
        estimate = conditioned_karp_luby(
            clauses,
            gamma_expr,
            probabilities,
            gamma_probability=self.gamma_probability,
            epsilon=epsilon,
            delta=delta,
            rng=rng,
        )
        probability = min(estimate.estimate / self.gamma_probability, 1.0)
        check_probability(probability, context="conditioned sampled posterior")
        return ConditionedAnswer(
            probability=probability,
            joint=estimate.estimate,
            gamma_probability=self.gamma_probability,
            exact=False,
            method="conditioned-karp-luby",
            guarantee=(
                f"relative error ≤ {epsilon} with probability ≥ {1 - delta} "
                "(Karp–Luby on P(Q∧Γ) with Γ-rejection, exact P(Γ))"
            ),
            detail=f"{estimate.samples} seeded union-space samples",
            epsilon=epsilon,
            delta=delta,
            samples=estimate.samples,
        )

    # -- per-fact posteriors ---------------------------------------------------

    def _compiled_locked(self) -> Circuit:
        if self._compiled_gamma is None:
            self._compiled_gamma = compile_decision_dnnf(
                self.gamma_expr, self._probability_map()
            )
        circuit = self._compiled_gamma.circuit
        assert circuit is not None  # compile_decision_dnnf always records a trace
        return circuit

    def _fact_reports_locked(self) -> Dict[int, VariableReport]:
        """Per-variable reports from one differentiation pass, memoized.

        Base scenarios differentiate their own compiled circuit. What-if
        derivations differentiate the *base* scenario's circuit with each
        forced variable's probability pinned to 1/0 — re-weighting a
        d-DNNF conditions it exactly, so Γ' never needs its own compile.
        Sound for the scenario's lifetime: pooled variables keep their
        probabilities, and Γ never changes after compile. Variables pooled
        later (by query grounding) are absent — they cannot appear in Γ.
        (Forced variables' ``prior`` fields read as the pinned 1/0 here;
        :meth:`fact_posteriors` reports true priors via its own path.)
        """
        if self._fact_reports is None:
            circuit = self._root._compiled_locked()
            self._fact_reports = differentiate(
                circuit, self._pinned_probabilities_locked()
            )
        return self._fact_reports

    def fact_posteriors(self) -> Dict[Fact, VariableReport]:
        """Posterior marginals ``P(f | Γ)`` for every constraint-relevant fact.

        Base scenarios differentiate the compiled constraint circuit in
        one pass (:func:`repro.kc.differentiate.differentiate`); what-if
        derivations use per-variable cofactor counts against the shared
        count cache instead (their Γ was never compiled — that is the
        point of :meth:`whatif`). Forced facts report posterior 1/0.
        """
        with self._lock:
            if not self._forced:
                reports = self._fact_reports_locked()
                out = {
                    self.pool.fact_of_var[var]: report
                    for var, report in reports.items()
                    if var in set(self._gamma_vars)
                }
            else:
                out = self._cofactor_reports_locked()
        return out

    def _cofactor_reports_locked(self) -> Dict[Fact, VariableReport]:
        p_gamma = self.gamma_probability
        out: Dict[Fact, VariableReport] = {}
        interesting = sorted(set(self._gamma_vars) | set(self._forced))
        for var in interesting:
            fact = self.pool.fact_of_var[var]
            prior = self.pool.probabilities[var]
            forced = self._forced.get(var)
            if forced is not None:
                out[fact] = VariableReport(
                    prior=prior,
                    posterior=1.0 if forced else 0.0,
                    derivative=0.0,
                )
                continue
            high = self._count_locked(restrict(self.gamma_expr, {var: True}))
            low = self._count_locked(restrict(self.gamma_expr, {var: False}))
            posterior = min(prior * high / p_gamma, 1.0)
            check_probability(posterior, context="cofactor fact posterior")
            out[fact] = VariableReport(
                prior=prior, posterior=posterior, derivative=high - low
            )
        return out

    # -- top-k worlds ----------------------------------------------------------

    def top_k_worlds(self, k: int) -> List[WorldCandidate]:
        """The k most probable Γ-satisfying worlds, best first (exact).

        Worlds assign the constraint-relevant facts (see
        :meth:`world_facts`); all other facts are marginalized out, so the
        candidates' posteriors sum to at most 1 over the full enumeration.
        """
        with self._lock:
            circuit = self._compiled_locked()
            free = [var for var in self._gamma_vars if var not in self._forced]
            probabilities = {
                var: self.pool.probabilities[var] for var in free
            }
            explanations = top_k_models(circuit, probabilities, k)
        out: List[WorldCandidate] = []
        for explanation in explanations:
            world = {
                self.pool.fact_of_var[var]: value
                for var, value in explanation.assignment.items()
            }
            for var, value in self._forced.items():
                world[self.pool.fact_of_var[var]] = value
            posterior = min(explanation.probability / self.gamma_probability, 1.0)
            check_probability(posterior, context="top-k world posterior")
            out.append(
                WorldCandidate(
                    world=world,
                    probability=explanation.probability,
                    posterior=posterior,
                )
            )
        return out

    # -- what-if ---------------------------------------------------------------

    def whatif(self, force: Mapping[Union[str, Fact], bool]) -> "ConditionedScenario":
        """Derive the scenario with facts forced in (True) or out (False).

        Incremental re-conditioning: the forced literals are cofactored
        out of Γ with the kernel's memoized restriction — no recompile —
        and the derived scenario shares this one's pool, count cache and
        lock. Forcing an impossible state (an absent fact in, a certain
        fact out, or evidence contradicting Γ) raises
        :class:`InconsistentConstraints`.
        """
        with self._lock:
            assignment: Dict[int, bool] = {}
            merged = dict(self._forced)
            for spec, value in force.items():
                fact = (
                    spec
                    if isinstance(spec, tuple)
                    else _parse_fact(self.pdb, spec)
                )
                probability = self.pdb.tid.probability_of_fact(fact[0], fact[1])
                value = bool(value)
                if value and probability <= 0.0:
                    raise InconsistentConstraints(
                        f"cannot force absent fact {fact!r} into the database"
                    )
                if not value and probability >= 1.0:
                    raise InconsistentConstraints(
                        f"cannot force certain fact {fact!r} out of the database"
                    )
                if not value and probability <= 0.0:
                    continue  # already impossible: forcing it out is vacuous
                var = self.pool.variable(fact, probability)
                if merged.get(var, value) != value:
                    raise InconsistentConstraints(
                        f"fact {fact!r} forced both in and out"
                    )
                assignment[var] = value
                merged[var] = value
            gamma2 = restrict(self.gamma_expr, assignment) if assignment else self.gamma_expr
            if self._root._compiled_gamma is not None:
                # The base circuit is already compiled: one linear
                # evaluation under the pinned measure beats a DPLL count
                # of the cofactored Γ.
                probabilities = self._probability_map()
                for var, value in merged.items():
                    probabilities[var] = 1.0 if value else 0.0
                p2 = self._root._compiled_locked().wmc(probabilities)
            else:
                p2 = self._count_locked(gamma2)
        if p2 <= 0.0:
            raise InconsistentConstraints(
                f"forcing {dict(force)!r} contradicts the constraints"
            )
        derived = ConditionedScenario(
            self.pdb,
            self.constraints,
            pool=self.pool,
            gamma_expr=gamma2,
            gamma_probability=p2,
            gamma_vars=tuple(
                sorted(set(gamma2.variables()) | set(merged))
            ),
            forced=merged,
            counts=self._counts,
            lock=self._lock,
            db_fingerprint=self.db_fingerprint,
        )
        derived._root = self._root
        return derived

    def forced_fingerprint(self) -> str:
        """A content hash of the what-if evidence (empty string when none)."""
        if not self._forced:
            return ""
        parts = ["forced"]
        for var in sorted(self._forced):
            parts.append(repr(self.pool.fact_of_var[var]))
            parts.append("1" if self._forced[var] else "0")
        return digest(parts)


def condition_database(
    db: Union[ProbabilisticDatabase, TupleIndependentDatabase],
    constraints: Union[ConstraintSet, str, Iterable[Union[str, Constraint]]],
) -> ConditionedScenario:
    """Convenience alias for :meth:`ConditionedScenario.compile`."""
    return ConditionedScenario.compile(db, constraints)


def conditioned_karp_luby(
    clauses: Sequence[Clause],
    gamma_expr: BExpr,
    probabilities: Mapping[int, float],
    *,
    gamma_probability: float,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
    samples: Optional[int] = None,
) -> KarpLubyEstimate:
    """Karp–Luby estimate of ``P(Q ∧ Γ)`` with Γ-violating samples rejected.

    The standard union-space sampler for ``P(⋁ clauses)`` counts a trial
    iff the chosen clause is the first satisfied one; multiplying that
    indicator by ``1[world ⊨ Γ]`` (unsampled Γ-variables drawn from the
    prior) keeps the estimator unbiased for the joint. The trial count is
    the unconditioned Karp–Luby budget inflated by ``1 / P(Γ)`` — the
    acceptance-rate correction — capped at a fixed ceiling, so the
    relative-ε guarantee carries over whenever the correlation of Q and Γ
    is non-adversarial (Γ itself is counted exactly by the caller).
    """
    rng = rng if rng is not None else random.Random(0)
    live = [c for c in clauses if clause_probability(c, probabilities) > 0.0]
    if not live:
        return KarpLubyEstimate(0.0, 0, epsilon, delta)
    weights = [clause_probability(c, probabilities) for c in live]
    total_weight = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cumulative.append(acc)
    if samples is None:
        base = karp_luby_samples(len(live), epsilon, delta)
        inflation = 1.0 / max(gamma_probability, 1e-6)
        samples = min(int(base * inflation) + 1, _MAX_CONDITIONED_SAMPLES)
    fixed: List[Dict[int, bool]] = [
        {literal_var(lit): literal_sign(lit) for lit in clause} for clause in live
    ]
    clause_vars = {literal_var(lit) for clause in live for lit in clause}
    all_vars = sorted(clause_vars | set(gamma_expr.variables()))
    hits = 0
    for _ in range(samples):
        r = rng.random() * total_weight
        index = _bisect(cumulative, r)
        chosen = fixed[index]
        assignment: Dict[int, bool] = {}
        for var in all_vars:
            if var in chosen:
                assignment[var] = chosen[var]
            else:
                assignment[var] = rng.random() < probabilities[var]
        first = True
        for j in range(index):
            if all(assignment[v] == val for v, val in fixed[j].items()):
                first = False
                break
        if first and evaluate(gamma_expr, assignment):
            hits += 1
    estimate = (hits / samples) * total_weight if samples else 0.0
    return KarpLubyEstimate(min(estimate, 1.0), samples, epsilon, delta)


def _bisect(cumulative: Sequence[float], value: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo
