"""Markov Logic Networks (Sec. 3).

An MLN is a set of *soft constraints* ``(w, Δ)``: a non-negative weight and a
first-order formula with free variables. Grounding substitutes domain
constants for the free variables; each grounding is a factor contributing
weight *w* to every world that satisfies it (and 1 otherwise):

    weight(W) = Π_{(w,F) ∈ ground(MLN): W ⊨ F} w
    p(W)      = weight(W) / Z,   Z = Σ_W weight(W)

The reference implementation enumerates the full set of possible worlds over
``Tup(DOM)`` — every tuple of every predicate over the domain — so it is
exponential and intended for small domains (the oracle for Prop. 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..logic.formulas import Formula
from ..logic.semantics import Fact, satisfies
from ..logic.terms import Const, Var


@dataclass(frozen=True)
class SoftConstraint:
    """A weighted first-order formula; free variables range over the domain.

    ``weight = inf`` makes the constraint hard (worlds violating any
    grounding get weight 0).
    """

    weight: float
    formula: Formula

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("MLN weights must be non-negative")

    def free_variables(self) -> tuple[Var, ...]:
        return tuple(sorted(self.formula.free_variables(), key=lambda v: v.name))

    def groundings(self, domain: Iterable) -> Iterator[tuple[float, Formula]]:
        """All (weight, ground sentence) factors of this constraint."""
        variables = self.free_variables()
        for values in itertools.product(tuple(domain), repeat=len(variables)):
            mapping = {var: Const(value) for var, value in zip(variables, values)}
            yield self.weight, self.formula.substitute(mapping)


@dataclass
class MarkovLogicNetwork:
    """Soft constraints over an explicit vocabulary and domain."""

    constraints: list[SoftConstraint]
    domain: tuple
    arities: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.domain = tuple(self.domain)
        inferred: dict[str, int] = {}
        for constraint in self.constraints:
            for atom in constraint.formula.atoms():
                existing = inferred.setdefault(atom.predicate, atom.arity)
                if existing != atom.arity:
                    raise ValueError(
                        f"predicate {atom.predicate} used with two arities"
                    )
        for name, arity in inferred.items():
            self.arities.setdefault(name, arity)

    # -- grounding ---------------------------------------------------------------

    def ground(self) -> list[tuple[float, Formula]]:
        """ground(MLN): every factor of the underlying Markov network."""
        factors: list[tuple[float, Formula]] = []
        for constraint in self.constraints:
            factors.extend(constraint.groundings(self.domain))
        return factors

    def possible_tuples(self) -> list[Fact]:
        """Tup(DOM): all tuples over the vocabulary and domain."""
        out: list[Fact] = []
        for name in sorted(self.arities):
            for values in itertools.product(self.domain, repeat=self.arities[name]):
                out.append((name, values))
        return out

    # -- exact semantics -----------------------------------------------------------

    def weight_of_world(self, world: frozenset[Fact]) -> float:
        """Π of factor weights satisfied by the world."""
        weight = 1.0
        for factor_weight, sentence in self.ground():
            if satisfies(world, self.domain, sentence):
                if factor_weight == float("inf"):
                    continue  # hard constraint satisfied: factor 1 by convention
                weight *= factor_weight
            elif factor_weight == float("inf"):
                return 0.0
        return weight

    def worlds(self) -> Iterator[frozenset[Fact]]:
        tuples = self.possible_tuples()
        for bits in itertools.product((False, True), repeat=len(tuples)):
            yield frozenset(t for t, bit in zip(tuples, bits) if bit)

    def partition_function(self) -> float:
        """Z = Σ_W weight(W); exponential enumeration."""
        return sum(self.weight_of_world(world) for world in self.worlds())

    def probability(self, query: Formula, z: Optional[float] = None) -> float:
        """p_MLN(Q): the probability a random world satisfies the sentence."""
        if query.free_variables():
            raise ValueError("query must be a sentence")
        z = self.partition_function() if z is None else z
        if z == 0:
            raise ZeroDivisionError("MLN partition function is zero")
        total = 0.0
        for world in self.worlds():
            weight = self.weight_of_world(world)
            if weight and satisfies(world, self.domain, query):
                total += weight
        return total / z

    def world_probability(self, world: frozenset[Fact], z: Optional[float] = None) -> float:
        z = self.partition_function() if z is None else z
        return self.weight_of_world(world) / z
