"""MLNs, the Prop. 3.1 TID+constraint translation, and Boolean Markov networks."""

from .mln import MarkovLogicNetwork, SoftConstraint
from .translate import (
    Encoding,
    TIDEncoding,
    conditional_probability,
    mln_query_probability,
    mln_query_probability_symmetric,
    mln_to_tid,
)
from .markov_network import (
    BooleanMarkovNetwork,
    Factor,
    encode_factor_iff,
    encode_factor_or,
)

__all__ = [
    "MarkovLogicNetwork",
    "SoftConstraint",
    "Encoding",
    "TIDEncoding",
    "conditional_probability",
    "mln_query_probability",
    "mln_query_probability_symmetric",
    "mln_to_tid",
    "BooleanMarkovNetwork",
    "Factor",
    "encode_factor_iff",
    "encode_factor_or",
]
