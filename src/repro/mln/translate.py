"""Proposition 3.1: representing an MLN as a TID conditioned on a constraint.

For each soft constraint ``(w, Δ)`` introduce a fresh relation ``Rᵢ`` over
the constraint's free variables. Two equivalent encodings (paper appendix):

* **or-encoding** (the one spelled out in Sec. 3, requires w > 1):
  ``p(Rᵢ) = 1/(w − 1)`` and ``Γᵢ = ∀x̄ (Rᵢ(x̄) ∨ Δ(x̄))``;
* **iff-encoding** (works for every w > 0):
  ``p(Rᵢ) = w/(1 + w)`` and ``Γᵢ = ∀x̄ (Rᵢ(x̄) ⟺ Δ(x̄))``.

Every original predicate's tuples get probability 1/2. Then for any query Q
over the original vocabulary, ``p_MLN(Q) = p_D(Q | Γ)`` with Γ = ⋀ Γᵢ.

The resulting probabilistic database is *symmetric* (Sec. 8), which is what
connects MLNs to the symmetric-WFOMC algorithms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

from ..core.tid import TupleIndependentDatabase
from ..lineage.build import lineage_of_sentence
from ..logic.formulas import And, Atom, Formula, Or, forall_many, iff
from ..wmc.dpll import dpll_probability
from .mln import MarkovLogicNetwork


class Encoding(Enum):
    """Which appendix construction to use for the auxiliary relations."""

    OR = "or"
    IFF = "iff"


@dataclass(frozen=True)
class TIDEncoding:
    """The output of Prop. 3.1: database, constraint, and bookkeeping."""

    database: TupleIndependentDatabase
    constraint: Formula
    auxiliary_predicates: tuple[str, ...]
    encoding: Encoding


def mln_to_tid(
    mln: MarkovLogicNetwork, encoding: Encoding = Encoding.OR
) -> TIDEncoding:
    """Build the TID + constraint pair of Proposition 3.1."""
    db = TupleIndependentDatabase()
    db.explicit_domain = frozenset(mln.domain)
    for name, arity in sorted(mln.arities.items()):
        for values in itertools.product(mln.domain, repeat=arity):
            db.add_fact(name, values, 0.5)

    gammas: list[Formula] = []
    auxiliary: list[str] = []
    for index, constraint in enumerate(mln.constraints):
        w = constraint.weight
        aux_name = f"Aux{index}"
        auxiliary.append(aux_name)
        variables = constraint.free_variables()
        aux_atom = Atom(aux_name, tuple(variables))
        if encoding is Encoding.OR:
            if w <= 1:
                raise ValueError(
                    "the or-encoding needs weight > 1; use Encoding.IFF"
                )
            # The appendix assigns the auxiliary variable *weight* 1/(w-1);
            # the equivalent tuple probability is (1/(w-1))/(1 + 1/(w-1)) =
            # 1/w. (Sec. 3's prose quotes 1/(w-1) as a probability — that is
            # the weight; the verified probability is 1/w. See
            # EXPERIMENTS.md E11.)
            probability = 1.0 / w
            gamma_body: Formula = Or.of((aux_atom, constraint.formula))
        else:
            probability = w / (1.0 + w)
            gamma_body = iff(aux_atom, constraint.formula)
        for values in itertools.product(mln.domain, repeat=len(variables)):
            db.add_fact(aux_name, values, probability)
        gammas.append(forall_many(variables, gamma_body))

    return TIDEncoding(
        database=db,
        constraint=And.of(gammas),
        auxiliary_predicates=tuple(auxiliary),
        encoding=encoding,
    )


def conditional_probability(
    db: TupleIndependentDatabase,
    query: Formula,
    constraint: Formula,
    method: str = "dpll",
) -> float:
    """p_D(Q | Γ) = p_D(Q ∧ Γ) / p_D(Γ).

    ``method`` is "dpll" (ground both sentences to lineage and count) or
    "brute" (possible-world enumeration). Conditioning on constraints is how
    TIDs express correlations (Question 3.1).
    """
    if method == "brute":
        numerator = db.brute_force_probability(And.of((query, constraint)))
        denominator = db.brute_force_probability(constraint)
    elif method == "dpll":
        joint = lineage_of_sentence(And.of((query, constraint)), db)
        numerator = dpll_probability(joint.expr, joint.probabilities())
        gamma = lineage_of_sentence(constraint, db)
        denominator = dpll_probability(gamma.expr, gamma.probabilities())
    else:
        raise ValueError(f"unknown method {method!r}")
    if denominator == 0.0:  # prodb-lint: exact -- division guard
        raise ZeroDivisionError("constraint has probability zero")
    return numerator / denominator


def mln_query_probability(
    mln: MarkovLogicNetwork,
    query: Formula,
    encoding: Encoding = Encoding.OR,
    method: str = "dpll",
) -> float:
    """p_MLN(Q) computed through the TID encoding (Prop. 3.1)."""
    translated = mln_to_tid(mln, encoding)
    return conditional_probability(
        translated.database, query, translated.constraint, method=method
    )


def mln_query_probability_symmetric(
    mln: MarkovLogicNetwork,
    query: Formula,
    encoding: Encoding = Encoding.OR,
) -> float:
    """Lifted MLN inference via symmetric WFOMC (the SlimShot route [37]).

    The Prop. 3.1 encoding is a *symmetric* database (Sec. 8), so when the
    constraint Γ and the query are FO², the conditional
    ``p(Q|Γ) = WFOMC(Q∧Γ) / WFOMC(Γ)`` is computable in time polynomial in
    the domain — no grounding, no lineage. Raises
    :class:`repro.symmetric.scott.NotFO2Error` outside FO².
    """
    from ..logic.formulas import And
    from ..symmetric.evaluate import symmetric_probability
    from ..symmetric.symmetric_db import SymmetricDatabase

    translated = mln_to_tid(mln, encoding)
    db = SymmetricDatabase(len(mln.domain))
    for name, relation in translated.database.relations.items():
        probabilities = set(relation.rows.values())
        if len(probabilities) != 1:  # pragma: no cover - encoding invariant
            raise ValueError("encoded database is not symmetric")
        db.add_relation(name, relation.arity, probabilities.pop())
    joint = symmetric_probability(And.of((query, translated.constraint)), db)
    denominator = symmetric_probability(translated.constraint, db)
    if denominator == 0.0:  # prodb-lint: exact -- division guard
        raise ZeroDivisionError("constraint has probability zero")
    return min(max(joint / denominator, 0.0), 1.0)
