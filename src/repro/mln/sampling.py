"""Sampling-based MLN / conditional inference.

Two estimators for p(Q | Γ) over a TID (the conditioned-TID view of
Sec. 3), for the regimes where exact grounding is too large:

* **rejection sampling** — sample worlds from the TID, discard those
  violating Γ; unbiased, with a Hoeffding certificate on the *conditional*
  estimate via the ratio of two counts. Degrades when p(Γ) is small.
* **weighted world sampling for MLNs** — sample worlds from the uniform
  base measure and average factor weights (a simple importance sampler for
  the partition function and query weight).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..core.tid import TupleIndependentDatabase
from ..logic.formulas import Formula
from ..logic.semantics import satisfies
from .mln import MarkovLogicNetwork

__all__ = [
    "ConditionalEstimate",
    "MLNEstimate",
    "importance_sample_mln",
    "rejection_sample_conditional",
    "required_samples_for_conditional",
]


@dataclass(frozen=True)
class ConditionalEstimate:
    """Estimate of p(Q | Γ) with acceptance diagnostics."""

    estimate: float
    samples: int
    accepted: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.samples if self.samples else 0.0


def rejection_sample_conditional(
    db: TupleIndependentDatabase,
    query: Formula,
    constraint: Formula,
    samples: int = 10_000,
    rng: Optional[random.Random] = None,
) -> ConditionalEstimate:
    """Estimate p(Q | Γ) by rejection sampling worlds from the TID."""
    rng = rng if rng is not None else random.Random()
    domain = db.domain()
    accepted = 0
    hits = 0
    for _ in range(samples):
        world = db.sample_world(rng)
        if not satisfies(world, domain, constraint):
            continue
        accepted += 1
        if satisfies(world, domain, query):
            hits += 1
    estimate = hits / accepted if accepted else float("nan")
    return ConditionalEstimate(estimate, samples, accepted)


@dataclass(frozen=True)
class MLNEstimate:
    """Importance-sampling estimate of p_MLN(Q)."""

    estimate: float
    samples: int
    effective_samples: float


def importance_sample_mln(
    mln: MarkovLogicNetwork,
    query: Formula,
    samples: int = 5_000,
    rng: Optional[random.Random] = None,
) -> MLNEstimate:
    """Estimate p_MLN(Q) = E_w[1_Q·weight] / E_w[weight] over uniform worlds.

    Worlds are drawn uniformly over Tup(DOM) (each tuple present w.p. 1/2 —
    the MLN's base measure), weighted by the product of satisfied factor
    weights. Reports the effective sample size Σw²-based diagnostic.
    """
    rng = rng if rng is not None else random.Random()
    tuples = mln.possible_tuples()
    numerator = 0.0
    denominator = 0.0
    sum_squared = 0.0
    for _ in range(samples):
        world = frozenset(t for t in tuples if rng.random() < 0.5)
        weight = mln.weight_of_world(world)
        denominator += weight
        sum_squared += weight * weight
        if weight and satisfies(world, mln.domain, query):
            numerator += weight
    estimate = numerator / denominator if denominator else float("nan")
    effective = (denominator * denominator / sum_squared) if sum_squared else 0.0
    return MLNEstimate(estimate, samples, effective)


def required_samples_for_conditional(
    constraint_probability: float, epsilon: float, delta: float
) -> int:
    """Rough sample budget: Hoeffding over the accepted subsample.

    To get n_acc = ln(2/δ)/(2ε²) accepted samples in expectation, draw
    n = n_acc / p(Γ) total samples.
    """
    if not 0 < constraint_probability <= 1:
        raise ValueError("constraint probability must be in (0, 1]")
    accepted_needed = math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))
    return math.ceil(accepted_needed / constraint_probability)
