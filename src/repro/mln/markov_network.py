"""Boolean Markov networks — the appendix's weighted-factor machinery.

A factor is ``(w, G)``: weight *w* when the Boolean formula *G* holds, 1
otherwise. Together with per-variable weights this defines the factorized
distribution ``p'`` of the appendix:

    weight'(θ) = Π_{θ(Xᵢ)=1} wᵢ · Π_{(w,G): θ ⊨ G} w
    p'(θ)      = weight'(θ) / Z'

The module also implements the appendix's two conversions of a factor into
an *independent* variable plus a constraint — the propositional blueprint of
Proposition 3.1 — including the negative-weight case ``w < 1`` where the
auxiliary variable gets a non-standard "probability" outside [0, 1].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..booleans.expr import BAnd, BExpr, BOr, bnot, bor, bvar, evaluate


@dataclass(frozen=True)
class Factor:
    """A weighted Boolean factor (w, G)."""

    weight: float
    formula: BExpr


@dataclass
class BooleanMarkovNetwork:
    """Per-variable weights plus factors, as in the appendix's Fig. 3."""

    variable_weights: dict[int, float]
    factors: list[Factor] = field(default_factory=list)

    def variables(self) -> list[int]:
        out = set(self.variable_weights)
        for factor in self.factors:
            out |= factor.formula.variables()
        return sorted(out)

    def assignments(self) -> Iterator[dict[int, bool]]:
        variables = self.variables()
        for bits in itertools.product((False, True), repeat=len(variables)):
            yield dict(zip(variables, bits))

    def weight_of(self, assignment: Mapping[int, bool]) -> float:
        """weight'(θ) of the appendix."""
        weight = 1.0
        for var, w in self.variable_weights.items():
            if assignment.get(var, False):
                weight *= w
        for factor in self.factors:
            if evaluate(factor.formula, assignment):
                weight *= factor.weight
        return weight

    def partition_function(self) -> float:
        return sum(self.weight_of(a) for a in self.assignments())

    def probability(self, event: BExpr) -> float:
        """p'(F) = weight'(F)/Z' for a Boolean event F."""
        z = self.partition_function()
        total = sum(
            self.weight_of(a) for a in self.assignments() if evaluate(event, a)
        )
        return total / z

    def weight_of_formula(self, event: BExpr) -> float:
        return sum(
            self.weight_of(a) for a in self.assignments() if evaluate(event, a)
        )


@dataclass(frozen=True)
class IndependentEncoding:
    """An independent model + constraint replacing one factor."""

    variable_weights: dict[int, float]
    constraint: BExpr


def encode_factor_iff(
    network: BooleanMarkovNetwork, factor_index: int, fresh_var: int
) -> tuple[BooleanMarkovNetwork, BExpr]:
    """First appendix approach: weight(X) = w, Γ = (X ⟺ G).

    Returns the network without the factor (X added with weight w) and the
    constraint to condition on.
    """
    factor = network.factors[factor_index]
    remaining = [f for i, f in enumerate(network.factors) if i != factor_index]
    weights = dict(network.variable_weights)
    weights[fresh_var] = factor.weight
    x = bvar(fresh_var)
    g = factor.formula
    constraint = BOr.of(
        (BAnd.of((x, g)), BAnd.of((bnot(x), bnot(g))))
    )
    return BooleanMarkovNetwork(weights, remaining), constraint


def encode_factor_or(
    network: BooleanMarkovNetwork, factor_index: int, fresh_var: int
) -> tuple[BooleanMarkovNetwork, BExpr]:
    """Second appendix approach: weight(X) = 1/(w − 1), Γ = X ∨ G.

    For w < 1 the auxiliary weight is negative — a *non-standard*
    probability — yet every conditional probability p''(F | Γ) remains a
    standard value in [0, 1] (the appendix's closing observation).
    """
    factor = network.factors[factor_index]
    if factor.weight == 1.0:  # prodb-lint: exact -- w = 1 exactly is vacuous
        raise ValueError("weight 1 factors are vacuous; drop them instead")
    remaining = [f for i, f in enumerate(network.factors) if i != factor_index]
    weights = dict(network.variable_weights)
    weights[fresh_var] = 1.0 / (factor.weight - 1.0)
    constraint = bor(bvar(fresh_var), factor.formula)
    return BooleanMarkovNetwork(weights, remaining), constraint


def conditional_probability(
    network: BooleanMarkovNetwork, event: BExpr, constraint: BExpr
) -> float:
    """p''(F | Γ) in the (possibly non-standard-weight) independent model."""
    z = network.weight_of_formula(constraint)
    if z == 0:
        raise ZeroDivisionError("constraint has zero weight")
    joint = network.weight_of_formula(BAnd.of((event, constraint)))
    return joint / z
