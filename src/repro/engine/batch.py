"""Executor strategies for :meth:`EngineSession.query_batch`.

Three strategies, picked per workload:

* ``"serial"`` — evaluate in-line, one query at a time (baseline; still
  cache-aware, since it goes through ``session.query``);
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor` whose
  workers share the session's LRU cache and in-flight deduplication. Under
  the GIL threads don't speed up a single cold CPU-bound count, but for
  the traffic this layer targets — many queries with repeats — the shared
  cache means each distinct ``(database, query, method)`` is computed once
  no matter how many times it appears, and I/O-ish stages overlap;
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor` for
  genuinely parallel cold workloads on multicore machines. Each worker
  process rebuilds the database once (pool initializer), evaluates its
  share, and the parent merges the answers back into the session cache so
  subsequent queries hit warm. Queries must be picklable (strings always
  are); per-worker caches are not shared *during* the batch.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..core.pdb import Method, ProbabilisticDatabase, Query, QueryAnswer
from ..core.tid import TupleIndependentDatabase
from ..logic.terms import Var
from ..wmc.dpll import DPLLCounter
from .cache import query_fingerprint
from .stats import QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import EngineSession


def default_workers(requested: Optional[int], task_count: int) -> int:
    if requested is not None:
        return max(1, requested)
    return max(1, min(task_count, (os.cpu_count() or 1) * 4, 32))


def run_batch(
    session: "EngineSession",
    queries: list[Query],
    method: Method,
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> list[QueryAnswer]:
    """Evaluate *queries* with the chosen strategy, preserving input order."""
    session.stats.record_batch()
    if not queries:
        return []
    if executor == "serial":
        return [session.query(q, method) for q in queries]
    if executor == "thread":
        workers = default_workers(max_workers, len(queries))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda q: session.query(q, method), queries))
    if executor == "process":
        return _run_process_batch(session, queries, method, max_workers)
    raise ValueError(
        f"unknown executor {executor!r}; choose 'serial', 'thread' or 'process'"
    )


# -- process pool ------------------------------------------------------------
#
# The worker database is rebuilt once per process by the pool initializer
# and stashed in a module global — the standard concurrent.futures idiom
# for a read-only shared resource.

_WORKER_PDB: Optional[ProbabilisticDatabase] = None


def _init_worker(facts: list, domain: Optional[tuple], options: dict) -> None:
    global _WORKER_PDB
    tid = TupleIndependentDatabase.from_facts(facts, domain)
    _WORKER_PDB = ProbabilisticDatabase(tid=tid, **options)


def _eval_in_worker(item: tuple[str, str]) -> QueryAnswer:
    query, method_value = item
    assert _WORKER_PDB is not None, "process pool initializer did not run"
    return _WORKER_PDB.probability(query, Method(method_value))


def mp_context() -> multiprocessing.context.BaseContext:
    """The start method every process fan-out in the package shares.

    Never ``fork``: by the time a batch or the server pool spawns workers
    the parent may already run an asyncio loop, thread pools and ranked
    locks, and forking duplicates held locks and live threads into the
    child mid-state. ``forkserver`` keeps child startup cheap (the server
    process imports the package once, before any threads exist) and
    ``spawn`` is the portable fallback.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


def _run_process_batch(
    session: "EngineSession",
    queries: list[Query],
    method: Method,
    max_workers: Optional[int],
) -> list[QueryAnswer]:
    pdb = session.pdb
    facts = list(pdb.tid.facts())
    domain = pdb.tid.explicit_domain
    options = {
        "exact_lineage_limit": pdb.exact_lineage_limit,
        "mc_epsilon": pdb.mc_epsilon,
        "mc_delta": pdb.mc_delta,
        "seed": pdb.seed,
        "backend": pdb.backend,
    }
    workers = default_workers(
        max_workers if max_workers is not None else os.cpu_count(), len(queries)
    )
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context(),
        initializer=_init_worker,
        initargs=(facts, domain, options),
    ) as pool:
        answers = list(pool.map(_eval_in_worker, [(q, method.value) for q in queries]))
    # Merge results into the parent's cache so follow-up traffic hits warm.
    tid_fp = pdb.tid.fingerprint()
    for query, answer in zip(queries, answers):
        key = ("answer", tid_fp, query_fingerprint(query), method.value, pdb.backend)
        if key not in session.cache:
            session.cache.put(key, answer)
        session.stats.record(answer.stats)
    return answers


# -- parallel per-answer marginals -------------------------------------------


def parallel_answers(
    pdb: ProbabilisticDatabase,
    query: Query,
    head: Sequence[Union[str, Var]],
    *,
    max_workers: Optional[int] = None,
    stats: Optional[QueryStats] = None,
) -> dict[tuple, QueryAnswer]:
    """Per-answer marginals with the model counts fanned across threads.

    Mirrors :meth:`ProbabilisticDatabase.answers`: one shared grounding
    pass, then each answer tuple's lineage is an independent weighted model
    count, evaluated here by a pool of workers (one fresh
    :class:`DPLLCounter` per answer). Results are identical to the
    sequential route; only the schedule differs.
    """
    from ..lineage.build import answer_lineages
    from ..logic.cq import parse_cq

    stats = stats if stats is not None else QueryStats()
    with stats.stage("parse"):
        parsed = parse_cq(query) if isinstance(query, str) else query
    head_vars = tuple(Var(h) if isinstance(h, str) else h for h in head)
    missing = set(head_vars) - parsed.variables
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise ValueError(f"head variables not in query: {names}")
    with stats.stage("lineage"):
        lineages, pool = answer_lineages(parsed, head_vars, pdb.tid)
    probabilities = pool.probability_map()
    items = sorted(lineages.items(), key=lambda kv: repr(kv[0]))

    def count_one(item: tuple) -> tuple:
        values, expr = item
        result = DPLLCounter().run(expr, probabilities)
        return values, QueryAnswer(
            result.probability,
            Method.DPLL,
            exact=True,
            detail="per-answer lineage",
            stats=stats,
        )

    workers = default_workers(max_workers, len(items))
    with stats.stage("count"):
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return dict(executor.map(count_one, items))
