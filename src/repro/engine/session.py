"""`EngineSession`: a memoizing, batch-capable front end to the engine.

The façade in :mod:`repro.core.pdb` recomputes everything on every call —
the right semantics for a library, the wrong ones for a server answering
heavy repeated traffic. A session wraps one
:class:`~repro.core.pdb.ProbabilisticDatabase` and memoizes every
intermediate artifact of evaluation in a single content-addressed LRU
cache (:class:`~repro.engine.cache.LRUCache`):

======================  =====================================================
entry kind              key
======================  =====================================================
parsed query            ``("parse", query_fp)``
grounded lineage        ``("lineage", tid_fp, query_fp)``
compiled circuit        ``("circuit", tid_fp, lineage_fp)``
Boolean answer          ``("answer", tid_fp, query_fp, method, backend)``
per-answer marginals    ``("answers", tid_fp, query_fp·head)``
======================  =====================================================

Answers are cached **per-backend**: the configured extensional backend
(``ProbabilisticDatabase.backend``) is part of the answer key, so a
session that switches between the row and columnar executors keeps their
entries separate.

``tid_fp`` is the database's content hash
(:meth:`~repro.core.tid.TupleIndependentDatabase.fingerprint`): mutating
the database changes the hash, so every entry derived from the old
contents simply stops being addressable — invalidation needs no explicit
protocol, and stale entries age out through LRU eviction. Mutations that
bypass the TID's own methods (e.g. poking ``tid.relations[...]`` directly)
must be announced with ``tid.touch()``.

Cached answers are returned verbatim (bit-identical probabilities, same
derivation detail) with a fresh :class:`~repro.engine.stats.QueryStats`
marking the cache hit; this also makes repeated approximate queries
deterministic within a session, since the first estimate is reused.

:meth:`EngineSession.query_batch` evaluates many queries through
:mod:`concurrent.futures`, sharing the cache across workers and
deduplicating in-flight work: when several workers race on the same
``(tid_fp, query_fp, method)`` key, one computes and the rest wait on its
future. See :mod:`repro.engine.batch` for the executor strategies.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import replace
from typing import Callable, Iterable, Optional, Sequence, Union

from ..core.pdb import (
    Method,
    ProbabilisticDatabase,
    Query,
    QueryAnswer,
    explain_answer,
)
from ..booleans.kernel import clear_kernel_memos
from ..core.tid import TupleIndependentDatabase
from ..logic.terms import Var
from ..sanitize import (
    RANK_INFLIGHT,
    RankedLock,
    audit_kernel,
    audited_dict,
    sanitize_enabled,
)
from .cache import LRUCache, lineage_fingerprint, query_fingerprint
from .stats import QueryStats, SessionStats


class EngineSession:
    """A caching session over one probabilistic database.

    Parameters
    ----------
    db:
        A :class:`ProbabilisticDatabase`, a bare
        :class:`TupleIndependentDatabase`, or ``None`` for an empty one.
    cache_size:
        Maximum number of memoized artifacts (answers, lineages, parses,
        circuits share one LRU budget).
    max_workers:
        Default worker count for :meth:`query_batch`.
    seed:
        When given, overrides the wrapped database's RNG seed so the
        approximate routes are reproducible.
    backend:
        When given, overrides the wrapped database's extensional backend
        (``"rows"`` / ``"columnar"`` / ``"auto"``). Answers are cached
        per-backend — the configured backend is part of the answer key —
        so switching backends mid-session never serves a stale entry from
        the other executor.
    """

    def __init__(
        self,
        db: Union[ProbabilisticDatabase, TupleIndependentDatabase, None] = None,
        *,
        cache_size: int = 256,
        max_workers: Optional[int] = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if db is None:
            self.pdb = ProbabilisticDatabase()
        elif isinstance(db, ProbabilisticDatabase):
            self.pdb = db
        elif isinstance(db, TupleIndependentDatabase):
            self.pdb = ProbabilisticDatabase(tid=db)
        else:
            raise TypeError(
                "EngineSession wraps a ProbabilisticDatabase or a "
                f"TupleIndependentDatabase, not {type(db).__name__}"
            )
        if seed is not None:
            self.pdb.seed = seed
        if backend is not None:
            self.pdb.backend = backend
        self.max_workers = max_workers
        self.cache = LRUCache(cache_size)
        self.stats = SessionStats()
        self._inflight: dict[tuple, Future] = audited_dict("session.inflight")
        self._inflight_lock = RankedLock(RANK_INFLIGHT, "session.inflight")

    # -- convenience passthroughs ---------------------------------------------

    @property
    def tid(self) -> TupleIndependentDatabase:
        return self.pdb.tid

    def add_fact(self, name: str, values: Iterable, probability: float = 1.0) -> None:
        self.pdb.add_fact(name, values, probability)

    # -- Boolean queries -------------------------------------------------------

    def query(self, query: Query, method: Method = Method.AUTO) -> QueryAnswer:
        """Evaluate a Boolean query, serving repeats from the cache.

        Cache hits return the memoized answer (numerically identical to
        the cold evaluation) with a fresh stats record flagging the hit.
        """
        stats = QueryStats()
        with stats.stage("lookup"):
            tid_fp = self.tid.fingerprint()
            qfp = query_fingerprint(query)
            key = ("answer", tid_fp, qfp, method.value, self.pdb.backend)
            cached = self.cache.get(key)
        if cached is not None:
            return self._serve_hit(cached, stats)
        owner, answer = self._compute_once(
            key, lambda: self._evaluate(query, method, tid_fp, qfp, stats)
        )
        if not owner:
            # Another worker computed this key while we waited on its
            # future: account for it as a (shared) hit.
            return self._serve_hit(answer, stats)
        self.stats.record(answer.stats)
        return answer

    def query_batch(
        self,
        queries: Sequence[Query],
        method: Method = Method.AUTO,
        *,
        executor: str = "thread",
        max_workers: Optional[int] = None,
    ) -> list[QueryAnswer]:
        """Evaluate many Boolean queries, in input order.

        *executor* selects the strategy (see :mod:`repro.engine.batch`):
        ``"thread"`` shares this session's cache across workers and
        deduplicates in-flight work — the right choice for workloads with
        repeats; ``"process"`` sidesteps the GIL for CPU-bound cold
        workloads on multicore machines (answers are merged back into the
        cache on return); ``"serial"`` is the in-line baseline.
        """
        from .batch import run_batch

        return run_batch(
            self,
            list(queries),
            method,
            executor=executor,
            max_workers=max_workers if max_workers is not None else self.max_workers,
        )

    def _serve_hit(self, cached: QueryAnswer, stats: QueryStats) -> QueryAnswer:
        stats.route = cached.method.value
        stats.cache_hit = True
        self.stats.record(stats)
        return replace(cached, stats=stats)

    def _evaluate(
        self, query: Query, method: Method, tid_fp: str, qfp: str, stats: QueryStats
    ) -> QueryAnswer:
        parsed = self._parse_cached(query, qfp)
        return self.pdb.probability(
            parsed,
            method,
            stats=stats,
            lineage_factory=self._lineage_factory(tid_fp, qfp),
        )

    def _compute_once(
        self, key: tuple, compute: Callable[[], QueryAnswer]
    ) -> tuple[bool, QueryAnswer]:
        """Run *compute* for *key* unless a concurrent call already is.

        Returns ``(owner, answer)``: the owner actually ran the
        computation (and stored it in the cache); non-owners waited on the
        owner's future.
        """
        with self._inflight_lock:
            future = self._inflight.get(key)
            if future is None:
                future = self._inflight[key] = Future()
                owner = True
            else:
                owner = False
        if not owner:
            return False, future.result()
        try:
            answer = compute()
            self.cache.put(key, answer)
            future.set_result(answer)
            return True, answer
        except BaseException as error:
            future.set_exception(error)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def _parse_cached(self, query: Query, qfp: str) -> object:
        if not isinstance(query, str):
            return query
        key = ("parse", qfp)
        parsed = self.cache.get(key)
        if parsed is None:
            parsed = self.pdb.parse_query(query)
            self.cache.put(key, parsed)
        return parsed

    def _lineage_factory(self, tid_fp: str, qfp: str) -> Callable:
        def factory(parsed: object) -> object:
            key = ("lineage", tid_fp, qfp)
            lineage = self.cache.get(key)
            if lineage is None:
                lineage = self.pdb._lineage(parsed)
                self.cache.put(key, lineage)
            return lineage

        return factory

    # -- non-Boolean queries ---------------------------------------------------

    def answers(
        self,
        query: Query,
        head: Sequence[Union[str, Var]],
        *,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> dict[tuple, QueryAnswer]:
        """Per-answer marginals of a non-Boolean CQ, memoized as one unit.

        With ``parallel=True`` the per-answer model counts run across a
        thread pool (each answer tuple's lineage is an independent DPLL
        problem); results are identical to the sequential route.
        """
        head_names = tuple(h.name if isinstance(h, Var) else str(h) for h in head)
        stats = QueryStats(route=Method.DPLL.value)
        with stats.stage("lookup"):
            tid_fp = self.tid.fingerprint()
            qfp = query_fingerprint(query, head=head_names)
            key = ("answers", tid_fp, qfp)
            cached = self.cache.get(key)
        if cached is not None:
            stats.cache_hit = True
            self.stats.record(stats)
            return dict(cached)
        if parallel:
            from .batch import parallel_answers

            out = parallel_answers(
                self.pdb,
                query,
                head,
                max_workers=max_workers if max_workers is not None else self.max_workers,
                stats=stats,
            )
        else:
            out = self.pdb.answers(query, head)
            for answer in out.values():
                if answer.stats is not None:
                    stats.stages.update(answer.stats.stages)
                    break
        self.cache.put(key, dict(out))
        self.stats.record(stats)
        return out

    def lineage(self, query: Query) -> object:
        """The grounded lineage of *query*, served from the session cache.

        Used by layers that need to size up a query before choosing a
        route — e.g. the server's :class:`~repro.server.ladder.MethodLadder`
        predicts exact-inference cost from ``lineage.variable_count``
        without paying for grounding twice (the same cache entry feeds the
        subsequent evaluation).
        """
        tid_fp = self.tid.fingerprint()
        qfp = query_fingerprint(query)
        parsed = self._parse_cached(query, qfp)
        return self._lineage_factory(tid_fp, qfp)(parsed)

    # -- circuit-backed analyses ----------------------------------------------

    def _compiled(self, query: Query) -> tuple:
        from ..wmc.dpll import compile_decision_dnnf

        tid_fp = self.tid.fingerprint()
        qfp = query_fingerprint(query)
        parsed = self._parse_cached(query, qfp)
        lineage = self._lineage_factory(tid_fp, qfp)(parsed)
        # Key the circuit by the lineage — interned expression plus its
        # variable→fact binding — not the query text: distinct spellings
        # share one compiled decision-DNNF exactly when their groundings
        # agree. The expression id alone would collide across queries,
        # since BVar indices restart at 0 in every per-query pool.
        key = ("circuit", tid_fp, lineage_fingerprint(lineage))
        entry = self.cache.get(key)
        if entry is None:
            compiled = compile_decision_dnnf(lineage.expr, lineage.probabilities())
            entry = (lineage, compiled)
            self.cache.put(key, entry)
        return entry

    def tuple_posteriors(self, query: Query) -> dict[tuple, object]:
        """As :meth:`ProbabilisticDatabase.tuple_posteriors`, reusing the
        memoized decision-DNNF across calls (and with
        :meth:`most_probable_world`)."""
        from ..kc.differentiate import differentiate

        lineage, compiled = self._compiled(query)
        reports = differentiate(compiled.circuit, lineage.probabilities())
        return {lineage.fact(index): report for index, report in reports.items()}

    def most_probable_world(self, query: Query) -> tuple[dict, float]:
        """As :meth:`ProbabilisticDatabase.most_probable_world`, sharing the
        memoized circuit."""
        from ..kc.mpe import most_probable_model

        lineage, compiled = self._compiled(query)
        explanation = most_probable_model(compiled.circuit, lineage.probabilities())
        world = {
            lineage.fact(index): value
            for index, value in explanation.assignment.items()
        }
        return world, explanation.probability

    # -- introspection ---------------------------------------------------------

    def explain(self, query: Query, method: Method = Method.AUTO) -> str:
        """The uniform ``explain()`` report, cache-aware."""
        return explain_answer(query, self.query(query, method))

    def invalidate(self) -> None:
        """Drop every memoized artifact.

        Not needed after ordinary mutations — the fingerprint keys handle
        those — but useful to release memory or after out-of-band changes
        when ``tid.touch()`` was forgotten. Releasing memory really works:
        the Boolean kernel's memo tables (pure caches, shared
        process-wide) are cleared alongside the session cache, and the
        kernel's unique table holds expressions only weakly, so the
        dropped lineages and circuits become collectable.
        """
        self.cache.clear()
        clear_kernel_memos()
        if sanitize_enabled():
            # The kernel just shed its memo strong references: a good
            # moment to cross-check the surviving unique-table entries.
            audit_kernel()

    def cache_info(self) -> object:
        """The cache's hit/miss/eviction counters."""
        return self.cache.stats

    def report(self) -> str:
        """A session-level summary: traffic, hit rates, route mix, timings."""
        return "\n".join(
            [
                self.stats.report(),
                f"cache        : {len(self.cache)}/{self.cache.maxsize} entries, "
                f"{self.cache.stats}",
            ]
        )
