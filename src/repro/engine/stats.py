"""Per-query and per-session instrumentation.

Every inference route in :mod:`repro.core.pdb` reports where its time went
through a :class:`QueryStats` attached to the returned
:class:`~repro.core.pdb.QueryAnswer`. The stage vocabulary is shared by all
six routes so that ``explain()`` output is uniform:

* ``parse``   — query text → AST;
* ``lineage`` — grounding the query into a Boolean expression;
* ``compile`` — normal-form / plan / circuit construction (DNF for
  Karp–Luby, the safe plan, a decision-DNNF, ...);
* ``count``   — the actual probability computation (lifted rules, DPLL,
  plan execution, sampling, world enumeration).

Routes only fill the stages they execute; a cached answer carries a fresh
stats object with ``cache_hit=True`` and only a ``lookup`` stage.

:class:`SessionStats` aggregates these per-query records across an
:class:`~repro.engine.session.EngineSession`, including under concurrent
``query_batch`` execution (all counters are updated under a lock). Each
record is also published into the process-wide metrics registry
(:mod:`repro.obs`) — ``engine_queries_total``, cache hit/miss counters and
the ``engine_query_seconds`` latency histogram — so a server scraping
``/metrics`` sees engine traffic without extra plumbing.

This module imports only :mod:`repro.sanitize` and :mod:`repro.obs`
(both standard-library-only) so that ``core/pdb.py`` can depend on it
without an import cycle.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..obs import get_registry
from ..sanitize import RANK_STATS, RankedLock

#: Canonical stage order for reports; unknown stages are appended after.
STAGE_ORDER = ("lookup", "parse", "lineage", "compile", "count")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.3f}ms"


@dataclass
class OperatorProfile:
    """One plan operator's traffic: rows in, rows out, wall time.

    Filled by both extensional executors (row and columnar) when the
    safe-plan route runs, one record per scan/join/project in execution
    order, and surfaced through ``QueryAnswer.stats`` and ``explain()``.
    """

    operator: str
    rows_in: int
    rows_out: int
    seconds: float

    def __str__(self) -> str:
        return (
            f"{self.operator}: {self.rows_in} → {self.rows_out} rows "
            f"in {_format_seconds(self.seconds)}"
        )


@dataclass
class QueryStats:
    """Where one query's evaluation spent its time, and how it was served.

    ``counters`` carries route-specific integer counters — notably the
    hash-consing kernel's unique-table size and intern/cofactor-memo
    traffic filled in by the grounded (DPLL) route.
    """

    route: str = ""
    stages: Dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    counters: Dict[str, int] = field(default_factory=dict)
    #: Extensional backend that executed the plan ("rows" / "columnar");
    #: empty for non-plan routes.
    backend: str = ""
    #: Per-operator rows-in/rows-out traffic of the executed plan.
    operators: List[OperatorProfile] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block and accumulate it under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, time.perf_counter() - start)

    def add_stage(self, name: str, seconds: float) -> None:
        # A QueryStats record is owned by the single thread executing its
        # query; it is never shared across threads while being written.
        self.stages[name] = self.stages.get(name, 0.0) + seconds  # prodb-lint: lockfree

    @property
    def total(self) -> float:
        """Total instrumented wall-time across all stages."""
        return sum(self.stages.values())

    def _ordered_stages(self) -> list[tuple[str, float]]:
        known = [(s, self.stages[s]) for s in STAGE_ORDER if s in self.stages]
        extra = sorted(
            (s, t) for s, t in self.stages.items() if s not in STAGE_ORDER
        )
        return known + extra

    def summary(self) -> str:
        """One line: ``parse=0.1ms lineage=2.3ms count=8.1ms total=10.5ms``."""
        parts = [
            f"{name}={_format_seconds(seconds)}"
            for name, seconds in self._ordered_stages()
        ]
        parts.append(f"total={_format_seconds(self.total)}")
        return " ".join(parts)

    def counter_summary(self) -> str:
        """One line: ``kernel_unique_nodes=42 cofactor_memo_hits=7 ...``."""
        return " ".join(
            f"{name}={value}" for name, value in sorted(self.counters.items())
        )

    def operator_summary(self) -> list[str]:
        """One line per plan operator: ``scan R(x): 100 → 70 rows in 0.1ms``."""
        return [str(profile) for profile in self.operators]

    def report(self) -> str:
        """Multi-line report in the style of ``ProbabilisticDatabase.explain``."""
        lines = [
            f"route        : {self.route or '?'}",
            f"cache hit    : {self.cache_hit}",
            f"stage times  : {self.summary()}",
        ]
        if self.backend:
            lines.append(f"backend      : {self.backend}")
        for line in self.operator_summary():
            lines.append(f"  {line}")
        if self.counters:
            lines.append(f"kernel       : {self.counter_summary()}")
        return "\n".join(lines)


@dataclass
class SessionStats:
    """Aggregate counters for one :class:`~repro.engine.session.EngineSession`.

    Thread-safe: ``record`` may be called concurrently from ``query_batch``
    workers.
    """

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    routes: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    _lock: RankedLock = field(
        default_factory=lambda: RankedLock(RANK_STATS, "session.stats"),
        repr=False,
        compare=False,
    )

    def record(self, stats: Optional[QueryStats]) -> None:
        """Fold one query's stats into the session aggregates."""
        if stats is None:
            return
        with self._lock:
            self.queries += 1
            if stats.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if stats.route:
                self.routes[stats.route] = self.routes.get(stats.route, 0) + 1
            for name, seconds in stats.stages.items():
                self.stage_seconds[name] = (
                    self.stage_seconds.get(name, 0.0) + seconds
                )
            for name, value in stats.counters.items():
                if name == "kernel_unique_nodes":
                    # A table size, not a rate: keep the latest observation.
                    self.counters[name] = value
                else:
                    self.counters[name] = self.counters.get(name, 0) + value
        # Publish into the process-wide registry after releasing our lock
        # (rank STATS < METRICS makes holding it legal too; not holding it
        # keeps the critical section minimal).
        registry = get_registry()
        registry.counter(
            "engine_queries_total", "queries answered by engine sessions"
        ).inc()
        if stats.cache_hit:
            registry.counter(
                "engine_cache_hits_total", "session answers served from cache"
            ).inc()
        else:
            registry.counter(
                "engine_cache_misses_total", "session answers computed cold"
            ).inc()
        registry.histogram(
            "engine_query_seconds", "per-query instrumented wall time"
        ).observe(stats.total)

    def record_batch(self) -> None:
        with self._lock:
            self.batches += 1
        get_registry().counter(
            "engine_batches_total", "query_batch invocations"
        ).inc()

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def report(self) -> str:
        """Multi-line session summary for the CLI and ``EngineSession.report``."""
        with self._lock:
            routes = ", ".join(
                f"{name}×{count}" for name, count in sorted(self.routes.items())
            )
            stages = " ".join(
                f"{name}={_format_seconds(self.stage_seconds[name])}"
                for name in STAGE_ORDER
                if name in self.stage_seconds
            )
            counters = " ".join(
                f"{name}={value}" for name, value in sorted(self.counters.items())
            )
            lines = [
                f"queries      : {self.queries} ({self.batches} batches)",
                f"answer cache : {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"({self.hit_rate:.0%} hit rate)",
                f"routes       : {routes or '-'}",
                f"stage totals : {stages or '-'}",
            ]
            if counters:
                lines.append(f"kernel       : {counters}")
        return "\n".join(lines)
