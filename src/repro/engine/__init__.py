"""The session layer: content-addressed caching, batching, instrumentation.

``repro.engine`` wraps the single-query façade of :mod:`repro.core.pdb`
with the machinery a server needs under heavy repeated traffic:

* :class:`EngineSession` — memoizes parsed queries, lineages, compiled
  circuits and final answers in one content-addressed LRU cache keyed by
  ``(tid_fingerprint, query_fingerprint, method)``; mutating the database
  changes its fingerprint, so stale entries become unreachable without any
  explicit invalidation protocol;
* :meth:`EngineSession.query_batch` — evaluates many queries concurrently
  through :mod:`concurrent.futures`, sharing the cache (and deduplicating
  in-flight work) across workers;
* :mod:`repro.engine.stats` — per-query stage timings and per-session
  aggregate counters, surfaced through ``QueryAnswer.stats``, ``explain()``
  and the ``--stats`` CLI flag.

Only the dependency-free submodules (:mod:`~repro.engine.stats`,
:mod:`~repro.engine.cache`) are imported eagerly here; ``EngineSession``
is loaded on first attribute access because :mod:`repro.core.pdb` imports
this package for :class:`~repro.engine.stats.QueryStats` while the session
module imports ``core.pdb`` back.
"""

from __future__ import annotations

from .cache import CacheStats, LRUCache, query_fingerprint, tid_fingerprint
from .stats import OperatorProfile, QueryStats, SessionStats

__all__ = [
    "CacheStats",
    "LRUCache",
    "query_fingerprint",
    "tid_fingerprint",
    "OperatorProfile",
    "QueryStats",
    "SessionStats",
    "EngineSession",
]

_LAZY = {"EngineSession"}


def __getattr__(name: str) -> object:
    if name in _LAZY:
        from . import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _LAZY)
