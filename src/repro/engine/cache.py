"""A thread-safe LRU cache with content-addressed keys.

The engine memoizes every intermediate artifact of query evaluation —
parsed queries, lineage expressions, compiled circuits and final answers —
in one bounded LRU map. Keys are tuples
``(kind, tid_fingerprint, query_fingerprint, ...)`` where both fingerprints
are content hashes: mutating the database changes its fingerprint (see
:meth:`repro.core.tid.TupleIndependentDatabase.fingerprint`), which makes
every entry derived from the old contents unreachable — invalidation by
construction, with stale entries aging out through normal LRU eviction.

This module imports nothing from the rest of the package — except
:mod:`repro.sanitize`, which itself imports only the standard library — so
that it can be loaded from ``repro.engine``'s package init without touching
``repro.core`` (which itself imports :mod:`repro.engine.stats`).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional

from ..sanitize import RANK_CACHE, RankedLock


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%}), {self.puts} puts, "
            f"{self.evictions} evictions"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    All operations take an internal re-entrant lock, so the cache may be
    shared freely across the worker threads of
    :meth:`repro.engine.session.EngineSession.query_batch`. The lock is a
    :class:`repro.sanitize.RankedLock`: under ``REPRO_SANITIZE=1`` it
    asserts the engine's lock order (in-flight < cache < stats).
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = RankedLock(RANK_CACHE, "engine.cache", reentrant=True)
        self.stats = CacheStats()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up *key*, refreshing its recency; counts a hit or miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            self.stats.puts += 1
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return an entry (no hit/miss accounting)."""
        with self._lock:
            return self._data.pop(key, default)

    def keys(self) -> list:
        """A snapshot of the current keys, LRU first."""
        with self._lock:
            return list(self._data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or the counters."""
        with self._lock:
            return key in self._data


def _digest(parts: Iterable[str]) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def digest(parts: Iterable[str]) -> str:
    """The cache's content-hash primitive, for other content-addressed keys.

    Exposed so sibling layers (e.g. the conditioning subsystem's
    constraint-set fingerprints) address their entries with the same
    domain-separated blake2b construction instead of inventing another.
    """
    return _digest(parts)


def query_fingerprint(query: Any, head: Optional[tuple] = None) -> str:
    """A content hash of a query in any of the façade's accepted forms.

    Strings are hashed after whitespace normalisation, so ``"R(x),S(x,y)"``
    and ``"R(x), S(x,y)"`` share an entry; parsed objects (``Formula``,
    ``ConjunctiveQuery``, ...) hash their type and canonical string form.
    *head* distinguishes non-Boolean uses of the same query text.
    """
    if isinstance(query, str):
        parts = ["str", " ".join(query.split())]
    else:
        parts = ["obj", type(query).__name__, str(query)]
    if head is not None:
        parts.append(repr(tuple(head)))
    return _digest(parts)


def tid_fingerprint(tid: Any) -> str:
    """The database content hash (see ``TupleIndependentDatabase.fingerprint``)."""
    return tid.fingerprint()


def expr_fingerprint(expr: Any) -> str:
    """An O(1) fingerprint of an interned Boolean expression.

    The hash-consing kernel (:mod:`repro.booleans.kernel`) gives every
    structurally-distinct expression a unique node id, so the id alone
    addresses the expression — no re-serialization of the formula tree.
    Node ids are process-local, which is exactly the lifetime of this
    in-memory cache; they are monotonic across kernel resets, so a stale
    fingerprint can never alias a fresh expression.

    The id identifies the *formula*, not its meaning over the database:
    variable indices are pool-local (see :func:`lineage_fingerprint`).
    """
    return f"bexpr:{expr.nid}"


def lineage_fingerprint(lineage: Any) -> str:
    """A content hash of a lineage: the interned expression *plus* its
    variable→fact binding.

    The expression fingerprint alone is ambiguous across queries: ``BVar``
    indices are assigned by a fresh per-query variable pool, so
    structurally identical formulas from different queries (e.g. two
    single-fact Boolean queries both grounding to ``x0``) intern to the
    same node while their variables name different facts with different
    probabilities. Hashing the pool's fact list and weights alongside the
    expression id lets distinct query spellings share an entry exactly
    when their groundings agree — formula, facts and weights alike.
    """
    pool = lineage.pool
    parts = [expr_fingerprint(lineage.expr)]
    for fact, probability in zip(pool.fact_of_var, pool.probabilities):
        parts.append(repr(fact))
        parts.append(float(probability).hex())
    return _digest(parts)
