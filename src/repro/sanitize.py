"""Opt-in runtime sanitizer: audit engine invariants while they happen.

The static rules of ``prodb_lint`` catch invariant violations visible in
the source; this module catches the dynamic ones. It is **off by default**
— every hook returns immediately unless sanitizing was requested — so the
production paths pay one attribute read. Enable it either way:

* environment: ``REPRO_SANITIZE=1 python -m pytest ...``
* programmatically: ``from repro.sanitize import prodb_sanitize;
  prodb_sanitize(True)``

What is audited when enabled:

* **circuit well-formedness** — every circuit recorded by the DPLL counter
  is re-checked against its target language (FBDD: no repeated decision on
  a path; decision-DNNF: additionally independent ∧; d-DNNF: additionally
  deterministic ∨, checked semantically and therefore only on small
  circuits);
* **OBDD order respect** — levels strictly increase along every edge of a
  compiled diagram;
* **probability domain** — every probability leaving the façade lies in
  ``[0, 1]`` up to :data:`TOLERANCE`; extensional bound sandwiches satisfy
  ``lower ≤ upper``;
* **kernel unique-table consistency** — each interned node is stored under
  exactly the key its structure dictates, and the table holds no aliases;
* **lock ordering** — the engine's locks carry ranks
  (:data:`RANK_WORKER_POOL` < :data:`RANK_SERVER` < :data:`RANK_SCENARIO`
  < :data:`RANK_INFLIGHT` < :data:`RANK_CACHE` < :data:`RANK_STATS`
  < :data:`RANK_INTERNER` < :data:`RANK_METRICS`) and a
  :class:`RankedLock`
  refuses acquisition out of rank order, turning a potential deadlock into
  an immediate :class:`LockOrderError`;
* **lockset race detection** — shared containers created through
  :func:`audited_dict` carry an Eraser-style :class:`RaceDetector`: the
  candidate lockset (locks held at every access once a second thread
  appears) is intersected per access, and a write under an *empty*
  candidate set raises :class:`DataRaceError` carrying the stack traces
  of both conflicting accesses — no unlucky interleaving required.

Failures raise :class:`SanitizerError` subclasses (which extend
``AssertionError``: a sanitizer failure is a broken internal invariant,
never a user error).

This module imports only the standard library, so any engine module —
including :mod:`repro.engine.cache`, which must not import the rest of the
package — can depend on it without creating a cycle.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any, Dict, Iterable, Optional

__all__ = [
    "BoundsOrderError",
    "CircuitInvariantError",
    "DataRaceError",
    "KernelTableError",
    "LockOrderError",
    "OrderViolationError",
    "ProbabilityDomainError",
    "RANK_CACHE",
    "RANK_INFLIGHT",
    "RANK_INTERNER",
    "RANK_METRICS",
    "RANK_SCENARIO",
    "RANK_SERVER",
    "RANK_STATS",
    "RANK_WORKER_POOL",
    "RaceDetector",
    "RankedLock",
    "SanitizerError",
    "TOLERANCE",
    "audit_kernel",
    "audited_dict",
    "check_bounds",
    "check_circuit",
    "check_obdd",
    "check_probability",
    "prodb_sanitize",
    "sanitize_enabled",
]

#: Absolute slack allowed on probability-domain and bound-order checks;
#: exact routes accumulate rounding of this order over long sum/products.
TOLERANCE = 1e-9

#: Node-count cap above which the polynomial circuit audits are skipped
#: (the sanitizer must not turn an O(n) count into the dominant cost).
MAX_AUDIT_NODES = 20_000

#: Variable-count cap for the *semantic* d-DNNF determinism audit, which
#: enumerates assignments per ∨ node.
MAX_SEMANTIC_VARS = 12

_enabled = os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0", "false")


def prodb_sanitize(on: bool = True) -> bool:
    """Enable/disable the sanitizer; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


def sanitize_enabled() -> bool:
    return _enabled


class SanitizerError(AssertionError):
    """An engine invariant failed at runtime (sanitizer mode)."""


class CircuitInvariantError(SanitizerError):
    """A compiled circuit violates its target language's invariants."""


class OrderViolationError(SanitizerError):
    """An OBDD edge does not respect the manager's variable order."""


class ProbabilityDomainError(SanitizerError):
    """A probability left the unit interval beyond :data:`TOLERANCE`."""


class BoundsOrderError(SanitizerError):
    """An extensional bound sandwich came out inverted."""


class KernelTableError(SanitizerError):
    """The hash-consing unique table disagrees with node structure."""


class LockOrderError(SanitizerError):
    """Engine locks were acquired out of rank order."""


# -- circuits ----------------------------------------------------------------


def check_circuit(circuit: Any, kind: str = "decision-dnnf") -> None:
    """Audit a :class:`repro.kc.circuits.Circuit` against *kind*.

    *kind* is ``"fbdd"``, ``"decision-dnnf"`` or ``"d-dnnf"``. Oversized
    circuits are skipped (see :data:`MAX_AUDIT_NODES`): the sanitizer is a
    best-effort tripwire, not a proof.
    """
    if not _enabled or circuit is None:
        return
    if circuit.size() > MAX_AUDIT_NODES:
        return
    if kind == "fbdd":
        ok = circuit.check_fbdd()
    elif kind == "decision-dnnf":
        ok = circuit.check_decision_dnnf()
    elif kind == "d-dnnf":
        if len(circuit.variables()) > MAX_SEMANTIC_VARS:
            ok = circuit.check_decision_dnnf()
        else:
            ok = circuit.check_d_dnnf()
    else:
        raise ValueError(f"unknown circuit kind {kind!r}")
    if not ok:
        raise CircuitInvariantError(
            f"compiled circuit violates the {kind} invariants "
            f"({circuit.size()} nodes, root {circuit.root})"
        )


def check_obdd(manager: Any, root: int) -> None:
    """Audit one OBDD root: levels strictly increase along every edge."""
    if not _enabled:
        return
    terminal_level = len(manager.order)
    for index in manager.reachable(root):
        level, lo, hi = manager.node(index)
        for child in (lo, hi):
            child_level = (
                terminal_level if manager.is_terminal(child) else manager.node(child)[0]
            )
            if child_level <= level:
                raise OrderViolationError(
                    f"OBDD node {index} (level {level}, variable "
                    f"{manager.var_at(level)}) has child {child} at level "
                    f"{child_level}: variable order not respected"
                )


# -- probabilities -----------------------------------------------------------


def check_probability(value: float, context: str = "") -> None:
    """Assert ``0 ≤ value ≤ 1`` up to :data:`TOLERANCE`."""
    if not _enabled:
        return
    if not (-TOLERANCE <= value <= 1.0 + TOLERANCE):
        where = f" ({context})" if context else ""
        raise ProbabilityDomainError(
            f"probability {value!r} outside [0, 1]{where}"
        )


def check_bounds(lower: float, upper: float, context: str = "") -> None:
    """Assert a bound sandwich is ordered: ``lower ≤ upper`` up to tolerance."""
    if not _enabled:
        return
    check_probability(lower, context=f"lower bound {context}".strip())
    check_probability(upper, context=f"upper bound {context}".strip())
    if lower > upper + TOLERANCE:
        where = f" ({context})" if context else ""
        raise BoundsOrderError(
            f"inverted bound sandwich: lower {lower!r} > upper {upper!r}{where}"
        )


# -- kernel ------------------------------------------------------------------


def _expected_table_key(node: Any) -> Optional[tuple]:
    """The unique-table key *node*'s structure dictates (None: not tabled)."""
    tag = type(node).__name__
    if tag == "BVar":
        return ("v", node.index)
    if tag == "BNot":
        return ("n", node.sub.nid)
    if tag == "BAnd":
        return ("a", tuple(p.nid for p in node.parts))
    if tag == "BOr":
        return ("o", tuple(p.nid for p in node.parts))
    return None  # constants live on their classes, not in the table


def audit_kernel(manager: Any = None, force: bool = False) -> int:
    """Audit the unique table of *manager* (default: the global kernel).

    Recomputes every live node's structural table key and verifies the
    table stores the node under exactly that key, with no two keys mapping
    to one node. Returns the number of entries audited. Pass ``force=True``
    to audit even when the sanitizer is disabled (used by tests).
    """
    if not _enabled and not force:
        return 0
    if manager is None:
        from .booleans.kernel import DEFAULT_MANAGER

        manager = DEFAULT_MANAGER
    # Snapshot first: iterating a WeakValueDictionary while the GC drops
    # entries is unsafe.
    entries = list(manager.unique.items())
    owner_of: dict[int, tuple] = {}
    for key, node in entries:
        expected = _expected_table_key(node)
        if expected is None:
            raise KernelTableError(
                f"constant node {node!r} found in the unique table under {key!r}"
            )
        if key != expected:
            raise KernelTableError(
                f"unique-table entry {key!r} stores node {node!r} whose "
                f"structure dictates key {expected!r}"
            )
        previous = owner_of.get(node.nid)
        if previous is not None:
            raise KernelTableError(
                f"node nid={node.nid} is tabled under both {previous!r} "
                f"and {key!r}"
            )
        owner_of[node.nid] = key
    return len(entries)


# -- lock ordering -----------------------------------------------------------

#: Rank of the multi-process worker pool's internal locks
#: (:mod:`repro.server.pool`): routing ring and pending-request table.
#: Lowest rank of all — the pool's response-reader thread settles request
#: futures whose callbacks re-enter server-ranked code, so pool locks must
#: never be held while a server lock is taken, only the other way around.
RANK_WORKER_POOL = 3
#: Rank of server-side locks (:mod:`repro.server`): cost-predictor and
#: other request-path state. Server locks may be held only for short
#: container operations, never across a call into the engine session —
#: hence the lowest rank: a server lock can never legally wrap one of the
#: engine's locks.
RANK_SERVER = 5
#: Rank of the conditioning layer's scenario-cache lock
#: (:class:`repro.condition.session.ScenarioManager`): held only for
#: id-table and LRU bookkeeping, never across constraint compilation or
#: a conditioned evaluation. Above the server ranks (the request path
#: resolves scenarios while holding no server lock) and below the
#: engine's in-flight/cache ranks, which the manager's LRU acquires.
RANK_SCENARIO = 7
#: Rank of :class:`repro.engine.session.EngineSession`'s in-flight lock.
RANK_INFLIGHT = 10
#: Rank of :class:`repro.engine.cache.LRUCache`'s lock.
RANK_CACHE = 20
#: Rank of :class:`repro.engine.stats.SessionStats`'s lock.
RANK_STATS = 30
#: Rank of :class:`repro.relational.columnar.ValueInterner`'s lock. The
#: interner is a leaf: every method holds the lock only around its own
#: dict operations and calls nothing, so any engine lock may legally wrap
#: it — but it must never wrap the metrics lock (metrics publication
#: never happens under the interner).
RANK_INTERNER = 35
#: Rank of :mod:`repro.obs` metric/registry locks. Highest rank: metrics
#: are published from code already holding engine locks (e.g. stats
#: aggregation), so the metrics lock must be acquirable last.
RANK_METRICS = 40

_held = threading.local()


def _held_stack() -> list:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


class RankedLock:
    """A lock that, under the sanitizer, enforces rank-ordered acquisition.

    Ranks must strictly increase down any acquisition chain: holding a
    rank-20 lock while taking a rank-10 one raises :class:`LockOrderError`
    on the spot — the deadlock-shaped bug surfaces deterministically
    instead of hanging some unlucky run. Re-entrant re-acquisition of the
    *same* lock is always allowed (the underlying lock is an ``RLock``
    when ``reentrant=True``).

    With the sanitizer off, this is a plain ``with``-able lock with two
    extra attribute reads per acquisition.
    """

    __slots__ = ("_lock", "rank", "name", "reentrant")

    def __init__(self, rank: int, name: str, reentrant: bool = False):
        self.rank = rank
        self.name = name
        self.reentrant = reentrant
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if _enabled:
            stack = _held_stack()
            if stack:
                top_rank, top_lock = stack[-1]
                held_same = self.reentrant and any(
                    lock is self for _, lock in stack
                )
                if top_rank >= self.rank and not held_same:
                    raise LockOrderError(
                        f"acquiring {self.name!r} (rank {self.rank}) while "
                        f"holding {top_lock.name!r} (rank {top_rank}): lock "
                        "ranks must strictly increase"
                    )
            acquired = self._lock.acquire(blocking, timeout)
            if acquired:
                _held_stack().append((self.rank, self))
            return acquired
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        if _enabled:
            stack = _held_stack()
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][1] is self:
                    del stack[index]
                    break
        self._lock.release()

    def __enter__(self) -> "RankedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def assert_lock_order(ranks: Iterable[int]) -> None:
    """Assert *ranks* (an acquisition chain) is strictly increasing."""
    if not _enabled:
        return
    previous: Optional[int] = None
    for rank in ranks:
        if previous is not None and rank <= previous:
            raise LockOrderError(
                f"lock rank {rank} acquired after rank {previous}: lock "
                "ranks must strictly increase"
            )
        previous = rank


# -- lockset race detection ---------------------------------------------------


class DataRaceError(SanitizerError):
    """Unsynchronized cross-thread access to an audited shared object."""


#: Stack frames kept per recorded access (innermost last). Enough to see
#: through the :class:`_AuditedDict` wrapper into the caller's call chain.
_TRACE_DEPTH = 12


def _access_trace() -> str:
    frames = traceback.extract_stack()[:-3]  # drop detector internals
    return "".join(traceback.format_list(frames[-_TRACE_DEPTH:]))


class RaceDetector:
    """Eraser-style lockset discipline checker for one shared object.

    Call :meth:`record` on every access. The detector runs the classic
    state machine — *virgin* → *exclusive* (single thread) → *shared*
    (second thread reads) → *shared-modified* (second thread writes) —
    and, once sharing starts, intersects the **candidate lockset**: the
    set of locks (tracked by :class:`RankedLock` via the per-thread held
    stack) common to every access so far. A write in *shared-modified*
    state with an empty candidate set means no single lock consistently
    guards the object; that is a data race by discipline, reported with
    the stack traces of the current and the previous access even if this
    particular interleaving happened to be benign.
    """

    __slots__ = ("name", "_state", "_owner", "_lockset", "_last", "_guard")

    def __init__(self, name: str):
        self.name = name
        self._state = "virgin"
        self._owner: Optional[int] = None
        self._lockset: Optional[frozenset] = None
        self._last: Optional[tuple] = None  # (tid, verb, trace)
        # A raw lock on purpose: detector bookkeeping must never appear in
        # the rank order or the candidate locksets it is judging.
        self._guard = threading.Lock()

    def record(self, write: bool) -> None:
        if not _enabled:
            return
        tid = threading.get_ident()
        held = frozenset(id(lock) for _, lock in _held_stack())
        verb = "write" if write else "read"
        trace = _access_trace()
        with self._guard:
            previous = self._last
            self._last = (tid, verb, trace)
            if self._state == "virgin":
                self._state = "exclusive"
                self._owner = tid
                return
            if self._state == "exclusive":
                if tid == self._owner:
                    return
                # Second thread: sharing starts; seed the candidate set.
                self._lockset = held
                self._state = "shared-modified" if write else "shared"
            else:
                assert self._lockset is not None
                self._lockset = self._lockset & held
                if write:
                    self._state = "shared-modified"
            if self._state == "shared-modified" and not self._lockset:
                prev_text = (
                    f"previous access ({previous[1]}) on thread "
                    f"{previous[0]}:\n{previous[2]}"
                    if previous is not None
                    else "previous access: <unrecorded>"
                )
                raise DataRaceError(
                    f"data race on {self.name!r}: no lock consistently "
                    f"guards it across threads.\ncurrent access ({verb}) "
                    f"on thread {tid}:\n{trace}\n{prev_text}"
                )


class _AuditedDict(dict):
    """A dict whose every access feeds a :class:`RaceDetector`."""

    __slots__ = ("races",)

    def __init__(self, name: str):
        super().__init__()
        self.races = RaceDetector(name)

    # reads
    def __getitem__(self, key):
        self.races.record(write=False)
        return super().__getitem__(key)

    def __contains__(self, key):
        self.races.record(write=False)
        return super().__contains__(key)

    def __len__(self):
        self.races.record(write=False)
        return super().__len__()

    def __iter__(self):
        self.races.record(write=False)
        return super().__iter__()

    def get(self, key, default=None):
        self.races.record(write=False)
        return super().get(key, default)

    def keys(self):
        self.races.record(write=False)
        return super().keys()

    def values(self):
        self.races.record(write=False)
        return super().values()

    def items(self):
        self.races.record(write=False)
        return super().items()

    # writes
    def __setitem__(self, key, value):
        self.races.record(write=True)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self.races.record(write=True)
        super().__delitem__(key)

    def pop(self, key, *default):
        self.races.record(write=True)
        return super().pop(key, *default)

    def popitem(self):
        self.races.record(write=True)
        return super().popitem()

    def setdefault(self, key, default=None):
        self.races.record(write=True)
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        self.races.record(write=True)
        super().update(*args, **kwargs)

    def clear(self):
        self.races.record(write=True)
        super().clear()


def audited_dict(name: str) -> Dict:
    """A dict that, under the sanitizer, detects lockset discipline races.

    With sanitizing off this returns a plain ``{}`` — zero overhead and
    no behavioural difference. With it on, every access runs through a
    :class:`RaceDetector` named *name*, so an unsynchronized cross-thread
    access pattern raises :class:`DataRaceError` deterministically.
    Holders must mutate in place (``d.clear()``, never ``d = {}``) or the
    detector is silently dropped with the old dict.
    """
    if not _enabled:
        return {}
    return _AuditedDict(name)
