"""Workload generators used by examples, tests and benchmarks.

Includes the paper's Figure 1 database and the random / scaling families
behind every experiment in DESIGN.md.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Optional, Sequence

from ..core.tid import TupleIndependentDatabase
from ..symmetric.symmetric_db import SymmetricDatabase

DEFAULT_SCHEMA: tuple[tuple[str, int], ...] = (("R", 1), ("S", 2), ("T", 1))


def figure1_database(
    p: Sequence[float] = (0.5, 0.5, 0.5),
    q: Sequence[float] = (0.5, 0.5, 0.5, 0.5, 0.5, 0.5),
) -> TupleIndependentDatabase:
    """The 9-tuple TID of Figure 1(a).

    ``p`` are the probabilities of R(a1), R(a2), R(a3); ``q`` those of the
    six S-tuples in the paper's order: (a1,b1), (a1,b2), (a2,b3), (a2,b4),
    (a2,b5), (a4,b6).
    """
    if len(p) != 3 or len(q) != 6:
        raise ValueError("Figure 1 takes 3 R-probabilities and 6 S-probabilities")
    db = TupleIndependentDatabase()
    for value, probability in zip(("a1", "a2", "a3"), p):
        db.add_fact("R", (value,), probability)
    pairs = [
        ("a1", "b1"),
        ("a1", "b2"),
        ("a2", "b3"),
        ("a2", "b4"),
        ("a2", "b5"),
        ("a4", "b6"),
    ]
    for (x, y), probability in zip(pairs, q):
        db.add_fact("S", (x, y), probability)
    return db


def random_tid(
    seed: int,
    domain_size: int,
    schema: Iterable[tuple[str, int]] = DEFAULT_SCHEMA,
    density: float = 0.7,
    probability_range: tuple[float, float] = (0.05, 0.95),
    domain: Optional[Sequence] = None,
) -> TupleIndependentDatabase:
    """A random TID: each possible tuple appears w.p. *density*.

    Probabilities are uniform in *probability_range*; the domain is
    ``c0..c{n-1}`` unless given explicitly. Deterministic in *seed*.
    """
    rng = random.Random(seed)
    values = tuple(domain) if domain is not None else tuple(
        f"c{i}" for i in range(domain_size)
    )
    db = TupleIndependentDatabase()
    lo, hi = probability_range
    for name, arity in schema:
        db.add_relation(name, tuple(f"a{i}" for i in range(arity)))
        for row in itertools.product(values, repeat=arity):
            if rng.random() < density:
                db.add_fact(name, row, round(rng.uniform(lo, hi), 6))
    db.explicit_domain = frozenset(values)
    return db


def full_tid(
    seed: int,
    domain_size: int,
    schema: Iterable[tuple[str, int]] = DEFAULT_SCHEMA,
    probability_range: tuple[float, float] = (0.2, 0.8),
) -> TupleIndependentDatabase:
    """A TID with *every* possible tuple present (random probabilities)."""
    return random_tid(
        seed,
        domain_size,
        schema,
        density=1.1,
        probability_range=probability_range,
    )


def symmetric_database(
    domain_size: int,
    probabilities: Iterable[tuple[str, int, float]] = (
        ("R", 1, 0.3),
        ("S", 2, 0.6),
        ("T", 1, 0.4),
    ),
) -> SymmetricDatabase:
    """A symmetric database over the H0 vocabulary by default."""
    db = SymmetricDatabase(domain_size)
    for name, arity, probability in probabilities:
        db.add_relation(name, arity, probability)
    return db


def h2_schema() -> tuple[tuple[str, int], ...]:
    """The vocabulary of the H2 query family (E9)."""
    return (("R", 1), ("S1", 2), ("S2", 2), ("T", 1))


def chain_join_tid(seed: int, domain_size: int, length: int) -> TupleIndependentDatabase:
    """A chain R0(x0), E1(x0,x1), ..., E_k(x_{k-1}, x_k) workload."""
    schema: list[tuple[str, int]] = [("R0", 1)]
    for i in range(1, length + 1):
        schema.append((f"E{i}", 2))
    return full_tid(seed, domain_size, schema)
