"""Workload generators for examples, tests and benchmarks."""

from .generators import (
    DEFAULT_SCHEMA,
    chain_join_tid,
    figure1_database,
    full_tid,
    h2_schema,
    random_tid,
    symmetric_database,
)

__all__ = [
    "DEFAULT_SCHEMA",
    "chain_join_tid",
    "figure1_database",
    "full_tid",
    "h2_schema",
    "random_tid",
    "symmetric_database",
]
