"""Symmetric databases, FO² WFOMC (Theorem 8.1), and the H0 closed form."""

from .symmetric_db import SymmetricDatabase
from .h0 import h0_symmetric_probability
from .scott import NotFO2Error, ScottResult, check_fo2, direct_normal_form, scott_normal_form
from .wfomc import WFOMCProblem, wfomc
from .evaluate import symmetric_probability

__all__ = [
    "SymmetricDatabase",
    "h0_symmetric_probability",
    "NotFO2Error",
    "ScottResult",
    "check_fo2",
    "direct_normal_form",
    "scott_normal_form",
    "WFOMCProblem",
    "wfomc",
    "symmetric_probability",
]
