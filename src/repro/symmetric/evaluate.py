"""PQE over symmetric databases: the Theorem 8.1 pipeline.

``symmetric_probability`` evaluates any FO² sentence over a symmetric
database in time polynomial in the domain size:

1. pick the cheap :func:`repro.symmetric.scott.direct_normal_form` when the
   sentence is already prenex (∀∀ / ∀∃ / ∀), complementing first for ∃-led
   prefixes;
2. otherwise run the general Scott + Skolemization transformation;
3. hand the resulting ∀x∀y matrix to the cell-based WFOMC with weights
   ``(p_R, 1 − p_R)`` for the database relations and the auxiliary (1, 1) /
   (1, −1) pairs for Tseitin / Skolem predicates.
"""

from __future__ import annotations

from ..logic.formulas import Exists, Formula, Not
from ..logic.transform import to_nnf
from .scott import ScottResult, direct_normal_form, scott_normal_form
from .symmetric_db import SymmetricDatabase
from .wfomc import WFOMCProblem, wfomc


def _normal_form(sentence: Formula) -> tuple[ScottResult, bool]:
    """(normal form, complemented?) choosing the cheapest sound route."""
    nnf = to_nnf(sentence)
    direct = direct_normal_form(nnf)
    if direct is not None:
        return direct, False
    if isinstance(nnf, Exists):
        complement = to_nnf(Not(nnf))
        direct = direct_normal_form(complement)
        if direct is not None:
            return direct, True
    return scott_normal_form(nnf), False


def symmetric_probability(sentence: Formula, db: SymmetricDatabase) -> float:
    """p(Q) over a symmetric database, polynomial in the domain size."""
    normal, complemented = _normal_form(sentence)
    weights: dict[str, tuple[float, float]] = {}
    arities: dict[str, int] = dict(normal.auxiliary_arities)
    for name, (arity, probability) in db.relations.items():
        weights[name] = (probability, 1.0 - probability)
        arities.setdefault(name, arity)
    weights.update(normal.auxiliary_weights)
    # Predicates mentioned by the matrix but absent from the database are
    # empty relations: probability 0.
    for atom in normal.matrix.atoms():
        weights.setdefault(atom.predicate, (0.0, 1.0))
    problem = WFOMCProblem(normal.matrix, weights, arities)
    probability = wfomc(problem, db.domain_size)
    probability = min(max(probability, 0.0), 1.0)
    return 1.0 - probability if complemented else probability
