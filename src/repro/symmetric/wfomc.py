"""Symmetric weighted first-order model counting for ∀x∀y matrices.

The cell-based closed form behind Theorem 8.1: given ∀x∀y Ψ(x,y) over
nullary/unary/binary predicates with per-predicate weight pairs
``(w_true, w_false)``,

    WFOMC = Σ_ν  w(ν) · Σ_{k₁+...+k_c = n}  (n choose k₁...k_c)
            · Π_i w(τᵢ)^{kᵢ} · Π_{i<j} r(i,j)^{kᵢkⱼ} · Π_i r(i,i)^{C(kᵢ,2)}

where ν ranges over nullary assignments, the τᵢ are the *1-types* (cells):
assignments to all unary atoms U(x) and reflexive binary atoms B(x,x)
consistent with Ψ(x,x); w(τ) multiplies their weights; and r(i,j) is the
*2-table* weight: the total weight of assignments to the cross atoms
B(u,v), B(v,u) satisfying Ψ(u,v) ∧ Ψ(v,u) for u of type i, v of type j.

Cells with identical interaction rows are merged (their weights add), which
turns e.g. H0's 8 raw cells into 4 and keeps the composition sum small.
Weights may be negative (Skolem predicates), so this computes probabilities
of full FO² sentences after :mod:`repro.symmetric.scott`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..logic.formulas import And, Atom, Bottom, Exists, Forall, Formula, Not, Or, Top
from ..logic.terms import Var

X = Var("x")
Y = Var("y")


@dataclass
class WFOMCProblem:
    """A ∀x∀y matrix with weights: the input of :func:`wfomc`."""

    matrix: Formula
    weights: dict[str, tuple[float, float]]
    arities: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for atom in self.matrix.atoms():
            arity = self.arities.setdefault(atom.predicate, atom.arity)
            if arity != atom.arity:
                raise ValueError(
                    f"predicate {atom.predicate} used with two arities"
                )
            if atom.arity > 2:
                raise ValueError("only arity ≤ 2 predicates are supported")
            for term in atom.args:
                if term not in (X, Y):
                    raise ValueError(
                        f"matrix atoms must use variables x/y, found {atom}"
                    )
        for name in self.arities:
            if name not in self.weights:
                raise ValueError(f"missing weight pair for predicate {name}")


def _evaluate(matrix: Formula, lookup: Mapping[tuple, bool]) -> bool:
    """Evaluate the matrix given atom values keyed by (pred, arg names)."""
    if isinstance(matrix, Top):
        return True
    if isinstance(matrix, Bottom):
        return False
    if isinstance(matrix, Atom):
        key = (matrix.predicate, tuple(t.name for t in matrix.args))  # type: ignore[union-attr]
        return lookup[key]
    if isinstance(matrix, Not):
        return not _evaluate(matrix.sub, lookup)
    if isinstance(matrix, And):
        return all(_evaluate(p, lookup) for p in matrix.parts)
    if isinstance(matrix, Or):
        return any(_evaluate(p, lookup) for p in matrix.parts)
    if isinstance(matrix, (Exists, Forall)):
        raise ValueError("matrix must be quantifier-free")
    raise TypeError(f"unknown node {matrix!r}")


@dataclass(frozen=True)
class _Cell:
    """One 1-type: unary truth values and reflexive binary truth values."""

    unary: tuple[bool, ...]
    reflexive: tuple[bool, ...]
    weight: float


def wfomc(problem: WFOMCProblem, n: int) -> float:
    """The symmetric weighted model count over a domain of size *n*."""
    if n < 0:
        raise ValueError("domain size must be non-negative")
    nullary = sorted(p for p, a in problem.arities.items() if a == 0)
    unary = sorted(p for p, a in problem.arities.items() if a == 1)
    binary = sorted(p for p, a in problem.arities.items() if a == 2)

    total = 0.0
    for nullary_bits in itertools.product((False, True), repeat=len(nullary)):
        nullary_values = dict(zip(nullary, nullary_bits))
        nullary_weight = 1.0
        for name, value in nullary_values.items():
            w_true, w_false = problem.weights[name]
            nullary_weight *= w_true if value else w_false
        if math.isclose(nullary_weight, 0.0):
            continue
        cells = _build_cells(problem, unary, binary, nullary_values)
        if not cells:
            continue
        interactions = _interaction_matrix(
            problem, cells, unary, binary, nullary_values
        )
        cells, interactions = _merge_cells(cells, interactions)
        total += nullary_weight * _composition_sum(cells, interactions, n)
    return total


def _build_cells(
    problem: WFOMCProblem,
    unary: list[str],
    binary: list[str],
    nullary_values: Mapping[str, bool],
) -> list[_Cell]:
    """All 1-types consistent with Ψ(x,x), with their weights."""
    cells = []
    for ubits in itertools.product((False, True), repeat=len(unary)):
        for rbits in itertools.product((False, True), repeat=len(binary)):
            lookup: dict[tuple, bool] = {}
            for name, value in nullary_values.items():
                lookup[(name, ())] = value
            for name, value in zip(unary, ubits):
                lookup[(name, ("x",))] = value
                lookup[(name, ("y",))] = value
            for name, value in zip(binary, rbits):
                for pattern in (("x", "x"), ("x", "y"), ("y", "x"), ("y", "y")):
                    lookup[(name, pattern)] = value
            if not _evaluate(problem.matrix, lookup):
                continue
            weight = 1.0
            for name, value in zip(unary, ubits):
                w_true, w_false = problem.weights[name]
                weight *= w_true if value else w_false
            for name, value in zip(binary, rbits):
                w_true, w_false = problem.weights[name]
                weight *= w_true if value else w_false
            cells.append(_Cell(ubits, rbits, weight))
    return cells


def _interaction_matrix(
    problem: WFOMCProblem,
    cells: list[_Cell],
    unary: list[str],
    binary: list[str],
    nullary_values: Mapping[str, bool],
) -> list[list[float]]:
    """r(i,j): total weight of the cross binary atoms for a type-(i,j) pair."""
    count = len(cells)
    r = [[0.0] * count for _ in range(count)]
    cross_patterns = list(itertools.product((False, True), repeat=2 * len(binary)))
    for i, cell_i in enumerate(cells):
        for j in range(i, count):
            cell_j = cells[j]
            value = 0.0
            for bits in cross_patterns:
                xy = bits[: len(binary)]
                yx = bits[len(binary) :]
                # Ψ(u, v): x is the type-i element, y the type-j element.
                forward: dict[tuple, bool] = {}
                backward: dict[tuple, bool] = {}
                for name, val in nullary_values.items():
                    forward[(name, ())] = val
                    backward[(name, ())] = val
                for k, name in enumerate(unary):
                    forward[(name, ("x",))] = cell_i.unary[k]
                    forward[(name, ("y",))] = cell_j.unary[k]
                    backward[(name, ("x",))] = cell_j.unary[k]
                    backward[(name, ("y",))] = cell_i.unary[k]
                for k, name in enumerate(binary):
                    forward[(name, ("x", "x"))] = cell_i.reflexive[k]
                    forward[(name, ("y", "y"))] = cell_j.reflexive[k]
                    forward[(name, ("x", "y"))] = xy[k]
                    forward[(name, ("y", "x"))] = yx[k]
                    backward[(name, ("x", "x"))] = cell_j.reflexive[k]
                    backward[(name, ("y", "y"))] = cell_i.reflexive[k]
                    backward[(name, ("x", "y"))] = yx[k]
                    backward[(name, ("y", "x"))] = xy[k]
                if not _evaluate(problem.matrix, forward):
                    continue
                if not _evaluate(problem.matrix, backward):
                    continue
                weight = 1.0
                for k, name in enumerate(binary):
                    w_true, w_false = problem.weights[name]
                    weight *= w_true if xy[k] else w_false
                    weight *= w_true if yx[k] else w_false
                value += weight
            r[i][j] = value
            r[j][i] = value
    return r


def _merge_cells(
    cells: list[_Cell], r: list[list[float]]
) -> tuple[list[_Cell], list[list[float]]]:
    """Merge cells with identical interaction behaviour (weights add)."""
    groups: dict[tuple, list[int]] = {}
    for i in range(len(cells)):
        # Signature: the interaction row with the self-entry pulled out, so
        # two mergeable cells must also interact with each other and with
        # themselves identically.
        row = tuple(
            r[i][k] for k in range(len(cells))
        )
        signature = (r[i][i],) + tuple(sorted(row))
        groups.setdefault(signature, []).append(i)

    # Verify mergeability precisely and build the merged structures.
    merged_indices: list[list[int]] = []
    for indices in groups.values():
        # split the candidate group into verified-mergeable chunks
        remaining = list(indices)
        while remaining:
            seed = remaining.pop(0)
            chunk = [seed]
            still = []
            for candidate in remaining:
                ok = (
                    r[candidate][candidate] == r[seed][seed]
                    and r[candidate][seed] == r[seed][seed]
                    and all(
                        r[candidate][k] == r[seed][k]
                        for k in range(len(cells))
                        if k != candidate and k != seed
                    )
                )
                if ok:
                    chunk.append(candidate)
                else:
                    still.append(candidate)
            remaining = still
            merged_indices.append(chunk)

    new_cells = []
    for chunk in merged_indices:
        weight = sum(cells[i].weight for i in chunk)
        representative = cells[chunk[0]]
        new_cells.append(
            _Cell(representative.unary, representative.reflexive, weight)
        )
    new_r = [
        [r[a[0]][b[0]] for b in merged_indices] for a in merged_indices
    ]
    return new_cells, new_r


def _compositions(n: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to write n as an ordered sum of `parts` non-negative ints."""
    if parts == 1:
        yield (n,)
        return
    for first in range(n + 1):
        for rest in _compositions(n - first, parts - 1):
            yield (first,) + rest


def _composition_sum(
    cells: list[_Cell], r: list[list[float]], n: int
) -> float:
    """The multinomial sum over cell multiplicities."""
    count = len(cells)
    total = 0.0
    for ks in _compositions(n, count):
        coefficient = math.factorial(n)
        for k in ks:
            coefficient //= math.factorial(k)
        term = float(coefficient)
        for i, k in enumerate(ks):
            if k:
                term *= cells[i].weight ** k
                term *= r[i][i] ** (k * (k - 1) // 2)
        for i in range(count):
            if not ks[i]:
                continue
            for j in range(i + 1, count):
                if ks[j]:
                    term *= r[i][j] ** (ks[i] * ks[j])
        total += term
    return total
