"""Scott normal form and Skolemization for FO² sentences.

Every FO² sentence is transformed, in a WFOMC-preserving way, into a single
universally quantified matrix ∀x∀y Ψ(x,y) over an extended vocabulary:

1. *Tseitin step*: each quantified subformula ``Qv ψ`` (ψ quantifier-free,
   at most one other free variable u) is replaced by a fresh predicate
   ``Z(u)`` together with the defining clauses of ``Z(u) ⟺ Qv ψ(u,v)``.
   One direction is a ∀∀ clause; the other is a ∀∃ clause.
2. *Skolemization with negative weights* (Van den Broeck–Meert–Darwiche
   [24]): the ∀∃ clause ``∀u∃v Φ(u,v)`` is replaced by the ∀∀ clause
   ``∀u∀v (S(u) ∨ ¬Φ(u,v))`` where the fresh predicate S has weight pair
   (1, −1). Spurious worlds (S true without witness) come in ±1 pairs and
   cancel, so the weighted model count is preserved exactly.

Tseitin predicates Z get the neutral weight pair (1, 1): in surviving
worlds their value is determined.

All clauses are normalized to use the variable names ``x`` (outer / free)
and ``y`` (inner / bound), so the resulting matrix is directly consumable by
:mod:`repro.symmetric.wfomc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
)
from ..logic.terms import Var
from ..logic.transform import to_nnf

X = Var("x")
Y = Var("y")


class NotFO2Error(ValueError):
    """The sentence uses more than two variable names."""


@dataclass
class ScottResult:
    """The ∀x∀y matrix plus the weight pairs of the auxiliary predicates."""

    matrix: Formula
    auxiliary_weights: dict[str, tuple[float, float]] = field(default_factory=dict)
    auxiliary_arities: dict[str, int] = field(default_factory=dict)


def check_fo2(sentence: Formula) -> None:
    """Raise :class:`NotFO2Error` unless at most two variable names occur."""
    names = set()
    for node in sentence.walk():
        if isinstance(node, (Exists, Forall)):
            names.add(node.var.name)
        if isinstance(node, Atom):
            names.update(v.name for v in node.free_variables())
    if len(names) > 2:
        raise NotFO2Error(
            f"sentence uses {len(names)} variable names: {sorted(names)}"
        )
    for node in sentence.walk():
        if isinstance(node, Atom) and node.arity > 2:
            raise NotFO2Error(
                f"predicate {node.predicate} has arity {node.arity} > 2"
            )


def scott_normal_form(sentence: Formula) -> ScottResult:
    """Transform an FO² sentence into ∀x∀y Ψ(x,y) (see module docstring)."""
    check_fo2(sentence)
    if sentence.free_variables():
        raise ValueError("input must be a sentence")

    result = ScottResult(matrix=Top())
    clauses: list[Formula] = []
    counter = {"z": 0, "s": 0}

    def fresh(kind: str, arity: int, weights: tuple[float, float]) -> str:
        name = f"_{kind}{counter[kind]}"
        counter[kind] += 1
        result.auxiliary_weights[name] = weights
        result.auxiliary_arities[name] = arity
        return name

    def add_clause(formula: Formula, outer: Var | None, inner: Var | None) -> None:
        """Normalize clause variables to (x, y) and record it."""
        mapping: dict[Var, Var] = {}
        if outer is not None:
            mapping[outer] = X
        if inner is not None:
            mapping[inner] = Y
        clauses.append(formula.substitute(mapping))

    def eliminate(f: Formula) -> Formula:
        """Replace quantified subformulas bottom-up; returns quantifier-free."""
        if isinstance(f, (Atom, Top, Bottom)):
            return f
        if isinstance(f, Not):
            return Not(eliminate(f.sub))
        if isinstance(f, And):
            return And.of(eliminate(p) for p in f.parts)
        if isinstance(f, Or):
            return Or.of(eliminate(p) for p in f.parts)
        if isinstance(f, (Exists, Forall)):
            body = eliminate(f.sub)
            bound = f.var
            others = sorted(body.free_variables() - {bound}, key=lambda v: v.name)
            if len(others) > 1:
                raise NotFO2Error("subformula has more than one free variable")
            outer = others[0] if others else None
            z_name = fresh("z", 1 if outer else 0, (1.0, 1.0))
            s_name = fresh("s", 1 if outer else 0, (1.0, -1.0))
            z_args = (outer,) if outer else ()
            z_atom = Atom(z_name, z_args)
            s_atom = Atom(s_name, z_args)
            not_body = to_nnf(Not(body))
            if isinstance(f, Exists):
                # body → Z  (∀∀ clause)
                add_clause(Or.of((not_body, z_atom)), outer, bound)
                # Z → ∃v body, Skolemized: S ∨ (Z ∧ ¬body)
                add_clause(
                    Or.of((s_atom, And.of((z_atom, not_body)))), outer, bound
                )
            else:
                # Z → body  (∀∀ clause)
                add_clause(Or.of((Not(z_atom), body)), outer, bound)
                # ∀v body → Z, i.e. ∀outer ∃v (Z ∨ ¬body), Skolemized:
                # S ∨ ¬(Z ∨ ¬body) = S ∨ (¬Z ∧ body)
                add_clause(
                    Or.of((s_atom, And.of((Not(z_atom), body)))), outer, bound
                )
            # Substitute the Z atom for the quantified subformula.
            return z_atom

    top = eliminate(to_nnf(sentence))
    # The top-level replacement is a ground (nullary or fully eliminated)
    # formula that must hold.
    result.matrix = And.of([top] + clauses)
    return result


def direct_normal_form(sentence: Formula) -> ScottResult | None:
    """Cheaper transformation for sentences already in prenex FO² shape.

    Handles, without Tseitin predicates:

    * ``∀x∀y M``           — matrix as-is, no auxiliaries;
    * ``∀x∃y M``           — one Skolem predicate;
    * ``∃x∀y M`` / ``∃x∃y M`` / single-variable prefixes — handled by the
      caller through complementation, not here.

    Returns None when the sentence does not match.
    """
    check_fo2(sentence)
    f = to_nnf(sentence)
    if isinstance(f, Forall):
        inner = f.sub
        if isinstance(inner, Forall):
            if _quantifier_free(inner.sub):
                matrix = inner.sub.substitute({f.var: X, inner.var: Y})
                return ScottResult(matrix=matrix)
            return None
        if isinstance(inner, Exists):
            if _quantifier_free(inner.sub):
                body = inner.sub.substitute({f.var: X, inner.var: Y})
                s_atom = Atom("_s0", (X,))
                matrix = Or.of((s_atom, to_nnf(Not(body))))
                return ScottResult(
                    matrix=matrix,
                    auxiliary_weights={"_s0": (1.0, -1.0)},
                    auxiliary_arities={"_s0": 1},
                )
            return None
        if _quantifier_free(inner):
            # ∀x M(x): evaluate as ∀x∀y M(x).
            matrix = inner.substitute({f.var: X})
            return ScottResult(matrix=matrix)
        return None
    return None


def _quantifier_free(f: Formula) -> bool:
    return not any(isinstance(node, (Exists, Forall)) for node in f.walk())
