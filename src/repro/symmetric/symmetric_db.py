"""Symmetric probabilistic databases (Sec. 8).

A symmetric database gives *every possible tuple* of a relation the same
probability p_R. Its entire description is the domain size n plus one
probability per relation — which is why PQE over symmetric databases is a
#P₁-style problem (unary input) and why FO² queries become tractable
(Theorem 8.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.tid import TupleIndependentDatabase


@dataclass
class SymmetricDatabase:
    """Domain size plus per-relation (arity, probability)."""

    domain_size: int
    relations: dict[str, tuple[int, float]] = field(default_factory=dict)

    def add_relation(self, name: str, arity: int, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} out of [0, 1]")
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.relations[name] = (arity, probability)

    def probability(self, name: str) -> float:
        return self.relations[name][1]

    def arity(self, name: str) -> int:
        return self.relations[name][0]

    def domain(self) -> tuple:
        return tuple(range(self.domain_size))

    def tuple_count(self) -> int:
        """|Tup(DOM)|: total number of possible tuples."""
        return sum(
            self.domain_size ** arity for arity, _ in self.relations.values()
        )

    def to_tid(self) -> TupleIndependentDatabase:
        """Materialize the full cross-product TID (for small-n oracles)."""
        db = TupleIndependentDatabase()
        db.explicit_domain = frozenset(self.domain())
        for name, (arity, probability) in sorted(self.relations.items()):
            db.add_relation(name, tuple(f"a{i}" for i in range(arity)))
            for values in itertools.product(self.domain(), repeat=arity):
                db.add_fact(name, values, probability)
        return db
