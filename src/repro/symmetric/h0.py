"""The closed-form symmetric evaluation of H0 (Sec. 8).

H0 = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y)) is #P-hard on arbitrary TIDs
(Theorem 2.2), yet on a *symmetric* database it has the polynomial-time
closed form the paper displays:

    p(H0) = Σ_{k,ℓ} C(n,k) C(n,ℓ) p_R^k (1−p_R)^{n−k}
                     p_T^ℓ (1−p_T)^{n−ℓ} p_S^{(n−k)(n−ℓ)}

obtained by conditioning on |R| = k and |T| = ℓ: an S-tuple (i,j) is forced
to be present exactly when i ∉ R and j ∉ T — there are (n−k)(n−ℓ) such
pairs.

Erratum note: the paper prints the exponent as ``n² − kℓ`` ("all n² tuples
must be present except the kℓ tuples where i ∈ R and j ∈ T"), but S(i,j) is
only needed when *neither* R(i) nor T(j) holds; the exception set has size
n² − (n−k)(n−ℓ), not kℓ. The corrected formula below agrees with brute-force
possible-world enumeration and with the cell-based FO² WFOMC for all tested
(n, p) — see EXPERIMENTS.md E10.
"""

from __future__ import annotations

import math


def h0_symmetric_probability(n: int, p_r: float, p_s: float, p_t: float) -> float:
    """The double-binomial closed form (corrected exponent); O(n²) time."""
    if n < 0:
        raise ValueError("domain size must be non-negative")
    total = 0.0
    for k in range(n + 1):
        weight_k = math.comb(n, k) * (p_r ** k) * ((1.0 - p_r) ** (n - k))
        for ell in range(n + 1):
            weight_ell = (
                math.comb(n, ell) * (p_t ** ell) * ((1.0 - p_t) ** (n - ell))
            )
            total += weight_k * weight_ell * (p_s ** ((n - k) * (n - ell)))
    return total
