"""Open-world probabilistic databases (Sec. 9 extension)."""

from .owdb import OpenWorldDatabase, ProbabilityInterval

__all__ = ["OpenWorldDatabase", "ProbabilityInterval"]
