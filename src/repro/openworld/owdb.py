"""Open-world probabilistic databases (Sec. 9, Ceylan–Darwiche–Van den Broeck).

A closed-world TID declares every unlisted tuple impossible. An *open-world*
probabilistic database (OpenPDB) instead allows each unlisted tuple to exist
with any probability in [0, λ]. Query answers become *intervals*:

* the lower bound is the closed-world answer (all unknown tuples at 0);
* the upper bound, for a monotone query, is the answer on the λ-completion,
  the TID where every possible-but-unlisted tuple gets probability λ.

For non-monotone queries the same two evaluations still bracket the answer
when the query is *unate* (each relation appears with one polarity): set the
unknown tuples of positively-occurring relations to λ for the upper bound
and to 0 for the lower bound, and vice versa for negative relations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.tid import TupleIndependentDatabase
from ..logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.formulas import Formula
from ..logic.transform import is_unate, polarity_map


@dataclass(frozen=True)
class ProbabilityInterval:
    """An interval answer [lower, upper] for an open-world query."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise ValueError(f"empty interval [{self.lower}, {self.upper}]")

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower - 1e-12 <= value <= self.upper + 1e-12

    def __str__(self) -> str:
        return f"[{self.lower:.6f}, {self.upper:.6f}]"


@dataclass
class OpenWorldDatabase:
    """A TID plus the open-world threshold λ and a declared schema.

    The schema (relation name → arity) bounds which unlisted tuples are
    "possible"; the domain defaults to the active domain of the stored
    tuples but may be set explicitly to model unseen constants.
    """

    tid: TupleIndependentDatabase
    threshold: float
    schema: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold λ must lie in [0, 1]")
        for name, relation in self.tid.relations.items():
            self.schema.setdefault(name, relation.arity)

    def domain(self) -> tuple:
        return self.tid.domain()

    def completion(self, relations: Optional[Iterable[str]] = None) -> TupleIndependentDatabase:
        """The λ-completion: unlisted tuples of *relations* get probability λ.

        With ``relations=None`` every schema relation is completed.
        """
        targets = set(self.schema if relations is None else relations)
        completed = self.tid.copy()
        domain = self.domain()
        for name in sorted(targets):
            arity = self.schema[name]
            relation = completed.add_relation(
                name, tuple(f"a{i}" for i in range(arity))
            )
            for values in itertools.product(domain, repeat=arity):
                if values not in relation.rows:
                    relation.add(values, self.threshold)
        return completed

    def unknown_tuple_count(self) -> int:
        """How many possible tuples are unlisted (per the schema/domain)."""
        n = len(self.domain())
        total = 0
        for name, arity in self.schema.items():
            stored = len(self.tid.relations.get(name, ()))
            total += n ** arity - stored
        return total

    def probability(
        self, query: Formula | ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> ProbabilityInterval:
        """The interval answer for a monotone or unate query.

        Evaluation uses the library's strategy dispatch (lifted first,
        grounded otherwise) on the two extreme completions.
        """
        from ..core.pdb import ProbabilisticDatabase

        if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            positive = set(self.schema)
            negative: set[str] = set()
        else:
            if not is_unate(query):
                raise ValueError(
                    "open-world intervals need a unate query (Sec. 9)"
                )
            polarity = polarity_map(query)
            positive = {p for p, signs in polarity.items() if signs == {+1}}
            negative = {p for p, signs in polarity.items() if signs == {-1}}

        lower_db = self.completion(negative) if negative else self.tid
        upper_db = self.completion(positive)
        lower = ProbabilisticDatabase(tid=lower_db).probability(query)
        upper = ProbabilisticDatabase(tid=upper_db).probability(query)
        return ProbabilityInterval(
            min(lower.probability, upper.probability),
            max(lower.probability, upper.probability),
        )
