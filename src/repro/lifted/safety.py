"""Deciding the complexity of PQE(Q) — the dichotomy side (Sec. 4).

Two deciders:

* :func:`cq_is_safe` — Theorem 4.3's AC⁰ criterion for self-join-free CQs:
  safe ⇔ hierarchical.
* :func:`decide_safety` — for UCQs (and CQs with self-joins): run the lifted
  engine symbolically over a tiny canonical database. The rules are
  data-independent, so success certifies PTIME; failure means no rule
  applies, which by the completeness theorem (Thm. 5.1) certifies
  #P-hardness for queries in the paper's language.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

from ..core.tid import TupleIndependentDatabase
from ..logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from .engine import LiftedEngine
from .errors import NonLiftableError


class Complexity(Enum):
    """The two sides of the dichotomy (Theorem 4.1)."""

    PTIME = "PTIME"
    SHARP_P_HARD = "#P-hard"


@dataclass(frozen=True)
class SafetyVerdict:
    """The decided complexity plus the witness when the engine got stuck."""

    complexity: Complexity
    blocking_subquery: str = ""

    @property
    def is_safe(self) -> bool:
        return self.complexity is Complexity.PTIME


def cq_is_safe(query: ConjunctiveQuery) -> bool:
    """Theorem 4.3 for self-join-free CQs: safe ⇔ hierarchical.

    Raises ValueError for queries with self-joins, where the criterion is
    not sound (the paper's counterexample: R(x,y), R(y,z) is hierarchical
    yet #P-hard) — use :func:`decide_safety` instead.
    """
    if query.has_self_joins():
        raise ValueError(
            "hierarchy criterion only applies to self-join-free queries"
        )
    return query.is_hierarchical()


def _canonical_database(
    query: UnionOfConjunctiveQueries, domain_size: int = 2
) -> TupleIndependentDatabase:
    """A tiny symmetric database mentioning every predicate of the query."""
    arities: dict[str, int] = {}
    for disjunct in query:
        for atom in disjunct.atoms:
            arities[atom.predicate] = atom.arity
    domain = [f"c{i}" for i in range(domain_size)]
    db = TupleIndependentDatabase()
    for predicate, arity in sorted(arities.items()):
        for values in itertools.product(domain, repeat=arity):
            db.add_fact(predicate, values, 0.5)
    db.explicit_domain = frozenset(domain)
    return db


def decide_safety(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    domain_size: int = 2,
) -> SafetyVerdict:
    """Decide the dichotomy side of a UCQ by dry-running the lifted engine.

    The engine's rule applicability depends only on query syntax, so running
    it over a canonical 2-element database explores exactly the derivation
    it would use on any database.
    """
    if isinstance(query, ConjunctiveQuery):
        query = UnionOfConjunctiveQueries((query,))
    db = _canonical_database(query, domain_size)
    engine = LiftedEngine(db)
    try:
        engine.probability(query)
    except NonLiftableError as error:
        return SafetyVerdict(Complexity.SHARP_P_HARD, str(error.subquery))
    return SafetyVerdict(Complexity.PTIME)
