"""The lifted inference engine (Sec. 5 of the paper).

Computes query probabilities by manipulating only the first-order structure
of the query — never the grounded lineage — using the paper's rules:

* rule (7) and its dual: independent-∧ / independent-∨ over subqueries with
  disjoint relation symbols;
* rule (8) and its dual: separator variables, including *merged* separators
  across the disjuncts of a union (∃x φ ∨ ∃y ψ ≡ ∃x (φ ∨ ψ[x/y]));
* rule (10), the inclusion/exclusion formula, with the *cancellation* step:
  coefficients of logically equivalent terms are merged before recursing, so
  a #P-hard term whose net coefficient is zero (Sec. 5's "absolutely
  necessary" cancellation) is never evaluated. By Rota's crosscut theorem
  this computes exactly the Möbius coefficients of the query's lattice.

The engine works on UCQs; unate ∀*/∃* sentences are reduced to UCQs via the
dual-query construction of Sec. 2 (negation + complement relations). When no
rule applies it raises :class:`NonLiftableError`; for queries in the paper's
language that certifies #P-hardness (Theorems 4.1 and 5.1).

Every evaluation runs in time polynomial in the database (the rules only
recurse into syntactically smaller queries or over domain values) and the
engine memoizes on canonical query keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.tid import TupleIndependentDatabase
from ..logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
)
from ..logic.terms import Const, Var
from ..logic.transform import is_unate, prenex, to_nnf, unate_to_monotone
from .errors import NonLiftableError, UnsupportedQueryError


@dataclass(frozen=True)
class RuleApplication:
    """One step in the lifted derivation (for explanation / E5)."""

    rule: str
    query: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{self.rule}] {self.query}{suffix}"


@dataclass
class LiftedEngine:
    """Evaluates UCQ probabilities over one TID with rule tracing."""

    db: TupleIndependentDatabase
    record_trace: bool = False
    # Ablation switch (E5): with inclusion/exclusion disabled only the
    # *basic* rules of Sec. 5 remain, and queries like Q_J become
    # non-liftable even though they are in PTIME.
    use_inclusion_exclusion: bool = True
    trace: list[RuleApplication] = field(default_factory=list)
    _memo: dict = field(default_factory=dict, repr=False)
    _domain: tuple = field(default_factory=tuple, repr=False)
    _in_progress: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        self._domain = self.db.domain()

    # -- public API -----------------------------------------------------------

    def probability(self, query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> float:
        """P(query); raises :class:`NonLiftableError` when rules fail."""
        if isinstance(query, ConjunctiveQuery):
            query = UnionOfConjunctiveQueries((query,))
        return self._ucq(query)

    def _record(self, rule: str, query: object, detail: str = "") -> None:
        if self.record_trace:
            self.trace.append(RuleApplication(rule, str(query), detail))

    # -- union level ------------------------------------------------------------

    def _ucq(self, query: UnionOfConjunctiveQueries) -> float:
        query = query.minimize()
        key = ("ucq", query.canonical_key())
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        disjuncts = query.disjuncts
        if len(disjuncts) == 1:
            result = self._cq(disjuncts[0])
            self._memo[key] = result
            return result

        # Rule (7) dual: independent-∨ over symbol-disjoint groups.
        groups = _symbol_components(disjuncts)
        if len(groups) > 1:
            self._record("independent-or", query, f"{len(groups)} groups")
            complement = 1.0
            for group in groups:
                complement *= 1.0 - self._ucq(UnionOfConjunctiveQueries(group))
            result = 1.0 - complement
            self._memo[key] = result
            return result

        # Rule (8): merged separator across the disjuncts.
        separator = _merged_separator(disjuncts)
        if separator is not None:
            self._record(
                "separator",
                query,
                "variables " + ", ".join(v.name for v in separator),
            )
            complement = 1.0
            for value in self._domain:
                constant = Const(value)
                grounded = UnionOfConjunctiveQueries(
                    tuple(
                        q.substitute({var: constant})
                        for q, var in zip(disjuncts, separator)
                    )
                )
                complement *= 1.0 - self._ucq(grounded)
            result = 1.0 - complement
            self._memo[key] = result
            return result

        # Rule (10): inclusion/exclusion with cancellation.
        if not self.use_inclusion_exclusion:
            raise NonLiftableError(
                f"inclusion/exclusion disabled; basic rules stuck on: {query}",
                subquery=query,
            )
        if key in self._in_progress:
            raise NonLiftableError(
                f"cyclic inclusion/exclusion on: {query}", subquery=query
            )
        self._in_progress.add(key)
        try:
            result = self._inclusion_exclusion(query)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = result
        return result

    def _inclusion_exclusion(self, query: UnionOfConjunctiveQueries) -> float:
        disjuncts = query.disjuncts
        self._record("inclusion-exclusion", query, f"{len(disjuncts)} disjuncts")
        terms: dict[tuple, tuple[int, ConjunctiveQuery]] = {}
        for size in range(1, len(disjuncts) + 1):
            sign = 1 if size % 2 == 1 else -1
            for subset in itertools.combinations(disjuncts, size):
                conjunction = subset[0]
                for extra in subset[1:]:
                    conjunction = conjunction.conjoin(extra)
                conjunction = conjunction.core()
                term_key = conjunction.canonical_key()
                coefficient, representative = terms.get(term_key, (0, conjunction))
                terms[term_key] = (coefficient + sign, representative)

        # Merge terms the canonical key failed to identify (large queries).
        merged: list[tuple[int, ConjunctiveQuery]] = []
        for coefficient, representative in terms.values():
            for i, (other_coeff, other) in enumerate(merged):
                if representative.equivalent(other):
                    merged[i] = (other_coeff + coefficient, other)
                    break
            else:
                merged.append((coefficient, representative))

        cancelled = sum(1 for coeff, _ in merged if coeff == 0)
        if cancelled:
            self._record("cancellation", query, f"{cancelled} terms cancelled")
        result = 0.0
        for coefficient, representative in merged:
            if coefficient == 0:
                continue
            result += coefficient * self._cq(representative)
        return result

    # -- conjunctive query level -------------------------------------------------

    def _cq(self, query: ConjunctiveQuery) -> float:
        query = query.core()
        key = ("cq", query.canonical_key())
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        # Base case: fully ground query — distinct facts are independent.
        if all(atom.is_ground() for atom in query.atoms):
            self._record("ground", query)
            result = 1.0
            for atom in query.atoms:
                values = tuple(t.value for t in atom.args)  # type: ignore[union-attr]
                result *= self.db.probability_of_fact(atom.predicate, values)
            self._memo[key] = result
            return result

        # Rule (7): independent-∧ over symbol-and-variable-disjoint components.
        components = query.connected_components(by_symbols=True)
        if len(components) > 1:
            self._record("independent-and", query, f"{len(components)} components")
            result = 1.0
            for component in components:
                result *= self._cq(component)
            self._memo[key] = result
            return result

        # Rule (8): separator variable.
        separator = query.separator_variable()
        if separator is not None:
            self._record("separator", query, f"variable {separator.name}")
            complement = 1.0
            for value in self._domain:
                grounded = query.substitute({separator: Const(value)})
                complement *= 1.0 - self._cq(grounded)
            result = 1.0 - complement
            self._memo[key] = result
            return result

        # Rule (10) dual: inclusion/exclusion on a conjunction whose
        # variable-disjoint components share relation symbols:
        # P(⋀cᵢ) = Σ_{∅≠S} (−1)^{|S|+1} P(⋁_{i∈S} cᵢ). The disjunction
        # terms are UCQs where existential quantifiers merge, which is what
        # unlocks queries like h₀ ∨ (h₁ ∧ h₂) (the Q_W family).
        var_components = query.connected_components(by_symbols=False)
        if len(var_components) > 1 and self.use_inclusion_exclusion:
            if key in self._in_progress:
                raise NonLiftableError(
                    f"cyclic inclusion/exclusion on: {query}", subquery=query
                )
            self._in_progress.add(key)
            try:
                result = self._conjunction_inclusion_exclusion(
                    query, var_components
                )
            finally:
                self._in_progress.discard(key)
            self._memo[key] = result
            return result

        raise NonLiftableError(
            f"no lifted rule applies to: {query}", subquery=query
        )

    def _conjunction_inclusion_exclusion(
        self, query: ConjunctiveQuery, components: list[ConjunctiveQuery]
    ) -> float:
        self._record(
            "inclusion-exclusion-conj", query, f"{len(components)} components"
        )
        terms: dict[frozenset, tuple[int, UnionOfConjunctiveQueries]] = {}
        for size in range(1, len(components) + 1):
            sign = 1 if size % 2 == 1 else -1
            for subset in itertools.combinations(components, size):
                union = UnionOfConjunctiveQueries(subset).minimize()
                term_key = union.canonical_key()
                coefficient, representative = terms.get(term_key, (0, union))
                terms[term_key] = (coefficient + sign, representative)
        merged: list[tuple[int, UnionOfConjunctiveQueries]] = []
        for coefficient, representative in terms.values():
            for i, (other_coeff, other) in enumerate(merged):
                if representative.equivalent(other):
                    merged[i] = (other_coeff + coefficient, other)
                    break
            else:
                merged.append((coefficient, representative))
        cancelled = sum(1 for coeff, _ in merged if coeff == 0)
        if cancelled:
            self._record("cancellation", query, f"{cancelled} terms cancelled")
        result = 0.0
        for coefficient, representative in merged:
            if coefficient == 0:
                continue
            result += coefficient * self._ucq(representative)
        return result


def _symbol_components(
    disjuncts: Sequence[ConjunctiveQuery],
) -> list[tuple[ConjunctiveQuery, ...]]:
    """Partition disjuncts into groups with pairwise-disjoint symbols."""
    n = len(disjuncts)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, j in itertools.combinations(range(n), 2):
        if disjuncts[i].predicates & disjuncts[j].predicates:
            parent[find(i)] = find(j)
    groups: dict[int, list[ConjunctiveQuery]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(disjuncts[i])
    return [tuple(g) for g in groups.values()]


def _separator_candidates(
    query: ConjunctiveQuery,
) -> list[tuple[Var, dict[str, frozenset[int]]]]:
    """Separator variables of one CQ with their per-symbol position sets."""
    candidates = []
    for var in sorted(query.root_variables(), key=lambda v: v.name):
        positions: dict[str, frozenset[int]] = {}
        ok = True
        for atom in query.atoms:
            occupied = frozenset(i for i, t in enumerate(atom.args) if t == var)
            previous = positions.get(atom.predicate)
            combined = occupied if previous is None else previous & occupied
            if not combined:
                ok = False
                break
            positions[atom.predicate] = combined
        if ok:
            candidates.append((var, positions))
    return candidates


def _merged_separator(
    disjuncts: Sequence[ConjunctiveQuery],
) -> Optional[tuple[Var, ...]]:
    """One separator per disjunct with consistent positions per symbol.

    When found, ``⋁ᵢ ∃xᵢ φᵢ ≡ ∃x ⋁ᵢ φᵢ[x/xᵢ]`` and x is a separator of the
    merged formula, so the per-value events are independent.
    """
    per_disjunct = [_separator_candidates(q) for q in disjuncts]
    if any(not candidates for candidates in per_disjunct):
        return None

    chosen: list[Var] = []

    def search(index: int, positions: dict[str, frozenset[int]]) -> bool:
        if index == len(per_disjunct):
            return True
        for var, candidate_positions in per_disjunct[index]:
            combined = dict(positions)
            ok = True
            for symbol, pos in candidate_positions.items():
                existing = combined.get(symbol)
                merged = pos if existing is None else existing & pos
                if not merged:
                    ok = False
                    break
                combined[symbol] = merged
            if ok:
                chosen.append(var)
                if search(index + 1, combined):
                    return True
                chosen.pop()
        return False

    if search(0, {}):
        return tuple(chosen)
    return None


# -- sentence-level entry point ---------------------------------------------------


def sentence_to_ucq(sentence: Formula) -> UnionOfConjunctiveQueries:
    """Convert a monotone ∃*-sentence into a UCQ by distributing the matrix."""
    form = prenex(sentence)
    if any(kind != "exists" for kind in form.prefix_kinds()):
        raise UnsupportedQueryError("expected a pure ∃* prefix")
    disjunct_atom_sets = _matrix_dnf(form.matrix)
    disjuncts = []
    for atoms in disjunct_atom_sets:
        if not atoms:
            raise UnsupportedQueryError("matrix simplifies to a trivial query")
        disjuncts.append(ConjunctiveQuery(tuple(atoms)))
    if not disjuncts:
        raise UnsupportedQueryError("matrix simplifies to false")
    return UnionOfConjunctiveQueries(tuple(disjuncts))


def _matrix_dnf(matrix: Formula) -> list[tuple[Atom, ...]]:
    """DNF of a positive quantifier-free matrix, as atom tuples."""
    if isinstance(matrix, Atom):
        return [(matrix,)]
    if isinstance(matrix, Or):
        out: list[tuple[Atom, ...]] = []
        for part in matrix.parts:
            out.extend(_matrix_dnf(part))
        return out
    if isinstance(matrix, And):
        acc: list[tuple[Atom, ...]] = [()]
        for part in matrix.parts:
            acc = [
                left + right for left in acc for right in _matrix_dnf(part)
            ]
        return acc
    if isinstance(matrix, (Top, Bottom, Not)):
        raise UnsupportedQueryError(
            f"matrix must be a positive combination of atoms, found {matrix}"
        )
    raise UnsupportedQueryError(f"unsupported matrix node {matrix!r}")


def lifted_probability(
    query: Formula | UnionOfConjunctiveQueries | ConjunctiveQuery,
    db: TupleIndependentDatabase,
    engine: Optional[LiftedEngine] = None,
) -> float:
    """Lifted PQE for UCQs and unate ∀*/∃* sentences (Theorem 4.1's language).

    ∃*-sentences are made monotone over complement relations
    (:func:`repro.logic.transform.unate_to_monotone`) and converted to UCQs;
    ∀*-sentences are handled through the dual construction
    ``P(Q) = 1 − P(¬Q)`` where ¬Q is again a unate ∃*-sentence.
    """
    if isinstance(query, (UnionOfConjunctiveQueries, ConjunctiveQuery)):
        active = engine if engine is not None else LiftedEngine(db)
        return active.probability(query)

    sentence = to_nnf(query)
    if not sentence.is_sentence():
        raise UnsupportedQueryError("query must be a sentence")
    if not is_unate(sentence):
        raise UnsupportedQueryError("query must be unate (Sec. 4)")
    form = prenex(sentence)
    kinds = set(form.prefix_kinds())
    if kinds <= {"exists"}:
        monotone = unate_to_monotone(sentence)
        complemented = db.with_complements(sentence)
        complemented.explicit_domain = frozenset(db.domain())
        ucq = sentence_to_ucq(monotone)
        active = engine if engine is not None else LiftedEngine(complemented)
        return active.probability(ucq)
    if kinds <= {"forall"}:
        negated = to_nnf(Not(sentence))
        return 1.0 - lifted_probability(negated, db)
    raise UnsupportedQueryError(
        "mixed quantifier prefixes are outside the engine's language"
    )
