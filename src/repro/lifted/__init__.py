"""Lifted inference: the paper's rules (7)–(10) and the safety decider."""

from .errors import NonLiftableError, UnsupportedQueryError
from .engine import (
    LiftedEngine,
    RuleApplication,
    lifted_probability,
    sentence_to_ucq,
)
from .safety import Complexity, SafetyVerdict, cq_is_safe, decide_safety

__all__ = [
    "NonLiftableError",
    "UnsupportedQueryError",
    "LiftedEngine",
    "RuleApplication",
    "lifted_probability",
    "sentence_to_ucq",
    "Complexity",
    "SafetyVerdict",
    "cq_is_safe",
    "decide_safety",
]
