"""Errors raised by the lifted inference engine."""

from __future__ import annotations


class NonLiftableError(Exception):
    """The lifted rules do not apply to (a residual subquery of) the query.

    By the dichotomy theorem (Thm. 4.1) together with the completeness of
    the rules (Thm. 5.1), for queries in the paper's language this means the
    query is #P-hard — the caller should fall back to grounded inference.
    The blocking subquery is attached for diagnostics.
    """

    def __init__(self, message: str, subquery: object = None) -> None:
        super().__init__(message)
        self.subquery = subquery


class UnsupportedQueryError(Exception):
    """The sentence falls outside the engine's language (unate ∀*/∃*)."""
