"""A small recursive-descent parser for first-order sentences.

Grammar (standard precedence, ``~`` binds tightest, ``->`` is
right-associative and expands to ``~a | b``):

.. code-block:: text

    formula  := 'forall' vars '.' formula
              | 'exists' vars '.' formula
              | iff
    iff      := impl ('<->' impl)*
    impl     := or ('->' impl)?
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '~' unary | 'true' | 'false' | atom | '(' formula ')'
    atom     := IDENT '(' term (',' term)* ')'
    term     := IDENT            (a variable)
              | 'text' | "text"  (a string constant)
              | NUMBER           (an integer constant)

By convention a bare identifier in term position is always a *variable*;
constants must be quoted or numeric, e.g. ``R('a1', x)``.

Examples::

    parse("forall x. forall y. (R(x) | S(x,y) | T(y))")      # H0
    parse("exists x. exists y. R(x) & S(x,y)")
    parse("forall m. forall e. Manager(m,e) -> HighComp(m)")
"""

from __future__ import annotations

import re

from .formulas import FALSE, TRUE, And, Atom, Exists, Forall, Formula, Not, Or, implies, iff
from .terms import Const, Term, Var


class ParseError(ValueError):
    """Raised for any syntax error, with position information."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow2><->)
  | (?P<arrow>->)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<number>-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<punct>[().,&|~])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            tokens.append((kind, value, pos))
        pos = match.end()
    tokens.append(("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> tuple[str, str, int]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        kind, tok, pos = self.peek()
        if tok != value:
            raise ParseError(f"expected {value!r} at position {pos}, found {tok!r}")
        self.advance()

    # -- grammar -----------------------------------------------------------

    def formula(self) -> Formula:
        kind, tok, _ = self.peek()
        if kind == "ident" and tok in ("forall", "exists"):
            self.advance()
            variables = self._variable_list()
            self.expect(".")
            body = self.formula()
            for var in reversed(variables):
                body = Forall(var, body) if tok == "forall" else Exists(var, body)
            return body
        return self.iff_expr()

    def _variable_list(self) -> list[Var]:
        variables = []
        while True:
            kind, tok, pos = self.peek()
            if kind != "ident" or tok in _KEYWORDS:
                break
            variables.append(Var(tok))
            self.advance()
            if self.peek()[1] == ",":
                self.advance()
        if not variables:
            raise ParseError(f"expected variable name at position {self.peek()[2]}")
        return variables

    def iff_expr(self) -> Formula:
        left = self.impl_expr()
        while self.peek()[1] == "<->":
            self.advance()
            right = self.impl_expr()
            left = iff(left, right)
        return left

    def impl_expr(self) -> Formula:
        left = self.or_expr()
        if self.peek()[1] == "->":
            self.advance()
            right = self.impl_expr()
            return implies(left, right)
        return left

    def or_expr(self) -> Formula:
        parts = [self.and_expr()]
        while self.peek()[1] == "|":
            self.advance()
            parts.append(self.and_expr())
        return Or.of(parts) if len(parts) > 1 else parts[0]

    def and_expr(self) -> Formula:
        parts = [self.unary_expr()]
        while self.peek()[1] == "&":
            self.advance()
            parts.append(self.unary_expr())
        return And.of(parts) if len(parts) > 1 else parts[0]

    def unary_expr(self) -> Formula:
        kind, tok, pos = self.peek()
        if tok == "~":
            self.advance()
            return Not(self.unary_expr())
        if tok == "(":
            self.advance()
            inner = self.formula()
            self.expect(")")
            return inner
        if kind == "ident":
            if tok == "true":
                self.advance()
                return TRUE
            if tok == "false":
                self.advance()
                return FALSE
            if tok in ("forall", "exists"):
                return self.formula()
            return self.atom()
        raise ParseError(f"unexpected token {tok!r} at position {pos}")

    def atom(self) -> Atom:
        _, name, _ = self.advance()
        self.expect("(")
        args: list[Term] = [self.term()]
        while self.peek()[1] == ",":
            self.advance()
            args.append(self.term())
        self.expect(")")
        return Atom(name, tuple(args))

    def term(self) -> Term:
        kind, tok, pos = self.advance()
        if kind == "ident":
            if tok in _KEYWORDS:
                raise ParseError(f"keyword {tok!r} used as a term at position {pos}")
            return Var(tok)
        if kind == "number":
            return Const(int(tok))
        if kind == "string":
            return Const(tok[1:-1])
        raise ParseError(f"expected a term at position {pos}, found {tok!r}")

    def parse(self) -> Formula:
        result = self.formula()
        kind, tok, pos = self.peek()
        if kind != "eof":
            raise ParseError(f"trailing input at position {pos}: {tok!r}")
        return result


def parse(text: str) -> Formula:
    """Parse a first-order formula from its textual representation."""
    return _Parser(text).parse()


def parse_sentence(text: str) -> Formula:
    """Parse a formula and verify it is a sentence (no free variables)."""
    formula = parse(text)
    free = formula.free_variables()
    if free:
        names = ", ".join(sorted(v.name for v in free))
        raise ParseError(f"expected a sentence but found free variables: {names}")
    return formula
