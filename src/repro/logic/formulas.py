"""First-order formula abstract syntax.

The AST mirrors the logic used throughout the paper: atoms over a relational
vocabulary, the connectives ``~``/``&``/``|`` and the quantifiers ``exists`` /
``forall``. Implication is provided as sugar (:func:`implies`) and immediately
rewritten to ``~a | b`` so that every stored formula uses only the connectives
for which the paper defines duality (Sec. 2, "The Dual Query").

All nodes are frozen dataclasses: formulas are immutable values that hash and
compare structurally. ``And``/``Or`` are n-ary and flatten on construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .terms import Const, Term, Var


class Formula:
    """Base class for every formula node.

    Provides operator sugar (``&``, ``|``, ``~``) and the traversal helpers
    shared by all nodes. Concrete nodes are :class:`Atom`, :class:`Not`,
    :class:`And`, :class:`Or`, :class:`Exists`, :class:`Forall`,
    :class:`Top` and :class:`Bottom`.
    """

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And.of((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or.of((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    # -- traversal ---------------------------------------------------------

    def children(self) -> tuple["Formula", ...]:
        """Immediate subformulas (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Formula"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def atoms(self) -> tuple["Atom", ...]:
        """All atom occurrences, in syntactic order (with duplicates)."""
        return tuple(node for node in self.walk() if isinstance(node, Atom))

    def relation_symbols(self) -> frozenset[str]:
        """The set of relation names occurring in the formula."""
        return frozenset(a.predicate for a in self.atoms())

    def free_variables(self) -> frozenset[Var]:
        """Variables with at least one free occurrence."""
        raise NotImplementedError

    def constants(self) -> frozenset[Const]:
        """All constants occurring in the formula."""
        out: set[Const] = set()
        for atom in self.atoms():
            out.update(t for t in atom.args if isinstance(t, Const))
        return frozenset(out)

    def is_sentence(self) -> bool:
        """True when the formula has no free variables (a Boolean query)."""
        return not self.free_variables()

    def substitute(self, mapping: Mapping[Var, Term]) -> "Formula":
        """Capture-avoiding substitution of terms for free variables."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tk)``."""

    predicate: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def free_variables(self) -> frozenset[Var]:
        return frozenset(t for t in self.args if isinstance(t, Var))

    def substitute(self, mapping: Mapping[Var, Term]) -> "Atom":
        return Atom(
            self.predicate,
            tuple(mapping.get(t, t) if isinstance(t, Var) else t for t in self.args),
        )

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(t, Const) for t in self.args)

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class Top(Formula):
    """The constant *true*."""

    def free_variables(self) -> frozenset[Var]:
        return frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> "Top":
        return self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class Bottom(Formula):
    """The constant *false*."""

    def free_variables(self) -> frozenset[Var]:
        return frozenset()

    def substitute(self, mapping: Mapping[Var, Term]) -> "Bottom":
        return self

    def __str__(self) -> str:
        return "false"


TRUE = Top()
FALSE = Bottom()


@dataclass(frozen=True, slots=True)
class Not(Formula):
    """Negation ``~f``."""

    sub: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.sub,)

    def free_variables(self) -> frozenset[Var]:
        return self.sub.free_variables()

    def substitute(self, mapping: Mapping[Var, Term]) -> "Formula":
        return Not(self.sub.substitute(mapping))

    def __str__(self) -> str:
        return f"~{_wrap(self.sub)}"


def _flatten(cls, parts: Iterable[Formula]) -> tuple[Formula, ...]:
    """Flatten nested n-ary connectives of the same class."""
    out: list[Formula] = []
    for part in parts:
        if isinstance(part, cls):
            out.extend(part.parts)
        else:
            out.append(part)
    return tuple(out)


@dataclass(frozen=True, slots=True)
class And(Formula):
    """N-ary conjunction. Use :meth:`of` to build with simplification."""

    parts: tuple[Formula, ...]

    @staticmethod
    def of(parts: Iterable[Formula]) -> Formula:
        """Build a conjunction, flattening and applying unit laws."""
        flat = [p for p in _flatten(And, parts) if not isinstance(p, Top)]
        if any(isinstance(p, Bottom) for p in flat):
            return FALSE
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat))

    def children(self) -> tuple[Formula, ...]:
        return self.parts

    def free_variables(self) -> frozenset[Var]:
        return frozenset().union(*(p.free_variables() for p in self.parts))

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        return And.of(p.substitute(mapping) for p in self.parts)

    def __str__(self) -> str:
        return " & ".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True, slots=True)
class Or(Formula):
    """N-ary disjunction. Use :meth:`of` to build with simplification."""

    parts: tuple[Formula, ...]

    @staticmethod
    def of(parts: Iterable[Formula]) -> Formula:
        """Build a disjunction, flattening and applying unit laws."""
        flat = [p for p in _flatten(Or, parts) if not isinstance(p, Bottom)]
        if any(isinstance(p, Top) for p in flat):
            return TRUE
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))

    def children(self) -> tuple[Formula, ...]:
        return self.parts

    def free_variables(self) -> frozenset[Var]:
        return frozenset().union(*(p.free_variables() for p in self.parts))

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        return Or.of(p.substitute(mapping) for p in self.parts)

    def __str__(self) -> str:
        return " | ".join(_wrap(p) for p in self.parts)


class _Quantifier(Formula):
    """Shared behaviour of :class:`Exists` and :class:`Forall`."""

    __slots__ = ()

    var: Var
    sub: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.sub,)

    def free_variables(self) -> frozenset[Var]:
        return self.sub.free_variables() - {self.var}

    def substitute(self, mapping: Mapping[Var, Term]) -> Formula:
        # Drop any binding for the bound variable, and rename the bound
        # variable when a substituted term would be captured.
        mapping = {v: t for v, t in mapping.items() if v != self.var}
        if not mapping:
            return self
        captured = any(
            isinstance(t, Var) and t == self.var
            for v, t in mapping.items()
            if v in self.sub.free_variables()
        )
        var, sub = self.var, self.sub
        if captured:
            fresh = _fresh_variable(
                var, sub.free_variables() | {t for t in mapping.values() if isinstance(t, Var)}
            )
            sub = sub.substitute({var: fresh})
            var = fresh
        return type(self)(var, sub.substitute(mapping))


@dataclass(frozen=True, slots=True)
class Exists(_Quantifier):
    """Existential quantification ``exists v. f``."""

    var: Var
    sub: Formula

    def __str__(self) -> str:
        return f"exists {self.var}. {_wrap(self.sub)}"


@dataclass(frozen=True, slots=True)
class Forall(_Quantifier):
    """Universal quantification ``forall v. f``."""

    var: Var
    sub: Formula

    def __str__(self) -> str:
        return f"forall {self.var}. {_wrap(self.sub)}"


def _wrap(f: Formula) -> str:
    """Parenthesize non-leaf subformulas when printing."""
    if isinstance(f, (Atom, Top, Bottom, Not)):
        return str(f)
    return f"({f})"


def _fresh_variable(base: Var, avoid: frozenset[Var] | set[Var]) -> Var:
    """A variable named after *base* that does not collide with *avoid*."""
    i = 0
    while True:
        candidate = Var(f"{base.name}_{i}")
        if candidate not in avoid:
            return candidate
        i += 1


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Material implication, rewritten immediately to ``~a | b``.

    The paper's duality construction (Sec. 2) assumes formulas do not contain
    the implication connective, so we never store one.
    """
    return Or.of((Not(antecedent), consequent))


def iff(left: Formula, right: Formula) -> Formula:
    """Biconditional, rewritten to ``(~l | r) & (~r | l)``."""
    return And.of((implies(left, right), implies(right, left)))


def exists_many(variables: Iterable[Var], body: Formula) -> Formula:
    """``exists v1. exists v2. ... body`` over the given variables in order."""
    result = body
    for v in reversed(list(variables)):
        result = Exists(v, result)
    return result


def forall_many(variables: Iterable[Var], body: Formula) -> Formula:
    """``forall v1. forall v2. ... body`` over the given variables in order."""
    result = body
    for v in reversed(list(variables)):
        result = Forall(v, result)
    return result
