"""Model checking: does a possible world satisfy a first-order sentence?

A *possible world* is a finite set of ground facts ``(relation, values)``
over a finite domain. :func:`satisfies` implements the standard Tarskian
semantics by direct recursion — it is the reference oracle against which all
inference engines are tested.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .formulas import And, Atom, Bottom, Exists, Forall, Formula, Not, Or, Top
from .terms import Const, Var

Fact = tuple[str, tuple]
World = frozenset


def ground_atom(atom: Atom, env: Mapping[Var, object]) -> Fact:
    """The fact denoted by *atom* under a variable environment."""
    values = []
    for term in atom.args:
        if isinstance(term, Const):
            values.append(term.value)
        else:
            try:
                values.append(env[term])
            except KeyError:
                raise ValueError(f"unbound variable {term} in {atom}") from None
    return (atom.predicate, tuple(values))


def satisfies(
    world: Iterable[Fact],
    domain: Iterable,
    sentence: Formula,
    env: Mapping[Var, object] | None = None,
) -> bool:
    """True when the world (a set of facts) models the sentence.

    *domain* supplies the range of the quantifiers; it must contain every
    value mentioned by the world and by the sentence's constants.
    """
    facts = world if isinstance(world, (set, frozenset)) else frozenset(world)
    values = tuple(domain)
    environment: dict[Var, object] = dict(env or {})

    def check(f: Formula) -> bool:
        if isinstance(f, Top):
            return True
        if isinstance(f, Bottom):
            return False
        if isinstance(f, Atom):
            return ground_atom(f, environment) in facts
        if isinstance(f, Not):
            return not check(f.sub)
        if isinstance(f, And):
            return all(check(p) for p in f.parts)
        if isinstance(f, Or):
            return any(check(p) for p in f.parts)
        if isinstance(f, (Exists, Forall)):
            missing_marker = object()
            previous = environment.get(f.var, missing_marker)
            want = isinstance(f, Exists)
            result = not want
            for value in values:
                environment[f.var] = value
                if check(f.sub) == want:
                    result = want
                    break
            if previous is missing_marker:
                environment.pop(f.var, None)
            else:
                environment[f.var] = previous
            return result
        raise TypeError(f"unknown formula node {f!r}")

    missing = sentence.free_variables() - set(environment)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise ValueError(f"sentence has unbound free variables: {names}")
    return check(sentence)
