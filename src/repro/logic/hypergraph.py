"""Query hypergraphs and acyclicity notions.

A CQ's hypergraph has the query variables as vertices and one hyperedge per
atom (its variable set). Two classical acyclicity notions matter in the
paper's orbit:

* **α-acyclicity** — decided by the GYO reduction (repeatedly remove ear
  edges / isolated vertices); the standard tractability frontier for
  deterministic query evaluation.
* **γ-acyclicity** — a strictly stronger notion (Fagin); Theorem 8.2(c)
  states that γ-acyclic self-join-free CQs have PTIME PQE over *symmetric*
  databases.

γ-acyclicity is decided here by Fagin's reduction system: repeatedly
(1) delete vertices that occur in exactly one edge,
(2) delete edges equal to another edge or equal to a *union-irrelevant*
    singleton, and
(3) merge vertices occurring in exactly the same set of edges;
the hypergraph is γ-acyclic iff this terminates with every edge empty.
Equivalently (the characterization we implement, following Fagin 1983):
a hypergraph is γ-acyclic iff it is α-acyclic and its *Bachman diagram*
contains no cycle; we use the simpler reduction-based test below, validated
against known examples in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from .cq import ConjunctiveQuery

Edge = FrozenSet


@dataclass(frozen=True)
class Hypergraph:
    """Vertices plus a multiset-free set of hyperedges."""

    vertices: frozenset
    edges: frozenset[Edge]

    @staticmethod
    def of_query(query: ConjunctiveQuery) -> "Hypergraph":
        edges = frozenset(
            frozenset(atom.free_variables()) for atom in query.atoms
        )
        return Hypergraph(frozenset(query.variables), edges)

    @staticmethod
    def from_edges(edges: Iterable[Iterable]) -> "Hypergraph":
        frozen = frozenset(frozenset(e) for e in edges)
        vertices = frozenset(v for e in frozen for v in e)
        return Hypergraph(vertices, frozen)


def is_alpha_acyclic(graph: Hypergraph) -> bool:
    """GYO reduction: α-acyclic iff all edges can be eliminated.

    Repeat until fixpoint: remove vertices contained in at most one edge;
    remove edges contained in another edge. α-acyclic iff at most one
    (possibly empty) edge remains.
    """
    edges = [set(e) for e in graph.edges]
    changed = True
    while changed:
        changed = False
        # vertices in at most one edge are "ears" and can be dropped
        occurrences: dict = {}
        for edge in edges:
            for v in edge:
                occurrences[v] = occurrences.get(v, 0) + 1
        for edge in edges:
            lonely = {v for v in edge if occurrences[v] <= 1}
            if lonely:
                edge -= lonely
                changed = True
        # drop empty edges, duplicates, and edges contained in another edge
        unique: list[set] = []
        for edge in edges:
            if not edge:
                changed = True
                continue
            if any(edge < other for other in edges if other is not edge):
                changed = True
                continue
            if any(edge == seen for seen in unique):
                changed = True
                continue
            unique.append(edge)
        edges = unique
    return len(edges) <= 1


def is_gamma_acyclic(graph: Hypergraph) -> bool:
    """Fagin's γ-acyclicity by the reduction system (see module docstring)."""
    edges = [set(e) for e in graph.edges if e]
    changed = True
    while changed and edges:
        changed = False
        # (1) delete vertices occurring in exactly one edge
        occurrences: dict = {}
        for edge in edges:
            for v in edge:
                occurrences[v] = occurrences.get(v, 0) + 1
        for edge in edges:
            lonely = {v for v in edge if occurrences[v] == 1}
            if lonely:
                edge -= lonely
                changed = True
        # (2) delete empty edges and duplicate edges
        deduped: list[set] = []
        for edge in edges:
            if not edge:
                changed = True
                continue
            if any(edge == other for other in deduped):
                changed = True
                continue
            deduped.append(edge)
        edges = deduped
        # (3) merge vertices with identical edge-membership ("modules")
        membership: dict = {}
        for v in {u for e in edges for u in e}:
            key = frozenset(i for i, e in enumerate(edges) if v in e)
            membership.setdefault(key, []).append(v)
        for group in membership.values():
            if len(group) > 1:
                keep, *drop = group
                for edge in edges:
                    if keep in edge:
                        for v in drop:
                            edge.discard(v)
                changed = True
        # (4) γ-rule: an edge that is a singleton {v} may be deleted when v
        # occurs in some other edge (it adds no connectivity constraints)
        singletons = [e for e in edges if len(e) == 1]
        for single in singletons:
            (v,) = tuple(single)
            if any(v in other for other in edges if other is not single):
                edges.remove(single)
                changed = True
                break
    return not edges


def query_is_gamma_acyclic(query: ConjunctiveQuery) -> bool:
    """Theorem 8.2(c)'s syntactic condition for a self-join-free CQ."""
    return is_gamma_acyclic(Hypergraph.of_query(query))


def query_is_alpha_acyclic(query: ConjunctiveQuery) -> bool:
    return is_alpha_acyclic(Hypergraph.of_query(query))
