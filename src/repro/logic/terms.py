"""First-order terms: variables and constants.

Terms are the leaves of every formula in :mod:`repro.logic`. Both kinds are
immutable and hashable so they can be used freely as dictionary keys, e.g. in
substitutions and in the canonical-form machinery of :mod:`repro.logic.cq`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Var:
    """A first-order variable, identified by its name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, slots=True)
class Const:
    """A domain constant.

    The wrapped ``value`` may be any hashable Python object (strings and ints
    in practice). Constants compare by value, never by identity.
    """

    value: object

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


Term = Union[Var, Const]


def is_variable(term: Term) -> bool:
    """Return True when *term* is a :class:`Var`."""
    return isinstance(term, Var)


def is_constant(term: Term) -> bool:
    """Return True when *term* is a :class:`Const`."""
    return isinstance(term, Const)


def variables_of(terms) -> frozenset[Var]:
    """The set of variables occurring in an iterable of terms."""
    return frozenset(t for t in terms if isinstance(t, Var))


def constants_of(terms) -> frozenset[Const]:
    """The set of constants occurring in an iterable of terms."""
    return frozenset(t for t in terms if isinstance(t, Const))
