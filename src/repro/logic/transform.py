"""Syntactic transformations on first-order formulas.

Implements the constructions used throughout the paper:

* negation normal form (NNF),
* the *dual query* of Sec. 2 (swap the quantifiers and the connectives),
* prenex normal form with its ∀*/∃* prefix test,
* the *unate* test of Sec. 4 (every relation symbol occurs with a single
  polarity), and
* the unate-to-monotone rewrite used in the proof of Theorem 4.1 (negated
  symbols replaced by fresh complement symbols).
"""

from __future__ import annotations

from dataclasses import dataclass

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    _fresh_variable,
)
from .terms import Var


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: push negations down to atoms."""
    return _nnf(formula, negate=False)


def _nnf(f: Formula, negate: bool) -> Formula:
    if isinstance(f, Atom):
        return Not(f) if negate else f
    if isinstance(f, Top):
        return FALSE if negate else TRUE
    if isinstance(f, Bottom):
        return TRUE if negate else FALSE
    if isinstance(f, Not):
        return _nnf(f.sub, not negate)
    if isinstance(f, And):
        parts = tuple(_nnf(p, negate) for p in f.parts)
        return Or.of(parts) if negate else And.of(parts)
    if isinstance(f, Or):
        parts = tuple(_nnf(p, negate) for p in f.parts)
        return And.of(parts) if negate else Or.of(parts)
    if isinstance(f, Exists):
        cls = Forall if negate else Exists
        return cls(f.var, _nnf(f.sub, negate))
    if isinstance(f, Forall):
        cls = Exists if negate else Forall
        return cls(f.var, _nnf(f.sub, negate))
    raise TypeError(f"unknown formula node: {f!r}")


def dual(formula: Formula) -> Formula:
    """The dual query of Sec. 2: swap ∃/∀ and ∧/∨, atoms unchanged.

    The formula must not contain implication (our AST cannot express it) and
    the paper's equivalence ``PQE(Q) ≡ PQE(dual(Q))`` holds for any formula
    built from atoms, ¬, ∧, ∨, ∃, ∀.
    """
    if isinstance(formula, (Atom, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(dual(formula.sub))
    if isinstance(formula, And):
        return Or.of(dual(p) for p in formula.parts)
    if isinstance(formula, Or):
        return And.of(dual(p) for p in formula.parts)
    if isinstance(formula, Exists):
        return Forall(formula.var, dual(formula.sub))
    if isinstance(formula, Forall):
        return Exists(formula.var, dual(formula.sub))
    raise TypeError(f"unknown formula node: {formula!r}")


def standardize_apart(formula: Formula) -> Formula:
    """Rename bound variables so that every quantifier binds a unique name.

    Free variables keep their names. Required before prenexing.
    """
    used = {v.name for v in formula.free_variables()}

    def rename(f: Formula, mapping: dict[Var, Var]) -> Formula:
        if isinstance(f, Atom):
            return f.substitute(mapping)
        if isinstance(f, (Top, Bottom)):
            return f
        if isinstance(f, Not):
            return Not(rename(f.sub, mapping))
        if isinstance(f, And):
            return And.of(rename(p, mapping) for p in f.parts)
        if isinstance(f, Or):
            return Or.of(rename(p, mapping) for p in f.parts)
        if isinstance(f, (Exists, Forall)):
            var = f.var
            if var.name in used:
                var = _fresh_variable(f.var, {Var(n) for n in used})
            used.add(var.name)
            inner = dict(mapping)
            inner[f.var] = var
            return type(f)(var, rename(f.sub, inner))
        raise TypeError(f"unknown formula node: {f!r}")

    return rename(formula, {})


@dataclass(frozen=True)
class PrenexForm:
    """A formula split into quantifier prefix and quantifier-free matrix."""

    prefix: tuple[tuple[str, Var], ...]  # ("exists" | "forall", variable)
    matrix: Formula

    def to_formula(self) -> Formula:
        result = self.matrix
        for kind, var in reversed(self.prefix):
            result = Exists(var, result) if kind == "exists" else Forall(var, result)
        return result

    def prefix_kinds(self) -> tuple[str, ...]:
        return tuple(kind for kind, _ in self.prefix)


def prenex(formula: Formula) -> PrenexForm:
    """Prenex normal form of an NNF formula.

    The input is first normalized (NNF + standardize-apart); quantifiers are
    then pulled to the front left-to-right. The result is logically
    equivalent to the input.
    """
    normalized = standardize_apart(to_nnf(formula))

    def pull(f: Formula) -> tuple[list[tuple[str, Var]], Formula]:
        if isinstance(f, (Atom, Top, Bottom, Not)):
            return [], f
        if isinstance(f, Exists):
            prefix, matrix = pull(f.sub)
            return [("exists", f.var)] + prefix, matrix
        if isinstance(f, Forall):
            prefix, matrix = pull(f.sub)
            return [("forall", f.var)] + prefix, matrix
        if isinstance(f, (And, Or)):
            prefix: list[tuple[str, Var]] = []
            matrices = []
            for part in f.parts:
                sub_prefix, sub_matrix = pull(part)
                prefix.extend(sub_prefix)
                matrices.append(sub_matrix)
            combined = And.of(matrices) if isinstance(f, And) else Or.of(matrices)
            return prefix, combined
        raise TypeError(f"unknown formula node: {f!r}")

    prefix, matrix = pull(normalized)
    return PrenexForm(tuple(prefix), matrix)


def polarity_map(formula: Formula) -> dict[str, set[int]]:
    """Occurrence polarities per relation symbol.

    Returns a map from relation name to a subset of ``{+1, -1}``: ``+1`` for
    at least one positive occurrence, ``-1`` for at least one negated one.
    Computed on the NNF of the formula.
    """
    polarities: dict[str, set[int]] = {}

    def visit(f: Formula, sign: int) -> None:
        if isinstance(f, Atom):
            polarities.setdefault(f.predicate, set()).add(sign)
        elif isinstance(f, Not):
            visit(f.sub, -sign)
        elif isinstance(f, (And, Or)):
            for part in f.parts:
                visit(part, sign)
        elif isinstance(f, (Exists, Forall)):
            visit(f.sub, sign)

    visit(to_nnf(formula), +1)
    return polarities


def is_unate(formula: Formula) -> bool:
    """Sec. 4: every relation symbol occurs only positively or only negated."""
    return all(len(signs) == 1 for signs in polarity_map(formula).values())


def is_monotone(formula: Formula) -> bool:
    """True when no relation symbol has a negated occurrence (in NNF)."""
    return all(signs == {+1} for signs in polarity_map(formula).values())


COMPLEMENT_SUFFIX = "__neg"


def unate_to_monotone(formula: Formula) -> Formula:
    """Rewrite a unate formula into a monotone one over complement symbols.

    Every negated occurrence ``~R(t...)`` of a negatively-occurring symbol is
    replaced by the fresh positive symbol ``R__neg(t...)`` (Theorem 4.1's
    proof sketch). The caller is responsible for complementing the
    probabilities of the renamed relations (``p' = 1 - p``); see
    :func:`repro.core.tid.complement_relations`.
    """
    if not is_unate(formula):
        raise ValueError("formula is not unate")
    negative = {
        name for name, signs in polarity_map(formula).items() if signs == {-1}
    }

    def rewrite(f: Formula) -> Formula:
        if isinstance(f, Atom):
            return f
        if isinstance(f, Not):
            if isinstance(f.sub, Atom) and f.sub.predicate in negative:
                return Atom(f.sub.predicate + COMPLEMENT_SUFFIX, f.sub.args)
            return Not(rewrite(f.sub))
        if isinstance(f, And):
            return And.of(rewrite(p) for p in f.parts)
        if isinstance(f, Or):
            return Or.of(rewrite(p) for p in f.parts)
        if isinstance(f, (Exists, Forall)):
            return type(f)(f.var, rewrite(f.sub))
        return f

    return rewrite(to_nnf(formula))
