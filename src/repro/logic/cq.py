"""Boolean conjunctive queries and unions thereof.

A Boolean conjunctive query (CQ, Eq. 6 of the paper) is a set of positive
atoms with every variable existentially quantified. This module provides:

* the *hierarchical* test of Definition 4.2 (the safety criterion of
  Theorem 4.3 for self-join-free queries),
* separator variables (side condition of lifted rule (8)),
* connected components under shared variables / shared symbols (side
  condition of lifted rule (7)),
* homomorphisms, containment, logical implication and equivalence,
* core computation and a canonical key used for the cancellation step of the
  inclusion/exclusion rule (Sec. 5), and
* :class:`UnionOfConjunctiveQueries` with minimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from .formulas import And, Atom, Exists, Formula, Or, exists_many
from .terms import Const, Term, Var

_MAX_CANONICAL_VARS = 7


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A Boolean conjunctive query: ∃x̄ (A₁ ∧ ... ∧ Aₘ) over positive atoms."""

    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))

    # -- basic structure ---------------------------------------------------

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(
            t for atom in self.atoms for t in atom.args if isinstance(t, Var)
        )

    @property
    def constants(self) -> frozenset[Const]:
        return frozenset(
            t for atom in self.atoms for t in atom.args if isinstance(t, Const)
        )

    @property
    def predicates(self) -> frozenset[str]:
        return frozenset(atom.predicate for atom in self.atoms)

    def at(self, var: Var) -> frozenset[int]:
        """Indices of atoms containing *var* — the paper's at(x)."""
        return frozenset(
            i for i, atom in enumerate(self.atoms) if var in atom.free_variables()
        )

    def has_self_joins(self) -> bool:
        """True when some relation symbol occurs in two or more atoms."""
        return len(self.predicates) < len(self.atoms)

    # -- safety-related structure (Sec. 4 and 5) ---------------------------

    def is_hierarchical(self) -> bool:
        """Definition 4.2: at(x), at(y) nested or disjoint for all x, y."""
        variables = sorted(self.variables, key=lambda v: v.name)
        for x, y in itertools.combinations(variables, 2):
            ax, ay = self.at(x), self.at(y)
            if not (ax <= ay or ay <= ax or not (ax & ay)):
                return False
        return True

    def root_variables(self) -> frozenset[Var]:
        """Variables occurring in every atom of the query."""
        return frozenset(
            v for v in self.variables if len(self.at(v)) == len(self.atoms)
        )

    def separator_variable(self) -> Optional[Var]:
        """A separator variable per lifted rule (8), or None.

        A separator occurs in every atom and, for every relation symbol, in
        the *same position* of every occurrence of that symbol. For
        self-join-free queries this degenerates to a root variable.
        """
        for var in sorted(self.root_variables(), key=lambda v: v.name):
            positions: dict[str, set[int]] = {}
            for atom in self.atoms:
                occupied = {i for i, t in enumerate(atom.args) if t == var}
                positions.setdefault(atom.predicate, set()).update(occupied)
            if all(len(occ) >= 1 for occ in positions.values()) and all(
                self._consistent_position(pred, var) for pred in positions
            ):
                return var
        return None

    def _consistent_position(self, predicate: str, var: Var) -> bool:
        """True when *var* sits at one common position in all *predicate* atoms."""
        common: Optional[set[int]] = None
        for atom in self.atoms:
            if atom.predicate != predicate:
                continue
            occupied = {i for i, t in enumerate(atom.args) if t == var}
            common = occupied if common is None else common & occupied
        return bool(common)

    def connected_components(self, by_symbols: bool = True) -> list["ConjunctiveQuery"]:
        """Partition atoms into components for the independence rule (7).

        Two atoms are connected when they share a variable; when
        ``by_symbols`` is set (the default, required for probabilistic
        independence over a TID) atoms sharing a relation symbol are also
        connected.
        """
        n = len(self.atoms)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        for i, j in itertools.combinations(range(n), 2):
            share_var = bool(
                self.atoms[i].free_variables() & self.atoms[j].free_variables()
            )
            share_sym = self.atoms[i].predicate == self.atoms[j].predicate
            if share_var or (by_symbols and share_sym):
                union(i, j)
        groups: dict[int, list[Atom]] = {}
        for i in range(n):
            groups.setdefault(find(i), []).append(self.atoms[i])
        return [ConjunctiveQuery(tuple(atoms)) for atoms in groups.values()]

    # -- operations --------------------------------------------------------

    def substitute(self, mapping: Mapping[Var, Term]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(tuple(a.substitute(mapping) for a in self.atoms))

    def rename_apart(self, taken: frozenset[Var]) -> "ConjunctiveQuery":
        """Rename this query's variables away from *taken*."""
        mapping: dict[Var, Term] = {}
        used = set(taken)
        for var in sorted(self.variables, key=lambda v: v.name):
            if var in used:
                i = 0
                while Var(f"{var.name}_{i}") in used or Var(f"{var.name}_{i}") in self.variables:
                    i += 1
                fresh = Var(f"{var.name}_{i}")
                mapping[var] = fresh
                used.add(fresh)
            else:
                used.add(var)
        return self.substitute(mapping) if mapping else self

    def conjoin(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """Boolean conjunction Q₁ ∧ Q₂, standardizing variables apart.

        The disjuncts of a UCQ have independent variable scopes, so the
        inclusion/exclusion terms conjoin *renamed-apart* copies.
        """
        renamed = other.rename_apart(self.variables)
        return ConjunctiveQuery(self.atoms + renamed.atoms)

    def to_formula(self) -> Formula:
        body = And.of(self.atoms)
        ordered = sorted(self.variables, key=lambda v: v.name)
        return exists_many(ordered, body)

    # -- containment and equivalence ----------------------------------------

    def implies(self, other: "ConjunctiveQuery") -> bool:
        """Logical implication of Boolean CQs: every world of self satisfies other.

        Holds iff there is a homomorphism from *other* into the canonical
        database of *self*.
        """
        return homomorphism(other, self) is not None

    def equivalent(self, other: "ConjunctiveQuery") -> bool:
        return self.implies(other) and other.implies(self)

    def core(self) -> "ConjunctiveQuery":
        """The core: a minimal equivalent subquery (unique up to renaming)."""
        atoms = list(dict.fromkeys(self.atoms))  # drop duplicate atoms
        changed = True
        while changed and len(atoms) > 1:
            changed = False
            for i in range(len(atoms)):
                candidate = ConjunctiveQuery(tuple(atoms[:i] + atoms[i + 1 :]))
                if homomorphism(ConjunctiveQuery(tuple(atoms)), candidate) is not None:
                    atoms.pop(i)
                    changed = True
                    break
        return ConjunctiveQuery(tuple(atoms))

    def canonical_key(self) -> tuple:
        """A hashable key, identical for equivalent queries (small queries).

        The query is reduced to its core, then variables are renamed by every
        permutation (up to ``_MAX_CANONICAL_VARS`` variables) and the
        lexicographically least serialization wins. For larger queries a
        deterministic heuristic labeling is used; the lifted engine then
        falls back to explicit equivalence tests when merging terms, so a
        weaker key affects performance, never correctness.
        """
        reduced = self.core()
        variables = sorted(reduced.variables, key=lambda v: v.name)
        if len(variables) <= _MAX_CANONICAL_VARS:
            best = None
            for perm in itertools.permutations(range(len(variables))):
                names = {variables[i]: Var(f"v{perm[i]}") for i in range(len(variables))}
                serial = tuple(sorted(_serialize_atom(a, names) for a in reduced.atoms))
                if best is None or serial < best:
                    best = serial
            return best  # type: ignore[return-value]
        names = {v: Var(f"v{i}") for i, v in enumerate(variables)}
        return tuple(sorted(_serialize_atom(a, names) for a in reduced.atoms))

    def __str__(self) -> str:
        return ", ".join(str(a) for a in self.atoms)


def _serialize_atom(atom: Atom, names: Mapping[Var, Var]) -> tuple:
    args = tuple(
        ("v", names[t].name) if isinstance(t, Var) else ("c", t.value)
        for t in atom.args
    )
    return (atom.predicate, args)


def homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[dict[Var, Term]]:
    """A homomorphism from *source* into the canonical database of *target*.

    Variables of *target* are frozen (treated as constants). Returns the
    variable mapping, or None when no homomorphism exists.
    """
    target_atoms_by_pred: dict[tuple[str, int], list[Atom]] = {}
    for atom in target.atoms:
        target_atoms_by_pred.setdefault((atom.predicate, atom.arity), []).append(atom)

    # Order source atoms to fail fast: rarer predicates first.
    ordered = sorted(
        source.atoms,
        key=lambda a: len(target_atoms_by_pred.get((a.predicate, a.arity), ())),
    )

    mapping: dict[Var, Term] = {}

    def extend(index: int) -> bool:
        if index == len(ordered):
            return True
        atom = ordered[index]
        for candidate in target_atoms_by_pred.get((atom.predicate, atom.arity), ()):
            trail: list[Var] = []
            ok = True
            for src_term, dst_term in zip(atom.args, candidate.args):
                if isinstance(src_term, Const):
                    if src_term != dst_term:
                        ok = False
                        break
                else:
                    bound = mapping.get(src_term)
                    if bound is None:
                        mapping[src_term] = dst_term
                        trail.append(src_term)
                    elif bound != dst_term:
                        ok = False
                        break
            if ok and extend(index + 1):
                return True
            for var in trail:
                del mapping[var]
        return False

    return dict(mapping) if extend(0) else None


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A UCQ: the disjunction of one or more Boolean conjunctive queries."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        if not isinstance(self.disjuncts, tuple):
            object.__setattr__(self, "disjuncts", tuple(self.disjuncts))

    @property
    def predicates(self) -> frozenset[str]:
        return frozenset().union(*(q.predicates for q in self.disjuncts))

    def minimize(self) -> "UnionOfConjunctiveQueries":
        """Drop disjuncts implied by another disjunct (Qᵢ ⊨ Qⱼ ⇒ drop Qᵢ)."""
        kept: list[ConjunctiveQuery] = []
        disjuncts = [q.core() for q in self.disjuncts]
        for i, q in enumerate(disjuncts):
            redundant = False
            for j, other in enumerate(disjuncts):
                if i == j:
                    continue
                if q.implies(other) and not (other.implies(q) and j > i):
                    # q is subsumed; when the two are equivalent keep the
                    # first occurrence only.
                    redundant = True
                    break
            if not redundant:
                kept.append(q)
        return UnionOfConjunctiveQueries(tuple(kept))

    def to_formula(self) -> Formula:
        return Or.of(q.to_formula() for q in self.disjuncts)

    def canonical_key(self) -> frozenset:
        return frozenset(q.canonical_key() for q in self.minimize().disjuncts)

    def equivalent(self, other: "UnionOfConjunctiveQueries") -> bool:
        """Logical equivalence of UCQs via pairwise CQ containment."""
        return self._implies(other) and other._implies(self)

    def _implies(self, other: "UnionOfConjunctiveQueries") -> bool:
        # A UCQ implies another iff each disjunct implies some disjunct of it.
        return all(
            any(q.implies(o) for o in other.disjuncts) for q in self.disjuncts
        )

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return "  |  ".join(f"[{q}]" for q in self.disjuncts)


def cq(*atoms: Atom) -> ConjunctiveQuery:
    """Convenience constructor from atoms."""
    return ConjunctiveQuery(tuple(atoms))


def ucq(*queries: ConjunctiveQuery) -> UnionOfConjunctiveQueries:
    """Convenience constructor from conjunctive queries."""
    return UnionOfConjunctiveQueries(tuple(queries))


def cq_from_formula(formula: Formula) -> ConjunctiveQuery:
    """Extract a Boolean CQ from an ∃*-prefixed conjunction of atoms."""
    body = formula
    while isinstance(body, Exists):
        body = body.sub
    if isinstance(body, Atom):
        atoms: tuple[Atom, ...] = (body,)
    elif isinstance(body, And) and all(isinstance(p, Atom) for p in body.parts):
        atoms = tuple(body.parts)  # type: ignore[arg-type]
    else:
        raise ValueError(f"not a conjunctive query: {formula}")
    query = ConjunctiveQuery(atoms)
    if formula.free_variables():
        raise ValueError("conjunctive query must be Boolean (no free variables)")
    return query


def ucq_from_formula(formula: Formula) -> UnionOfConjunctiveQueries:
    """Extract a UCQ from a disjunction of ∃*-conjunctions (or a single CQ)."""
    if isinstance(formula, Or):
        return UnionOfConjunctiveQueries(
            tuple(cq_from_formula(p) for p in formula.parts)
        )
    if isinstance(formula, Exists):
        # An ∃-prefix over a disjunction distributes: ∃x (A ∨ B) ≡ ∃xA ∨ ∃xB.
        distributed = _distribute_exists(formula)
        if isinstance(distributed, Or):
            return UnionOfConjunctiveQueries(
                tuple(cq_from_formula(p) for p in distributed.parts)
            )
    return UnionOfConjunctiveQueries((cq_from_formula(formula),))


def _distribute_exists(formula: Formula) -> Formula:
    if isinstance(formula, Exists):
        inner = _distribute_exists(formula.sub)
        if isinstance(inner, Or):
            return Or.of(Exists(formula.var, p) for p in inner.parts)
        return Exists(formula.var, inner)
    return formula


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse the shorthand ``"R(x), S(x,y)"`` into a Boolean CQ."""
    from .parser import _Parser

    parser = _Parser(text)
    atoms = [parser.atom()]
    while parser.peek()[1] == ",":
        parser.advance()
        atoms.append(parser.atom())
    if parser.peek()[0] != "eof":
        raise ValueError(f"trailing input in CQ: {text!r}")
    return ConjunctiveQuery(tuple(atoms))


def parse_ucq(text: str) -> UnionOfConjunctiveQueries:
    """Parse ``"R(x),S(x,y) | S(u,v),T(v)"`` into a UCQ."""
    parts = [part.strip() for part in text.split("|")]
    return UnionOfConjunctiveQueries(tuple(parse_cq(p) for p in parts if p))
