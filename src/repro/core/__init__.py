"""Core data model and public façade."""

from .tid import TupleIndependentDatabase
from .pdb import Method, ProbabilisticDatabase, QueryAnswer

__all__ = [
    "TupleIndependentDatabase",
    "Method",
    "ProbabilisticDatabase",
    "QueryAnswer",
]
