"""The public façade: a probabilistic database with strategy dispatch.

``ProbabilisticDatabase.probability(query)`` picks the best inference route
in decreasing order of asymptotic quality, mirroring the paper's narrative:

1. **lifted** — the rule engine of Sec. 5 (polynomial, exact; fails exactly
   on non-liftable queries);
2. **safe plan** — extensional evaluation inside the relational engine for
   hierarchical self-join-free CQs (Sec. 6);
3. **dpll** — grounded inference: lineage + exact DPLL model counting with
   caching and components (Sec. 7), when the lineage is small enough;
4. **karp-luby** — the DNF FPRAS, when the lineage is a positive DNF;
5. **monte-carlo** — naive sampling with an (ε, δ) additive guarantee.

Each answer records which route fired, carries the lifted rule trace or the
approximation certificate, and a :class:`~repro.engine.stats.QueryStats`
with per-stage wall-times (parse / lineage / compile / count) so that
``explain()`` output is uniform across all six routes.

The approximate routes draw from ``random.Random(self.seed)``: with a seed
set, repeated evaluations of the same query return identical estimates.

For memoization across repeated queries, wrap the database in a
:class:`repro.engine.EngineSession`; the ``lineage_factory`` hook below is
how the session shares its content-addressed lineage cache with dispatch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Optional, Sequence, Union

from ..booleans.forms import FormSizeExceeded, to_dnf
from ..engine.stats import QueryStats
from ..lifted.engine import LiftedEngine, RuleApplication, lifted_probability
from ..lifted.errors import NonLiftableError, UnsupportedQueryError
from ..lineage.build import (
    Lineage,
    answer_lineages,
    lineage_of_cq,
    lineage_of_sentence,
    lineage_of_ucq,
)
from ..logic.cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    parse_cq,
    parse_ucq,
)
from ..logic.formulas import Formula
from ..logic.parser import ParseError, parse_sentence
from ..logic.terms import Var
from ..plans.plan import execute_boolean, project_boolean
from ..plans.safe_plan import UnsafePlanError, safe_plan
from ..sanitize import check_probability
from ..wmc.dpll import DPLLCounter
from ..wmc.karp_luby import karp_luby
from ..wmc.sampling import monte_carlo_wmc
from .tid import TupleIndependentDatabase

Query = Union[str, Formula, ConjunctiveQuery, UnionOfConjunctiveQueries]
LineageFactory = Callable[[object], Lineage]


class Method(Enum):
    """Inference routes, best first."""

    LIFTED = "lifted"
    SAFE_PLAN = "safe-plan"
    DPLL = "dpll"
    KARP_LUBY = "karp-luby"
    MONTE_CARLO = "monte-carlo"
    BRUTE_FORCE = "brute-force"
    AUTO = "auto"


@dataclass
class QueryAnswer:
    """A probability plus how it was obtained."""

    probability: float
    method: Method
    exact: bool
    detail: str = ""
    lifted_trace: tuple[RuleApplication, ...] = ()
    stats: Optional[QueryStats] = None

    def __float__(self) -> float:
        return self.probability


#: Valid values for :attr:`ProbabilisticDatabase.backend`.
BACKENDS = ("auto", "rows", "columnar")


@dataclass
class ProbabilisticDatabase:
    """A TID plus every inference engine of the library.

    *backend* selects the extensional (safe-plan) execution engine:
    ``"rows"`` is the tuple-at-a-time reference implementation,
    ``"columnar"`` the numpy-vectorized one
    (:mod:`repro.plans.vectorized`), and ``"auto"`` (default) picks
    columnar once the database holds at least
    :data:`~repro.plans.vectorized.COLUMNAR_AUTO_THRESHOLD` facts and numpy
    is importable. Both backends return the same probabilities to within
    1e-9 (differentially tested); the choice is purely about speed.
    """

    tid: TupleIndependentDatabase = field(default_factory=TupleIndependentDatabase)
    exact_lineage_limit: int = 40
    mc_epsilon: float = 0.02
    mc_delta: float = 0.05
    seed: Optional[int] = None
    backend: str = "auto"

    # -- data definition -----------------------------------------------------

    def add_relation(self, name: str, attributes: Sequence[str]):
        return self.tid.add_relation(name, attributes)

    def add_fact(self, name: str, values: Iterable, probability: float = 1.0) -> None:
        self.tid.add_fact(name, values, probability)

    def set_domain(self, domain: Iterable) -> None:
        self.tid.explicit_domain = frozenset(domain)

    @property
    def domain(self) -> tuple:
        return self.tid.domain()

    # -- query parsing ---------------------------------------------------------

    @staticmethod
    def parse_query(query: Query) -> Formula | ConjunctiveQuery | UnionOfConjunctiveQueries:
        """Accept FO syntax, CQ shorthand ("R(x), S(x,y)") or UCQ shorthand."""
        if not isinstance(query, str):
            return query
        text = query.strip()
        try:
            return parse_sentence(text)
        except ParseError:
            pass
        if "|" in text:
            return parse_ucq(text)
        return parse_cq(text)

    def rng(self) -> random.Random:
        """A fresh generator for the approximate routes.

        Seeded from ``self.seed`` so that, with a seed set, every evaluation
        of the same query draws the same sample stream and the Karp–Luby /
        Monte Carlo estimates are reproducible.
        """
        return random.Random(self.seed)

    # -- inference routes ---------------------------------------------------------

    def probability(
        self,
        query: Query,
        method: Method = Method.AUTO,
        *,
        stats: Optional[QueryStats] = None,
        lineage_factory: Optional[LineageFactory] = None,
    ) -> QueryAnswer:
        """Evaluate a Boolean query; see the module docstring for routing.

        *stats*, when given, accumulates stage timings into an existing
        record (the engine session passes one that already holds cache
        lookup time); otherwise a fresh one is created. *lineage_factory*
        overrides how routes obtain the grounded lineage — the session uses
        it to serve lineages from its content-addressed cache.
        """
        stats = stats if stats is not None else QueryStats()
        with stats.stage("parse"):
            parsed = self.parse_query(query)
        if isinstance(parsed, Formula) and parsed.free_variables():
            raise ValueError(
                "probability() takes Boolean queries; use answers() for "
                "queries with free variables"
            )
        answer = self._dispatch(
            parsed, method, stats=stats, lineage_factory=lineage_factory
        )
        # Sanitizer (no-op unless REPRO_SANITIZE=1): every route must
        # return a probability.
        check_probability(
            answer.probability, context=f"route {answer.method.value}"
        )
        stats.route = answer.method.value
        answer.stats = stats
        return answer

    def _dispatch(
        self,
        parsed,
        method: Method,
        *,
        stats: Optional[QueryStats] = None,
        lineage_factory: Optional[LineageFactory] = None,
    ) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        if method is Method.AUTO:
            return self._auto(parsed, stats=stats, lineage_factory=lineage_factory)
        if method is Method.LIFTED:
            return self._lifted(parsed, stats=stats)
        if method is Method.SAFE_PLAN:
            return self._safe_plan(parsed, stats=stats)
        if method is Method.DPLL:
            return self._dpll(parsed, stats=stats, lineage_factory=lineage_factory)
        if method is Method.KARP_LUBY:
            return self._karp_luby(
                parsed, stats=stats, lineage_factory=lineage_factory
            )
        if method is Method.MONTE_CARLO:
            return self._monte_carlo(
                parsed, stats=stats, lineage_factory=lineage_factory
            )
        if method is Method.BRUTE_FORCE:
            return self._brute(parsed, stats=stats)
        raise ValueError(f"unknown method {method}")

    def _auto(
        self,
        parsed,
        *,
        stats: Optional[QueryStats] = None,
        lineage_factory: Optional[LineageFactory] = None,
    ) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        try:
            return self._lifted(parsed, stats=stats)
        except (NonLiftableError, UnsupportedQueryError) as error:
            blocking = str(getattr(error, "subquery", "") or error)
        lineage = self._get_lineage(parsed, None, lineage_factory, stats)
        if lineage.variable_count <= self.exact_lineage_limit:
            answer = self._dpll(parsed, lineage, stats=stats)
            answer.detail += f" (lifted failed on: {blocking})"
            return answer
        try:
            answer = self._karp_luby(parsed, lineage, stats=stats)
            answer.detail += f" (lifted failed on: {blocking})"
            return answer
        except FormSizeExceeded:
            answer = self._monte_carlo(parsed, lineage, stats=stats)
            answer.detail += f" (lifted failed on: {blocking})"
            return answer

    def _lifted(self, parsed, *, stats: Optional[QueryStats] = None) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        with stats.stage("count"):
            if isinstance(parsed, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
                engine = LiftedEngine(self.tid, record_trace=True)
                probability = engine.probability(parsed)
                trace = tuple(engine.trace)
            else:
                probability = lifted_probability(parsed, self.tid)
                trace = ()
        return QueryAnswer(
            probability,
            Method.LIFTED,
            exact=True,
            detail="lifted inference (rules of Sec. 5)",
            lifted_trace=trace,
        )

    def plan_backend(self) -> str:
        """The extensional backend the safe-plan route will actually use."""
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        from ..plans import vectorized

        if self.backend == "columnar":
            if not vectorized.available():
                raise RuntimeError(
                    "backend='columnar' requires numpy, which is not importable"
                )
            return "columnar"
        if self.backend == "rows":
            return "rows"
        if (
            vectorized.available()
            and self.tid.fact_count() >= vectorized.COLUMNAR_AUTO_THRESHOLD
        ):
            return "columnar"
        return "rows"

    def _safe_plan(self, parsed, *, stats: Optional[QueryStats] = None) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        if not isinstance(parsed, ConjunctiveQuery):
            raise UnsafePlanError("safe plans apply to conjunctive queries")
        with stats.stage("compile"):
            plan = safe_plan(parsed, self.tid)
        backend = self.plan_backend()
        stats.backend = backend
        with stats.stage("count"):
            if backend == "columnar":
                from ..plans.vectorized import execute_boolean_columnar

                probability = execute_boolean_columnar(
                    project_boolean(plan), self.tid, profile=stats.operators
                )
            else:
                probability = execute_boolean(
                    project_boolean(plan), self.tid, profile=stats.operators
                )
        return QueryAnswer(
            probability,
            Method.SAFE_PLAN,
            exact=True,
            detail=f"safe plan ({backend} backend): {project_boolean(plan)}",
        )

    def _lineage(self, parsed) -> Lineage:
        if isinstance(parsed, ConjunctiveQuery):
            return lineage_of_cq(parsed, self.tid)
        if isinstance(parsed, UnionOfConjunctiveQueries):
            return lineage_of_ucq(parsed, self.tid)
        return lineage_of_sentence(parsed, self.tid)

    def _get_lineage(
        self,
        parsed,
        lineage: Optional[Lineage],
        factory: Optional[LineageFactory],
        stats: QueryStats,
    ) -> Lineage:
        if lineage is not None:
            return lineage
        with stats.stage("lineage"):
            return factory(parsed) if factory is not None else self._lineage(parsed)

    def _dpll(
        self,
        parsed,
        lineage: Optional[Lineage] = None,
        *,
        stats: Optional[QueryStats] = None,
        lineage_factory: Optional[LineageFactory] = None,
    ) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        lineage = self._get_lineage(parsed, lineage, lineage_factory, stats)
        counter = DPLLCounter()
        with stats.stage("count"):
            result = counter.run(lineage.expr, lineage.probabilities())
        stats.counters.update(
            kernel_unique_nodes=result.statistics.kernel_unique_nodes,
            kernel_intern_hits=result.statistics.kernel_intern_hits,
            cofactor_memo_hits=result.statistics.cofactor_memo_hits,
            cofactor_memo_misses=result.statistics.cofactor_memo_misses,
        )
        return QueryAnswer(
            result.probability,
            Method.DPLL,
            exact=True,
            detail=(
                f"grounded: {lineage.variable_count} lineage variables, "
                f"{result.statistics.shannon_expansions} Shannon expansions, "
                f"{result.statistics.cache_hits} cache hits, "
                f"{result.statistics.cofactor_memo_hits} cofactor-memo hits"
            ),
        )

    def _karp_luby(
        self,
        parsed,
        lineage: Optional[Lineage] = None,
        *,
        stats: Optional[QueryStats] = None,
        lineage_factory: Optional[LineageFactory] = None,
    ) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        lineage = self._get_lineage(parsed, lineage, lineage_factory, stats)
        with stats.stage("compile"):
            clauses = to_dnf(lineage.expr)
        with stats.stage("count"):
            estimate = karp_luby(
                clauses,
                lineage.probabilities(),
                epsilon=self.mc_epsilon,
                delta=self.mc_delta,
                rng=self.rng(),
            )
        return QueryAnswer(
            estimate.estimate,
            Method.KARP_LUBY,
            exact=False,
            detail=(
                f"Karp–Luby FPRAS: {estimate.samples} samples, relative "
                f"error ≤ {estimate.epsilon} w.p. ≥ {1 - estimate.delta}"
            ),
        )

    def _monte_carlo(
        self,
        parsed,
        lineage: Optional[Lineage] = None,
        *,
        stats: Optional[QueryStats] = None,
        lineage_factory: Optional[LineageFactory] = None,
    ) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        lineage = self._get_lineage(parsed, lineage, lineage_factory, stats)
        with stats.stage("count"):
            estimate = monte_carlo_wmc(
                lineage.expr,
                lineage.probabilities(),
                epsilon=self.mc_epsilon,
                delta=self.mc_delta,
                rng=self.rng(),
            )
        return QueryAnswer(
            estimate.estimate,
            Method.MONTE_CARLO,
            exact=False,
            detail=(
                f"naive Monte Carlo: {estimate.samples} samples, additive "
                f"error ≤ {estimate.epsilon} w.p. ≥ {1 - estimate.delta}"
            ),
        )

    def _brute(self, parsed, *, stats: Optional[QueryStats] = None) -> QueryAnswer:
        stats = stats if stats is not None else QueryStats()
        if isinstance(parsed, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            sentence = parsed.to_formula()
        else:
            sentence = parsed
        with stats.stage("count"):
            probability = self.tid.brute_force_probability(sentence)
        return QueryAnswer(
            probability,
            Method.BRUTE_FORCE,
            exact=True,
            detail=f"possible-world enumeration ({self.tid.world_count()} worlds)",
        )

    # -- non-Boolean queries ---------------------------------------------------------

    def answers(
        self, query: Union[str, ConjunctiveQuery], head: Sequence[str | Var]
    ) -> dict[tuple, QueryAnswer]:
        """Per-answer probabilities for a CQ with output variables.

        Each answer tuple's marginal is computed from its own lineage with
        the exact DPLL counter (the "intensional semantics" route).
        """
        shared = QueryStats(route=Method.DPLL.value)
        with shared.stage("parse"):
            parsed = parse_cq(query) if isinstance(query, str) else query
        head_vars = tuple(Var(h) if isinstance(h, str) else h for h in head)
        missing = set(head_vars) - parsed.variables
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"head variables not in query: {names}")
        with shared.stage("lineage"):
            lineages, pool = answer_lineages(parsed, head_vars, self.tid)
        probabilities = pool.probability_map()
        counter = DPLLCounter()
        out: dict[tuple, QueryAnswer] = {}
        for values, expr in sorted(lineages.items(), key=lambda kv: repr(kv[0])):
            with shared.stage("count"):
                result = counter.run(expr, probabilities)
            out[values] = QueryAnswer(
                result.probability,
                Method.DPLL,
                exact=True,
                detail="per-answer lineage",
                stats=shared,
            )
        return out

    def tuple_posteriors(self, query: Query) -> dict[tuple, "object"]:
        """Posterior marginals P(t | Q) for every tuple in the lineage.

        Compiles the lineage into a decision-DNNF and differentiates it
        (one upward + one downward pass for all tuples at once). Returns
        ``{(relation, values): VariableReport}``; tuples outside the
        lineage are unaffected by the query and keep their prior.
        """
        from ..kc.differentiate import differentiate

        parsed = self.parse_query(query)
        lineage = self._lineage(parsed)
        probabilities = lineage.probabilities()
        from ..wmc.dpll import compile_decision_dnnf

        compiled = compile_decision_dnnf(lineage.expr, probabilities)
        reports = differentiate(compiled.circuit, probabilities)
        return {
            lineage.fact(index): report for index, report in reports.items()
        }

    def most_probable_world(self, query: Query) -> tuple[dict, float]:
        """The most likely database state in which the query is true.

        Compiles the lineage and runs a smoothed (max, ×) pass (MPE).
        Returns ``({(relation, values): present?}, probability)`` covering
        every tuple in the query's lineage; tuples outside the lineage are
        unconstrained.
        """
        from ..kc.mpe import most_probable_model
        from ..wmc.dpll import compile_decision_dnnf

        parsed = self.parse_query(query)
        lineage = self._lineage(parsed)
        probabilities = lineage.probabilities()
        compiled = compile_decision_dnnf(lineage.expr, probabilities)
        explanation = most_probable_model(compiled.circuit, probabilities)
        world = {
            lineage.fact(index): value
            for index, value in explanation.assignment.items()
        }
        return world, explanation.probability

    def explain(self, query: Query) -> str:
        """A human-readable account of how the query would be evaluated."""
        answer = self.probability(query)
        return explain_answer(query, answer)


def explain_answer(query: Query, answer: QueryAnswer) -> str:
    """Format a :class:`QueryAnswer` as the uniform ``explain()`` report.

    The same renderer serves every route and both the cold and cached
    paths, so ``--explain`` output has one shape engine-wide.
    """
    lines = [
        f"query method : {answer.method.value}",
        f"probability  : {answer.probability:.10g}",
        f"exact        : {answer.exact}",
        f"detail       : {answer.detail}",
    ]
    if answer.stats is not None:
        lines.append(f"cache hit    : {answer.stats.cache_hit}")
        lines.append(f"stage times  : {answer.stats.summary()}")
        if answer.stats.backend:
            lines.append(f"backend      : {answer.stats.backend}")
        for operator_line in answer.stats.operator_summary():
            lines.append(f"  {operator_line}")
        if answer.stats.counters:
            lines.append(f"kernel       : {answer.stats.counter_summary()}")
    for step in answer.lifted_trace:
        lines.append(f"  {step}")
    return "\n".join(lines)
