"""Tuple-independent databases (TIDs) — the paper's central data model.

A TID assigns every possible tuple an independent marginal probability
(Sec. 2). We store only the tuples with non-zero probability, as relations
with a probability column; every unlisted tuple implicitly has probability 0.

This module also provides the reference *possible worlds* semantics: worlds
are subsets of the stored tuples, with the product probability of Eq. (3).
Enumerating worlds is exponential and only used as a ground-truth oracle on
small inputs.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..logic.formulas import Formula
from ..logic.semantics import Fact, satisfies
from ..logic.transform import COMPLEMENT_SUFFIX, polarity_map
from ..relational.relation import Relation


@dataclass
class TupleIndependentDatabase:
    """A TID: named relations, each row carrying a marginal probability."""

    relations: dict[str, Relation] = field(default_factory=dict)
    explicit_domain: Optional[frozenset] = None
    _version: int = field(default=0, init=False, repr=False, compare=False)
    _fingerprint_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- construction --------------------------------------------------------

    def add_relation(self, name: str, attributes: Sequence[str]) -> Relation:
        """Create (or return) a relation with the given attribute names."""
        if name in self.relations:
            existing = self.relations[name]
            if existing.attributes != tuple(attributes):
                raise ValueError(f"relation {name} exists with a different schema")
            return existing
        relation = Relation(name, tuple(attributes))
        self.relations[name] = relation
        self.touch()
        return relation

    def add_fact(self, name: str, values: Iterable, probability: float = 1.0) -> None:
        """Insert a tuple, creating the relation on first use.

        Inserting an already-present tuple follows the engine-wide
        duplicate-row policy of :meth:`repro.relational.relation.Relation.add`:
        the probabilities ⊕-combine. Use :meth:`set_fact` to overwrite.
        """
        values = tuple(values)
        if name not in self.relations:
            attributes = tuple(f"a{i}" for i in range(len(values)))
            self.add_relation(name, attributes)
        self.relations[name].add(values, probability)
        self.touch()

    def set_fact(self, name: str, values: Iterable, probability: float) -> None:
        """Set a tuple's marginal outright, replacing any stored value."""
        values = tuple(values)
        if name not in self.relations:
            attributes = tuple(f"a{i}" for i in range(len(values)))
            self.add_relation(name, attributes)
        self.relations[name].replace(values, probability)
        self.touch()

    @staticmethod
    def from_facts(
        facts: Mapping[str, Mapping[tuple, float]] | Iterable[tuple[str, tuple, float]],
        domain: Optional[Iterable] = None,
    ) -> "TupleIndependentDatabase":
        """Build a TID from ``{relation: {values: p}}`` or (name, values, p) triples."""
        db = TupleIndependentDatabase()
        if isinstance(facts, Mapping):
            for name, rows in facts.items():
                for values, prob in rows.items():
                    db.add_fact(name, values, prob)
        else:
            for name, values, prob in facts:
                db.add_fact(name, values, prob)
        if domain is not None:
            db.explicit_domain = frozenset(domain)
        return db

    # -- basic accessors ------------------------------------------------------

    def relation(self, name: str) -> Relation:
        return self.relations[name]

    def probability_of_fact(self, name: str, values: Iterable) -> float:
        """Marginal probability of a tuple; 0.0 when not stored."""
        relation = self.relations.get(name)
        return relation.probability(values) if relation else 0.0

    def facts(self) -> Iterator[tuple[str, tuple, float]]:
        """All stored (relation, values, probability) triples."""
        for name in sorted(self.relations):
            for values, prob in sorted(
                self.relations[name].items(), key=lambda kv: repr(kv[0])
            ):
                yield name, values, prob

    def fact_count(self) -> int:
        return sum(len(r) for r in self.relations.values())

    # -- change tracking / fingerprinting -------------------------------------

    @property
    def version(self) -> int:
        """A counter bumped by every mutation through the TID's own methods."""
        return self._version

    def touch(self) -> None:
        """Record an out-of-band mutation (e.g. a direct ``Relation.add``).

        Mutations performed through :meth:`add_relation` / :meth:`add_fact`
        call this automatically; code that reaches into ``tid.relations``
        and mutates a relation directly must call it by hand so that caches
        keyed on :meth:`fingerprint` notice the change.
        """
        self._version += 1

    def fingerprint(self) -> str:
        """A content hash of the database: facts, probabilities and domain.

        Two TIDs with the same stored tuples, probabilities and explicit
        domain share a fingerprint, even across :meth:`copy` — this is the
        content-addressed key used by :class:`repro.engine.EngineSession`
        to memoize lineage and query answers. The hash is recomputed only
        when :attr:`version` (or the explicit domain) changes, so repeated
        calls on an unchanged database are O(1).
        """
        key = (self._version, self.explicit_domain)
        if self._fingerprint_cache is None or self._fingerprint_cache[0] != key:
            digest = hashlib.blake2b(digest_size=16)
            for name, values, prob in self.facts():
                digest.update(repr((name, values, prob)).encode())
            if self.explicit_domain is not None:
                digest.update(b"|domain|")
                digest.update(repr(sorted(self.explicit_domain, key=repr)).encode())
            self._fingerprint_cache = (key, digest.hexdigest())
        return self._fingerprint_cache[1]

    def domain(self) -> tuple:
        """The active domain (or the explicit one when set), sorted."""
        if self.explicit_domain is not None:
            return tuple(sorted(self.explicit_domain, key=repr))
        values: set = set()
        for relation in self.relations.values():
            values.update(relation.active_domain())
        return tuple(sorted(values, key=repr))

    def copy(self) -> "TupleIndependentDatabase":
        return TupleIndependentDatabase(
            {name: rel.copy() for name, rel in self.relations.items()},
            self.explicit_domain,
        )

    # -- possible-worlds semantics (Sec. 2) ----------------------------------

    def possible_worlds(self) -> Iterator[tuple[frozenset[Fact], float]]:
        """Enumerate (world, probability) pairs; exponential, oracle only.

        Tuples with probability exactly 1 are included in every world, and
        probability-0 tuples never appear, keeping the enumeration as small
        as possible.
        """
        certain: list[Fact] = []
        uncertain: list[tuple[Fact, float]] = []
        for name, values, prob in self.facts():
            if prob >= 1.0:
                certain.append((name, values))
            elif prob > 0.0:
                uncertain.append(((name, values), prob))
        base = frozenset(certain)
        for bits in itertools.product((False, True), repeat=len(uncertain)):
            probability = 1.0
            members: list[Fact] = []
            for include, (fact, prob) in zip(bits, uncertain):
                if include:
                    probability *= prob
                    members.append(fact)
                else:
                    probability *= 1.0 - prob
            yield base | frozenset(members), probability

    def world_probability(self, world: Iterable[Fact]) -> float:
        """Eq. (3): the probability of one specific world."""
        world = frozenset(world)
        probability = 1.0
        for name, values, prob in self.facts():
            if (name, values) in world:
                probability *= prob
            else:
                probability *= 1.0 - prob
        if any(
            # Only an exactly-impossible fact zeroes a world's probability.
            self.probability_of_fact(name, values) == 0.0  # prodb-lint: exact
            for name, values in world
        ):
            return 0.0
        return probability

    def brute_force_probability(self, sentence: Formula) -> float:
        """Reference PQE by possible-world enumeration (Eq. 1)."""
        domain = self.domain()
        total = 0.0
        for world, probability in self.possible_worlds():
            if probability == 0.0:  # prodb-lint: exact -- skip impossible worlds
                continue
            if satisfies(world, domain, sentence):
                total += probability
        return total

    def marginal(self, name: str, values: Iterable) -> float:
        """Eq. (2): the marginal of a tuple (trivially its stored probability)."""
        return self.probability_of_fact(name, values)

    def sample_world(self, rng) -> frozenset[Fact]:
        """Draw one world from the TID distribution."""
        members = [
            (name, values)
            for name, values, prob in self.facts()
            if rng.random() < prob
        ]
        return frozenset(members)

    # -- transformations -------------------------------------------------------

    def with_complements(self, sentence: Formula) -> "TupleIndependentDatabase":
        """Add complement relations ``R__neg`` for negatively-occurring symbols.

        Implements the probability-preserving rewrite in the proof of
        Theorem 4.1: for each possible tuple ``t`` of a negated relation
        ``R``, the complement relation holds ``t`` with probability
        ``1 - p(t)``. Possible tuples range over the full cross product of
        the domain, because absent tuples (probability 0) have complement
        probability 1.
        """
        negative = {
            name for name, signs in polarity_map(sentence).items() if signs == {-1}
        }
        result = self.copy()
        domain = self.domain()
        arities = _predicate_arities(sentence)
        for name in sorted(negative):
            arity = arities[name]
            source = self.relations.get(name)
            complement = result.add_relation(
                name + COMPLEMENT_SUFFIX,
                tuple(f"a{i}" for i in range(arity)),
            )
            for values in itertools.product(domain, repeat=arity):
                p = source.probability(values) if source else 0.0
                if 1.0 - p > 0.0:
                    complement.add(values, 1.0 - p)
        return result

    def map_probabilities(self, fn) -> "TupleIndependentDatabase":
        """A copy with every tuple probability transformed by *fn*."""
        return TupleIndependentDatabase(
            {name: rel.map_probabilities(fn) for name, rel in self.relations.items()},
            self.explicit_domain,
        )

    def is_symmetric(self, domain_size: Optional[int] = None) -> bool:
        """Sec. 8: every *possible* tuple of a relation has equal probability.

        A stored database is symmetric only when each relation contains the
        full cross product of the domain with one shared probability.
        """
        domain = self.domain()
        n = len(domain) if domain_size is None else domain_size
        for relation in self.relations.values():
            expected = n ** relation.arity
            if len(relation) != expected:
                return False
            probs = set(relation.rows.values())
            if len(probs) > 1:
                return False
        return True

    def world_count(self) -> int:
        """Number of worlds with non-trivial probability (2^#uncertain)."""
        uncertain = sum(
            1 for _, _, p in self.facts() if 0.0 < p < 1.0
        )
        return 2 ** uncertain

    def log_world_count(self) -> float:
        return math.log2(self.world_count())

    def __str__(self) -> str:
        return "\n".join(str(rel) for _, rel in sorted(self.relations.items()))


def _predicate_arities(sentence: Formula) -> dict[str, int]:
    arities: dict[str, int] = {}
    for atom in sentence.atoms():
        existing = arities.setdefault(atom.predicate, atom.arity)
        if existing != atom.arity:
            raise ValueError(f"predicate {atom.predicate} used with two arities")
    return arities
