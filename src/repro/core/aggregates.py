"""Probabilistic aggregates over query answers.

Simple but practically important derived quantities:

* expected count of answers (linearity of expectation over per-answer
  marginals),
* count distribution / variance for a CQ's answer set (exact, from the
  per-answer lineages, when the answers' lineages are independent enough to
  enumerate — otherwise brute force over the joint lineage),
* top-k answers by marginal probability (the ranking primitive of
  probabilistic query processing).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..booleans.expr import BExpr, evaluate
from ..lineage.build import answer_lineages
from ..core.tid import TupleIndependentDatabase
from ..logic.cq import ConjunctiveQuery
from ..logic.terms import Var
from ..wmc.dpll import DPLLCounter

__all__ = [
    "CountDistribution",
    "answer_count_distribution",
    "expected_answer_count",
    "top_k_answers",
]


@dataclass(frozen=True)
class CountDistribution:
    """Exact distribution of the number of true answers."""

    probabilities: tuple[float, ...]  # index = count

    @property
    def expectation(self) -> float:
        return sum(k * p for k, p in enumerate(self.probabilities))

    @property
    def variance(self) -> float:
        mean = self.expectation
        second = sum(k * k * p for k, p in enumerate(self.probabilities))
        return second - mean * mean

    def cdf(self, k: int) -> float:
        return sum(self.probabilities[: k + 1])


def expected_answer_count(
    query: ConjunctiveQuery,
    head: Sequence[Var | str],
    db: TupleIndependentDatabase,
) -> float:
    """E[#answers] = Σ per-answer marginals (linearity of expectation)."""
    head_vars = tuple(Var(h) if isinstance(h, str) else h for h in head)
    lineages, pool = answer_lineages(query, head_vars, db)
    probabilities = pool.probability_map()
    counter = DPLLCounter()
    return sum(
        counter.run(expr, probabilities).probability
        for expr in lineages.values()
    )


def answer_count_distribution(
    query: ConjunctiveQuery,
    head: Sequence[Var | str],
    db: TupleIndependentDatabase,
    max_variables: int = 22,
) -> CountDistribution:
    """The exact distribution of the answer count.

    Enumerates assignments over the union of the answers' lineage variables;
    guarded by *max_variables* because this is exponential.
    """
    head_vars = tuple(Var(h) if isinstance(h, str) else h for h in head)
    lineages, pool = answer_lineages(query, head_vars, db)
    exprs: list[BExpr] = list(lineages.values())
    variables = sorted(set().union(*(e.variables() for e in exprs)) if exprs else set())
    if len(variables) > max_variables:
        raise ValueError(
            f"{len(variables)} lineage variables exceed the exact limit "
            f"{max_variables}"
        )
    probability_of = pool.probability_map()
    counts = [0.0] * (len(exprs) + 1)
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        weight = 1.0
        for var, value in assignment.items():
            p = probability_of[var]
            weight *= p if value else 1.0 - p
        true_answers = sum(1 for e in exprs if evaluate(e, assignment))
        counts[true_answers] += weight
    return CountDistribution(tuple(counts))


def top_k_answers(
    query: ConjunctiveQuery,
    head: Sequence[Var | str],
    db: TupleIndependentDatabase,
    k: int,
) -> list[tuple[tuple, float]]:
    """The k most probable answers, sorted by decreasing marginal."""
    head_vars = tuple(Var(h) if isinstance(h, str) else h for h in head)
    lineages, pool = answer_lineages(query, head_vars, db)
    probabilities = pool.probability_map()
    counter = DPLLCounter()
    scored = [
        (values, counter.run(expr, probabilities).probability)
        for values, expr in lineages.items()
    ]
    scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return scored[:k]
