"""Most-probable-explanation (MPE) over compiled lineage circuits.

On a decision-DNNF, replacing the (+, ×) semiring of weighted model
counting with (max, ×) computes the *most probable world satisfying the
query* in one bottom-up pass — the classic MPE/MAP trick of knowledge
compilation.

One subtlety (smoothing): when a decision node's two branches mention
different variable sets, comparing their raw products is wrong — a branch
that never tests X implicitly gets X's *mode* probability, while a branch
that fixes X pays its chosen value. The maximization below normalizes every
comparison to the union scope by multiplying in the mode probabilities of
the missing variables, which is exactly what circuit smoothing would do.

Typical use: "what is the single most likely database state in which the
risk query is true?" — the explanation companion to
:mod:`repro.kc.differentiate`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Optional

from .circuits import AndNode, Circuit, Decision, FALSE_LEAF, Literal, OrNode, TRUE_LEAF


@dataclass(frozen=True)
class Explanation:
    """The most probable satisfying world and its probability."""

    assignment: dict[int, bool]
    probability: float


def most_probable_model(
    circuit: Circuit,
    probabilities: Mapping[int, float],
    root: Optional[int] = None,
) -> Explanation:
    """MPE: argmax over worlds W ⊨ F of P(W), via a smoothed (max, ×) pass.

    Returns a *total* assignment over ``probabilities``' variables; raises
    ValueError when the circuit is unsatisfiable.
    """
    start = circuit.root if root is None else root
    scope_memo: dict[int, frozenset[int]] = {}

    def scope(node_id: int) -> frozenset[int]:
        return circuit._vars_below(node_id, scope_memo)

    def mode_product(variables: frozenset[int]) -> float:
        product = 1.0
        for var in variables:
            p = probabilities[var]
            product *= max(p, 1.0 - p)
        return product

    # best[node] = (max probability over the node's scope, partial assignment)
    best: dict[int, Optional[tuple[float, dict[int, bool]]]] = {
        TRUE_LEAF: (1.0, {}),
        FALSE_LEAF: None,
    }

    def solve(node_id: int) -> Optional[tuple[float, dict[int, bool]]]:
        if node_id in best:
            return best[node_id]
        node = circuit.nodes[node_id]
        result: Optional[tuple[float, dict[int, bool]]]
        if isinstance(node, Decision):
            p = probabilities[node.var]
            node_scope = scope(node_id) - {node.var}
            candidates = []
            lo = solve(node.lo)
            if lo is not None:
                fill = mode_product(node_scope - scope(node.lo))
                candidates.append(
                    ((1.0 - p) * lo[0] * fill, {**lo[1], node.var: False})
                )
            hi = solve(node.hi)
            if hi is not None:
                fill = mode_product(node_scope - scope(node.hi))
                candidates.append((p * hi[0] * fill, {**hi[1], node.var: True}))
            result = max(candidates, key=lambda c: c[0]) if candidates else None
        elif isinstance(node, AndNode):
            probability = 1.0
            combined: dict[int, bool] = {}
            result = (1.0, {})
            for child in node.children:
                sub = solve(child)
                if sub is None:
                    result = None
                    break
                probability *= sub[0]
                combined.update(sub[1])
            else:
                result = (probability, combined)
        elif isinstance(node, OrNode):
            node_scope = scope(node_id)
            candidates = []
            for child in node.children:
                sub = solve(child)
                if sub is None:
                    continue
                fill = mode_product(node_scope - scope(child))
                candidates.append((sub[0] * fill, sub[1]))
            result = max(candidates, key=lambda c: c[0]) if candidates else None
        elif isinstance(node, Literal):
            p = probabilities[node.var]
            value = node.positive
            result = (p if value else 1.0 - p, {node.var: value})
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node {node!r}")
        best[node_id] = result
        return result

    top = solve(start)
    if top is None:
        raise ValueError("circuit is unsatisfiable; no explanation exists")
    probability, partial = top
    assignment = dict(partial)
    root_scope = scope(start)
    for var, p in probabilities.items():
        if var not in assignment:
            choice = p >= 0.5
            assignment[var] = choice
            # variables inside the root scope that ended up unset were
            # mode-filled during the (max, ×) pass: their factor is already
            # part of `probability`; only out-of-scope variables still owe
            # their mode factor.
            if var not in root_scope:
                probability *= p if choice else 1.0 - p
    return Explanation(assignment, probability)


def top_k_models(
    circuit: Circuit,
    probabilities: Mapping[int, float],
    k: int,
    root: Optional[int] = None,
) -> list[Explanation]:
    """The *k* most probable satisfying worlds, best first (exact).

    Best-first branch-and-bound over total assignments: variables are
    fixed in order of decreasing decisiveness (|p − ½|), and a partial
    assignment's priority is the product of its chosen factors times the
    mode product of the unassigned rest — an admissible bound, since no
    completion can beat the per-variable mode. A partial assignment whose
    restricted circuit is already unsatisfiable is pruned. When a *total*
    assignment pops, its priority equals its exact probability and every
    queued state bounds its own completions from above, so emissions come
    out in non-increasing probability order — the A* argument for exact
    k-best enumeration.

    Zero-probability worlds are never emitted (a branch whose bound hits
    0.0 cannot contribute), so fewer than *k* explanations come back when
    the circuit has fewer positive-probability models. ``k < 1`` raises.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    start = circuit.root if root is None else root
    if start == FALSE_LEAF:
        return []
    order = sorted(probabilities, key=lambda v: -abs(probabilities[v] - 0.5))

    def satisfiable(assignment: dict[int, bool]) -> bool:
        """SAT of the circuit under a partial assignment, one O(|C|) pass."""
        memo: dict[int, bool] = {TRUE_LEAF: True, FALSE_LEAF: False}

        def walk(node_id: int) -> bool:
            cached = memo.get(node_id)
            if cached is not None:
                return cached
            node = circuit.nodes[node_id]
            if isinstance(node, Decision):
                fixed = assignment.get(node.var)
                if fixed is None:
                    result = walk(node.lo) or walk(node.hi)
                else:
                    result = walk(node.hi) if fixed else walk(node.lo)
            elif isinstance(node, AndNode):
                result = all(walk(child) for child in node.children)
            elif isinstance(node, OrNode):
                result = any(walk(child) for child in node.children)
            elif isinstance(node, Literal):
                fixed = assignment.get(node.var)
                result = fixed is None or fixed == node.positive
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node {node!r}")
            memo[node_id] = result
            return result

        return walk(start)

    # Suffix mode products: bound contribution of variables order[i:].
    suffix = [1.0] * (len(order) + 1)
    for i in range(len(order) - 1, -1, -1):
        p = probabilities[order[i]]
        suffix[i] = suffix[i + 1] * max(p, 1.0 - p)

    # Heap of (-bound, tiebreak, depth, chosen-product, assignment);
    # the tiebreak keeps the heap total-ordered without comparing dicts,
    # and carrying the chosen-product avoids dividing it back out of the
    # bound (no float drift against exact world probabilities).
    counter = 0
    heap: list[tuple[float, int, int, float, dict[int, bool]]] = []
    empty: dict[int, bool] = {}
    if satisfiable(empty):
        heap.append((-suffix[0], counter, 0, 1.0, empty))
    out: list[Explanation] = []
    while heap and len(out) < k:
        negbound, _, depth, chosen, assignment = heapq.heappop(heap)
        if depth == len(order):
            out.append(Explanation(dict(assignment), chosen))
            continue
        var = order[depth]
        p = probabilities[var]
        for value, factor in ((True, p), (False, 1.0 - p)):
            picked = chosen * factor
            bound = picked * suffix[depth + 1]
            if bound <= 0.0:
                continue
            child = dict(assignment)
            child[var] = value
            if not satisfiable(child):
                continue
            counter += 1
            heapq.heappush(heap, (-bound, counter, depth + 1, picked, child))
    return out
