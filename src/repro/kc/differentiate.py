"""Circuit differentiation: posterior tuple marginals and influence.

Once a query is compiled into a decision-DNNF (the DPLL trace), a single
upward + downward pass computes, for *every* variable simultaneously,

    P(F ∧ X) and P(F ∧ ¬X),

hence the posterior P(X | F) — "how likely is tuple t to be present given
that the query is true" — and the sensitivity ∂P(F)/∂p(X). This is
Darwiche's differential approach to inference, applied to lineage circuits;
it is what a probabilistic database needs for explanation and
responsibility analysis.

The downward pass propagates partial derivatives: for a node n with parent
contributions δ(n) (= ∂P(F)/∂P(n)),

* decision node m on X with children (lo, hi):
  δ(lo) += δ(m)·(1−p(X)),  δ(hi) += δ(m)·p(X), and m contributes
  δ(m)·value(hi) to ∂P(F)/∂p(X) (times +1) and δ(m)·value(lo) (times −1);
* ∧ node: δ(child) += δ(m)·Π value(other children).

Variables never tested on a true path are independent of F: their posterior
equals their prior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .circuits import AndNode, Circuit, Decision, FALSE_LEAF, Literal, OrNode, TRUE_LEAF


@dataclass(frozen=True)
class VariableReport:
    """Differentiation output for one variable."""

    prior: float
    posterior: float
    derivative: float  # ∂P(F)/∂p(X)

    @property
    def influence(self) -> float:
        """|derivative|: how much this tuple's probability moves P(F)."""
        return abs(self.derivative)


def differentiate(
    circuit: Circuit,
    probabilities: Mapping[int, float],
    root: Optional[int] = None,
) -> dict[int, VariableReport]:
    """Posterior marginals P(X|F) and derivatives for every variable.

    The circuit must satisfy the decision-DNNF / d-DNNF invariants (as
    produced by :func:`repro.wmc.dpll.compile_decision_dnnf`). Raises
    ZeroDivisionError when P(F) = 0 (posteriors undefined).
    """
    start = circuit.root if root is None else root

    # upward pass: value(n) = probability of the sub-circuit
    order = _topological(circuit, start)
    value: dict[int, float] = {TRUE_LEAF: 1.0, FALSE_LEAF: 0.0}
    for node_id in order:
        node = circuit.nodes[node_id]
        if isinstance(node, Decision):
            p = probabilities[node.var]
            value[node_id] = (1.0 - p) * value[node.lo] + p * value[node.hi]
        elif isinstance(node, AndNode):
            product = 1.0
            for child in node.children:
                product *= value[child]
            value[node_id] = product
        elif isinstance(node, OrNode):
            value[node_id] = sum(value[child] for child in node.children)
        elif isinstance(node, Literal):
            p = probabilities[node.var]
            value[node_id] = p if node.positive else 1.0 - p
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node {node!r}")

    total = value.get(start, 1.0 if start == TRUE_LEAF else 0.0)
    if total == 0.0:  # prodb-lint: exact -- division guard
        raise ZeroDivisionError("P(F) = 0: posteriors are undefined")

    # downward pass: delta(n) = ∂P(F)/∂value(n)
    delta: dict[int, float] = {node_id: 0.0 for node_id in order}
    delta[start] = 1.0
    joint_true: dict[int, float] = {}
    derivative: dict[int, float] = {}

    for node_id in reversed(order):
        node = circuit.nodes[node_id]
        d = delta.get(node_id, 0.0)
        # Skipping only exactly-zero deltas is sound (no tolerance wanted).
        if d == 0.0 and not isinstance(node, (Decision, Literal)):  # prodb-lint: exact
            continue
        if isinstance(node, Decision):
            p = probabilities[node.var]
            if node.lo not in (FALSE_LEAF, TRUE_LEAF):
                delta[node.lo] = delta.get(node.lo, 0.0) + d * (1.0 - p)
            if node.hi not in (FALSE_LEAF, TRUE_LEAF):
                delta[node.hi] = delta.get(node.hi, 0.0) + d * p
            joint_true[node.var] = (
                joint_true.get(node.var, 0.0) + d * p * value[node.hi]
            )
            derivative[node.var] = (
                derivative.get(node.var, 0.0)
                + d * (value[node.hi] - value[node.lo])
            )
        elif isinstance(node, AndNode):
            for child in node.children:
                if child in (FALSE_LEAF, TRUE_LEAF):
                    continue
                product = d
                for other in node.children:
                    if other != child:
                        product *= value[other]
                delta[child] = delta.get(child, 0.0) + product
        elif isinstance(node, OrNode):
            for child in node.children:
                if child not in (FALSE_LEAF, TRUE_LEAF):
                    delta[child] = delta.get(child, 0.0) + d
        elif isinstance(node, Literal):
            p = probabilities[node.var]
            if node.positive:
                joint_true[node.var] = joint_true.get(node.var, 0.0) + d * p
                derivative[node.var] = derivative.get(node.var, 0.0) + d
            else:
                derivative[node.var] = derivative.get(node.var, 0.0) - d

    reports: dict[int, VariableReport] = {}
    tested = set(joint_true) | set(derivative)
    for var, p in probabilities.items():
        if var in tested:
            joint = joint_true.get(var, 0.0)
            # variables only partially tested: paths that never test X keep
            # it at its prior — account for the untested mass.
            untested_mass = total - _tested_mass(var, joint, derivative, p, total)
            posterior = (joint + max(untested_mass, 0.0) * p) / total
            reports[var] = VariableReport(
                prior=p,
                posterior=posterior,
                derivative=derivative.get(var, 0.0),
            )
        else:
            reports[var] = VariableReport(prior=p, posterior=p, derivative=0.0)
    return reports


def _tested_mass(
    var: int,
    joint: float,
    derivative: Mapping[int, float],
    p: float,
    total: float,
) -> float:
    """P(F restricted to paths that test *var*).

    On those paths P = P(F ∧ X) + P(F ∧ ¬X); P(F ∧ ¬X) on tested paths is
    joint_false = joint − p·∂ over... Derived algebraically: the tested
    portion satisfies tested = joint + joint_false where
    joint_false = (joint/p − ∂)·(1−p) when p > 0, using
    ∂ = value(hi) − value(lo) aggregated. For p ∈ {0, 1} fall back to the
    tested-joint directly.
    """
    d = derivative.get(var, 0.0)
    if p <= 0.0:
        return joint - d * p + 0.0  # joint = 0 here; tested mass = joint_false
    high_mass = joint / p  # Σ δ·value(hi) over testing nodes
    low_mass = high_mass - d  # Σ δ·value(lo)
    return p * high_mass + (1.0 - p) * low_mass


def _topological(circuit: Circuit, root: int) -> list[int]:
    """Children-before-parents order of internal nodes reachable from root."""
    seen: set[int] = set()
    order: list[int] = []

    def visit(node_id: int) -> None:
        if node_id in seen or node_id in (FALSE_LEAF, TRUE_LEAF):
            return
        seen.add(node_id)
        for child in circuit._children(node_id):
            visit(child)
        order.append(node_id)

    visit(root)
    return order
