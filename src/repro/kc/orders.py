"""Variable orders for OBDD compilation of query lineages.

Theorem 7.1(i) (following Olteanu–Huang [61] and Jha–Suciu [46]): the lineage
of a *hierarchical* self-join-free CQ admits a linear-size OBDD — under the
order that walks the domain block-by-block along the query's hierarchy. This
module derives that order from the query, plus a deliberately bad
"predicate-major" order used as the ablation baseline (reading all R-tuples
before any S-tuple forces the diagram to remember exponentially much state).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..booleans.expr import BExpr
from ..lineage.build import Lineage
from ..logic.cq import ConjunctiveQuery
from ..logic.terms import Var


def hierarchy_variable_ranking(query: ConjunctiveQuery) -> list[Var]:
    """Query variables sorted ancestors-first along the hierarchy.

    In a hierarchical query ``at(x) ⊇ at(y)`` means *x* sits above *y*;
    sorting by decreasing ``|at(v)|`` therefore lists every ancestor before
    its descendants (ties broken by name for determinism).
    """
    return sorted(query.variables, key=lambda v: (-len(query.at(v)), v.name))


def hierarchical_order(query: ConjunctiveQuery, lineage: Lineage) -> list[int]:
    """The linear-size OBDD order for a hierarchical self-join-free CQ.

    Lineage variables (facts) are sorted lexicographically by the domain
    values they assign to the ranked query variables; facts whose atom does
    not mention a ranked variable sort *before* any concrete value at that
    position. The result groups facts into nested blocks: all facts for
    root value ``a`` together, inside them all facts for the next-level
    value ``b``, and so on — exactly the traversal of [61].
    """
    if query.has_self_joins():
        raise ValueError("hierarchical order requires a self-join-free query")
    if not query.is_hierarchical():
        raise ValueError("query is not hierarchical")
    ranking = hierarchy_variable_ranking(query)
    atom_of_predicate = {atom.predicate: atom for atom in query.atoms}

    def sort_key(var_index: int) -> tuple:
        predicate, values = lineage.fact(var_index)
        atom = atom_of_predicate.get(predicate)
        key = []
        for qvar in ranking:
            if atom is not None and qvar in atom.free_variables():
                position = next(
                    i for i, t in enumerate(atom.args) if t == qvar
                )
                key.append((1, repr(values[position])))
            else:
                key.append((0, ""))
        return tuple(key)

    return sorted(range(lineage.variable_count), key=sort_key)


def predicate_major_order(lineage: Lineage) -> list[int]:
    """The adversarial ablation order: group facts by relation name.

    For ``R(x), S(x,y)`` this reads every R-tuple before any S-tuple, which
    forces the OBDD to remember the entire subset of true R-tuples —
    exponential width even though the query is hierarchical.
    """
    return sorted(
        range(lineage.variable_count),
        key=lambda i: (lineage.fact(i)[0], repr(lineage.fact(i)[1])),
    )


def order_from_facts(lineage: Lineage, key: Callable) -> list[int]:
    """Order lineage variables by an arbitrary fact key function."""
    return sorted(range(lineage.variable_count), key=lambda i: key(lineage.fact(i)))


def exhaustive_minimum_size(expr: BExpr, variables: Sequence[int]) -> int:
    """Minimum OBDD size over *all* orders (factorially expensive).

    Only usable for a handful of variables; it certifies the "every OBDD is
    large" direction of Theorem 7.1(i)(b) on small instances.
    """
    import itertools

    from .obdd import compile_obdd

    best = None
    for order in itertools.permutations(variables):
        manager, root = compile_obdd(expr, order)
        size = manager.size(root)
        if best is None or size < best:
            best = size
    if best is None:
        raise ValueError("no variables supplied")
    return best
