"""Knowledge compilation: circuits (FBDD / decision-DNNF / d-DNNF) and OBDDs."""

from .circuits import (
    AndNode,
    Circuit,
    Decision,
    FALSE_LEAF,
    Literal,
    OrNode,
    TRUE_LEAF,
)
from .obdd import FALSE_NODE, OBDD, TRUE_NODE, best_obdd_size, compile_obdd
from .orders import (
    exhaustive_minimum_size,
    hierarchical_order,
    hierarchy_variable_ranking,
    order_from_facts,
    predicate_major_order,
)
from .fig2 import (
    fig2a_fbdd,
    fig2a_formula,
    fig2b_decision_dnnf,
    fig2b_formula,
)
from .differentiate import VariableReport, differentiate
from .mpe import Explanation, most_probable_model

__all__ = [
    "AndNode",
    "Circuit",
    "Decision",
    "FALSE_LEAF",
    "Literal",
    "OrNode",
    "TRUE_LEAF",
    "FALSE_NODE",
    "OBDD",
    "TRUE_NODE",
    "best_obdd_size",
    "compile_obdd",
    "exhaustive_minimum_size",
    "hierarchical_order",
    "hierarchy_variable_ranking",
    "order_from_facts",
    "predicate_major_order",
    "fig2a_fbdd",
    "fig2a_formula",
    "fig2b_decision_dnnf",
    "fig2b_formula",
    "VariableReport",
    "differentiate",
    "Explanation",
    "most_probable_model",
]
