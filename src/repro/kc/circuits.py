"""Knowledge-compilation circuits: FBDD, decision-DNNF and d-DNNF nodes.

The node types follow Sec. 7 of the paper:

* a *decision node* tests a Boolean variable and branches (the building block
  of FBDDs and OBDDs);
* an *independent-∧* node conjoins children over disjoint variable sets
  (decision-DNNF = FBDD + independent-∧);
* a *disjoint-∨* node disjoins children that are mutually exclusive events
  (d-DNNF); negation leaves complete the d-DNNF language.

Circuits are DAGs stored in a :class:`Circuit` arena; node ids are ints.
Weighted model counting over a valid circuit is a single bottom-up pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

FALSE_LEAF = 0
TRUE_LEAF = 1


@dataclass(frozen=True, slots=True)
class Decision:
    """Test ``var``; take ``lo`` when false, ``hi`` when true."""

    var: int
    lo: int
    hi: int


@dataclass(frozen=True, slots=True)
class AndNode:
    """Independent-∧: children must have pairwise disjoint variable sets."""

    children: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class OrNode:
    """Disjoint-∨: children must be pairwise inconsistent (d-DNNF only)."""

    children: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Literal:
    """A variable leaf (possibly negated) for d-DNNF circuits."""

    var: int
    positive: bool


Node = Decision | AndNode | OrNode | Literal


@dataclass
class Circuit:
    """A circuit arena. Ids 0/1 are the false/true leaves."""

    nodes: list[Optional[Node]] = field(default_factory=lambda: [None, None])
    root: int = TRUE_LEAF
    _unique: dict[tuple, int] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def _intern(self, key: tuple, node: Node) -> int:
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        self.nodes.append(node)
        index = len(self.nodes) - 1
        self._unique[key] = index
        return index

    def decision(self, var: int, lo: int, hi: int) -> int:
        """Add (or reuse) a decision node; collapses lo == hi."""
        if lo == hi:
            return lo
        return self._intern(("d", var, lo, hi), Decision(var, lo, hi))

    def conjoin(self, children: Iterable[int]) -> int:
        """Add an independent-∧ node with unit simplification."""
        kids = []
        for child in children:
            if child == FALSE_LEAF:
                return FALSE_LEAF
            if child == TRUE_LEAF:
                continue
            kids.append(child)
        if not kids:
            return TRUE_LEAF
        if len(kids) == 1:
            return kids[0]
        ordered = tuple(sorted(kids))
        return self._intern(("a", ordered), AndNode(ordered))

    def disjoin(self, children: Iterable[int]) -> int:
        """Add a disjoint-∨ node with unit simplification."""
        kids = []
        for child in children:
            if child == TRUE_LEAF:
                return TRUE_LEAF
            if child == FALSE_LEAF:
                continue
            kids.append(child)
        if not kids:
            return FALSE_LEAF
        if len(kids) == 1:
            return kids[0]
        ordered = tuple(sorted(kids))
        return self._intern(("o", ordered), OrNode(ordered))

    def literal(self, var: int, positive: bool = True) -> int:
        return self._intern(("l", var, positive), Literal(var, positive))

    # -- structure ----------------------------------------------------------

    def reachable(self, root: Optional[int] = None) -> list[int]:
        """Ids of nodes reachable from the root (leaves excluded)."""
        start = self.root if root is None else root
        seen: set[int] = set()
        stack = [start]
        order: list[int] = []
        while stack:
            node_id = stack.pop()
            if node_id in seen or node_id in (FALSE_LEAF, TRUE_LEAF):
                continue
            seen.add(node_id)
            order.append(node_id)
            stack.extend(self._children(node_id))
        return order

    def _children(self, node_id: int) -> tuple[int, ...]:
        node = self.nodes[node_id]
        if isinstance(node, Decision):
            return (node.lo, node.hi)
        if isinstance(node, (AndNode, OrNode)):
            return node.children
        return ()

    def size(self, root: Optional[int] = None) -> int:
        """Number of internal nodes reachable from the root."""
        return len(self.reachable(root))

    def edge_count(self, root: Optional[int] = None) -> int:
        return sum(len(self._children(i)) for i in self.reachable(root))

    def variables(self, root: Optional[int] = None) -> frozenset[int]:
        out: set[int] = set()
        for node_id in self.reachable(root):
            node = self.nodes[node_id]
            if isinstance(node, Decision):
                out.add(node.var)
            elif isinstance(node, Literal):
                out.add(node.var)
        return frozenset(out)

    def _vars_below(self, root: int, memo: dict[int, frozenset[int]]) -> frozenset[int]:
        if root in (FALSE_LEAF, TRUE_LEAF):
            return frozenset()
        cached = memo.get(root)
        if cached is not None:
            return cached
        node = self.nodes[root]
        if isinstance(node, Literal):
            result = frozenset({node.var})
        elif isinstance(node, Decision):
            result = (
                frozenset({node.var})
                | self._vars_below(node.lo, memo)
                | self._vars_below(node.hi, memo)
            )
        else:
            result = frozenset().union(
                *(self._vars_below(c, memo) for c in node.children)
            )
        memo[root] = result
        return result

    # -- semantics ----------------------------------------------------------

    def evaluate(self, assignment: Mapping[int, bool], root: Optional[int] = None) -> bool:
        """Evaluate the circuit under a total assignment."""
        start = self.root if root is None else root
        memo: dict[int, bool] = {}

        def walk(node_id: int) -> bool:
            if node_id == TRUE_LEAF:
                return True
            if node_id == FALSE_LEAF:
                return False
            if node_id in memo:
                return memo[node_id]
            node = self.nodes[node_id]
            if isinstance(node, Decision):
                result = walk(node.hi if assignment[node.var] else node.lo)
            elif isinstance(node, AndNode):
                result = all(walk(c) for c in node.children)
            elif isinstance(node, OrNode):
                result = any(walk(c) for c in node.children)
            elif isinstance(node, Literal):
                result = assignment[node.var] == node.positive
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node {node!r}")
            memo[node_id] = result
            return result

        return walk(start)

    def wmc(self, probabilities: Mapping[int, float], root: Optional[int] = None) -> float:
        """Weighted model count, one bottom-up pass.

        Correct when the circuit satisfies the decision-DNNF / d-DNNF
        invariants (independent ∧, disjoint ∨). The result is the
        probability that the circuit evaluates true when each variable *v*
        is independently true with probability ``probabilities[v]``.
        Variables not tested on a path marginalize out automatically.
        """
        start = self.root if root is None else root
        memo: dict[int, float] = {}

        def walk(node_id: int) -> float:
            if node_id == TRUE_LEAF:
                return 1.0
            if node_id == FALSE_LEAF:
                return 0.0
            cached = memo.get(node_id)
            if cached is not None:
                return cached
            node = self.nodes[node_id]
            if isinstance(node, Decision):
                p = probabilities[node.var]
                result = (1.0 - p) * walk(node.lo) + p * walk(node.hi)
            elif isinstance(node, AndNode):
                result = 1.0
                for child in node.children:
                    result *= walk(child)
            elif isinstance(node, OrNode):
                result = sum(walk(child) for child in node.children)
            elif isinstance(node, Literal):
                p = probabilities[node.var]
                result = p if node.positive else 1.0 - p
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node {node!r}")
            memo[node_id] = result
            return result

        return walk(start)

    def model_count(self, variables: Iterable[int], root: Optional[int] = None) -> float:
        """Unweighted model count over the given variable universe."""
        universe = list(variables)
        half = {v: 0.5 for v in universe}
        return self.wmc(half, root) * (2 ** len(universe))

    # -- validation ----------------------------------------------------------

    def check_fbdd(self, root: Optional[int] = None) -> bool:
        """True when no root→leaf path tests a variable twice (FBDD).

        Uses the sufficient (and for our constructions, necessary) check that
        a decision variable does not reappear below either branch.
        """
        start = self.root if root is None else root
        memo: dict[int, frozenset[int]] = {}
        for node_id in self.reachable(start):
            node = self.nodes[node_id]
            if isinstance(node, Decision):
                below = self._vars_below(node.lo, memo) | self._vars_below(
                    node.hi, memo
                )
                if node.var in below:
                    return False
        return True

    def check_decision_dnnf(self, root: Optional[int] = None) -> bool:
        """FBDD property plus: ∧-children have pairwise disjoint variables."""
        start = self.root if root is None else root
        if not self.check_fbdd(start):
            return False
        memo: dict[int, frozenset[int]] = {}
        for node_id in self.reachable(start):
            node = self.nodes[node_id]
            if isinstance(node, OrNode):
                return False  # decision-DNNFs have no free ∨ nodes
            if isinstance(node, AndNode):
                seen: set[int] = set()
                for child in node.children:
                    below = self._vars_below(child, memo)
                    if below & seen:
                        return False
                    seen.update(below)
        return True

    def check_d_dnnf(self, root: Optional[int] = None) -> bool:
        """d-DNNF validity: ∧ decomposable and ∨ deterministic.

        Determinism of ∨ nodes is verified *semantically* by enumerating
        assignments over the node's variables, so this check is only suitable
        for small circuits (tests, Fig. 2 reproductions).
        """
        start = self.root if root is None else root
        memo: dict[int, frozenset[int]] = {}
        for node_id in self.reachable(start):
            node = self.nodes[node_id]
            if isinstance(node, AndNode):
                seen: set[int] = set()
                for child in node.children:
                    below = self._vars_below(child, memo)
                    if below & seen:
                        return False
                    seen.update(below)
            elif isinstance(node, OrNode):
                variables = sorted(self._vars_below(node_id, memo))
                for bits in itertools.product((False, True), repeat=len(variables)):
                    assignment = dict(zip(variables, bits))
                    true_children = sum(
                        1
                        for child in node.children
                        if self.evaluate(assignment, child)
                    )
                    if true_children > 1:
                        return False
        return True
