"""The two example circuits of Figure 2 in the paper.

(a) An FBDD for ``(¬X)YZ ∨ XY ∨ XZ``: decide X first; on the 0-branch test
    Y then Z (both needed), on the 1-branch test Y and, if false, Z.

(b) A decision-DNNF for ``(¬X)YZU ∨ XYZ ∨ XZU``: the same shape, but the
    0-branch becomes an independent-∧ of the (disjoint) Y·Z and U parts and
    the 1-branch shares structure through the ∧ node.

Variable indices: X=0, Y=1, Z=2, U=3. Both constructions return the circuit
and its root so tests can verify semantics against the formulas.
"""

from __future__ import annotations

from ..booleans.expr import BExpr, band, bnot, bor, bvar
from .circuits import Circuit, FALSE_LEAF, TRUE_LEAF

X, Y, Z, U = 0, 1, 2, 3


def fig2a_formula() -> BExpr:
    """(¬X)YZ ∨ XY ∨ XZ."""
    x, y, z = bvar(X), bvar(Y), bvar(Z)
    return bor(band(bnot(x), y, z), band(x, y), band(x, z))


def fig2a_fbdd() -> tuple[Circuit, int]:
    """An FBDD computing :func:`fig2a_formula` (Fig. 2(a))."""
    circuit = Circuit()
    # X = 0 branch: need Y and Z.
    z_node = circuit.decision(Z, FALSE_LEAF, TRUE_LEAF)
    y_then_z = circuit.decision(Y, FALSE_LEAF, z_node)
    # X = 1 branch: Y suffices; otherwise Z decides.
    y_or_z = circuit.decision(Y, z_node, TRUE_LEAF)
    root = circuit.decision(X, y_then_z, y_or_z)
    circuit.root = root
    return circuit, root


def fig2b_formula() -> BExpr:
    """(¬X)YZU ∨ XYZ ∨ XZU."""
    x, y, z, u = bvar(X), bvar(Y), bvar(Z), bvar(U)
    return bor(band(bnot(x), y, z, u), band(x, y, z), band(x, z, u))


def fig2b_decision_dnnf() -> tuple[Circuit, int]:
    """A decision-DNNF computing :func:`fig2b_formula` (Fig. 2(b)).

    Both branches require Z; after deciding X the remaining formula factors:
    on X=0 into the independent parts Y, Z, U (all required), and on X=1
    into Z ∧ (Y ∨ U). The ∧ nodes are the decision-DNNF extension point.
    """
    circuit = Circuit()
    y_leaf = circuit.decision(Y, FALSE_LEAF, TRUE_LEAF)
    z_leaf = circuit.decision(Z, FALSE_LEAF, TRUE_LEAF)
    u_leaf = circuit.decision(U, FALSE_LEAF, TRUE_LEAF)
    # X = 0: Y ∧ Z ∧ U as one independent-∧ node.
    all_three = circuit.conjoin((y_leaf, z_leaf, u_leaf))
    # X = 1: Z ∧ (Y ∨ U); the disjunction is a decision on Y.
    y_or_u = circuit.decision(Y, u_leaf, TRUE_LEAF)
    z_and_rest = circuit.conjoin((z_leaf, y_or_u))
    root = circuit.decision(X, all_three, z_and_rest)
    circuit.root = root
    return circuit, root
