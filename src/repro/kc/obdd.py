"""A classic reduced Ordered Binary Decision Diagram (OBDD) package.

Nodes live in a manager with a fixed variable order; the unique table plus
the lo == hi collapse make every diagram *reduced*, so node counts are the
canonical sizes that Theorem 7.1(i) talks about: linear in the domain for
hierarchical self-join-free CQs under the right order, and ≥ (2ⁿ − 1)/n for
non-hierarchical ones under *every* order.

Construction from a Boolean expression uses the standard ``apply`` algorithm
with memoization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..booleans.expr import BAnd, BExpr, BFalse, BNot, BOr, BTrue, BVar
from ..sanitize import check_obdd

FALSE_NODE = 0
TRUE_NODE = 1


@dataclass
class OBDD:
    """An OBDD manager over a fixed variable order."""

    order: tuple[int, ...]
    _level_of: dict[int, int] = field(init=False, repr=False)
    # nodes[i] = (level, lo, hi); entries 0 and 1 are terminal placeholders.
    _nodes: list[tuple[int, int, int]] = field(init=False, repr=False)
    _unique: dict[tuple[int, int, int], int] = field(init=False, repr=False)
    _apply_cache: dict[tuple, int] = field(init=False, repr=False)
    _expr_cache: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.order = tuple(self.order)
        if len(set(self.order)) != len(self.order):
            raise ValueError("variable order contains duplicates")
        self._level_of = {v: i for i, v in enumerate(self.order)}
        terminal = (len(self.order), -1, -1)
        self._nodes = [terminal, terminal]
        self._unique = {}
        self._apply_cache = {}
        self._expr_cache = {}

    # -- node management ----------------------------------------------------

    def level_of(self, var: int) -> int:
        return self._level_of[var]

    def var_at(self, level: int) -> int:
        return self.order[level]

    def make(self, level: int, lo: int, hi: int) -> int:
        """The reduced node (level, lo, hi)."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        self._nodes.append(key)
        index = len(self._nodes) - 1
        self._unique[key] = index
        return index

    def variable(self, var: int) -> int:
        """The single-variable diagram for *var*."""
        return self.make(self._level_of[var], FALSE_NODE, TRUE_NODE)

    def node(self, index: int) -> tuple[int, int, int]:
        return self._nodes[index]

    def is_terminal(self, index: int) -> bool:
        return index in (FALSE_NODE, TRUE_NODE)

    # -- boolean operations ---------------------------------------------------

    def apply(self, op: Callable[[bool, bool], bool], f: int, g: int) -> int:
        """Shannon-style synchronized recursion over two diagrams."""
        name = getattr(op, "__name__", repr(op))
        cache_key = ("apply", name, f, g)
        cached = self._apply_cache.get(cache_key)
        if cached is not None:
            return cached
        if self.is_terminal(f) and self.is_terminal(g):
            result = TRUE_NODE if op(f == TRUE_NODE, g == TRUE_NODE) else FALSE_NODE
        else:
            f_level = self._nodes[f][0]
            g_level = self._nodes[g][0]
            level = min(f_level, g_level)
            f_lo, f_hi = (
                (self._nodes[f][1], self._nodes[f][2]) if f_level == level else (f, f)
            )
            g_lo, g_hi = (
                (self._nodes[g][1], self._nodes[g][2]) if g_level == level else (g, g)
            )
            result = self.make(
                level, self.apply(op, f_lo, g_lo), self.apply(op, f_hi, g_hi)
            )
        self._apply_cache[cache_key] = result
        return result

    def conjoin(self, f: int, g: int) -> int:
        return self.apply(_and, f, g)

    def disjoin(self, f: int, g: int) -> int:
        return self.apply(_or, f, g)

    def negate(self, f: int) -> int:
        cache_key = ("neg", f)
        cached = self._apply_cache.get(cache_key)
        if cached is not None:
            return cached
        if f == TRUE_NODE:
            result = FALSE_NODE
        elif f == FALSE_NODE:
            result = TRUE_NODE
        else:
            level, lo, hi = self._nodes[f]
            result = self.make(level, self.negate(lo), self.negate(hi))
        self._apply_cache[cache_key] = result
        return result

    def from_expr(self, expr: BExpr) -> int:
        """Compile a Boolean expression into a diagram root.

        Memoized by the expression's interned node id, so the shared
        literal/clause nodes of hash-consed DNF lineages compile once per
        manager instead of once per occurrence.
        """
        if isinstance(expr, BTrue):
            return TRUE_NODE
        if isinstance(expr, BFalse):
            return FALSE_NODE
        cached = self._expr_cache.get(expr.nid)
        if cached is not None:
            return cached
        if isinstance(expr, BVar):
            result = self.variable(expr.index)
        elif isinstance(expr, BNot):
            result = self.negate(self.from_expr(expr.sub))
        elif isinstance(expr, BAnd):
            result = TRUE_NODE
            for part in expr.parts:
                result = self.conjoin(result, self.from_expr(part))
                if result == FALSE_NODE:
                    break
        elif isinstance(expr, BOr):
            result = FALSE_NODE
            for part in expr.parts:
                result = self.disjoin(result, self.from_expr(part))
                if result == TRUE_NODE:
                    break
        else:
            raise TypeError(f"unknown node {expr!r}")
        self._expr_cache[expr.nid] = result
        return result

    # -- analysis -------------------------------------------------------------

    def reachable(self, root: int) -> list[int]:
        """Internal nodes reachable from *root*."""
        seen: set[int] = set()
        stack = [root]
        order: list[int] = []
        while stack:
            index = stack.pop()
            if index in seen or self.is_terminal(index):
                continue
            seen.add(index)
            order.append(index)
            _, lo, hi = self._nodes[index]
            stack.append(lo)
            stack.append(hi)
        return order

    def size(self, root: int) -> int:
        """Number of internal (decision) nodes reachable from *root*."""
        return len(self.reachable(root))

    def wmc(self, root: int, probabilities: Mapping[int, float]) -> float:
        """Weighted model count: the probability the diagram is true."""
        memo: dict[int, float] = {TRUE_NODE: 1.0, FALSE_NODE: 0.0}

        def walk(index: int) -> float:
            cached = memo.get(index)
            if cached is not None:
                return cached
            level, lo, hi = self._nodes[index]
            p = probabilities[self.order[level]]
            result = (1.0 - p) * walk(lo) + p * walk(hi)
            memo[index] = result
            return result

        return walk(root)

    def model_count(self, root: int) -> int:
        """Satisfying assignments over the manager's full variable universe."""
        half = {v: 0.5 for v in self.order}
        return round(self.wmc(root, half) * (2 ** len(self.order)))

    def evaluate(self, root: int, assignment: Mapping[int, bool]) -> bool:
        index = root
        while not self.is_terminal(index):
            level, lo, hi = self._nodes[index]
            index = hi if assignment[self.order[level]] else lo
        return index == TRUE_NODE


def _and(a: bool, b: bool) -> bool:
    return a and b


def _or(a: bool, b: bool) -> bool:
    return a or b


def compile_obdd(
    expr: BExpr, order: Optional[Sequence[int]] = None
) -> tuple[OBDD, int]:
    """Compile *expr* into a fresh manager; default order is by variable index."""
    variables = sorted(expr.variables())
    chosen = tuple(order) if order is not None else tuple(variables)
    missing = set(variables) - set(chosen)
    if missing:
        raise ValueError(f"order is missing variables: {sorted(missing)}")
    manager = OBDD(chosen)
    root = manager.from_expr(expr)
    # Sanitizer (no-op unless REPRO_SANITIZE=1): every edge must descend
    # strictly in the manager's variable order.
    check_obdd(manager, root)
    return manager, root


def best_obdd_size(expr: BExpr, orders: Sequence[Sequence[int]]) -> int:
    """The minimum OBDD size over a set of candidate orders."""
    best: Optional[int] = None
    for order in orders:
        _, root = (pair := compile_obdd(expr, order))
        size = pair[0].size(root)
        if best is None or size < best:
            best = size
    if best is None:
        raise ValueError("no orders supplied")
    return best
