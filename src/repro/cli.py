"""Command-line interface: ``python -m repro``.

Subcommands:

* ``query``     — load relations from CSV files and evaluate a Boolean query;
* ``batch``     — evaluate many queries through a caching ``EngineSession``;
* ``serve``     — serve queries over TCP/HTTP from one shared session;
* ``condition`` — condition on a constraint set Γ and explore the scenario;
* ``safety``    — decide the dichotomy side of a CQ/UCQ from syntax alone;
* ``demo``      — run the built-in Figure 1 demonstration.

Examples::

    python -m repro query data/R.csv data/S.csv -q "R(x), S(x,y)"
    python -m repro query data/*.csv -q "forall x. forall y. (S(x,y) -> R(x))"
    python -m repro query data/*.csv -q "R(x), S(x,y)" --stats --seed 7
    python -m repro query data/*.csv -q "R(2)" --scenario "+R(1); S(x,y), T(y)"
    python -m repro batch data/*.csv -q "R(x), S(x,y)" -q "T(y), S(x,y)" --stats
    python -m repro serve data/*.csv --port 7077 --deadline-ms 100 --stats
    python -m repro condition data/*.csv -c "+R(1); S(x,y), T(y)" -q "R(2)" \
        --force "R(2)=true" --top-k 3 --facts
    python -m repro safety -q "R(x), S(x,y), T(y)"
    python -m repro demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.pdb import Method, ProbabilisticDatabase
from .engine.session import EngineSession
from .lifted.safety import decide_safety
from .logic.cq import parse_cq, parse_ucq
from .relational.io import load_tid
from .workloads.generators import figure1_database


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="prodb: probabilistic database engine "
        "(reproduction of 'Probabilistic Databases for All', PODS 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="evaluate a Boolean query over CSV relations")
    query.add_argument("files", nargs="+", help="CSV files, one relation each")
    query.add_argument("-q", "--query", required=True, help="query text")
    query.add_argument(
        "-m",
        "--method",
        default="auto",
        choices=[m.value for m in Method],
        help="inference route (default: auto)",
    )
    query.add_argument(
        "--explain", action="store_true", help="print the derivation trace"
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage wall times (parse / lineage / compile / count) "
        "and, for grounded routes, Boolean-kernel counters",
    )
    query.add_argument(
        "--seed",
        type=int,
        default=None,
        help="RNG seed for the approximate routes (reproducible estimates)",
    )
    query.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "rows", "columnar"],
        help="extensional (safe-plan) executor: tuple-at-a-time rows, "
        "numpy columnar, or auto (columnar above a row-count threshold)",
    )
    query.add_argument(
        "--scenario",
        default=None,
        metavar="CONSTRAINTS",
        help="condition the answer on Γ: ';'-separated constraint specs "
        "(+R(1) assert, -R(1) deny, Q require, !Q forbid); prints P(Q|Γ)",
    )

    batch = sub.add_parser(
        "batch",
        help="evaluate many queries through a caching engine session",
    )
    batch.add_argument("files", nargs="+", help="CSV files, one relation each")
    batch.add_argument(
        "-q",
        "--query",
        action="append",
        required=True,
        dest="queries",
        help="query text (repeatable)",
    )
    batch.add_argument(
        "-m",
        "--method",
        default="auto",
        choices=[m.value for m in Method],
        help="inference route (default: auto)",
    )
    batch.add_argument(
        "--executor",
        default="thread",
        choices=["serial", "thread", "process"],
        help="batch execution strategy (default: thread)",
    )
    batch.add_argument(
        "--workers", type=int, default=None, help="worker count (default: auto)"
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="evaluate the query list N times (repeats hit the cache)",
    )
    batch.add_argument(
        "--cache-size", type=int, default=256, help="session cache entries"
    )
    batch.add_argument(
        "--stats", action="store_true", help="print the session report"
    )
    batch.add_argument(
        "--seed",
        type=int,
        default=None,
        help="RNG seed for the approximate routes (reproducible estimates)",
    )
    batch.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "rows", "columnar"],
        help="extensional (safe-plan) executor (answers cached per-backend)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve queries over TCP (NDJSON) and HTTP from one shared session",
    )
    serve.add_argument(
        "files",
        nargs="*",
        help="CSV files, one relation each (omit with --demo)",
    )
    serve.add_argument(
        "--demo",
        action="store_true",
        help="serve the built-in Figure 1 database instead of CSV files",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7077, help="bind port (0: pick a free one)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="evaluation workers (threads, or processes with --mode processes)",
    )
    serve.add_argument(
        "--mode",
        choices=("threads", "processes"),
        default="threads",
        help=(
            "evaluation backend: 'threads' shares one session; 'processes' "
            "publishes the database as shared-memory shards and routes to "
            "worker processes by consistent hashing"
        ),
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound: computations in flight before shedding load",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default degradation deadline per request (ladder falls back "
        "to bounds/sampling when exact inference will not fit)",
    )
    serve.add_argument(
        "--timeout-s",
        type=float,
        default=30.0,
        help="hard per-request timeout (default: 30)",
    )
    serve.add_argument(
        "--epsilon",
        type=float,
        default=0.2,
        help="default relative error for the sampled rung (default: 0.2)",
    )
    serve.add_argument(
        "--delta",
        type=float,
        default=0.05,
        help="default failure probability for the sampled rung (default: 0.05)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="RNG seed threaded into every sampling rung (reproducible serves)",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "rows", "columnar"],
        help="extensional (safe-plan) executor",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, help="session cache entries"
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable request coalescing and answer caching (benchmark baseline)",
    )
    serve.add_argument(
        "--no-restart-workers",
        action="store_true",
        help="do not respawn crashed worker processes (--mode processes)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="log a one-line traffic summary every --stats-interval seconds",
    )
    serve.add_argument(
        "--stats-interval",
        type=float,
        default=10.0,
        help="seconds between --stats log lines (default: 10)",
    )

    condition = sub.add_parser(
        "condition",
        help="condition on a constraint set and explore what-if scenarios",
    )
    condition.add_argument("files", nargs="+", help="CSV files, one relation each")
    condition.add_argument(
        "-c",
        "--constraints",
        required=True,
        help="';'-separated constraint specs: +R(1) asserts a fact, -R(1) "
        "denies it, a Boolean query requires it true, !Q forbids it",
    )
    condition.add_argument(
        "-q",
        "--query",
        action="append",
        dest="queries",
        default=[],
        help="query whose posterior P(Q|Γ) to print (repeatable)",
    )
    condition.add_argument(
        "--force",
        action="append",
        default=[],
        metavar="FACT=BOOL",
        help="what-if evidence, e.g. --force 'R(2)=true' (repeatable); "
        "derives the scenario by cofactor instead of recompiling",
    )
    condition.add_argument(
        "--top-k",
        type=int,
        default=0,
        metavar="K",
        help="print the K most probable worlds given Γ",
    )
    condition.add_argument(
        "--facts",
        action="store_true",
        help="print posterior marginals P(f|Γ) for constraint-relevant facts",
    )
    condition.add_argument(
        "--seed",
        type=int,
        default=None,
        help="RNG seed for the approximate routes (reproducible estimates)",
    )

    safety = sub.add_parser("safety", help="decide PTIME vs #P-hard from syntax")
    safety.add_argument("-q", "--query", required=True, help="CQ or UCQ shorthand")

    sub.add_parser("demo", help="run the Figure 1 demonstration")
    return parser


def _cmd_query(args: argparse.Namespace) -> int:
    pdb = ProbabilisticDatabase(
        tid=load_tid(args.files), seed=args.seed, backend=args.backend
    )
    if args.scenario is not None:
        from .condition import ConditionedScenario

        scenario = ConditionedScenario.compile(pdb, args.scenario)
        answer = scenario.posterior(args.query)
        print(f"P(Q | Γ)    : {answer.probability:.10g}")
        print(f"P(Γ)        : {answer.gamma_probability:.10g}")
        print(f"method      : {answer.method}")
        print(f"exact       : {answer.exact}")
        if answer.detail:
            print(f"detail      : {answer.detail}")
        return 0
    if args.explain:
        print(pdb.explain(args.query))
        return 0
    answer = pdb.probability(args.query, Method(args.method))
    print(f"probability : {answer.probability:.10g}")
    print(f"method      : {answer.method.value}")
    print(f"exact       : {answer.exact}")
    if answer.detail:
        print(f"detail      : {answer.detail}")
    if args.stats and answer.stats is not None:
        print(f"stage times : {answer.stats.summary()}")
        if answer.stats.backend:
            print(f"backend     : {answer.stats.backend}")
        for line in answer.stats.operator_summary():
            print(f"  {line}")
        if answer.stats.counters:
            print(f"kernel      : {answer.stats.counter_summary()}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.repeat < 1:
        print("--repeat must be at least 1", file=sys.stderr)
        return 2
    if args.cache_size < 1:
        print("--cache-size must be at least 1", file=sys.stderr)
        return 2
    session = EngineSession(
        load_tid(args.files),
        cache_size=args.cache_size,
        seed=args.seed,
        backend=args.backend,
    )
    queries = list(args.queries) * args.repeat
    answers = session.query_batch(
        queries,
        Method(args.method),
        executor=args.executor,
        max_workers=args.workers,
    )
    for query, answer in zip(queries, answers):
        served = "cached" if answer.stats and answer.stats.cache_hit else answer.method.value
        print(f"P({query}) = {answer.probability:.10g}  [{served}]")
    if args.stats:
        print(session.report())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import get_registry
    from .server import QueryServer, ServerConfig

    if args.demo:
        if args.files:
            print("--demo and CSV files are mutually exclusive", file=sys.stderr)
            return 2
        tid = figure1_database()
    elif args.files:
        tid = load_tid(args.files)
    else:
        print("give CSV files to serve, or --demo", file=sys.stderr)
        return 2
    session = EngineSession(
        tid, cache_size=args.cache_size, seed=args.seed, backend=args.backend
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        mode=args.mode,
        max_pending=args.max_pending,
        coalesce=not args.no_coalesce,
        default_deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        request_timeout_s=args.timeout_s,
        default_epsilon=args.epsilon,
        default_delta=args.delta,
        restart_workers=not args.no_restart_workers,
    )

    async def _run() -> None:
        server = QueryServer(session, config)
        await server.start()
        print(f"listening on {args.host}:{server.port}", flush=True)

        stats_task: Optional[asyncio.Task] = None
        if args.stats:
            registry = get_registry()

            async def _log_stats() -> None:
                while True:
                    await asyncio.sleep(args.stats_interval)
                    snapshot = registry.snapshot()
                    latency = registry.histogram(
                        "server_request_seconds",
                        "request wall time, admission to response",
                    )
                    print(
                        "stats: "
                        f"requests={int(snapshot.get('server_requests_total', 0))} "
                        f"coalesced={int(snapshot.get('server_coalesced_total', 0))} "
                        f"overloaded={int(snapshot.get('server_overloaded_total', 0))} "
                        f"errors={int(snapshot.get('server_errors_total', 0))} "
                        f"inflight={int(snapshot.get('server_inflight', 0))} "
                        f"latency[{latency.summary()}]",
                        flush=True,
                    )

            stats_task = asyncio.get_running_loop().create_task(_log_stats())
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass
        finally:
            if stats_task is not None:
                stats_task.cancel()
            await server.shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        # A second Ctrl-C during the drain aborts it; the first is handled
        # by asyncio cancelling _run, which drains before returning.
        pass
    # serve_forever only ends via Ctrl-C/SIGINT, and _run drains on the
    # way out — so reaching this line means a clean shutdown either way.
    print("interrupt: drained in-flight requests, shut down cleanly")
    return 0


def _parse_force(pairs: Sequence[str]) -> dict:
    force = {}
    for pair in pairs:
        spec, eq, raw = pair.partition("=")
        value = raw.strip().lower()
        if not eq or value not in ("true", "false", "1", "0"):
            raise ValueError(
                f"--force needs FACT=true|false, got {pair!r}"
            )
        force[spec.strip()] = value in ("true", "1")
    return force


def _fmt_fact(fact: object) -> str:
    if isinstance(fact, tuple) and len(fact) == 2 and isinstance(fact[1], tuple):
        name, values = fact
        return f"{name}({', '.join(str(v) for v in values)})"
    return str(fact)


def _cmd_condition(args: argparse.Namespace) -> int:
    from .condition import ConditionedScenario

    pdb = ProbabilisticDatabase(tid=load_tid(args.files), seed=args.seed)
    scenario = ConditionedScenario.compile(pdb, args.constraints)
    print(f"P(Γ) = {scenario.gamma_probability:.10g}  "
          f"[{len(scenario.constraints)} constraints]")
    if args.force:
        scenario = scenario.whatif(_parse_force(args.force))
        print(f"what-if: P(Γ') = {scenario.gamma_probability:.10g}  "
              f"(forced: {', '.join(args.force)})")
    for text in args.queries:
        answer = scenario.posterior(text)
        print(f"P({text} | Γ) = {answer.probability:.10g}")
    if args.facts:
        print("posterior marginals:")
        for fact, report in sorted(
            scenario.fact_posteriors().items(), key=lambda kv: str(kv[0])
        ):
            print(
                f"  {_fmt_fact(fact)}: prior={report.prior:.6g} "
                f"posterior={report.posterior:.6g} "
                f"influence={report.influence:.6g}"
            )
    if args.top_k > 0:
        print(f"top-{args.top_k} worlds given Γ:")
        for rank, candidate in enumerate(scenario.top_k_worlds(args.top_k), 1):
            facts = ", ".join(
                f"{'+' if present else '-'}{_fmt_fact(fact)}"
                for fact, present in sorted(
                    candidate.world.items(), key=lambda kv: str(kv[0])
                )
            )
            print(f"  #{rank}  posterior={candidate.posterior:.6g}  [{facts}]")
    return 0


def _cmd_safety(args: argparse.Namespace) -> int:
    text = args.query
    query = parse_ucq(text) if "|" in text else parse_cq(text)
    verdict = decide_safety(query)
    print(f"query      : {text}")
    print(f"complexity : {verdict.complexity.value}")
    if verdict.blocking_subquery:
        print(f"blocked on : {verdict.blocking_subquery}")
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    pdb = ProbabilisticDatabase(
        tid=figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    )
    print("Figure 1 database loaded (9 tuples, 2^9 possible worlds).")
    for text in (
        "R(x), S(x,y)",
        "forall x. forall y. (S(x,y) -> R(x))",
    ):
        answer = pdb.probability(text)
        print(f"  P({text}) = {answer.probability:.6f} [{answer.method.value}]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "condition": _cmd_condition,
        "safety": _cmd_safety,
        "demo": _cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # ``serve`` drains and returns 0 on Ctrl-C; for everything else the
        # conventional "killed by SIGINT" exit status, without a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except ValueError as error:
        # ParseError (malformed query text) and other input validation
        # failures surface as one line on stderr, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
