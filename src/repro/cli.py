"""Command-line interface: ``python -m repro``.

Subcommands:

* ``query``  — load relations from CSV files and evaluate a Boolean query;
* ``safety`` — decide the dichotomy side of a CQ/UCQ from syntax alone;
* ``demo``   — run the built-in Figure 1 demonstration.

Examples::

    python -m repro query data/R.csv data/S.csv -q "R(x), S(x,y)"
    python -m repro query data/*.csv -q "forall x. forall y. (S(x,y) -> R(x))"
    python -m repro safety -q "R(x), S(x,y), T(y)"
    python -m repro demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.pdb import Method, ProbabilisticDatabase
from .lifted.safety import decide_safety
from .logic.cq import parse_cq, parse_ucq
from .relational.io import load_tid
from .workloads.generators import figure1_database


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="prodb: probabilistic database engine "
        "(reproduction of 'Probabilistic Databases for All', PODS 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="evaluate a Boolean query over CSV relations")
    query.add_argument("files", nargs="+", help="CSV files, one relation each")
    query.add_argument("-q", "--query", required=True, help="query text")
    query.add_argument(
        "-m",
        "--method",
        default="auto",
        choices=[m.value for m in Method],
        help="inference route (default: auto)",
    )
    query.add_argument(
        "--explain", action="store_true", help="print the derivation trace"
    )

    safety = sub.add_parser("safety", help="decide PTIME vs #P-hard from syntax")
    safety.add_argument("-q", "--query", required=True, help="CQ or UCQ shorthand")

    sub.add_parser("demo", help="run the Figure 1 demonstration")
    return parser


def _cmd_query(args: argparse.Namespace) -> int:
    pdb = ProbabilisticDatabase(tid=load_tid(args.files))
    if args.explain:
        print(pdb.explain(args.query))
        return 0
    answer = pdb.probability(args.query, Method(args.method))
    print(f"probability : {answer.probability:.10g}")
    print(f"method      : {answer.method.value}")
    print(f"exact       : {answer.exact}")
    if answer.detail:
        print(f"detail      : {answer.detail}")
    return 0


def _cmd_safety(args: argparse.Namespace) -> int:
    text = args.query
    query = parse_ucq(text) if "|" in text else parse_cq(text)
    verdict = decide_safety(query)
    print(f"query      : {text}")
    print(f"complexity : {verdict.complexity.value}")
    if verdict.blocking_subquery:
        print(f"blocked on : {verdict.blocking_subquery}")
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    pdb = ProbabilisticDatabase(
        tid=figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    )
    print("Figure 1 database loaded (9 tuples, 2^9 possible worlds).")
    for text in (
        "R(x), S(x,y)",
        "forall x. forall y. (S(x,y) -> R(x))",
    ):
        answer = pdb.probability(text)
        print(f"  P({text}) = {answer.probability:.6f} [{answer.method.value}]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "safety": _cmd_safety,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
