"""Probabilistic datalog over TIDs (the ProbLog-style route of Sec. 9)."""

from .program import DatalogEvaluation, DatalogProgram, Rule, parse_rule

__all__ = ["DatalogEvaluation", "DatalogProgram", "Rule", "parse_rule"]
