"""Probabilistic datalog over TIDs — the ProbLog route (Sec. 9, [51]).

A (positive, possibly recursive) datalog program is evaluated over a
tuple-independent database by computing, for every derivable IDB fact, its
Boolean *lineage* as the least fixpoint of the rule equations:

    lineage(head) = ⋁ over rule matches of ⋀ lineage(body facts)

EDB facts ground to their tuple variable. Because lineages are monotone
Boolean expressions over a finite variable set, the fixpoint terminates;
probabilities then come from the usual WMC engines (exact DPLL, or
Karp–Luby on the DNF for large instances). This mirrors ProbLog's
ground-then-compile pipeline [51]: ground the program, build the lineage,
do weighted model counting.

Only positive programs are supported (negation would require
stratification and is out of scope); rules are range-restricted: every head
variable must occur in the body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..booleans.expr import B_FALSE, BAnd, BExpr, BOr, bvar
from ..core.tid import TupleIndependentDatabase
from ..lineage.build import VariablePool
from ..logic.formulas import Atom
from ..logic.semantics import Fact
from ..logic.terms import Const, Var
from ..wmc.dpll import DPLLCounter


@dataclass(frozen=True)
class Rule:
    """head :- body₁, ..., bodyₙ (positive atoms only)."""

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("rules need a non-empty body (use add_fact for facts)")
        head_vars = self.head.free_variables()
        body_vars = frozenset(
            v for atom in self.body for v in atom.free_variables()
        )
        unbound = head_vars - body_vars
        if unbound:
            names = ", ".join(sorted(v.name for v in unbound))
            raise ValueError(f"head variables not bound by the body: {names}")

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}"


def parse_rule(text: str) -> Rule:
    """Parse ``"path(x,z) :- path(x,y), edge(y,z)"``."""
    if ":-" not in text:
        raise ValueError(f"missing ':-' in rule: {text!r}")
    head_text, body_text = text.split(":-", 1)
    from ..logic.parser import _Parser

    head_parser = _Parser(head_text.strip())
    head = head_parser.atom()
    if head_parser.peek()[0] != "eof":
        raise ValueError(f"trailing input in rule head: {head_text!r}")
    body_parser = _Parser(body_text.strip())
    body = [body_parser.atom()]
    while body_parser.peek()[1] == ",":
        body_parser.advance()
        body.append(body_parser.atom())
    if body_parser.peek()[0] != "eof":
        raise ValueError(f"trailing input in rule body: {body_text!r}")
    return Rule(head, tuple(body))


@dataclass
class DatalogEvaluation:
    """The fixpoint result: lineage per derived fact plus the variable pool."""

    lineages: dict[Fact, BExpr]
    pool: VariablePool
    rounds: int

    def probability(self, fact: Fact) -> float:
        """Exact marginal of one derived fact (DPLL on its lineage)."""
        expr = self.lineages.get(fact, B_FALSE)
        counter = DPLLCounter()
        return counter.run(expr, self.pool.probability_map()).probability

    def facts_of(self, predicate: str) -> list[Fact]:
        return sorted(
            (f for f in self.lineages if f[0] == predicate), key=repr
        )


@dataclass
class DatalogProgram:
    """Rules over an EDB stored in a TID."""

    edb: TupleIndependentDatabase
    rules: list[Rule] = field(default_factory=list)

    def add_rule(self, rule: Rule | str) -> None:
        parsed = parse_rule(rule) if isinstance(rule, str) else rule
        edb_predicates = set(self.edb.relations)
        if parsed.head.predicate in edb_predicates:
            raise ValueError(
                f"head predicate {parsed.head.predicate} is an EDB relation"
            )
        self.rules.append(parsed)

    def idb_predicates(self) -> frozenset[str]:
        return frozenset(rule.head.predicate for rule in self.rules)

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, max_rounds: int = 10_000) -> DatalogEvaluation:
        """Naive fixpoint of the lineage equations (see module docstring).

        Lineages are maintained as *absorbed DNF term-sets*: each derived
        fact maps to a set of minimal variable-sets (derivations). The sets
        grow monotonically within a finite lattice, so the fixpoint always
        terminates — including on cyclic programs, where a derivation that
        revisits a tuple collapses by idempotence and is absorbed.
        """
        pool = VariablePool()
        terms: dict[Fact, frozenset[frozenset[int]]] = {}
        for name, values, probability in self.edb.facts():
            if probability <= 0.0:
                continue
            fact = (name, values)
            terms[fact] = frozenset({frozenset({pool.variable(fact, probability)})})

        rounds = 0
        changed = True
        while changed:
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"datalog fixpoint did not converge in {max_rounds} rounds"
                )
            rounds += 1
            changed = False
            for rule in self.rules:
                for binding in self._matches(rule.body, terms):
                    head_fact = _ground(rule.head, binding)
                    derivations: frozenset[frozenset[int]] = frozenset(
                        {frozenset()}
                    )
                    for atom in rule.body:
                        body_terms = terms[_ground(atom, binding)]
                        derivations = frozenset(
                            left | right
                            for left in derivations
                            for right in body_terms
                        )
                    previous = terms.get(head_fact, frozenset())
                    updated = _absorb(previous | derivations)
                    if updated != previous:
                        terms[head_fact] = updated
                        changed = True

        lineages = {
            fact: BOr.of(
                BAnd.of(bvar(v) for v in sorted(term))
                for term in sorted(term_set, key=lambda t: (len(t), sorted(t)))
            )
            for fact, term_set in terms.items()
        }
        return DatalogEvaluation(lineages, pool, rounds)

    def _matches(
        self, body: tuple[Atom, ...], known: dict[Fact, object]
    ) -> Iterator[dict[Var, object]]:
        """All bindings making every body atom a known (derivable) fact."""
        facts_by_predicate: dict[str, list[Fact]] = {}
        for fact in known:
            facts_by_predicate.setdefault(fact[0], []).append(fact)

        binding: dict[Var, object] = {}

        def extend(index: int) -> Iterator[dict[Var, object]]:
            if index == len(body):
                yield dict(binding)
                return
            atom = body[index]
            for _, values in facts_by_predicate.get(atom.predicate, ()):
                if len(values) != atom.arity:
                    continue
                trail: list[Var] = []
                ok = True
                for term, value in zip(atom.args, values):
                    if isinstance(term, Const):
                        if term.value != value:
                            ok = False
                            break
                    else:
                        bound = binding.get(term)
                        if bound is None:
                            binding[term] = value
                            trail.append(term)
                        elif bound != value:
                            ok = False
                            break
                if ok:
                    yield from extend(index + 1)
                for var in trail:
                    del binding[var]

        yield from extend(0)

    # -- query API ---------------------------------------------------------------

    def fact_probability(self, predicate: str, values: Sequence) -> float:
        """P(the ground IDB/EDB fact is derivable)."""
        evaluation = self.evaluate()
        return evaluation.probability((predicate, tuple(values)))

    def query(
        self, predicate: str, pattern: Optional[Sequence] = None
    ) -> dict[tuple, float]:
        """Marginals of all derived facts of *predicate* matching *pattern*.

        *pattern* entries are constants or None (wildcard).
        """
        evaluation = self.evaluate()
        probabilities = evaluation.pool.probability_map()
        counter = DPLLCounter()
        out: dict[tuple, float] = {}
        for fact in evaluation.facts_of(predicate):
            _, values = fact
            if pattern is not None:
                if len(pattern) != len(values):
                    continue
                if any(
                    want is not None and want != got
                    for want, got in zip(pattern, values)
                ):
                    continue
            out[values] = counter.run(
                evaluation.lineages[fact], probabilities
            ).probability
        return out


def _absorb(term_sets: frozenset[frozenset[int]]) -> frozenset[frozenset[int]]:
    """Keep only minimal terms (drop supersets of another term)."""
    ordered = sorted(term_sets, key=len)
    kept: list[frozenset[int]] = []
    for term in ordered:
        if not any(other <= term for other in kept):
            kept.append(term)
    return frozenset(kept)


def _ground(atom: Atom, binding: dict[Var, object]) -> Fact:
    values = []
    for term in atom.args:
        if isinstance(term, Const):
            values.append(term.value)
        else:
            values.append(binding[term])
    return (atom.predicate, tuple(values))
