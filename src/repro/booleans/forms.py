"""Normal forms: DNF and CNF views of Boolean expressions.

The lineage of a UCQ is naturally a positive DNF; the Karp–Luby estimator
(:mod:`repro.wmc.karp_luby`) and the lower-bound construction of Theorem 6.1
(which needs per-variable DNF occurrence counts) both consume the clause view
produced here.

Clauses are represented as ``frozenset`` of signed literals: a literal is
``+index + 1`` for a positive occurrence and ``-(index + 1)`` for a negated
one (the shift avoids the ambiguous literal 0).
"""

from __future__ import annotations

from typing import Iterable

from .expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BFalse,
    BNot,
    BOr,
    BTrue,
    BVar,
    bnot,
)

Clause = frozenset[int]


class FormSizeExceeded(RuntimeError):
    """Raised when a normal form would exceed the configured clause budget."""


def literal(index: int, positive: bool = True) -> int:
    """Encode a literal for variable *index*."""
    return (index + 1) if positive else -(index + 1)


def literal_var(lit: int) -> int:
    """The variable index of an encoded literal."""
    return abs(lit) - 1


def literal_sign(lit: int) -> bool:
    """True for a positive literal."""
    return lit > 0


def to_nnf(expr: BExpr) -> BExpr:
    """Push negations down to the variables."""

    def walk(node: BExpr, negate: bool) -> BExpr:
        if isinstance(node, BTrue):
            return B_FALSE if negate else B_TRUE
        if isinstance(node, BFalse):
            return B_TRUE if negate else B_FALSE
        if isinstance(node, BVar):
            return bnot(node) if negate else node
        if isinstance(node, BNot):
            return walk(node.sub, not negate)
        if isinstance(node, BAnd):
            parts = tuple(walk(p, negate) for p in node.parts)
            return BOr.of(parts) if negate else BAnd.of(parts)
        if isinstance(node, BOr):
            parts = tuple(walk(p, negate) for p in node.parts)
            return BAnd.of(parts) if negate else BOr.of(parts)
        raise TypeError(f"unknown node {node!r}")

    return walk(expr, False)


def to_dnf(expr: BExpr, max_clauses: int = 100_000) -> list[Clause]:
    """The DNF clause list of *expr* (each clause a set of literals).

    Contradictory clauses are dropped and subsumed clauses removed. Raises
    :class:`FormSizeExceeded` beyond *max_clauses* intermediate clauses.
    """
    clauses = _clauses(to_nnf(expr), conjunctive=False, max_clauses=max_clauses)
    return _prune_subsumed(clauses)


def to_cnf(expr: BExpr, max_clauses: int = 100_000) -> list[Clause]:
    """The CNF clause list of *expr* (each clause a disjunction of literals)."""
    clauses = _clauses(to_nnf(expr), conjunctive=True, max_clauses=max_clauses)
    return _prune_subsumed(clauses)


def _clauses(expr: BExpr, conjunctive: bool, max_clauses: int) -> list[Clause]:
    """Clause list: DNF terms (conjunctive=False) or CNF clauses (True)."""
    # For DNF: Or distributes clause lists by union, And takes cross products.
    # For CNF the roles swap; unify by flipping which node type multiplies.
    cross_node, merge_node = (BOr, BAnd) if conjunctive else (BAnd, BOr)

    def walk(node: BExpr) -> list[Clause]:
        if isinstance(node, BVar):
            return [frozenset({literal(node.index, True)})]
        if isinstance(node, BNot):
            assert isinstance(node.sub, BVar), "input must be NNF"
            return [frozenset({literal(node.sub.index, False)})]
        if isinstance(node, (BTrue, BFalse)):
            truthy = isinstance(node, BTrue)
            # In DNF: true = one empty clause, false = no clauses; CNF dual.
            empty_means_true = not conjunctive
            if truthy == empty_means_true:
                return [frozenset()]
            return []
        if isinstance(node, merge_node):
            out: list[Clause] = []
            for part in node.parts:
                out.extend(walk(part))
                if len(out) > max_clauses:
                    raise FormSizeExceeded(f"more than {max_clauses} clauses")
            return out
        if isinstance(node, cross_node):
            acc: list[Clause] = [frozenset()]
            for part in node.parts:
                nxt: list[Clause] = []
                for left in acc:
                    for right in walk(part):
                        combined = left | right
                        if _contradictory(combined):
                            continue
                        nxt.append(combined)
                        if len(nxt) > max_clauses:
                            raise FormSizeExceeded(
                                f"more than {max_clauses} clauses"
                            )
                acc = nxt
            return acc
        raise TypeError(f"unknown node {node!r}")

    return walk(expr)


def _contradictory(clause: Clause) -> bool:
    return any(-lit in clause for lit in clause)


def _prune_subsumed(clauses: Iterable[Clause]) -> list[Clause]:
    """Remove clauses that are supersets of another clause."""
    ordered = sorted(set(clauses), key=len)
    kept: list[Clause] = []
    for clause in ordered:
        if not any(k <= clause for k in kept):
            kept.append(clause)
    return kept


def from_dnf(clauses: Iterable[Clause]) -> BExpr:
    """Rebuild an expression from DNF clauses."""
    terms = []
    for clause in clauses:
        literals = [
            BVar(literal_var(lit)) if literal_sign(lit) else bnot(BVar(literal_var(lit)))
            for lit in sorted(clause)
        ]
        terms.append(BAnd.of(literals))
    return BOr.of(terms)


def from_cnf(clauses: Iterable[Clause]) -> BExpr:
    """Rebuild an expression from CNF clauses."""
    terms = []
    for clause in clauses:
        literals = [
            BVar(literal_var(lit)) if literal_sign(lit) else bnot(BVar(literal_var(lit)))
            for lit in sorted(clause)
        ]
        terms.append(BOr.of(literals))
    return BAnd.of(terms)


def dnf_occurrence_counts(clauses: Iterable[Clause]) -> dict[int, int]:
    """How many DNF clauses mention each variable.

    This is the count *k* used by the oblivious lower bound of Theorem 6.1:
    the probability of tuple *t* is replaced by ``1 - (1 - p)^(1/k)``.
    """
    counts: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = literal_var(lit)
            counts[var] = counts.get(var, 0) + 1
    return counts
