"""Boolean expressions over integer-indexed variables.

Lineages (Sec. 7 of the paper) are Boolean formulas whose variables stand for
tuples of a TID. This module provides an immutable, structurally-hashed AST
with light simplification at construction time:

* ``BAnd``/``BOr`` are n-ary, flatten, deduplicate, sort their children into
  a canonical order and apply unit/complement laws;
* ``BNot`` cancels double negation;
* every node carries a precomputed structural key, so formulas that are
  syntactically equal modulo child order compare and hash equal — this is the
  cache key used by the DPLL model counter.

Variables are plain ints. The mapping from ints back to database tuples lives
in :class:`repro.lineage.build.LineageResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


class BExpr:
    """Base class of Boolean expression nodes."""

    __slots__ = ()

    _key: tuple

    def key(self) -> tuple:
        """A structural key: equal keys ⇔ equal expressions."""
        return self._key

    def __and__(self, other: "BExpr") -> "BExpr":
        return BAnd.of((self, other))

    def __or__(self, other: "BExpr") -> "BExpr":
        return BOr.of((self, other))

    def __invert__(self) -> "BExpr":
        return bnot(self)

    def children(self) -> tuple["BExpr", ...]:
        return ()

    def walk(self) -> Iterator["BExpr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def variables(self) -> frozenset[int]:
        """The set of variable indices occurring in the expression."""
        out: set[int] = set()
        stack: list[BExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BVar):
                out.add(node.index)
            else:
                stack.extend(node.children())
        return frozenset(out)

    def node_count(self) -> int:
        """Number of AST nodes (duplicates counted per occurrence)."""
        return 1 + sum(c.node_count() for c in self.children())

    def is_constant(self) -> bool:
        return isinstance(self, (BTrue, BFalse))


@dataclass(frozen=True, slots=True, eq=False)
class BTrue(BExpr):
    """The constant true."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", ("1",))

    _key: tuple = field(init=False, repr=False)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BTrue)

    def __hash__(self) -> int:
        return hash(("1",))

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True, eq=False)
class BFalse(BExpr):
    """The constant false."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", ("0",))

    _key: tuple = field(init=False, repr=False)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BFalse)

    def __hash__(self) -> int:
        return hash(("0",))

    def __str__(self) -> str:
        return "false"


B_TRUE = BTrue()
B_FALSE = BFalse()


@dataclass(frozen=True, slots=True, eq=False)
class BVar(BExpr):
    """A Boolean variable, identified by a non-negative integer index."""

    index: int
    _key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", ("v", self.index))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BVar) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("v", self.index))

    def __str__(self) -> str:
        return f"x{self.index}"


@dataclass(frozen=True, slots=True, eq=False)
class BNot(BExpr):
    """Negation. Build via :func:`bnot` to get simplification."""

    sub: BExpr
    _key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", ("n", self.sub.key()))

    def children(self) -> tuple[BExpr, ...]:
        return (self.sub,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BNot) and other._key == self._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __str__(self) -> str:
        return f"~{_wrap(self.sub)}"


def bnot(expr: BExpr) -> BExpr:
    """Negation with double-negation and constant simplification."""
    if isinstance(expr, BTrue):
        return B_FALSE
    if isinstance(expr, BFalse):
        return B_TRUE
    if isinstance(expr, BNot):
        return expr.sub
    return BNot(expr)


def _gather(cls, parts: Iterable[BExpr]) -> list[BExpr]:
    out: list[BExpr] = []
    for part in parts:
        if isinstance(part, cls):
            out.extend(part.parts)
        else:
            out.append(part)
    return out


@dataclass(frozen=True, slots=True, eq=False)
class BAnd(BExpr):
    """N-ary conjunction with canonically ordered children."""

    parts: tuple[BExpr, ...]
    _key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", ("a", tuple(p.key() for p in self.parts)))

    @staticmethod
    def of(parts: Iterable[BExpr]) -> BExpr:
        flat = _gather(BAnd, parts)
        seen: dict[tuple, BExpr] = {}
        for p in flat:
            if isinstance(p, BFalse):
                return B_FALSE
            if isinstance(p, BTrue):
                continue
            seen.setdefault(p.key(), p)
        # complement law: x ∧ ¬x = false
        for p in seen.values():
            if isinstance(p, BNot) and p.sub.key() in seen:
                return B_FALSE
        ordered = tuple(seen[k] for k in sorted(seen))
        if not ordered:
            return B_TRUE
        if len(ordered) == 1:
            return ordered[0]
        return BAnd(ordered)

    def children(self) -> tuple[BExpr, ...]:
        return self.parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BAnd) and other._key == self._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __str__(self) -> str:
        return " & ".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True, slots=True, eq=False)
class BOr(BExpr):
    """N-ary disjunction with canonically ordered children."""

    parts: tuple[BExpr, ...]
    _key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", ("o", tuple(p.key() for p in self.parts)))

    @staticmethod
    def of(parts: Iterable[BExpr]) -> BExpr:
        flat = _gather(BOr, parts)
        seen: dict[tuple, BExpr] = {}
        for p in flat:
            if isinstance(p, BTrue):
                return B_TRUE
            if isinstance(p, BFalse):
                continue
            seen.setdefault(p.key(), p)
        for p in seen.values():
            if isinstance(p, BNot) and p.sub.key() in seen:
                return B_TRUE
        ordered = tuple(seen[k] for k in sorted(seen))
        if not ordered:
            return B_FALSE
        if len(ordered) == 1:
            return ordered[0]
        return BOr(ordered)

    def children(self) -> tuple[BExpr, ...]:
        return self.parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BOr) and other._key == self._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __str__(self) -> str:
        return " | ".join(_wrap(p) for p in self.parts)


def _wrap(expr: BExpr) -> str:
    if isinstance(expr, (BVar, BTrue, BFalse, BNot)):
        return str(expr)
    return f"({expr})"


def band(*parts: BExpr) -> BExpr:
    """Conjunction helper."""
    return BAnd.of(parts)


def bor(*parts: BExpr) -> BExpr:
    """Disjunction helper."""
    return BOr.of(parts)


def bvar(index: int) -> BVar:
    """Variable helper."""
    return BVar(index)


def evaluate(expr: BExpr, assignment: Mapping[int, bool]) -> bool:
    """Evaluate under a total assignment of the expression's variables."""
    if isinstance(expr, BTrue):
        return True
    if isinstance(expr, BFalse):
        return False
    if isinstance(expr, BVar):
        return bool(assignment[expr.index])
    if isinstance(expr, BNot):
        return not evaluate(expr.sub, assignment)
    if isinstance(expr, BAnd):
        return all(evaluate(p, assignment) for p in expr.parts)
    if isinstance(expr, BOr):
        return any(evaluate(p, assignment) for p in expr.parts)
    raise TypeError(f"unknown node {expr!r}")
