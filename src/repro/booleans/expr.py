"""Boolean expressions over integer-indexed variables.

Lineages (Sec. 7 of the paper) are Boolean formulas whose variables stand for
tuples of a TID. This module provides an immutable, *hash-consed* AST with
light simplification at construction time:

* ``BAnd``/``BOr`` are n-ary, flatten, deduplicate, sort their children into
  a canonical order and apply unit/complement laws;
* ``BNot`` cancels double negation;
* every construction goes through the unique table of
  :data:`repro.booleans.kernel.DEFAULT_MANAGER`, so structurally equal
  formulas are the **same object** with the same small integer id
  (:attr:`BExpr.nid`) — equality is an identity check and cache keys are
  ints, where the pre-kernel representation hashed O(|subtree|) nested
  tuples;
* every node caches its ``variables()`` frozenset, computed once at intern
  time.

The nested structural key of the old representation survives as
:meth:`BExpr.key` for callers that need an order or a cross-generation
comparison; it is built once per interned node from the children's keys.

Variables are plain ints. The mapping from ints back to database tuples lives
in :class:`repro.lineage.build.LineageResult`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .kernel import DEFAULT_MANAGER


class BExpr:
    """Base class of interned Boolean expression nodes.

    Instances are immutable by convention and unique per structure: do not
    mutate the slots after construction, and always build nodes through the
    public constructors so the unique table stays canonical.
    """

    __slots__ = ("nid", "_key", "_hash", "_vars", "__weakref__")

    nid: int
    _key: tuple
    _hash: int
    _vars: frozenset[int]

    def key(self) -> tuple:
        """A structural key: equal keys ⇔ equal expressions."""
        return self._key

    def __and__(self, other: "BExpr") -> "BExpr":
        return BAnd.of((self, other))

    def __or__(self, other: "BExpr") -> "BExpr":
        return BOr.of((self, other))

    def __invert__(self) -> "BExpr":
        return bnot(self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # Structural fallback: only reachable for nodes from different
        # kernel generations (see NodeManager.reset).
        return type(other) is type(self) and other._key == self._key  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return self._hash

    def children(self) -> tuple["BExpr", ...]:
        return ()

    def walk(self) -> Iterator["BExpr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def variables(self) -> frozenset[int]:
        """The set of variable indices occurring in the expression (O(1))."""
        return self._vars

    def node_count(self) -> int:
        """Number of AST nodes (duplicates counted per occurrence)."""
        return 1 + sum(c.node_count() for c in self.children())

    def is_constant(self) -> bool:
        return isinstance(self, (BTrue, BFalse))


_NO_VARS: frozenset[int] = frozenset()


class BTrue(BExpr):
    """The constant true (a singleton)."""

    __slots__ = ()
    _instance: "BTrue" = None  # type: ignore[assignment]

    def __new__(cls) -> "BTrue":
        instance = cls._instance
        if instance is None:
            instance = object.__new__(cls)
            instance.nid = DEFAULT_MANAGER.next_id()
            instance._key = ("1",)
            instance._hash = hash(("1",))
            instance._vars = _NO_VARS
            cls._instance = instance
        return instance

    def __reduce__(self) -> tuple:
        return (BTrue, ())

    def __repr__(self) -> str:
        return "BTrue()"

    def __str__(self) -> str:
        return "true"


class BFalse(BExpr):
    """The constant false (a singleton)."""

    __slots__ = ()
    _instance: "BFalse" = None  # type: ignore[assignment]

    def __new__(cls) -> "BFalse":
        instance = cls._instance
        if instance is None:
            instance = object.__new__(cls)
            instance.nid = DEFAULT_MANAGER.next_id()
            instance._key = ("0",)
            instance._hash = hash(("0",))
            instance._vars = _NO_VARS
            cls._instance = instance
        return instance

    def __reduce__(self) -> tuple:
        return (BFalse, ())

    def __repr__(self) -> str:
        return "BFalse()"

    def __str__(self) -> str:
        return "false"


B_TRUE = BTrue()
B_FALSE = BFalse()


class BVar(BExpr):
    """A Boolean variable, identified by a non-negative integer index."""

    __slots__ = ("index",)

    index: int

    def __new__(cls, index: int) -> "BVar":
        manager = DEFAULT_MANAGER
        key = ("v", index)
        node = manager.unique.get(key)
        if node is not None:
            manager.counters.intern_hits += 1
            return node  # type: ignore[return-value]
        self = object.__new__(cls)
        self.index = index
        self.nid = manager.next_id()
        self._key = key
        self._hash = hash(key)
        self._vars = frozenset((index,))
        return manager.intern(key, self)  # type: ignore[return-value]

    def __reduce__(self) -> tuple:
        return (BVar, (self.index,))

    def __repr__(self) -> str:
        return f"BVar(index={self.index!r})"

    def __str__(self) -> str:
        return f"x{self.index}"


class BNot(BExpr):
    """Negation. Build via :func:`bnot` to get simplification."""

    __slots__ = ("sub",)

    sub: BExpr

    def __new__(cls, sub: BExpr) -> "BNot":
        manager = DEFAULT_MANAGER
        table_key = ("n", sub.nid)
        node = manager.unique.get(table_key)
        if node is not None:
            manager.counters.intern_hits += 1
            return node  # type: ignore[return-value]
        self = object.__new__(cls)
        self.sub = sub
        self.nid = manager.next_id()
        self._key = ("n", sub._key)
        self._hash = hash(("n", sub._hash))
        self._vars = sub._vars
        return manager.intern(table_key, self)  # type: ignore[return-value]

    def children(self) -> tuple[BExpr, ...]:
        return (self.sub,)

    def __reduce__(self) -> tuple:
        return (BNot, (self.sub,))

    def __repr__(self) -> str:
        return f"BNot(sub={self.sub!r})"

    def __str__(self) -> str:
        return f"~{_wrap(self.sub)}"


def bnot(expr: BExpr) -> BExpr:
    """Negation with double-negation and constant simplification."""
    if expr is B_TRUE:
        return B_FALSE
    if expr is B_FALSE:
        return B_TRUE
    if isinstance(expr, BNot):
        return expr.sub
    return BNot(expr)


def _gather(cls, parts: Iterable[BExpr]) -> list[BExpr]:
    out: list[BExpr] = []
    for part in parts:
        if isinstance(part, cls):
            out.extend(part.parts)
        else:
            out.append(part)
    return out


def _structural_key(node: BExpr) -> tuple:
    return node._key


class BAnd(BExpr):
    """N-ary conjunction with canonically ordered children."""

    __slots__ = ("parts",)

    parts: tuple[BExpr, ...]

    def __new__(cls, parts: tuple[BExpr, ...]) -> "BAnd":
        manager = DEFAULT_MANAGER
        parts = tuple(parts)
        table_key = ("a", tuple(p.nid for p in parts))
        node = manager.unique.get(table_key)
        if node is not None:
            manager.counters.intern_hits += 1
            return node  # type: ignore[return-value]
        self = object.__new__(cls)
        self.parts = parts
        self.nid = manager.next_id()
        self._key = ("a", tuple(p._key for p in parts))
        self._hash = hash(("a", tuple(p._hash for p in parts)))
        self._vars = frozenset().union(*(p._vars for p in parts))
        return manager.intern(table_key, self)  # type: ignore[return-value]

    @staticmethod
    def of(parts: Iterable[BExpr]) -> BExpr:
        flat = _gather(BAnd, parts)
        seen: dict[int, BExpr] = {}
        for p in flat:
            if p is B_FALSE:
                return B_FALSE
            if p is B_TRUE:
                continue
            seen.setdefault(p.nid, p)
        # complement law: x ∧ ¬x = false
        for p in seen.values():
            if type(p) is BNot and p.sub.nid in seen:
                return B_FALSE
        ordered = tuple(sorted(seen.values(), key=_structural_key))
        if not ordered:
            return B_TRUE
        if len(ordered) == 1:
            return ordered[0]
        return BAnd(ordered)

    def children(self) -> tuple[BExpr, ...]:
        return self.parts

    def __reduce__(self) -> tuple:
        return (BAnd, (self.parts,))

    def __repr__(self) -> str:
        return f"BAnd(parts={self.parts!r})"

    def __str__(self) -> str:
        return " & ".join(_wrap(p) for p in self.parts)


class BOr(BExpr):
    """N-ary disjunction with canonically ordered children."""

    __slots__ = ("parts",)

    parts: tuple[BExpr, ...]

    def __new__(cls, parts: tuple[BExpr, ...]) -> "BOr":
        manager = DEFAULT_MANAGER
        parts = tuple(parts)
        table_key = ("o", tuple(p.nid for p in parts))
        node = manager.unique.get(table_key)
        if node is not None:
            manager.counters.intern_hits += 1
            return node  # type: ignore[return-value]
        self = object.__new__(cls)
        self.parts = parts
        self.nid = manager.next_id()
        self._key = ("o", tuple(p._key for p in parts))
        self._hash = hash(("o", tuple(p._hash for p in parts)))
        self._vars = frozenset().union(*(p._vars for p in parts))
        return manager.intern(table_key, self)  # type: ignore[return-value]

    @staticmethod
    def of(parts: Iterable[BExpr]) -> BExpr:
        flat = _gather(BOr, parts)
        seen: dict[int, BExpr] = {}
        for p in flat:
            if p is B_TRUE:
                return B_TRUE
            if p is B_FALSE:
                continue
            seen.setdefault(p.nid, p)
        # complement law: x ∨ ¬x = true
        for p in seen.values():
            if type(p) is BNot and p.sub.nid in seen:
                return B_TRUE
        ordered = tuple(sorted(seen.values(), key=_structural_key))
        if not ordered:
            return B_FALSE
        if len(ordered) == 1:
            return ordered[0]
        return BOr(ordered)

    def children(self) -> tuple[BExpr, ...]:
        return self.parts

    def __reduce__(self) -> tuple:
        return (BOr, (self.parts,))

    def __repr__(self) -> str:
        return f"BOr(parts={self.parts!r})"

    def __str__(self) -> str:
        return " | ".join(_wrap(p) for p in self.parts)


def _wrap(expr: BExpr) -> str:
    if isinstance(expr, (BVar, BTrue, BFalse, BNot)):
        return str(expr)
    return f"({expr})"


def band(*parts: BExpr) -> BExpr:
    """Conjunction helper."""
    return BAnd.of(parts)


def bor(*parts: BExpr) -> BExpr:
    """Disjunction helper."""
    return BOr.of(parts)


def bvar(index: int) -> BVar:
    """Variable helper."""
    return BVar(index)


def evaluate(expr: BExpr, assignment: Mapping[int, bool]) -> bool:
    """Evaluate under a total assignment of the expression's variables.

    Hash-consed expressions are DAGs: a shared subformula appears once in
    memory but on many paths, so a naive tree walk can revisit it
    exponentially often. A per-call memo keyed by node id makes this a
    single pass over the distinct nodes — which matters to callers that
    evaluate the same large constraint circuit once per sampled world
    (:func:`repro.condition.core.conditioned_karp_luby`).
    """
    memo: dict[int, bool] = {}

    def walk(node: BExpr) -> bool:
        if isinstance(node, BTrue):
            return True
        if isinstance(node, BFalse):
            return False
        if isinstance(node, BVar):
            return bool(assignment[node.index])
        cached = memo.get(node.nid)
        if cached is not None:
            return cached
        if isinstance(node, BNot):
            result = not walk(node.sub)
        elif isinstance(node, BAnd):
            result = all(walk(p) for p in node.parts)
        elif isinstance(node, BOr):
            result = any(walk(p) for p in node.parts)
        else:
            raise TypeError(f"unknown node {node!r}")
        memo[node.nid] = result
        return result

    return walk(expr)
