"""Operations on Boolean expressions: conditioning, components, statistics.

These are the primitives of the DPLL-style algorithms of Sec. 7:

* :func:`condition` computes the restriction F[X := b] (used by the Shannon
  expansion, rule (11));
* :func:`independent_factors` splits a conjunction (or disjunction) into
  variable-disjoint components (rule (12) and its dual);
* :func:`variable_frequencies` supports branching heuristics.

All three lean on the hash-consing kernel (:mod:`repro.booleans.kernel`):
subtrees that do not mention an assigned variable are returned *unchanged*
(same object — the per-node variable sets make the check O(1)), and
single-variable restrictions and factor splits are memoized process-wide by
node id, so repeated Shannon expansions of shared subformulas cost O(1)
after the first computation.
"""

from __future__ import annotations

from typing import Mapping

from .expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BFalse,
    BNot,
    BOr,
    BTrue,
    BVar,
    bnot,
)
from .kernel import DEFAULT_MANAGER


def _condition_single(expr: BExpr, var: int, value: bool) -> BExpr:
    """F[var := value] with the kernel's process-wide cofactor memo."""
    if var not in expr._vars:
        return expr
    manager = DEFAULT_MANAGER
    memo = manager.cofactor_memo
    memo_key = (expr.nid, var, value)
    cached = memo.get(memo_key)
    if cached is not None:
        manager.counters.cofactor_hits += 1
        return cached
    manager.counters.cofactor_misses += 1
    if isinstance(expr, BVar):
        result: BExpr = B_TRUE if value else B_FALSE
    elif isinstance(expr, BNot):
        result = bnot(_condition_single(expr.sub, var, value))
    elif isinstance(expr, BAnd):
        result = BAnd.of(_condition_single(p, var, value) for p in expr.parts)
    elif isinstance(expr, BOr):
        result = BOr.of(_condition_single(p, var, value) for p in expr.parts)
    else:
        raise TypeError(f"unknown node {expr!r}")
    if len(memo) >= manager.memo_limit:
        memo.clear()
    memo[memo_key] = result
    return result


def condition(expr: BExpr, assignment: Mapping[int, bool]) -> BExpr:
    """The restriction of *expr* under a partial assignment, simplified.

    Unassigned variables remain symbolic. Simplification is the
    constructor-level one (unit laws, complement law, dedup). Subtrees that
    mention none of the assigned variables come back unchanged — the very
    same interned object, not a rebuilt copy.
    """
    if len(assignment) == 1:
        (var, value), = assignment.items()
        return _condition_single(expr, var, bool(value))
    assigned = frozenset(assignment)
    memo: dict[int, BExpr] = {}

    def walk(node: BExpr) -> BExpr:
        if assigned.isdisjoint(node._vars):
            return node
        cached = memo.get(node.nid)
        if cached is not None:
            return cached
        if isinstance(node, BVar):
            result: BExpr = B_TRUE if assignment[node.index] else B_FALSE
        elif isinstance(node, BNot):
            result = bnot(walk(node.sub))
        elif isinstance(node, BAnd):
            result = BAnd.of(walk(p) for p in node.parts)
        elif isinstance(node, BOr):
            result = BOr.of(walk(p) for p in node.parts)
        else:
            raise TypeError(f"unknown node {node!r}")
        memo[node.nid] = result
        return result

    if isinstance(expr, (BTrue, BFalse)) or not assignment:
        return expr
    return walk(expr)


def cofactors(expr: BExpr, var: int) -> tuple[BExpr, BExpr]:
    """The pair (F[var := 0], F[var := 1]) used by the Shannon expansion."""
    return _condition_single(expr, var, False), _condition_single(expr, var, True)


def independent_factors(expr: BExpr) -> list[BExpr]:
    """Split into variable-disjoint factors (connected components).

    For a conjunction F = F₁ ∧ F₂ with disjoint variables the factors are
    independent events (rule (12)); for a disjunction the dual independent-or
    applies. A node that is neither, or whose parts all share variables,
    comes back as a single factor. Results are memoized by node id.
    """
    if not isinstance(expr, (BAnd, BOr)):
        return [expr]
    manager = DEFAULT_MANAGER
    cached = manager.factors_memo.get(expr.nid)
    if cached is not None:
        manager.counters.factor_hits += 1
        return list(cached)
    manager.counters.factor_misses += 1
    parts = expr.parts
    n = len(parts)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    index_of_var: dict[int, int] = {}
    for i, part in enumerate(parts):
        for v in part._vars:
            j = index_of_var.get(v)
            if j is None:
                index_of_var[v] = i
            else:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj

    groups: dict[int, list[BExpr]] = {}
    for i, part in enumerate(parts):
        groups.setdefault(find(i), []).append(part)
    if len(groups) == 1:
        factors = [expr]
    else:
        builder = BAnd.of if isinstance(expr, BAnd) else BOr.of
        factors = [builder(group) for group in groups.values()]
    if len(manager.factors_memo) >= manager.memo_limit:
        manager.factors_memo.clear()
    manager.factors_memo[expr.nid] = tuple(factors)
    return factors


def variable_frequencies(expr: BExpr) -> dict[int, int]:
    """Occurrence counts per variable (for branching heuristics)."""
    counts: dict[int, int] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            counts[node.index] = counts.get(node.index, 0) + 1
        else:
            stack.extend(node.children())
    return counts


def most_frequent_variable(expr: BExpr) -> int:
    """The variable with the most occurrences (ties broken by index).

    Memoized by node id: the DPLL counter asks this of every subformula it
    expands, and shared subformulas recur across and within runs.
    """
    manager = DEFAULT_MANAGER
    cached = manager.branch_memo.get(expr.nid)
    if cached is not None:
        return cached
    counts = variable_frequencies(expr)
    if not counts:
        raise ValueError("expression has no variables")
    best = max(counts, key=lambda v: (counts[v], -v))
    if len(manager.branch_memo) >= manager.memo_limit:
        manager.branch_memo.clear()
    manager.branch_memo[expr.nid] = best
    return best


def is_positive(expr: BExpr) -> bool:
    """True when the expression contains no negation."""
    return not any(isinstance(node, BNot) for node in expr.walk())


def substitute_exprs(expr: BExpr, mapping: Mapping[int, BExpr]) -> BExpr:
    """Replace variables by whole expressions (used by gadget constructions)."""
    if isinstance(expr, (BTrue, BFalse)):
        return expr
    if isinstance(expr, BVar):
        return mapping.get(expr.index, expr)
    if isinstance(expr, BNot):
        return bnot(substitute_exprs(expr.sub, mapping))
    if isinstance(expr, BAnd):
        return BAnd.of(substitute_exprs(p, mapping) for p in expr.parts)
    if isinstance(expr, BOr):
        return BOr.of(substitute_exprs(p, mapping) for p in expr.parts)
    raise TypeError(f"unknown node {expr!r}")
