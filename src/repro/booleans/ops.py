"""Operations on Boolean expressions: conditioning, components, statistics.

These are the primitives of the DPLL-style algorithms of Sec. 7:

* :func:`condition` computes the restriction F[X := b] (used by the Shannon
  expansion, rule (11));
* :func:`independent_factors` splits a conjunction (or disjunction) into
  variable-disjoint components (rule (12) and its dual);
* :func:`variable_frequencies` supports branching heuristics.
"""

from __future__ import annotations

from typing import Mapping

from .expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BFalse,
    BNot,
    BOr,
    BTrue,
    BVar,
    bnot,
)


def condition(expr: BExpr, assignment: Mapping[int, bool]) -> BExpr:
    """The restriction of *expr* under a partial assignment, simplified.

    Unassigned variables remain symbolic. Simplification is the
    constructor-level one (unit laws, complement law, dedup).
    """
    memo: dict[tuple, BExpr] = {}

    def walk(node: BExpr) -> BExpr:
        key = node.key()
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(node, (BTrue, BFalse)):
            result: BExpr = node
        elif isinstance(node, BVar):
            if node.index in assignment:
                result = B_TRUE if assignment[node.index] else B_FALSE
            else:
                result = node
        elif isinstance(node, BNot):
            result = bnot(walk(node.sub))
        elif isinstance(node, BAnd):
            result = BAnd.of(walk(p) for p in node.parts)
        elif isinstance(node, BOr):
            result = BOr.of(walk(p) for p in node.parts)
        else:
            raise TypeError(f"unknown node {node!r}")
        memo[key] = result
        return result

    return walk(expr)


def cofactors(expr: BExpr, var: int) -> tuple[BExpr, BExpr]:
    """The pair (F[var := 0], F[var := 1]) used by the Shannon expansion."""
    return condition(expr, {var: False}), condition(expr, {var: True})


def independent_factors(expr: BExpr) -> list[BExpr]:
    """Split into variable-disjoint factors (connected components).

    For a conjunction F = F₁ ∧ F₂ with disjoint variables the factors are
    independent events (rule (12)); for a disjunction the dual independent-or
    applies. A node that is neither, or whose parts all share variables,
    comes back as a single factor.
    """
    if not isinstance(expr, (BAnd, BOr)):
        return [expr]
    parts = expr.parts
    part_vars = [p.variables() for p in parts]
    n = len(parts)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    index_of_var: dict[int, int] = {}
    for i, pv in enumerate(part_vars):
        for v in pv:
            j = index_of_var.get(v)
            if j is None:
                index_of_var[v] = i
            else:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj

    groups: dict[int, list[BExpr]] = {}
    for i, part in enumerate(parts):
        groups.setdefault(find(i), []).append(part)
    if len(groups) == 1:
        return [expr]
    builder = BAnd.of if isinstance(expr, BAnd) else BOr.of
    return [builder(group) for group in groups.values()]


def variable_frequencies(expr: BExpr) -> dict[int, int]:
    """Occurrence counts per variable (for branching heuristics)."""
    counts: dict[int, int] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            counts[node.index] = counts.get(node.index, 0) + 1
        else:
            stack.extend(node.children())
    return counts


def most_frequent_variable(expr: BExpr) -> int:
    """The variable with the most occurrences (ties broken by index)."""
    counts = variable_frequencies(expr)
    if not counts:
        raise ValueError("expression has no variables")
    return max(counts, key=lambda v: (counts[v], -v))


def is_positive(expr: BExpr) -> bool:
    """True when the expression contains no negation."""
    return not any(isinstance(node, BNot) for node in expr.walk())


def substitute_exprs(expr: BExpr, mapping: Mapping[int, BExpr]) -> BExpr:
    """Replace variables by whole expressions (used by gadget constructions)."""
    if isinstance(expr, (BTrue, BFalse)):
        return expr
    if isinstance(expr, BVar):
        return mapping.get(expr.index, expr)
    if isinstance(expr, BNot):
        return bnot(substitute_exprs(expr.sub, mapping))
    if isinstance(expr, BAnd):
        return BAnd.of(substitute_exprs(p, mapping) for p in expr.parts)
    if isinstance(expr, BOr):
        return BOr.of(substitute_exprs(p, mapping) for p in expr.parts)
    raise TypeError(f"unknown node {expr!r}")
