"""The hash-consing kernel behind :mod:`repro.booleans.expr`.

Every structurally-distinct Boolean expression is *interned*: the node
constructors consult a :class:`NodeManager` unique table, so two
constructions of the same formula return the **same object**, carrying a
small integer id (``nid``). Downstream this buys

* O(1) equality (identity) and O(1) cache keys (ints) where the pre-kernel
  code hashed O(|subtree|) nested structural tuples;
* a per-node ``variables()`` frozenset computed once at intern time;
* process-wide memo tables — cofactors keyed ``(nid, var, value)`` and
  independent factors keyed ``nid`` — so repeated Shannon expansions of
  shared subformulas are O(1) after the first computation.

The unique table keys are ``(tag, child ids...)`` tuples: children are
interned before their parents, so the ids identify the children up to
structural equality and interning one node costs O(arity), not O(size).

Memory is bounded by construction, not by explicit resets:

* the unique table holds its nodes through **weak references**
  (children are strong slots of their parents, so a live root keeps its
  whole subtree interned): once nothing outside the kernel references an
  expression, the garbage collector drops it and its table entry — a
  long-lived process that releases its lineages (e.g. via
  :meth:`repro.engine.session.EngineSession.invalidate`) releases the
  expression memory too;
* the memo tables hold plain strong entries but are **size-capped** at
  :attr:`NodeManager.memo_limit`: on overflow a table is cleared
  wholesale, and :meth:`NodeManager.clear_memos` (called by
  ``EngineSession.invalidate``) drops them on demand — the memos are
  pure caches, so clearing only costs recomputation. Node ids are
  monotonic and never reused, so a memo entry for a dead node can go
  stale but can never alias a fresh one.

:meth:`NodeManager.reset` still drops everything at once (useful in
benchmarks measuring cold-table behavior), with the caveat that
expressions from before the reset no longer share identity with ones
built after it; ``BExpr.__eq__`` falls back to structural comparison for
exactly this cross-generation case.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .expr import BExpr


@dataclass(frozen=True)
class KernelStatistics:
    """A snapshot of one :class:`NodeManager`'s counters.

    ``unique_nodes`` is the live size of the (process-wide) unique table;
    the hit/miss counters are **per thread** (see
    :class:`_ThreadLocalCounters`), so before/after deltas taken around a
    computation attribute exactly that thread's traffic — correct even
    while the engine's batch executor runs other queries concurrently.
    """

    unique_nodes: int
    intern_hits: int
    intern_misses: int
    cofactor_hits: int
    cofactor_misses: int
    factor_hits: int
    factor_misses: int

    def __str__(self) -> str:
        return (
            f"{self.unique_nodes} unique nodes, "
            f"intern {self.intern_hits} hits / {self.intern_misses} misses, "
            f"cofactor memo {self.cofactor_hits} hits / "
            f"{self.cofactor_misses} misses"
        )


class _ThreadLocalCounters(threading.local):
    """Hit/miss counters, one independent set per thread.

    The tables they describe are shared process-wide, but attributing
    traffic per thread is what makes per-query deltas meaningful: each
    :meth:`repro.wmc.dpll.DPLLCounter.run` executes on a single thread,
    so its before/after snapshot never includes a concurrent query's
    interning or memo hits.
    """

    def __init__(self) -> None:
        self.intern_hits = 0
        self.intern_misses = 0
        self.cofactor_hits = 0
        self.cofactor_misses = 0
        self.factor_hits = 0
        self.factor_misses = 0


class NodeManager:
    """Unique table plus memo tables for interned Boolean expressions.

    ``intern_misses`` equals the number of nodes actually allocated by the
    current thread; ``intern_hits`` counts constructions served by the
    table (allocations the pre-kernel representation would have paid for).
    """

    __slots__ = (
        "unique",
        "cofactor_memo",
        "factors_memo",
        "branch_memo",
        "memo_limit",
        "counters",
        "_ids",
    )

    #: Default cap on each memo table (entries); see :attr:`memo_limit`.
    DEFAULT_MEMO_LIMIT = 1 << 18

    def __init__(self, memo_limit: int = DEFAULT_MEMO_LIMIT) -> None:
        self.unique: "weakref.WeakValueDictionary[Hashable, BExpr]" = (
            weakref.WeakValueDictionary()
        )
        self.cofactor_memo: dict[tuple[int, int, bool], "BExpr"] = {}
        self.factors_memo: dict[int, tuple["BExpr", ...]] = {}
        self.branch_memo: dict[int, int] = {}
        #: Each memo table is cleared wholesale when it reaches this many
        #: entries, bounding the strong references the kernel retains.
        self.memo_limit = memo_limit
        self.counters = _ThreadLocalCounters()
        # Monotonic across resets so stale memo keys can never collide.
        self._ids = itertools.count()

    def next_id(self) -> int:
        return next(self._ids)

    def intern(self, key: Hashable, node: "BExpr") -> "BExpr":
        """Insert *node* under *key* unless an equal node already exists.

        A lost race between batch-executor threads can briefly yield two
        structurally-equal objects with distinct ids; that is benign —
        ``BExpr.__eq__`` falls back to structural comparison, and nid-keyed
        caches merely miss once.
        """
        # Deliberately lock-free: dict.setdefault is atomic under the GIL,
        # and the lost-race case is benign per the docstring above.
        winner = self.unique.setdefault(key, node)  # prodb-lint: lockfree
        if winner is node:
            self.counters.intern_misses += 1
        else:
            self.counters.intern_hits += 1
        return winner

    def snapshot(self) -> KernelStatistics:
        """Current table size plus the calling thread's counters."""
        counters = self.counters
        return KernelStatistics(
            unique_nodes=len(self.unique),
            intern_hits=counters.intern_hits,
            intern_misses=counters.intern_misses,
            cofactor_hits=counters.cofactor_hits,
            cofactor_misses=counters.cofactor_misses,
            factor_hits=counters.factor_hits,
            factor_misses=counters.factor_misses,
        )

    def clear_memos(self) -> None:
        """Drop the cofactor/factor/branch memo tables.

        Always sound — the memos are pure caches — and, unlike
        :meth:`reset`, this touches neither the unique table nor the
        counters, so interned identity is preserved. It releases the
        strong references that keep otherwise-dead expressions alive
        (the unique table itself holds nodes only weakly).
        """
        # Deliberately lock-free: dict.clear() is atomic under the GIL and
        # the memos are pure caches — a concurrent reader at worst misses.
        self.cofactor_memo.clear()  # prodb-lint: lockfree
        self.factors_memo.clear()  # prodb-lint: lockfree
        self.branch_memo.clear()  # prodb-lint: lockfree

    def reset(self) -> None:
        """Drop the unique table and memo tables and zero all counters.

        Expressions alive across the reset stop sharing identity with
        newly built ones (``__eq__`` handles that structurally); the
        constant singletons survive because they live on their classes,
        not in the table. Counters on *other* threads reset too, since the
        whole thread-local set is replaced.
        """
        self.unique = weakref.WeakValueDictionary()
        self.clear_memos()
        self.counters = _ThreadLocalCounters()


#: The process-wide manager used by the expression constructors.
DEFAULT_MANAGER = NodeManager()


def kernel_statistics() -> KernelStatistics:
    """A snapshot of the default manager: global table size, this thread's
    counters."""
    return DEFAULT_MANAGER.snapshot()


def clear_kernel_memos() -> None:
    """Clear the default manager's memo tables (always sound; see
    :meth:`NodeManager.clear_memos`)."""
    DEFAULT_MANAGER.clear_memos()


def reset_kernel() -> None:
    """Reset the default manager (see :meth:`NodeManager.reset` caveats)."""
    DEFAULT_MANAGER.reset()
