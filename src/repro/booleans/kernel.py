"""The hash-consing kernel behind :mod:`repro.booleans.expr`.

Every structurally-distinct Boolean expression is *interned*: the node
constructors consult a :class:`NodeManager` unique table, so two
constructions of the same formula return the **same object**, carrying a
small integer id (``nid``). Downstream this buys

* O(1) equality (identity) and O(1) cache keys (ints) where the pre-kernel
  code hashed O(|subtree|) nested structural tuples;
* a per-node ``variables()`` frozenset computed once at intern time;
* process-wide memo tables — cofactors keyed ``(nid, var, value)`` and
  independent factors keyed ``nid`` — so repeated Shannon expansions of
  shared subformulas are O(1) after the first computation.

The unique table keys are ``(tag, child ids...)`` tuples: children are
interned before their parents, so the ids identify the children up to
structural equality and interning one node costs O(arity), not O(size).

The manager deliberately holds strong references. A long-lived process can
call :meth:`NodeManager.reset` to release the tables, but only when no
expressions built before the reset are still being combined with new ones
(mixed "generations" would defeat the identity invariant). Node ids are
monotonic across resets, so stale memo keys can never collide with fresh
nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .expr import BExpr


@dataclass(frozen=True)
class KernelStatistics:
    """A snapshot of one :class:`NodeManager`'s counters."""

    unique_nodes: int
    intern_hits: int
    intern_misses: int
    cofactor_hits: int
    cofactor_misses: int
    factor_hits: int
    factor_misses: int

    def __str__(self) -> str:
        return (
            f"{self.unique_nodes} unique nodes, "
            f"intern {self.intern_hits} hits / {self.intern_misses} misses, "
            f"cofactor memo {self.cofactor_hits} hits / "
            f"{self.cofactor_misses} misses"
        )


class NodeManager:
    """Unique table plus memo tables for interned Boolean expressions.

    ``intern_misses`` equals the number of nodes actually allocated;
    ``intern_hits`` counts constructions served by the table (allocations
    the pre-kernel representation would have paid for).
    """

    __slots__ = (
        "unique",
        "cofactor_memo",
        "factors_memo",
        "branch_memo",
        "intern_hits",
        "intern_misses",
        "cofactor_hits",
        "cofactor_misses",
        "factor_hits",
        "factor_misses",
        "_ids",
    )

    def __init__(self) -> None:
        self.unique: dict[Hashable, "BExpr"] = {}
        self.cofactor_memo: dict[tuple[int, int, bool], "BExpr"] = {}
        self.factors_memo: dict[int, tuple["BExpr", ...]] = {}
        self.branch_memo: dict[int, int] = {}
        self.intern_hits = 0
        self.intern_misses = 0
        self.cofactor_hits = 0
        self.cofactor_misses = 0
        self.factor_hits = 0
        self.factor_misses = 0
        # Monotonic across resets so stale memo keys can never collide.
        self._ids = itertools.count()

    def next_id(self) -> int:
        return next(self._ids)

    def intern(self, key: Hashable, node: "BExpr") -> "BExpr":
        """Insert *node* under *key* unless an equal node already exists.

        ``setdefault`` is atomic under the GIL, so concurrent constructions
        from batch-executor threads agree on one canonical object.
        """
        winner = self.unique.setdefault(key, node)
        if winner is node:
            self.intern_misses += 1
        else:
            self.intern_hits += 1
        return winner

    def snapshot(self) -> KernelStatistics:
        return KernelStatistics(
            unique_nodes=len(self.unique),
            intern_hits=self.intern_hits,
            intern_misses=self.intern_misses,
            cofactor_hits=self.cofactor_hits,
            cofactor_misses=self.cofactor_misses,
            factor_hits=self.factor_hits,
            factor_misses=self.factor_misses,
        )

    def reset(self) -> None:
        """Drop the unique table and memo tables and zero the counters.

        Safe only when no pre-reset expressions will be combined with
        post-reset ones (see the module docstring); the constant singletons
        survive because they live on their classes, not in the table.
        """
        self.unique.clear()
        self.cofactor_memo.clear()
        self.factors_memo.clear()
        self.branch_memo.clear()
        self.intern_hits = 0
        self.intern_misses = 0
        self.cofactor_hits = 0
        self.cofactor_misses = 0
        self.factor_hits = 0
        self.factor_misses = 0


#: The process-wide manager used by the expression constructors.
DEFAULT_MANAGER = NodeManager()


def kernel_statistics() -> KernelStatistics:
    """A snapshot of the default manager's counters."""
    return DEFAULT_MANAGER.snapshot()


def reset_kernel() -> None:
    """Reset the default manager (see :meth:`NodeManager.reset` caveats)."""
    DEFAULT_MANAGER.reset()
