#!/usr/bin/env python3
"""Knowledge-base scenario: soft rules over extracted facts (Sec. 3).

Models a small HR knowledge base in the style of the paper's Markov Logic
example: extracted Manager facts are uncertain, and the soft rule
"managers are highly compensated" (weight 3.9) correlates tuples.

Shows the full Prop. 3.1 pipeline:
  MLN  →  symmetric TID + constraint Γ  →  p(Q | Γ) by grounded inference,
and verifies the translation against direct MLN semantics.

Run:  python examples/knowledge_base.py
"""

from repro.logic.parser import parse
from repro.mln.mln import MarkovLogicNetwork, SoftConstraint
from repro.mln.translate import Encoding, mln_query_probability, mln_to_tid

DOMAIN = ("ann", "bob")


def main() -> None:
    rule = parse("Manager(m, e) -> HighComp(m)")
    mln = MarkovLogicNetwork(
        [SoftConstraint(3.9, rule)],
        domain=DOMAIN,
    )
    print(f"MLN: (3.9, Manager(m,e) ⇒ HighComp(m)) over domain {DOMAIN}")
    print(f"groundings: {len(mln.ground())}, possible tuples: "
          f"{len(mln.possible_tuples())}")
    print()

    # --- the Prop. 3.1 translation -------------------------------------------
    encoded = mln_to_tid(mln, Encoding.OR)
    print("TID encoding (or-encoding):")
    print(f"  auxiliary relations: {encoded.auxiliary_predicates}")
    print(f"  aux tuple probability: "
          f"{encoded.database.probability_of_fact('Aux0', ('ann', 'bob')):.4f} "
          f"(= 1/w; the paper's 1/(w-1) is the weight)")
    print(f"  constraint Γ: {encoded.constraint}")
    print(f"  the encoded database is symmetric: "
          f"{encoded.database.is_symmetric()}")
    print()

    # --- queries: correlations emerge from the constraint -------------------
    queries = {
        "P(HighComp(ann))": "HighComp('ann')",
        "P(HighComp(ann) | Manager(ann,bob))": None,  # computed below
        "P(some manager exists)": "exists m. exists e. Manager(m,e)",
        "P(every manager highly compensated)": (
            "forall m. forall e. (Manager(m,e) -> HighComp(m))"
        ),
    }

    base = mln.probability(parse("HighComp('ann')"))
    joint = mln.probability(parse("Manager('ann','bob') & HighComp('ann')"))
    evidence = mln.probability(parse("Manager('ann','bob')"))
    print(f"P(HighComp(ann))                      = {base:.6f}")
    print(f"P(HighComp(ann) | Manager(ann, bob))  = {joint / evidence:.6f}")
    print("  -> seeing a managed employee raises the probability: the TID +")
    print("     constraint really does encode correlations (Question 3.1).")
    print()

    # --- verify Prop. 3.1 on every closed query ------------------------------
    print("Prop. 3.1 check (direct MLN vs TID+Γ, both encodings):")
    for label, text in queries.items():
        if text is None:
            continue
        sentence = parse(text)
        direct = mln.probability(sentence)
        via_or = mln_query_probability(mln, sentence, Encoding.OR)
        via_iff = mln_query_probability(mln, sentence, Encoding.IFF)
        status = "ok" if abs(direct - via_or) < 1e-9 and abs(direct - via_iff) < 1e-9 else "MISMATCH"
        print(f"  {label:40s} {direct:.6f}  [{status}]")


if __name__ == "__main__":
    main()
