#!/usr/bin/env python3
"""Explaining query answers: posterior tuple marginals and influence.

Grounded inference gives more than a number: compiling the lineage into a
decision-DNNF and differentiating it (one upward + one downward pass) yields
for *every* tuple simultaneously

* its posterior probability given the query is true, and
* its influence ∂P(Q)/∂p(t) — how much the answer would move if the tuple's
  confidence changed.

This is the circuit-based "explanation" machinery that probabilistic
database systems layer on top of knowledge compilation (Sec. 7).

Run:  python examples/explanations.py
"""

from repro import ProbabilisticDatabase


def main() -> None:
    pdb = ProbabilisticDatabase()
    # a small supplier network: which paths are most responsible for risk?
    pdb.add_fact("Supplier", ("acme",), 0.95)
    pdb.add_fact("Supplier", ("zenith",), 0.6)
    pdb.add_fact("Ships", ("acme", "widget"), 0.5)
    pdb.add_fact("Ships", ("zenith", "widget"), 0.8)
    pdb.add_fact("Ships", ("zenith", "gadget"), 0.4)
    pdb.add_fact("Recalled", ("widget",), 0.3)
    pdb.add_fact("Recalled", ("gadget",), 0.7)

    query = "Supplier(x), Ships(x,y), Recalled(y)"
    answer = pdb.probability(query)
    print(f"P(some supplier ships a recalled part) = {answer.probability:.6f}")
    print(f"  via {answer.method.value}")
    print()

    reports = pdb.tuple_posteriors(query)
    print("tuple-level explanation (given the risk event is TRUE):")
    print(f"{'tuple':38s} {'prior':>7s} {'posterior':>10s} {'influence':>10s}")
    ranked = sorted(reports.items(), key=lambda kv: -kv[1].influence)
    for (relation, values), report in ranked:
        label = f"{relation}{values}"
        print(
            f"{label:38s} {report.prior:7.3f} {report.posterior:10.3f} "
            f"{report.influence:10.3f}"
        )
    print()
    top = ranked[0]
    print(f"most influential tuple: {top[0][0]}{top[0][1]} — raising its")
    print("confidence moves the query answer the most; posteriors > priors")
    print("because the query is monotone (seeing the event makes every")
    print("participating tuple more likely).")
    print()

    # --- most probable explanation: the single most likely risky world -----
    world, probability = pdb.most_probable_world(query)
    present = sorted(f"{r}{v}" for (r, v), here in world.items() if here)
    absent = sorted(f"{r}{v}" for (r, v), here in world.items() if not here)
    print(f"most probable world in which the risk event holds "
          f"(P = {probability:.6f}):")
    print(f"  present: {', '.join(present)}")
    print(f"  absent : {', '.join(absent)}")


if __name__ == "__main__":
    main()
