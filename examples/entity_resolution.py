#!/usr/bin/env python3
"""Entity resolution with block-disjoint alternatives and open-world bounds.

Two extensions the paper's Sec. 1/9 point to beyond plain TIDs:

* **BID databases**: a dirty-data matcher proposes several mutually
  exclusive resolutions per record (each record block resolves to at most
  one canonical entity);
* **open-world reasoning**: facts absent from the extraction are not
  impossible — each unknown tuple may hold with probability up to λ, making
  query answers intervals.

Run:  python examples/entity_resolution.py
"""

from repro.bid.model import BlockIndependentDatabase
from repro.core.tid import TupleIndependentDatabase
from repro.logic.cq import parse_cq
from repro.logic.parser import parse
from repro.openworld.owdb import OpenWorldDatabase


def main() -> None:
    # --- 1. BID: each dirty record matches at most one canonical entity ----
    matcher = BlockIndependentDatabase()
    # record r1 is 'alice' w.p. 0.7, 'alicia' w.p. 0.2 (else: no match)
    matcher.add_alternative("ResolvesTo", ("r1",), ("alice",), 0.7)
    matcher.add_alternative("ResolvesTo", ("r1",), ("alicia",), 0.2)
    matcher.add_alternative("ResolvesTo", ("r2",), ("alice",), 0.5)
    matcher.add_alternative("ResolvesTo", ("r2",), ("bob",), 0.5)
    matcher.add_alternative("Fraudulent", ("r1",), (), 0.1)
    matcher.add_alternative("Fraudulent", ("r2",), (), 0.4)

    print("BID matcher blocks:")
    for block in matcher.block_list():
        outcomes = ", ".join(
            f"{row}:{p:.2f}" for row, p in block.alternatives
        )
        print(f"  {block.relation}{block.key}: {outcomes} "
              f"(absent: {1 - block.total_probability():.2f})")
    print()

    queries = {
        "both records are the same entity": (
            "exists e. (ResolvesTo('r1', e) & ResolvesTo('r2', e))"
        ),
        "a fraudulent record resolves to alice": (
            "exists r. (Fraudulent(r) & ResolvesTo(r, 'alice'))"
        ),
        "every record resolves somewhere": (
            "(exists e. ResolvesTo('r1', e)) & (exists e. ResolvesTo('r2', e))"
        ),
    }
    print("Queries over the BID (block-level Shannon expansion = oracle):")
    for label, text in queries.items():
        sentence = parse(text)
        fast = matcher.probability(sentence)
        slow = matcher.brute_force_probability(sentence)
        print(f"  {label:42s} {fast:.4f} "
              f"({'ok' if abs(fast - slow) < 1e-9 else 'MISMATCH'})")
    print()

    # --- 2. open world: the extraction may have missed purchase links ------
    tid = TupleIndependentDatabase()
    tid.add_fact("Entity", ("alice",), 0.95)
    tid.add_fact("Entity", ("bob",), 0.9)
    tid.add_fact("Bought", ("alice", "laptop"), 0.8)
    tid.explicit_domain = frozenset(("alice", "bob", "laptop"))

    print("Open-world intervals for q = Entity(x), Bought(x, y):")
    query = parse_cq("Entity(x), Bought(x,y)")
    for lam in (0.0, 0.05, 0.2):
        owdb = OpenWorldDatabase(tid, threshold=lam)
        interval = owdb.probability(query)
        print(f"  λ = {lam:4.2f}: {interval}  (width {interval.width:.4f}, "
              f"{owdb.unknown_tuple_count()} unknown tuples)")
    print("\nclosed-world answers are the λ=0 point; growing λ widens the")
    print("interval — the OpenPDB semantics of Ceylan et al. (paper Sec. 9).")


if __name__ == "__main__":
    main()
