#!/usr/bin/env python3
"""Network reliability with recursive probabilistic datalog.

The paper's Theorem 2.2 hardness proof reduces from network reliability
(Provan–Ball); ProbLog [51] made the same machinery a programming model.
This example computes two-terminal reliability of a small data-center
topology with a recursive datalog program over a TID of unreliable links:
the engine grounds the program to Boolean lineage by a fixpoint and counts
models exactly.

Run:  python examples/network_reliability.py
"""

import itertools

from repro.core.tid import TupleIndependentDatabase
from repro.datalog.program import DatalogProgram


def topology() -> dict[tuple, float]:
    """A two-level spine/leaf network with per-link availability."""
    links = {}
    for spine in ("s1", "s2"):
        for leaf in ("l1", "l2", "l3"):
            links[(spine, leaf)] = 0.9
            links[(leaf, spine)] = 0.9
    links[("gw", "s1")] = 0.95
    links[("gw", "s2")] = 0.8
    return links


def brute_force_reachability(links, source, target) -> float:
    items = sorted(links.items(), key=repr)
    total = 0.0
    for bits in itertools.product((False, True), repeat=len(items)):
        weight = 1.0
        present = set()
        for include, ((u, v), p) in zip(bits, items):
            weight *= p if include else 1.0 - p
            if include:
                present.add((u, v))
        frontier, seen = {source}, set()
        reached = False
        while frontier:
            node = frontier.pop()
            if node == target:
                reached = True
                break
            seen.add(node)
            frontier.update(v for (u, v) in present if u == node and v not in seen)
        if reached:
            total += weight
    return total


def main() -> None:
    links = topology()
    db = TupleIndependentDatabase()
    for (u, v), p in links.items():
        db.add_fact("link", (u, v), p)

    program = DatalogProgram(db)
    program.add_rule("conn(x,y) :- link(x,y)")
    program.add_rule("conn(x,z) :- conn(x,y), link(y,z)")

    evaluation = program.evaluate()
    print(f"fixpoint reached in {evaluation.rounds} rounds; "
          f"{len(evaluation.lineages)} derived facts")
    print()

    print("P(gateway reaches leaf):")
    for leaf in ("l1", "l2", "l3"):
        p = evaluation.probability(("conn", ("gw", leaf)))
        print(f"  gw → {leaf}: {p:.6f}")
    print()

    # cross-check one value against exhaustive link-subset enumeration
    target = ("gw", "l2")
    fast = evaluation.probability(("conn", target))
    slow = brute_force_reachability(links, *target)
    print(f"validation gw → l2: datalog {fast:.9f} vs enumeration "
          f"{slow:.9f} ({'ok' if abs(fast - slow) < 1e-9 else 'MISMATCH'})")
    print()

    # what-if: degrade the gw→s1 link
    db.add_fact("link", ("gw", "s1"), 0.5)
    degraded = DatalogProgram(db)
    degraded.add_rule("conn(x,y) :- link(x,y)")
    degraded.add_rule("conn(x,z) :- conn(x,y), link(y,z)")
    p_before = fast
    p_after = degraded.evaluate().probability(("conn", target))
    print(f"what-if (gw→s1 availability 0.95 → 0.5): "
          f"P(gw→l2) {p_before:.4f} → {p_after:.4f}")


if __name__ == "__main__":
    main()
