#!/usr/bin/env python3
"""Quickstart: the probabilistic database in five minutes.

Builds the paper's Figure 1 database, asks Boolean and non-Boolean queries,
and shows how the engine routes each query (lifted inference for safe
queries, grounded inference for #P-hard ones).

Run:  python examples/quickstart.py
"""

from repro import Method, ProbabilisticDatabase
from repro.workloads.generators import figure1_database


def main() -> None:
    # --- 1. build a tuple-independent database (Figure 1 of the paper) ----
    pdb = ProbabilisticDatabase(
        tid=figure1_database(
            p=(0.9, 0.5, 0.4), q=(0.8, 0.3, 0.7, 0.2, 0.6, 0.5)
        ),
        seed=0,
    )
    print("Database:")
    print(pdb.tid)
    print()

    # --- 2. a safe conjunctive query: answered by lifted inference ---------
    answer = pdb.probability("R(x), S(x,y)")
    print(f"P(∃x∃y R(x) ∧ S(x,y)) = {answer.probability:.6f}")
    print(f"  method: {answer.method.value} (exact={answer.exact})")
    print()

    # --- 3. full first-order syntax works too ------------------------------
    constraint = "forall x. forall y. (S(x,y) -> R(x))"
    answer = pdb.probability(constraint)
    print(f"P({constraint}) = {answer.probability:.6f}")
    print(f"  method: {answer.method.value}")
    print()

    # --- 4. a #P-hard query: the engine falls back to grounded inference ---
    pdb.add_fact("T", ("b1",), 0.35)
    pdb.add_fact("T", ("b3",), 0.65)
    hard = "R(x), S(x,y), T(y)"
    answer = pdb.probability(hard)
    print(f"P(∃x∃y R∧S∧T) = {answer.probability:.6f}")
    print(f"  method: {answer.method.value}")
    print(f"  detail: {answer.detail}")
    print()

    # --- 5. non-Boolean query: per-answer marginals -------------------------
    print("Answers of q(x) :- R(x), S(x,y):")
    for values, result in pdb.answers("R(x), S(x,y)", ["x"]).items():
        print(f"  x = {values[0]!r}: {result.probability:.6f}")
    print()

    # --- 6. explanation of the chosen derivation ----------------------------
    print("Explanation for the union query Q_J (needs inclusion/exclusion):")
    print(pdb.explain("R(x),S(x,y) | T(u),S(u,v)"))
    print()

    # --- 7. every exact route agrees ----------------------------------------
    q = "R(x), S(x,y)"
    for method in (Method.LIFTED, Method.SAFE_PLAN, Method.DPLL, Method.BRUTE_FORCE):
        print(f"  {method.value:12s}: {pdb.probability(q, method).probability:.12f}")


if __name__ == "__main__":
    main()
